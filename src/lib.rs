//! # SwiftDir — Secure Cache Coherence without Overprotection
//!
//! A full-system reproduction of the MICRO 2022 paper *SwiftDir: Secure
//! Cache Coherence without Overprotection* (Miao, Bu, Li, Mao, Jia).
//!
//! This meta-crate re-exports the whole simulator stack so downstream users
//! (and the examples and integration tests in this repository) can depend on
//! a single crate:
//!
//! * [`engine`] — deterministic event-driven simulation kernel.
//! * [`mem`] — DDR3-1600 DRAM timing model.
//! * [`mmu`] — page tables, PTE R/W bits, TLBs, VMAs, `mmap`, KSM, CoW.
//! * [`cache`] — set-associative cache structures and PIPT/VIPT/VIVT
//!   addressing.
//! * [`coherence`] — the L1 and LLC/directory controllers implementing
//!   MESI, S-MESI, SwiftDir, and MSI.
//! * [`cpu`] — in-order and out-of-order core models.
//! * [`core`] — system assembly, configuration (paper Table V), latency
//!   probes, and the covert/side-channel attack harness.
//! * [`workloads`] — SPEC-like, PARSEC-like, read-only, and
//!   write-after-read workload generators.
//!
//! # Quickstart
//!
//! ```
//! use swiftdir::prelude::*;
//!
//! // A 2-core SwiftDir system with Table V defaults.
//! let config = SystemConfig::builder()
//!     .cores(2)
//!     .protocol(ProtocolKind::SwiftDir)
//!     .build();
//! let mut system = System::new(config);
//! let pid = system.spawn_process();
//! // Map one write-protected (shared-library-like) page and read it.
//! let va = system
//!     .process_mut(pid)
//!     .mmap(4096, Prot::READ, MapFlags::PRIVATE)
//!     .expect("mmap");
//! system.run_thread_program(pid, 0, vec![Instr::load(va)]);
//! let stats = system.run_to_completion();
//! assert_eq!(stats.loads(), 1);
//! ```

pub use sim_engine as engine;
pub use swiftdir_cache as cache;
pub use swiftdir_coherence as coherence;
pub use swiftdir_core as core;
pub use swiftdir_cpu as cpu;
pub use swiftdir_mem as mem;
pub use swiftdir_mmu as mmu;
pub use swiftdir_workloads as workloads;

/// The most commonly used items, re-exported for `use swiftdir::prelude::*`.
pub mod prelude {
    pub use sim_engine::{Counter, Cycle, DetRng, EventQueue, Histogram, RunningStats};
    pub use swiftdir_cache::{CacheGeometry, L1Architecture, ReplacementPolicy};
    pub use swiftdir_coherence::{CoherenceEvent, L1State, LlcState, ProtocolKind};
    pub use swiftdir_core::{
        AccessClass, LatencyProbe, Process, ProcessId, RunStats, System, SystemConfig,
    };
    pub use swiftdir_cpu::{CpuModel, Instr, Program};
    pub use swiftdir_mmu::{MapFlags, PhysAddr, Prot, VirtAddr};
    pub use swiftdir_workloads::{ParsecBenchmark, SpecBenchmark, WarApp};
}
