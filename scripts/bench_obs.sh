#!/usr/bin/env bash
# Measures observability overhead and refreshes BENCH_obs.json.
#
# Runs the driver harness first (refreshing BENCH_driver.json) so the
# observability harness has a same-machine, same-build number to compare
# its tracing-disabled path against; bench_obs then asserts the disabled
# path is within 2% of it. Run from the repository root:
#
#   scripts/bench_obs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p swiftdir-bench
./target/release/bench_driver
exec ./target/release/bench_obs
