#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and all benchmark
# targets compile. Run from the repository root:
#
#   scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test --workspace --quiet
cargo build --benches --workspace
echo "verify: ok"
