#!/usr/bin/env bash
# Serve smoke: the durable campaign service survives a SIGKILL.
#
# Runs the same fuzz job through two spools — one drained undisturbed,
# one whose server is SIGKILLed mid-campaign and restarted — and
# asserts both finish with the identical final digest set. The resumed
# job's heartbeat stream must also pass the progress checker (strictly
# increasing seq across the kill gap, one final record).
#
# Usage (from the repository root; builds the bins it needs):
#
#   scripts/serve_smoke.sh [WORKDIR] [SEEDS]
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="${1:-ci-serve}"
SEEDS="${2:-4000}"
SERVE=./target/release/swiftdir-serve
REPORT=./target/release/swiftdir-report

cargo build --release -p swiftdir-serve -p swiftdir-bench --bins
rm -rf "$WORK"
mkdir -p "$WORK/base" "$WORK/kill"

digest_of() { # dir -> the one done job's digest_set
    "$SERVE" status --dir "$1" | grep -o 'digest_set=0x[0-9a-f]*' | head -n1
}

# Baseline: submit and drain uninterrupted.
base_id=$("$SERVE" submit --dir "$WORK/base" --fuzz --seeds "$SEEDS" --protocol swiftdir)
"$SERVE" run --dir "$WORK/base" --drain
base=$(digest_of "$WORK/base")
[ -n "$base" ] || { echo "serve_smoke: baseline produced no result" >&2; exit 1; }
echo "serve_smoke: baseline $base_id $base"

# Kill run: same job, server SIGKILLed mid-campaign.
kill_id=$("$SERVE" submit --dir "$WORK/kill" --fuzz --seeds "$SEEDS" --protocol swiftdir)
"$SERVE" run --dir "$WORK/kill" --drain &
server=$!
sleep 2
kill -9 "$server" 2>/dev/null || true
wait "$server" 2>/dev/null || true
echo "serve_smoke: server $server SIGKILLed; restarting"

# Restart: the recovery pass resumes the claimed job and finishes it.
"$SERVE" run --dir "$WORK/kill" --drain
"$SERVE" status --dir "$WORK/kill"
resumed=$(digest_of "$WORK/kill")

if [ "$resumed" != "$base" ]; then
    echo "serve_smoke: FAIL — resumed digest $resumed != baseline $base" >&2
    exit 1
fi

# The stitched heartbeat stream (pre-kill records + resumed records +
# final) must satisfy every stream invariant.
"$REPORT" --check-progress "$WORK/kill/jobs/$kill_id/progress.jsonl"

echo "serve_smoke: ok — kill/resume digest set matches baseline ($base)"
