#!/usr/bin/env bash
# Runs the simulator performance harness and refreshes BENCH_driver.json.
#
# Honors SWIFTDIR_THREADS for the parallel legs (defaults to at least 4
# workers so the serial-vs-parallel identity assertions see real
# interleaving). Extra arguments pass through to the harness; in
# particular
#
#   scripts/bench_driver.sh --check
#
# re-measures the single-run figure against the committed
# BENCH_driver.json and fails on a >10% regression (the CI bench smoke).
# Run from the repository root:
#
#   scripts/bench_driver.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p swiftdir-bench
exec ./target/release/bench_driver "$@"
