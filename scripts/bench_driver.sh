#!/usr/bin/env bash
# Runs the simulator performance harness and refreshes BENCH_driver.json.
#
# Honors SWIFTDIR_THREADS for the parallel sweep (defaults to the host's
# available parallelism). Run from the repository root:
#
#   scripts/bench_driver.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p swiftdir-bench
exec ./target/release/bench_driver
