/root/repo/target/debug/examples/protocol_trace-3609196959fdd1b0.d: examples/protocol_trace.rs

/root/repo/target/debug/examples/protocol_trace-3609196959fdd1b0: examples/protocol_trace.rs

examples/protocol_trace.rs:
