/root/repo/target/debug/examples/shared_library-c2fc3466c4f514ff.d: examples/shared_library.rs

/root/repo/target/debug/examples/shared_library-c2fc3466c4f514ff: examples/shared_library.rs

examples/shared_library.rs:
