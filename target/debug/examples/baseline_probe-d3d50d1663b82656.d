/root/repo/target/debug/examples/baseline_probe-d3d50d1663b82656.d: examples/baseline_probe.rs

/root/repo/target/debug/examples/baseline_probe-d3d50d1663b82656: examples/baseline_probe.rs

examples/baseline_probe.rs:
