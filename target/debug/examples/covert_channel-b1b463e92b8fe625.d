/root/repo/target/debug/examples/covert_channel-b1b463e92b8fe625.d: examples/covert_channel.rs

/root/repo/target/debug/examples/covert_channel-b1b463e92b8fe625: examples/covert_channel.rs

examples/covert_channel.rs:
