/root/repo/target/debug/examples/write_after_read-fa3e9a0de3c2cd25.d: examples/write_after_read.rs

/root/repo/target/debug/examples/write_after_read-fa3e9a0de3c2cd25: examples/write_after_read.rs

examples/write_after_read.rs:
