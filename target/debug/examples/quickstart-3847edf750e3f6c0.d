/root/repo/target/debug/examples/quickstart-3847edf750e3f6c0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3847edf750e3f6c0: examples/quickstart.rs

examples/quickstart.rs:
