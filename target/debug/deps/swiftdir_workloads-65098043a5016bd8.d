/root/repo/target/debug/deps/swiftdir_workloads-65098043a5016bd8.d: crates/workloads/src/lib.rs crates/workloads/src/parsec.rs crates/workloads/src/readonly.rs crates/workloads/src/spec.rs crates/workloads/src/synth.rs crates/workloads/src/war.rs

/root/repo/target/debug/deps/swiftdir_workloads-65098043a5016bd8: crates/workloads/src/lib.rs crates/workloads/src/parsec.rs crates/workloads/src/readonly.rs crates/workloads/src/spec.rs crates/workloads/src/synth.rs crates/workloads/src/war.rs

crates/workloads/src/lib.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/readonly.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/synth.rs:
crates/workloads/src/war.rs:
