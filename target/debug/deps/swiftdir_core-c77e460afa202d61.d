/root/repo/target/debug/deps/swiftdir_core-c77e460afa202d61.d: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/probe.rs crates/core/src/system.rs

/root/repo/target/debug/deps/swiftdir_core-c77e460afa202d61: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/probe.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/attack.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/probe.rs:
crates/core/src/system.rs:
