/root/repo/target/debug/deps/swiftdir_cache-170ce048b5bbb9cd.d: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/geometry.rs crates/cache/src/indexing.rs crates/cache/src/mshr.rs crates/cache/src/replacement.rs

/root/repo/target/debug/deps/libswiftdir_cache-170ce048b5bbb9cd.rlib: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/geometry.rs crates/cache/src/indexing.rs crates/cache/src/mshr.rs crates/cache/src/replacement.rs

/root/repo/target/debug/deps/libswiftdir_cache-170ce048b5bbb9cd.rmeta: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/geometry.rs crates/cache/src/indexing.rs crates/cache/src/mshr.rs crates/cache/src/replacement.rs

crates/cache/src/lib.rs:
crates/cache/src/array.rs:
crates/cache/src/geometry.rs:
crates/cache/src/indexing.rs:
crates/cache/src/mshr.rs:
crates/cache/src/replacement.rs:
