/root/repo/target/debug/deps/fig8_parsec_time-1c674b91710bc623.d: crates/bench/benches/fig8_parsec_time.rs

/root/repo/target/debug/deps/fig8_parsec_time-1c674b91710bc623: crates/bench/benches/fig8_parsec_time.rs

crates/bench/benches/fig8_parsec_time.rs:
