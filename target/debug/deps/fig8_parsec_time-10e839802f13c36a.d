/root/repo/target/debug/deps/fig8_parsec_time-10e839802f13c36a.d: crates/bench/benches/fig8_parsec_time.rs

/root/repo/target/debug/deps/fig8_parsec_time-10e839802f13c36a: crates/bench/benches/fig8_parsec_time.rs

crates/bench/benches/fig8_parsec_time.rs:
