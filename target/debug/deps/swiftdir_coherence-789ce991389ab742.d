/root/repo/target/debug/deps/swiftdir_coherence-789ce991389ab742.d: crates/coherence/src/lib.rs crates/coherence/src/config.rs crates/coherence/src/hierarchy.rs crates/coherence/src/msg.rs crates/coherence/src/protocol.rs crates/coherence/src/state.rs

/root/repo/target/debug/deps/libswiftdir_coherence-789ce991389ab742.rlib: crates/coherence/src/lib.rs crates/coherence/src/config.rs crates/coherence/src/hierarchy.rs crates/coherence/src/msg.rs crates/coherence/src/protocol.rs crates/coherence/src/state.rs

/root/repo/target/debug/deps/libswiftdir_coherence-789ce991389ab742.rmeta: crates/coherence/src/lib.rs crates/coherence/src/config.rs crates/coherence/src/hierarchy.rs crates/coherence/src/msg.rs crates/coherence/src/protocol.rs crates/coherence/src/state.rs

crates/coherence/src/lib.rs:
crates/coherence/src/config.rs:
crates/coherence/src/hierarchy.rs:
crates/coherence/src/msg.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/state.rs:
