/root/repo/target/debug/deps/address_translation-d71a64313fa9f059.d: tests/address_translation.rs

/root/repo/target/debug/deps/address_translation-d71a64313fa9f059: tests/address_translation.rs

tests/address_translation.rs:
