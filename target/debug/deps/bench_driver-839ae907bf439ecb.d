/root/repo/target/debug/deps/bench_driver-839ae907bf439ecb.d: crates/bench/src/bin/bench_driver.rs

/root/repo/target/debug/deps/bench_driver-839ae907bf439ecb: crates/bench/src/bin/bench_driver.rs

crates/bench/src/bin/bench_driver.rs:
