/root/repo/target/debug/deps/config_table5-4a5ad6709c0699ae.d: tests/config_table5.rs

/root/repo/target/debug/deps/config_table5-4a5ad6709c0699ae: tests/config_table5.rs

tests/config_table5.rs:
