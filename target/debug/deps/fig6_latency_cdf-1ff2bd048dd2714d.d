/root/repo/target/debug/deps/fig6_latency_cdf-1ff2bd048dd2714d.d: crates/bench/benches/fig6_latency_cdf.rs

/root/repo/target/debug/deps/fig6_latency_cdf-1ff2bd048dd2714d: crates/bench/benches/fig6_latency_cdf.rs

crates/bench/benches/fig6_latency_cdf.rs:
