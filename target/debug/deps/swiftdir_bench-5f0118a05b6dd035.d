/root/repo/target/debug/deps/swiftdir_bench-5f0118a05b6dd035.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/swiftdir_bench-5f0118a05b6dd035: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
