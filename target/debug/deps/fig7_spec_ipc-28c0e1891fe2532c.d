/root/repo/target/debug/deps/fig7_spec_ipc-28c0e1891fe2532c.d: crates/bench/benches/fig7_spec_ipc.rs

/root/repo/target/debug/deps/fig7_spec_ipc-28c0e1891fe2532c: crates/bench/benches/fig7_spec_ipc.rs

crates/bench/benches/fig7_spec_ipc.rs:
