/root/repo/target/debug/deps/security_channel-2dcb89d80e5a3c5a.d: crates/bench/benches/security_channel.rs

/root/repo/target/debug/deps/security_channel-2dcb89d80e5a3c5a: crates/bench/benches/security_channel.rs

crates/bench/benches/security_channel.rs:
