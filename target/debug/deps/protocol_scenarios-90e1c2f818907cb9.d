/root/repo/target/debug/deps/protocol_scenarios-90e1c2f818907cb9.d: tests/protocol_scenarios.rs

/root/repo/target/debug/deps/protocol_scenarios-90e1c2f818907cb9: tests/protocol_scenarios.rs

tests/protocol_scenarios.rs:
