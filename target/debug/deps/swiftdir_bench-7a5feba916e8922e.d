/root/repo/target/debug/deps/swiftdir_bench-7a5feba916e8922e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libswiftdir_bench-7a5feba916e8922e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libswiftdir_bench-7a5feba916e8922e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
