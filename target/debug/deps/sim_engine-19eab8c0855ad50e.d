/root/repo/target/debug/deps/sim_engine-19eab8c0855ad50e.d: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/trace.rs

/root/repo/target/debug/deps/sim_engine-19eab8c0855ad50e: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/trace.rs

crates/engine/src/lib.rs:
crates/engine/src/cycle.rs:
crates/engine/src/fxhash.rs:
crates/engine/src/queue.rs:
crates/engine/src/rng.rs:
crates/engine/src/stats.rs:
crates/engine/src/trace.rs:
