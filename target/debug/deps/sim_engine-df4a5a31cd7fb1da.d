/root/repo/target/debug/deps/sim_engine-df4a5a31cd7fb1da.d: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/trace.rs

/root/repo/target/debug/deps/libsim_engine-df4a5a31cd7fb1da.rlib: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/trace.rs

/root/repo/target/debug/deps/libsim_engine-df4a5a31cd7fb1da.rmeta: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/trace.rs

crates/engine/src/lib.rs:
crates/engine/src/cycle.rs:
crates/engine/src/fxhash.rs:
crates/engine/src/queue.rs:
crates/engine/src/rng.rs:
crates/engine/src/stats.rs:
crates/engine/src/trace.rs:
