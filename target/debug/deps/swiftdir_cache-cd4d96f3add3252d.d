/root/repo/target/debug/deps/swiftdir_cache-cd4d96f3add3252d.d: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/geometry.rs crates/cache/src/indexing.rs crates/cache/src/mshr.rs crates/cache/src/replacement.rs

/root/repo/target/debug/deps/swiftdir_cache-cd4d96f3add3252d: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/geometry.rs crates/cache/src/indexing.rs crates/cache/src/mshr.rs crates/cache/src/replacement.rs

crates/cache/src/lib.rs:
crates/cache/src/array.rs:
crates/cache/src/geometry.rs:
crates/cache/src/indexing.rs:
crates/cache/src/mshr.rs:
crates/cache/src/replacement.rs:
