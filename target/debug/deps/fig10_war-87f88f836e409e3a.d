/root/repo/target/debug/deps/fig10_war-87f88f836e409e3a.d: crates/bench/benches/fig10_war.rs

/root/repo/target/debug/deps/fig10_war-87f88f836e409e3a: crates/bench/benches/fig10_war.rs

crates/bench/benches/fig10_war.rs:
