/root/repo/target/debug/deps/swiftdir_cpu-0d87fd7aaaa103bc.d: crates/cpu/src/lib.rs crates/cpu/src/inst.rs crates/cpu/src/o3.rs crates/cpu/src/port.rs crates/cpu/src/simple.rs

/root/repo/target/debug/deps/swiftdir_cpu-0d87fd7aaaa103bc: crates/cpu/src/lib.rs crates/cpu/src/inst.rs crates/cpu/src/o3.rs crates/cpu/src/port.rs crates/cpu/src/simple.rs

crates/cpu/src/lib.rs:
crates/cpu/src/inst.rs:
crates/cpu/src/o3.rs:
crates/cpu/src/port.rs:
crates/cpu/src/simple.rs:
