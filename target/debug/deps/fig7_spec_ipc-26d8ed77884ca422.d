/root/repo/target/debug/deps/fig7_spec_ipc-26d8ed77884ca422.d: crates/bench/benches/fig7_spec_ipc.rs

/root/repo/target/debug/deps/fig7_spec_ipc-26d8ed77884ca422: crates/bench/benches/fig7_spec_ipc.rs

crates/bench/benches/fig7_spec_ipc.rs:
