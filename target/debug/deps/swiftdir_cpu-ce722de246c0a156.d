/root/repo/target/debug/deps/swiftdir_cpu-ce722de246c0a156.d: crates/cpu/src/lib.rs crates/cpu/src/inst.rs crates/cpu/src/o3.rs crates/cpu/src/port.rs crates/cpu/src/simple.rs

/root/repo/target/debug/deps/libswiftdir_cpu-ce722de246c0a156.rlib: crates/cpu/src/lib.rs crates/cpu/src/inst.rs crates/cpu/src/o3.rs crates/cpu/src/port.rs crates/cpu/src/simple.rs

/root/repo/target/debug/deps/libswiftdir_cpu-ce722de246c0a156.rmeta: crates/cpu/src/lib.rs crates/cpu/src/inst.rs crates/cpu/src/o3.rs crates/cpu/src/port.rs crates/cpu/src/simple.rs

crates/cpu/src/lib.rs:
crates/cpu/src/inst.rs:
crates/cpu/src/o3.rs:
crates/cpu/src/port.rs:
crates/cpu/src/simple.rs:
