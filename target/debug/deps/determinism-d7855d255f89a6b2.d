/root/repo/target/debug/deps/determinism-d7855d255f89a6b2.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-d7855d255f89a6b2: tests/determinism.rs

tests/determinism.rs:
