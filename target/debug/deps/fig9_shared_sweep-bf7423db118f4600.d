/root/repo/target/debug/deps/fig9_shared_sweep-bf7423db118f4600.d: crates/bench/benches/fig9_shared_sweep.rs

/root/repo/target/debug/deps/fig9_shared_sweep-bf7423db118f4600: crates/bench/benches/fig9_shared_sweep.rs

crates/bench/benches/fig9_shared_sweep.rs:
