/root/repo/target/debug/deps/table4_features-b5e881baccb23b17.d: crates/bench/benches/table4_features.rs

/root/repo/target/debug/deps/table4_features-b5e881baccb23b17: crates/bench/benches/table4_features.rs

crates/bench/benches/table4_features.rs:
