/root/repo/target/debug/deps/security_channel-ae2993c58586086d.d: crates/bench/benches/security_channel.rs

/root/repo/target/debug/deps/security_channel-ae2993c58586086d: crates/bench/benches/security_channel.rs

crates/bench/benches/security_channel.rs:
