/root/repo/target/debug/deps/coherence_properties-73e05b9cefc87485.d: tests/coherence_properties.rs

/root/repo/target/debug/deps/coherence_properties-73e05b9cefc87485: tests/coherence_properties.rs

tests/coherence_properties.rs:
