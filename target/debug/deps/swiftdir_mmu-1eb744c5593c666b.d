/root/repo/target/debug/deps/swiftdir_mmu-1eb744c5593c666b.d: crates/mmu/src/lib.rs crates/mmu/src/addr.rs crates/mmu/src/ksm.rs crates/mmu/src/manager.rs crates/mmu/src/page_table.rs crates/mmu/src/phys.rs crates/mmu/src/prot.rs crates/mmu/src/pte.rs crates/mmu/src/shlib.rs crates/mmu/src/space.rs crates/mmu/src/tlb.rs crates/mmu/src/vma.rs

/root/repo/target/debug/deps/swiftdir_mmu-1eb744c5593c666b: crates/mmu/src/lib.rs crates/mmu/src/addr.rs crates/mmu/src/ksm.rs crates/mmu/src/manager.rs crates/mmu/src/page_table.rs crates/mmu/src/phys.rs crates/mmu/src/prot.rs crates/mmu/src/pte.rs crates/mmu/src/shlib.rs crates/mmu/src/space.rs crates/mmu/src/tlb.rs crates/mmu/src/vma.rs

crates/mmu/src/lib.rs:
crates/mmu/src/addr.rs:
crates/mmu/src/ksm.rs:
crates/mmu/src/manager.rs:
crates/mmu/src/page_table.rs:
crates/mmu/src/phys.rs:
crates/mmu/src/prot.rs:
crates/mmu/src/pte.rs:
crates/mmu/src/shlib.rs:
crates/mmu/src/space.rs:
crates/mmu/src/tlb.rs:
crates/mmu/src/vma.rs:
