/root/repo/target/debug/deps/swiftdir-f9e07935d6b4c11e.d: src/lib.rs

/root/repo/target/debug/deps/swiftdir-f9e07935d6b4c11e: src/lib.rs

src/lib.rs:
