/root/repo/target/debug/deps/fig10_war-eb5d1032471d70f0.d: crates/bench/benches/fig10_war.rs

/root/repo/target/debug/deps/fig10_war-eb5d1032471d70f0: crates/bench/benches/fig10_war.rs

crates/bench/benches/fig10_war.rs:
