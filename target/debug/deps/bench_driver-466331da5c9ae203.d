/root/repo/target/debug/deps/bench_driver-466331da5c9ae203.d: crates/bench/src/bin/bench_driver.rs

/root/repo/target/debug/deps/bench_driver-466331da5c9ae203: crates/bench/src/bin/bench_driver.rs

crates/bench/src/bin/bench_driver.rs:
