/root/repo/target/debug/deps/swiftdir_mem-8e0e3e249d447b24.d: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/config.rs crates/mem/src/controller.rs crates/mem/src/mapping.rs

/root/repo/target/debug/deps/libswiftdir_mem-8e0e3e249d447b24.rlib: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/config.rs crates/mem/src/controller.rs crates/mem/src/mapping.rs

/root/repo/target/debug/deps/libswiftdir_mem-8e0e3e249d447b24.rmeta: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/config.rs crates/mem/src/controller.rs crates/mem/src/mapping.rs

crates/mem/src/lib.rs:
crates/mem/src/bank.rs:
crates/mem/src/config.rs:
crates/mem/src/controller.rs:
crates/mem/src/mapping.rs:
