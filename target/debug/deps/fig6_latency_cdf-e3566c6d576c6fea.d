/root/repo/target/debug/deps/fig6_latency_cdf-e3566c6d576c6fea.d: crates/bench/benches/fig6_latency_cdf.rs

/root/repo/target/debug/deps/fig6_latency_cdf-e3566c6d576c6fea: crates/bench/benches/fig6_latency_cdf.rs

crates/bench/benches/fig6_latency_cdf.rs:
