/root/repo/target/debug/deps/security-38d2779c8552609e.d: tests/security.rs

/root/repo/target/debug/deps/security-38d2779c8552609e: tests/security.rs

tests/security.rs:
