/root/repo/target/debug/deps/swiftdir_workloads-330055029c550f5e.d: crates/workloads/src/lib.rs crates/workloads/src/parsec.rs crates/workloads/src/readonly.rs crates/workloads/src/spec.rs crates/workloads/src/synth.rs crates/workloads/src/war.rs

/root/repo/target/debug/deps/libswiftdir_workloads-330055029c550f5e.rlib: crates/workloads/src/lib.rs crates/workloads/src/parsec.rs crates/workloads/src/readonly.rs crates/workloads/src/spec.rs crates/workloads/src/synth.rs crates/workloads/src/war.rs

/root/repo/target/debug/deps/libswiftdir_workloads-330055029c550f5e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/parsec.rs crates/workloads/src/readonly.rs crates/workloads/src/spec.rs crates/workloads/src/synth.rs crates/workloads/src/war.rs

crates/workloads/src/lib.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/readonly.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/synth.rs:
crates/workloads/src/war.rs:
