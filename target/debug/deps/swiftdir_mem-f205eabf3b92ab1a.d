/root/repo/target/debug/deps/swiftdir_mem-f205eabf3b92ab1a.d: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/config.rs crates/mem/src/controller.rs crates/mem/src/mapping.rs

/root/repo/target/debug/deps/swiftdir_mem-f205eabf3b92ab1a: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/config.rs crates/mem/src/controller.rs crates/mem/src/mapping.rs

crates/mem/src/lib.rs:
crates/mem/src/bank.rs:
crates/mem/src/config.rs:
crates/mem/src/controller.rs:
crates/mem/src/mapping.rs:
