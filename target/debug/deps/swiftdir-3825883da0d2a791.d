/root/repo/target/debug/deps/swiftdir-3825883da0d2a791.d: src/lib.rs

/root/repo/target/debug/deps/libswiftdir-3825883da0d2a791.rlib: src/lib.rs

/root/repo/target/debug/deps/libswiftdir-3825883da0d2a791.rmeta: src/lib.rs

src/lib.rs:
