/root/repo/target/debug/deps/swiftdir_core-3415814ae40e9531.d: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/probe.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libswiftdir_core-3415814ae40e9531.rlib: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/probe.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libswiftdir_core-3415814ae40e9531.rmeta: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/probe.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/attack.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/probe.rs:
crates/core/src/system.rs:
