/root/repo/target/debug/deps/table4_features-e22aee6c96183bca.d: crates/bench/benches/table4_features.rs

/root/repo/target/debug/deps/table4_features-e22aee6c96183bca: crates/bench/benches/table4_features.rs

crates/bench/benches/table4_features.rs:
