/root/repo/target/debug/deps/microbench-1fc2698fad66b265.d: crates/bench/benches/microbench.rs

/root/repo/target/debug/deps/microbench-1fc2698fad66b265: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
