/root/repo/target/debug/deps/fig9_shared_sweep-eca53d4f1d6843a6.d: crates/bench/benches/fig9_shared_sweep.rs

/root/repo/target/debug/deps/fig9_shared_sweep-eca53d4f1d6843a6: crates/bench/benches/fig9_shared_sweep.rs

crates/bench/benches/fig9_shared_sweep.rs:
