/root/repo/target/debug/deps/fig5_arch-cc06543e64a5ec42.d: crates/bench/benches/fig5_arch.rs

/root/repo/target/debug/deps/fig5_arch-cc06543e64a5ec42: crates/bench/benches/fig5_arch.rs

crates/bench/benches/fig5_arch.rs:
