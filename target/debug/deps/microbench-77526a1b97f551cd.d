/root/repo/target/debug/deps/microbench-77526a1b97f551cd.d: crates/bench/benches/microbench.rs

/root/repo/target/debug/deps/microbench-77526a1b97f551cd: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
