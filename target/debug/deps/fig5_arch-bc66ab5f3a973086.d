/root/repo/target/debug/deps/fig5_arch-bc66ab5f3a973086.d: crates/bench/benches/fig5_arch.rs

/root/repo/target/debug/deps/fig5_arch-bc66ab5f3a973086: crates/bench/benches/fig5_arch.rs

crates/bench/benches/fig5_arch.rs:
