/root/repo/target/debug/deps/swiftdir_coherence-c15ec7934b1a919b.d: crates/coherence/src/lib.rs crates/coherence/src/config.rs crates/coherence/src/hierarchy.rs crates/coherence/src/msg.rs crates/coherence/src/protocol.rs crates/coherence/src/state.rs

/root/repo/target/debug/deps/swiftdir_coherence-c15ec7934b1a919b: crates/coherence/src/lib.rs crates/coherence/src/config.rs crates/coherence/src/hierarchy.rs crates/coherence/src/msg.rs crates/coherence/src/protocol.rs crates/coherence/src/state.rs

crates/coherence/src/lib.rs:
crates/coherence/src/config.rs:
crates/coherence/src/hierarchy.rs:
crates/coherence/src/msg.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/state.rs:
