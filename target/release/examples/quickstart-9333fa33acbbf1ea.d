/root/repo/target/release/examples/quickstart-9333fa33acbbf1ea.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9333fa33acbbf1ea: examples/quickstart.rs

examples/quickstart.rs:
