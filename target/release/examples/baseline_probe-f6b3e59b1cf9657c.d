/root/repo/target/release/examples/baseline_probe-f6b3e59b1cf9657c.d: examples/baseline_probe.rs

/root/repo/target/release/examples/baseline_probe-f6b3e59b1cf9657c: examples/baseline_probe.rs

examples/baseline_probe.rs:
