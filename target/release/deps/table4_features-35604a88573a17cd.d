/root/repo/target/release/deps/table4_features-35604a88573a17cd.d: crates/bench/benches/table4_features.rs

/root/repo/target/release/deps/table4_features-35604a88573a17cd: crates/bench/benches/table4_features.rs

crates/bench/benches/table4_features.rs:
