/root/repo/target/release/deps/swiftdir_core-ed609e642da81669.d: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/probe.rs crates/core/src/system.rs

/root/repo/target/release/deps/libswiftdir_core-ed609e642da81669.rlib: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/probe.rs crates/core/src/system.rs

/root/repo/target/release/deps/libswiftdir_core-ed609e642da81669.rmeta: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/probe.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/attack.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/probe.rs:
crates/core/src/system.rs:
