/root/repo/target/release/deps/microbench-032047a57f613b93.d: crates/bench/benches/microbench.rs

/root/repo/target/release/deps/microbench-032047a57f613b93: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
