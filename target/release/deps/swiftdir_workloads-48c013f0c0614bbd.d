/root/repo/target/release/deps/swiftdir_workloads-48c013f0c0614bbd.d: crates/workloads/src/lib.rs crates/workloads/src/parsec.rs crates/workloads/src/readonly.rs crates/workloads/src/spec.rs crates/workloads/src/synth.rs crates/workloads/src/war.rs

/root/repo/target/release/deps/libswiftdir_workloads-48c013f0c0614bbd.rlib: crates/workloads/src/lib.rs crates/workloads/src/parsec.rs crates/workloads/src/readonly.rs crates/workloads/src/spec.rs crates/workloads/src/synth.rs crates/workloads/src/war.rs

/root/repo/target/release/deps/libswiftdir_workloads-48c013f0c0614bbd.rmeta: crates/workloads/src/lib.rs crates/workloads/src/parsec.rs crates/workloads/src/readonly.rs crates/workloads/src/spec.rs crates/workloads/src/synth.rs crates/workloads/src/war.rs

crates/workloads/src/lib.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/readonly.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/synth.rs:
crates/workloads/src/war.rs:
