/root/repo/target/release/deps/bench_driver-ad3f625e2b6950dd.d: crates/bench/src/bin/bench_driver.rs

/root/repo/target/release/deps/bench_driver-ad3f625e2b6950dd: crates/bench/src/bin/bench_driver.rs

crates/bench/src/bin/bench_driver.rs:
