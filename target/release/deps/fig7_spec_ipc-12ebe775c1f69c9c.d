/root/repo/target/release/deps/fig7_spec_ipc-12ebe775c1f69c9c.d: crates/bench/benches/fig7_spec_ipc.rs

/root/repo/target/release/deps/fig7_spec_ipc-12ebe775c1f69c9c: crates/bench/benches/fig7_spec_ipc.rs

crates/bench/benches/fig7_spec_ipc.rs:
