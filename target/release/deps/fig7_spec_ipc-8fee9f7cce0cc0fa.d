/root/repo/target/release/deps/fig7_spec_ipc-8fee9f7cce0cc0fa.d: crates/bench/benches/fig7_spec_ipc.rs

/root/repo/target/release/deps/fig7_spec_ipc-8fee9f7cce0cc0fa: crates/bench/benches/fig7_spec_ipc.rs

crates/bench/benches/fig7_spec_ipc.rs:
