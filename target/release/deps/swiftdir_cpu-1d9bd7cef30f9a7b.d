/root/repo/target/release/deps/swiftdir_cpu-1d9bd7cef30f9a7b.d: crates/cpu/src/lib.rs crates/cpu/src/inst.rs crates/cpu/src/o3.rs crates/cpu/src/port.rs crates/cpu/src/simple.rs

/root/repo/target/release/deps/libswiftdir_cpu-1d9bd7cef30f9a7b.rlib: crates/cpu/src/lib.rs crates/cpu/src/inst.rs crates/cpu/src/o3.rs crates/cpu/src/port.rs crates/cpu/src/simple.rs

/root/repo/target/release/deps/libswiftdir_cpu-1d9bd7cef30f9a7b.rmeta: crates/cpu/src/lib.rs crates/cpu/src/inst.rs crates/cpu/src/o3.rs crates/cpu/src/port.rs crates/cpu/src/simple.rs

crates/cpu/src/lib.rs:
crates/cpu/src/inst.rs:
crates/cpu/src/o3.rs:
crates/cpu/src/port.rs:
crates/cpu/src/simple.rs:
