/root/repo/target/release/deps/fig5_arch-09dbe2dcc713e1a1.d: crates/bench/benches/fig5_arch.rs

/root/repo/target/release/deps/fig5_arch-09dbe2dcc713e1a1: crates/bench/benches/fig5_arch.rs

crates/bench/benches/fig5_arch.rs:
