/root/repo/target/release/deps/swiftdir_coherence-6591b05fcc4e4aa7.d: crates/coherence/src/lib.rs crates/coherence/src/config.rs crates/coherence/src/hierarchy.rs crates/coherence/src/msg.rs crates/coherence/src/protocol.rs crates/coherence/src/state.rs

/root/repo/target/release/deps/libswiftdir_coherence-6591b05fcc4e4aa7.rlib: crates/coherence/src/lib.rs crates/coherence/src/config.rs crates/coherence/src/hierarchy.rs crates/coherence/src/msg.rs crates/coherence/src/protocol.rs crates/coherence/src/state.rs

/root/repo/target/release/deps/libswiftdir_coherence-6591b05fcc4e4aa7.rmeta: crates/coherence/src/lib.rs crates/coherence/src/config.rs crates/coherence/src/hierarchy.rs crates/coherence/src/msg.rs crates/coherence/src/protocol.rs crates/coherence/src/state.rs

crates/coherence/src/lib.rs:
crates/coherence/src/config.rs:
crates/coherence/src/hierarchy.rs:
crates/coherence/src/msg.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/state.rs:
