/root/repo/target/release/deps/swiftdir_cache-c117cdf4990d83b5.d: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/geometry.rs crates/cache/src/indexing.rs crates/cache/src/mshr.rs crates/cache/src/replacement.rs

/root/repo/target/release/deps/libswiftdir_cache-c117cdf4990d83b5.rlib: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/geometry.rs crates/cache/src/indexing.rs crates/cache/src/mshr.rs crates/cache/src/replacement.rs

/root/repo/target/release/deps/libswiftdir_cache-c117cdf4990d83b5.rmeta: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/geometry.rs crates/cache/src/indexing.rs crates/cache/src/mshr.rs crates/cache/src/replacement.rs

crates/cache/src/lib.rs:
crates/cache/src/array.rs:
crates/cache/src/geometry.rs:
crates/cache/src/indexing.rs:
crates/cache/src/mshr.rs:
crates/cache/src/replacement.rs:
