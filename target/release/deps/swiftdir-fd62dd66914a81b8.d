/root/repo/target/release/deps/swiftdir-fd62dd66914a81b8.d: src/lib.rs

/root/repo/target/release/deps/libswiftdir-fd62dd66914a81b8.rlib: src/lib.rs

/root/repo/target/release/deps/libswiftdir-fd62dd66914a81b8.rmeta: src/lib.rs

src/lib.rs:
