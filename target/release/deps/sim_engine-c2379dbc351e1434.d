/root/repo/target/release/deps/sim_engine-c2379dbc351e1434.d: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/trace.rs

/root/repo/target/release/deps/libsim_engine-c2379dbc351e1434.rlib: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/trace.rs

/root/repo/target/release/deps/libsim_engine-c2379dbc351e1434.rmeta: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/trace.rs

crates/engine/src/lib.rs:
crates/engine/src/cycle.rs:
crates/engine/src/fxhash.rs:
crates/engine/src/queue.rs:
crates/engine/src/rng.rs:
crates/engine/src/stats.rs:
crates/engine/src/trace.rs:
