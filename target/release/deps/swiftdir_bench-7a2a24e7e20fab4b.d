/root/repo/target/release/deps/swiftdir_bench-7a2a24e7e20fab4b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libswiftdir_bench-7a2a24e7e20fab4b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libswiftdir_bench-7a2a24e7e20fab4b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
