/root/repo/target/release/deps/swiftdir_mem-e0dc3b21055d51f6.d: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/config.rs crates/mem/src/controller.rs crates/mem/src/mapping.rs

/root/repo/target/release/deps/libswiftdir_mem-e0dc3b21055d51f6.rlib: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/config.rs crates/mem/src/controller.rs crates/mem/src/mapping.rs

/root/repo/target/release/deps/libswiftdir_mem-e0dc3b21055d51f6.rmeta: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/config.rs crates/mem/src/controller.rs crates/mem/src/mapping.rs

crates/mem/src/lib.rs:
crates/mem/src/bank.rs:
crates/mem/src/config.rs:
crates/mem/src/controller.rs:
crates/mem/src/mapping.rs:
