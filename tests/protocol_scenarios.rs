//! Integration tests reproducing the paper's protocol figures step by
//! step: Figure 1 (E vs S request handling), Figures 2–3 (the E→M
//! transition in MESI vs S-MESI), Figure 4 (all five SwiftDir scenarios),
//! and Table IV (the qualitative feature matrix).

use sim_engine::Cycle;
use swiftdir::coherence::{CoreRequest, Hierarchy, HierarchyConfig, ServedFrom};
use swiftdir::prelude::*;

const X: PhysAddr = PhysAddr(0x4_0000);

fn hier(p: ProtocolKind) -> Hierarchy {
    Hierarchy::new(HierarchyConfig::table_v(4, p))
}

// --- Figure 1: handling of coherence requests for E- and S-state data ----

#[test]
fn figure1a_e_state_request_forwarded_to_owner() {
    let mut h = hier(ProtocolKind::Mesi);
    // Core B (1) loads X: exclusive.
    h.issue(Cycle(0), 1, CoreRequest::load(X));
    h.run_until_idle();
    assert_eq!(h.llc_state(X), LlcState::E);
    // Core A (0) requests X: the directory forwards to core B (steps 1-3).
    h.issue(Cycle(1000), 0, CoreRequest::load(X));
    let done = h.run_until_idle();
    assert_eq!(done[0].served_from, ServedFrom::RemoteL1);
    assert!(h.stats().event(CoherenceEvent::FwdGets) >= 1);
    assert!(h.stats().event(CoherenceEvent::DataFromOwner) >= 1);
}

#[test]
fn figure1b_s_state_request_served_by_llc() {
    let mut h = hier(ProtocolKind::Mesi);
    // Cores B and C load X so it is S everywhere.
    h.issue(Cycle(0), 1, CoreRequest::load(X));
    h.run_until_idle();
    h.issue(Cycle(1000), 2, CoreRequest::load(X));
    h.run_until_idle();
    assert_eq!(h.llc_state(X), LlcState::S);
    let fwd_before = h.stats().event(CoherenceEvent::FwdGets);
    // Core A requests X: LLC answers directly (steps 1-2).
    h.issue(Cycle(2000), 0, CoreRequest::load(X));
    let done = h.run_until_idle();
    assert_eq!(done[0].served_from, ServedFrom::Llc);
    assert_eq!(h.stats().event(CoherenceEvent::FwdGets), fwd_before);
}

// --- Figures 2-3: the E→M transition -------------------------------------

#[test]
fn figure3a_mesi_silent_upgrade_no_traffic() {
    let mut h = hier(ProtocolKind::Mesi);
    h.issue(Cycle(0), 0, CoreRequest::load(X));
    h.run_until_idle();
    let events_before: u64 = CoherenceEvent::ALL
        .iter()
        .map(|&e| h.stats().event(e))
        .sum();
    h.issue(Cycle(1000), 0, CoreRequest::store(X));
    let done = h.run_until_idle();
    let events_after: u64 = CoherenceEvent::ALL
        .iter()
        .map(|&e| h.stats().event(e))
        .sum();
    // Only the Store core-event itself; zero coherence messages.
    assert_eq!(events_after - events_before, 1, "silent upgrade is silent");
    assert_eq!(done[0].latency(), Cycle(1));
    assert_eq!(
        h.llc_state(X),
        LlcState::E,
        "LLC state stays E (stale view)"
    );
}

#[test]
fn figure2_smesi_explicit_upgrade_handshake() {
    let mut h = hier(ProtocolKind::SMesi);
    h.issue(Cycle(0), 0, CoreRequest::load(X));
    h.run_until_idle();
    h.issue(Cycle(1000), 0, CoreRequest::store(X));
    let done = h.run_until_idle();
    // Steps 2a/3a of Fig. 2: Upgrade then ACK; the LLC moves E→M (3b).
    assert_eq!(h.stats().event(CoherenceEvent::Upgrade), 1);
    assert_eq!(h.llc_state(X), LlcState::M, "M synchronized to the LLC");
    assert_eq!(done[0].latency(), Cycle(17), "a full L1↔LLC round trip");
}

// --- Figure 4: the five SwiftDir scenarios --------------------------------

#[test]
fn figure4a_initial_load_of_wp_data_is_i_to_s() {
    let mut h = hier(ProtocolKind::SwiftDir);
    h.issue(Cycle(0), 0, CoreRequest::load(X).write_protected());
    let done = h.run_until_idle();
    assert_eq!(h.stats().event(CoherenceEvent::GetsWp), 1);
    assert_eq!(h.stats().event(CoherenceEvent::Fetch), 1, "memory fetch");
    assert_eq!(h.stats().event(CoherenceEvent::DataExclusive), 0);
    assert_eq!(h.l1_state(0, X), L1State::S, "no exclusivity attached");
    assert_eq!(h.llc_state(X), LlcState::S);
    assert_eq!(done[0].served_from, ServedFrom::Memory);
}

#[test]
fn figure4b_remote_load_after_initial_wp_load_served_from_llc() {
    let mut h = hier(ProtocolKind::SwiftDir);
    h.issue(Cycle(0), 0, CoreRequest::load(X).write_protected());
    h.run_until_idle();
    let before_b_state = h.l1_state(0, X);
    h.issue(Cycle(1000), 1, CoreRequest::load(X).write_protected());
    let done = h.run_until_idle();
    assert_eq!(done[0].served_from, ServedFrom::Llc);
    assert_eq!(done[0].latency(), Cycle(17));
    // "neither state transition on ... Core B's L1 nor communication".
    assert_eq!(h.l1_state(0, X), before_b_state);
    assert_eq!(h.stats().event(CoherenceEvent::FwdGets), 0);
}

#[test]
fn figure4c_initial_load_of_non_wp_data_is_exclusive() {
    let mut h = hier(ProtocolKind::SwiftDir);
    h.issue(Cycle(0), 0, CoreRequest::load(X));
    h.run_until_idle();
    assert_eq!(h.stats().event(CoherenceEvent::Gets), 1);
    assert_eq!(h.stats().event(CoherenceEvent::DataExclusive), 1);
    assert_eq!(h.stats().event(CoherenceEvent::ExclusiveUnblock), 1);
    assert_eq!(h.l1_state(0, X), L1State::E);
}

#[test]
fn figure4d_store_after_initial_non_wp_load_is_silent() {
    let mut h = hier(ProtocolKind::SwiftDir);
    h.issue(Cycle(0), 0, CoreRequest::load(X));
    h.run_until_idle();
    h.issue(Cycle(1000), 0, CoreRequest::store(X));
    let done = h.run_until_idle();
    assert_eq!(done[0].latency(), Cycle(1), "silent upgrade preserved");
    assert_eq!(h.l1_state(0, X), L1State::M);
    assert_eq!(h.stats().event(CoherenceEvent::Upgrade), 0);
}

#[test]
fn figure4e_remote_load_after_non_wp_load_forwarded() {
    let mut h = hier(ProtocolKind::SwiftDir);
    h.issue(Cycle(0), 1, CoreRequest::load(X));
    h.run_until_idle();
    h.issue(Cycle(1000), 0, CoreRequest::load(X));
    let done = h.run_until_idle();
    assert_eq!(done[0].served_from, ServedFrom::RemoteL1);
    assert!(h.stats().event(CoherenceEvent::FwdGets) >= 1);
    assert!(h.stats().event(CoherenceEvent::WbDataClean) >= 1);
    // Everyone converges to S.
    assert_eq!(h.l1_state(0, X), L1State::S);
    assert_eq!(h.l1_state(1, X), L1State::S);
    assert_eq!(h.llc_state(X), LlcState::S);
}

// --- Table IV: feature matrix ---------------------------------------------

/// Measures the two Table IV features for one protocol:
/// (E-state shared data served from the LLC, silent E→M on the L1).
fn table4_row(p: ProtocolKind) -> (bool, bool) {
    // Feature 1: remote load of initially-loaded *shared* (WP) data —
    // does it avoid owner forwarding?
    let mut h = hier(p);
    h.issue(Cycle(0), 1, CoreRequest::load(X).write_protected());
    h.run_until_idle();
    h.issue(Cycle(1000), 0, CoreRequest::load(X).write_protected());
    let done = h.run_until_idle();
    let shared_from_llc = done[0].served_from != ServedFrom::RemoteL1;

    // Feature 2: store to an exclusively-held unshared line — silent?
    let mut h = hier(p);
    h.issue(Cycle(0), 0, CoreRequest::load(X));
    h.run_until_idle();
    h.issue(Cycle(1000), 0, CoreRequest::store(X));
    let done = h.run_until_idle();
    let silent = done[0].latency() == Cycle(1);
    (shared_from_llc, silent)
}

#[test]
fn table4_feature_matrix() {
    assert_eq!(table4_row(ProtocolKind::Mesi), (false, true), "MESI");
    assert_eq!(table4_row(ProtocolKind::SMesi), (true, false), "S-MESI");
    assert_eq!(
        table4_row(ProtocolKind::SwiftDir),
        (true, true),
        "SwiftDir handles both efficiently"
    );
}
