//! Asserts that the default configuration reproduces paper Table V.

use swiftdir::cpu::O3Config;
use swiftdir::mem::DramConfig;
use swiftdir::prelude::*;

#[test]
fn processor_parameters() {
    // 1~4 cores, 3 GHz, OoO, 192-entry ROB, 32-entry LQ & SQ, width 8.
    let o3 = O3Config::table_v();
    assert_eq!(o3.rob, 192);
    assert_eq!(o3.lq, 32);
    assert_eq!(o3.sq, 32);
    assert_eq!(o3.width, 8);
    let cfg = SystemConfig::default();
    assert!(cfg.cores >= 1 && cfg.cores <= 4);
    assert_eq!(cfg.cpu_model, CpuModel::DerivO3);
}

#[test]
fn cache_parameters() {
    // L1: 64-byte blocks, 4-way, 32 KB, 1-cycle RT.
    let l1 = CacheGeometry::table_v_l1();
    assert_eq!(l1.block_bytes(), 64);
    assert_eq!(l1.associativity(), 4);
    assert_eq!(l1.size_bytes(), 32 * 1024);
    // L2: 64-byte blocks, 16-way, 2 MB per core; 16-cycle RT.
    let l2 = CacheGeometry::table_v_l2_bank();
    assert_eq!(l2.block_bytes(), 64);
    assert_eq!(l2.associativity(), 16);
    assert_eq!(l2.size_bytes(), 2 * 1024 * 1024);
    // Round-trip calibration: 1-cycle L1, 16-cycle L2 (1+7+2+7-1 = 16
    // beyond the L1 probe).
    let hier = SystemConfig::default().hierarchy();
    assert_eq!(hier.latency.l1_lookup, 1);
    assert_eq!(hier.latency.llc_load_latency() - hier.latency.l1_lookup, 16);
}

#[test]
fn tlb_parameters() {
    // 64-entry ITB & DTB, fully associative (we model the DTB; it is a
    // single fully-associative structure).
    assert_eq!(SystemConfig::default().tlb_entries, 64);
}

#[test]
fn memory_parameters() {
    // DDR3_1600_8x8, 1 channel, 2 ranks, 8 banks/rank, 1 KB row buffers,
    // tCAS-tRCD-tRP = 11-11-11 (expressed in CPU cycles: 11 x 3.75 ≈ 41).
    let dram = DramConfig::ddr3_1600_8x8();
    assert_eq!(dram.channels, 1);
    assert_eq!(dram.ranks, 2);
    assert_eq!(dram.banks_per_rank, 8);
    assert_eq!(dram.row_buffer_bytes, 1024);
    assert_eq!(dram.t_cas, 41);
    assert_eq!(dram.t_rcd, 41);
    assert_eq!(dram.t_rp, 41);
}

#[test]
fn baseline_protocol_is_directory_mesi() {
    assert_eq!(SystemConfig::default().protocol, ProtocolKind::Mesi);
}
