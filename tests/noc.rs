//! Mesh-NoC and directory-bank integration tests: per-link FIFO order
//! under jitter, the bank mapping as a partition of the block space,
//! hop-latency accounting, and reproducibility of a jittered sharded
//! machine. (Tick-thread invariance of the parallel bank stepper lives
//! in `tests/determinism.rs`.)

use swiftdir::coherence::{CoreRequest, Hierarchy, HierarchyConfig, ProtocolKind};
use swiftdir::engine::{Cycle, LinkJitter, MeshEndpoint, MeshTopology};
use swiftdir::mmu::PhysAddr;

/// A 64-core SwiftDir machine sharded over 8 directory banks.
fn sharded_64() -> Hierarchy {
    Hierarchy::new(HierarchyConfig::table_v(64, ProtocolKind::SwiftDir).with_banks(8))
}

/// A contended workload touching every bank from every core: strided
/// blocks with cross-core sharing and a store/WP-load mix.
fn drive(h: &mut Hierarchy, cores: usize, rounds: u64) -> usize {
    let mut t = Cycle(0);
    let mut n = 0;
    let stride = h.config().bank_geometry().size_bytes() / 8;
    for round in 0..rounds {
        for core in 0..cores {
            let addr = PhysAddr(0x8_0000 + (round % 32) * stride + (core as u64 % 4) * 64);
            let req = match (round + core as u64) % 4 {
                0 => CoreRequest::store(addr),
                1 => CoreRequest::load(addr).write_protected(),
                _ => CoreRequest::load(addr),
            };
            h.issue(t, core, req);
            n += 1;
            t += Cycle(3);
        }
    }
    n
}

#[test]
fn mesh_links_preserve_fifo_order_under_jitter() {
    // Messages on one core→bank mesh link must deliver in send order no
    // matter what per-hop jitter draws — the FIFO clamp is per link, and
    // distinct links (other banks, the reverse direction) are
    // independent streams that must not interfere with it.
    let mesh = MeshTopology::new(64, 8, 1);
    let mut jitter = LinkJitter::new(0xfeed, 9);
    let links: Vec<(u64, u64)> = (0..8)
        .map(|b| {
            (
                MeshTopology::link_code(MeshEndpoint::Core(5)),
                MeshTopology::link_code(MeshEndpoint::Bank(b)),
            )
        })
        .collect();
    let mut last = vec![Cycle(0); links.len()];
    for step in 0..200u64 {
        for (i, &link) in links.iter().enumerate() {
            let base = 7 + mesh.route_extra(MeshEndpoint::Core(5), MeshEndpoint::Bank(i));
            let at = jitter.delay(link, Cycle(step * 2), base);
            assert!(
                at >= last[i],
                "link {i} reordered: sent at {} delivered {at} after a \
                 message delivered {}",
                step * 2,
                last[i]
            );
            last[i] = at;
        }
    }
}

#[test]
fn bank_mapping_partitions_the_block_space() {
    // Every block belongs to exactly one bank, every bank owns at least
    // one set-group, and a bank's share of blocks reaches every set of
    // its (1/banks-sized) array: the sharding loses no capacity.
    let cfg = HierarchyConfig::table_v(64, ProtocolKind::SwiftDir).with_banks(8);
    let geom = cfg.bank_geometry();
    assert_eq!(
        geom.size_bytes() * 8,
        cfg.llc_bank_geometry.size_bytes(),
        "banks split the aggregate LLC capacity exactly"
    );
    let group = geom.block_bytes() * geom.num_sets();
    let mut owned = [0u64; 8];
    for g in 0..64u64 {
        let base = g * group;
        let bank = cfg.bank_of(base);
        owned[bank] += 1;
        // A set-group never straddles banks.
        assert_eq!(cfg.bank_of(base + group - 64), bank);
    }
    assert!(
        owned.iter().all(|&n| n == 8),
        "set-groups must round-robin evenly over banks: {owned:?}"
    );
}

#[test]
fn mesh_hop_latency_slows_remote_banks_only() {
    // With a nonzero per-hop cost, an access to a bank placed further
    // from the issuing core pays more NoC cycles than one placed nearer;
    // with the default zero hop cost the two are identical (the
    // calibrated crossbar anchors).
    let probe = |hop: u64, addr: u64| {
        let mut h = Hierarchy::new(
            HierarchyConfig::table_v(64, ProtocolKind::SwiftDir)
                .with_banks(8)
                .with_mesh_hop_latency(hop),
        );
        h.issue(Cycle(0), 0, CoreRequest::load(PhysAddr(addr)));
        let done = h.run_until_idle();
        assert_eq!(done.len(), 1);
        done[0].latency().get()
    };
    let group = HierarchyConfig::table_v(64, ProtocolKind::SwiftDir)
        .with_banks(8)
        .bank_geometry();
    let far_addr = 7 * group.block_bytes() * group.num_sets(); // bank 7
    assert_eq!(
        probe(0, 0),
        probe(0, far_addr),
        "zero hop cost models the calibrated crossbar"
    );
    assert!(
        probe(2, far_addr) > probe(2, 0),
        "a further bank must cost more NoC hops"
    );
}

#[test]
fn sharded_hierarchy_is_deterministic_under_jitter() {
    // Same seed, same sharded machine, jittered links: completions must
    // be bit-identical across runs (per-link FIFO + deterministic RNG).
    let run = || {
        let mut h = sharded_64();
        h.set_jitter(0xabcd, 6);
        drive(&mut h, 64, 12);
        h.run_until_idle()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "jittered sharded run is not reproducible");
    assert!(!a.is_empty());
}
