//! End-to-end observability: a traced run must emit a valid JSONL event
//! stream, a valid Chrome `trace_event` export, and a metrics snapshot
//! whose numbers reconcile with the typed [`RunStats`] — and tracing
//! must never change the simulation itself.

use std::path::PathBuf;

use swiftdir::coherence::{CoherenceEvent, ProtocolKind, RequestClass};
use swiftdir::core::{RunStats, System, SystemConfig, TraceConfig};
use swiftdir::cpu::CpuModel;
use swiftdir::engine::Json;
use swiftdir::workloads::{SpecBenchmark, SynthStream, WorkloadRegions};

const INSTRUCTIONS: u64 = 4_000;

fn run_point(protocol: ProtocolKind, trace: TraceConfig) -> RunStats {
    let mut sys = System::with_trace(
        SystemConfig::builder()
            .cores(1)
            .protocol(protocol)
            .cpu_model(CpuModel::DerivO3)
            .build(),
        trace,
    );
    let pid = sys.spawn_process();
    let bench = SpecBenchmark::ALL[0];
    let params = bench.params(INSTRUCTIONS);
    let regions = WorkloadRegions::map(&mut sys, pid, &params);
    let stream = SynthStream::new(params, regions, bench.seed());
    sys.run_thread_stream(pid, 0, stream);
    sys.run_to_completion()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("swiftdir_obs_tests");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

#[test]
fn traced_run_emits_valid_jsonl_chrome_and_metrics_files() {
    let base = scratch("full");
    let stats = run_point(ProtocolKind::SwiftDir, TraceConfig::to_path(&base));

    // The System claimed a sequence number, so glob for the actual
    // events file: it is <base> or <base>-<n>.
    let dir = base.parent().unwrap();
    let claimed: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("full") && n.ends_with(".jsonl"))
        })
        .collect();
    assert!(!claimed.is_empty(), "no JSONL trace written");
    let events_path = &claimed[0];
    let base_str = events_path.to_str().unwrap().trim_end_matches(".jsonl");

    // 1. JSONL: every line parses, and each object has the envelope keys.
    let jsonl = std::fs::read_to_string(events_path).unwrap();
    let mut issues = 0u64;
    let mut completes = 0u64;
    let mut lines = 0u64;
    for line in jsonl.lines() {
        let ev = Json::parse(line).expect("every trace line is valid JSON");
        assert!(ev.get("t").and_then(Json::as_u64).is_some(), "missing t");
        assert!(ev.get("ev").and_then(Json::as_str).is_some(), "missing ev");
        match ev.get("ev").and_then(Json::as_str) {
            Some("issue") => issues += 1,
            Some("complete") => completes += 1,
            _ => {}
        }
        lines += 1;
    }
    assert!(lines > 100, "a real run produces many events, got {lines}");
    assert!(issues > 0, "no issue events traced");
    assert_eq!(
        completes,
        stats.loads() + stats.stores(),
        "every issued request completes exactly once in the trace"
    );

    // 2. Chrome export: one valid JSON array of objects with ph/ts/pid.
    let chrome = std::fs::read_to_string(format!("{base_str}.chrome.json")).unwrap();
    let arr = Json::parse(&chrome).expect("chrome export is valid JSON");
    let items = arr.as_array().expect("chrome export is an array");
    assert_eq!(
        items.len() as u64,
        lines,
        "one chrome event per trace event"
    );
    for item in items {
        assert!(item.get("ph").and_then(Json::as_str).is_some());
        assert!(item.get("ts").is_some());
        assert!(item.get("pid").is_some());
    }
    assert!(
        items
            .iter()
            .any(|i| i.get("ph").and_then(Json::as_str) == Some("X")),
        "completions export as duration events"
    );

    // 3. Metrics snapshot: parses, carries the schema tag, and matches
    //    RunStats::snapshot() exactly.
    let metrics = std::fs::read_to_string(format!("{base_str}.metrics.json")).unwrap();
    let snap = Json::parse(&metrics).expect("metrics snapshot is valid JSON");
    assert_eq!(
        snap.get("schema").and_then(Json::as_str),
        Some("swiftdir.run.v1")
    );
    assert_eq!(snap, stats.snapshot(), "file and in-memory snapshot agree");
}

#[test]
fn snapshot_round_trips_and_reconciles_with_typed_stats() {
    let stats = run_point(ProtocolKind::SwiftDir, TraceConfig::default());
    let snap = stats.snapshot();

    // Round trip through the serializer and parser.
    let reparsed = Json::parse(&snap.to_pretty()).expect("snapshot parses");
    assert_eq!(reparsed, snap);
    let compact = Json::parse(&snap.to_string()).expect("compact form parses");
    assert_eq!(compact, snap);

    // Scalars reconcile with the typed stats.
    assert_eq!(
        snap.get("instructions").and_then(Json::as_u64),
        Some(stats.instructions())
    );
    assert_eq!(
        snap.get("roi_cycles").and_then(Json::as_u64),
        Some(stats.roi_cycles())
    );
    assert_eq!(
        snap.get("events")
            .and_then(|e| e.get("GETS_WP"))
            .and_then(Json::as_u64),
        Some(stats.hierarchy.event(CoherenceEvent::GetsWp))
    );
    assert_eq!(
        snap.get("hierarchy")
            .and_then(|h| h.get("dispatched"))
            .and_then(Json::as_u64),
        Some(stats.hierarchy.dispatched)
    );

    // The registry section carries one latency histogram per request
    // class, and their counts sum to the number of completions.
    let metrics = snap.get("metrics").expect("metrics section");
    let mut total = 0;
    for class in RequestClass::ALL {
        let h = metrics
            .get(&format!("protocol.latency.{}", class.name()))
            .unwrap_or_else(|| panic!("latency histogram for {class} missing"));
        total += h.get("count").and_then(Json::as_u64).expect("count");
    }
    assert_eq!(
        total,
        stats.loads() + stats.stores(),
        "one latency sample per issued request"
    );

    // Transition-matrix counters reconcile with the typed matrix.
    for (from, to, n) in stats.hierarchy.protocol.l1_nonzero() {
        let name = format!("protocol.transitions.l1.{}->{}", from.name(), to.name());
        let counter = metrics
            .get(&name)
            .and_then(|c| c.get("value"))
            .and_then(Json::as_u64);
        assert_eq!(counter, Some(n), "{name} mismatch");
    }
}

#[test]
fn gets_wp_latencies_appear_under_swiftdir() {
    let stats = run_point(ProtocolKind::SwiftDir, TraceConfig::default());
    let wp = stats.hierarchy.protocol.latency(RequestClass::GetsWp);
    assert_eq!(
        wp.count(),
        stats.hierarchy.event(CoherenceEvent::GetsWp),
        "every GETS_WP request lands one latency sample"
    );
    // The workload maps read-only (shared-library-like) regions, so the
    // secure-load path is actually exercised.
    assert!(wp.count() > 0, "workload never took the GETS_WP path");
}

#[test]
fn trace_limit_caps_the_event_stream() {
    let base = scratch("capped");
    let mut cfg = TraceConfig::to_path(&base);
    cfg.limit = Some(50);
    run_point(ProtocolKind::Mesi, cfg);
    let dir = base.parent().unwrap();
    let capped: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("capped") && n.ends_with(".jsonl"))
        })
        .collect();
    assert!(!capped.is_empty());
    let lines = std::fs::read_to_string(&capped[0]).unwrap().lines().count();
    assert_eq!(lines, 50, "SWIFTDIR_TRACE_LIMIT-style cap is exact");
}
