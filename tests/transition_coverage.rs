//! Table I–III transition-coverage gate, test-suite edition.
//!
//! Every protocol has a [`CoverageSpec`] naming exactly which L1
//! (Table I) and LLC (Table II) transitions and Table III event classes
//! it may legally produce. This suite unions the transition matrices
//! from two corpora — bounded-exhaustive schedule exploration of tiny
//! contended streams, and a curated set of fuzz seeds chosen (greedily,
//! offline) to reach the rare corners (recalls, merged-store upgrades,
//! S→M replacement installs) — and requires the union to be **clean**:
//!
//! * sound — nothing observed outside the legal set;
//! * complete — every legal pair observed.
//!
//! Failures print the uncovered / illegal `(state, state)` and event
//! pairs via [`CoverageReport`]'s `Display`. The release-mode CI gate
//! (`swiftdir-explore --coverage`) runs the same check over a much
//! larger sweep; this test keeps the property in `cargo test` at debug
//! speed.

use swiftdir::coherence::{CoverageSpec, ObservedCoverage, ProtocolKind};
use swiftdir::core::diff::{contended_stream, tiny_config};
use swiftdir::core::explore::{explore, ExploreConfig};
use swiftdir::core::fuzz::{run_fuzz, FuzzConfig};

/// Fuzz seeds whose unioned 300-op runs cover every legal transition,
/// found by a greedy sweep over seeds `0..2000` per protocol.
fn curated_seeds(protocol: ProtocolKind) -> &'static [u64] {
    match protocol {
        ProtocolKind::Mesi => &[0, 21, 113, 327],
        ProtocolKind::SwiftDir => &[0, 1, 114, 167],
        ProtocolKind::SMesi => &[0, 3, 13, 89, 174, 229],
        ProtocolKind::Msi => &[0, 1, 96],
    }
}

fn observed_union(protocol: ProtocolKind) -> ObservedCoverage {
    let mut observed = ObservedCoverage::new();

    // Explorer corpus: every schedule of two tiny contended streams.
    let cfg = tiny_config(2, protocol);
    let ecfg = ExploreConfig::default();
    for seed in 0..2 {
        let stream = contended_stream(seed, 2, 2, 5, 0.3);
        let report = explore(&cfg, &stream, &ecfg);
        assert!(
            report.exhaustive_and_clean(),
            "{protocol:?} exploration of stream {seed} failed: {:?}",
            report.error
        );
        observed.merge(&report.coverage);
    }

    // Fuzz corpus: the curated seeds.
    for &seed in curated_seeds(protocol) {
        let mut fcfg = FuzzConfig::new(seed, protocol);
        fcfg.ops = 300;
        let report = run_fuzz(&fcfg);
        assert!(
            report.ok(),
            "{protocol:?} fuzz seed {seed} failed: {}",
            report.failure.unwrap()
        );
        observed.add(&report.stats);
    }
    observed
}

#[test]
fn mesi_covers_every_legal_transition() {
    assert_clean(ProtocolKind::Mesi);
}

#[test]
fn swiftdir_covers_every_legal_transition() {
    assert_clean(ProtocolKind::SwiftDir);
}

#[test]
fn smesi_covers_every_legal_transition() {
    assert_clean(ProtocolKind::SMesi);
}

#[test]
fn msi_covers_every_legal_transition() {
    assert_clean(ProtocolKind::Msi);
}

fn assert_clean(protocol: ProtocolKind) {
    let observed = observed_union(protocol);
    let report = CoverageSpec::for_protocol(protocol).check(&observed);
    assert!(
        report.is_clean(),
        "coverage gate failed — uncovered or illegal pairs:\n{report}"
    );
}

#[test]
fn gets_wp_is_swiftdir_exclusive_in_practice() {
    use swiftdir::coherence::CoherenceEvent;
    for protocol in ProtocolKind::ALL {
        let observed = observed_union(protocol);
        let n = observed.event(CoherenceEvent::GetsWp);
        if protocol == ProtocolKind::SwiftDir {
            assert!(n > 0, "SwiftDir corpus never issued GETS_WP");
        } else {
            assert_eq!(n, 0, "{protocol:?} issued GETS_WP {n} times");
        }
    }
}
