//! Regressions pinned from protocol stress fuzzing, plus direct tests
//! of the invariant checker itself.
//!
//! Every fuzzer-found bug keeps its exact failing `FuzzConfig` here so
//! the scenario replays bit-for-bit on every CI run:
//!
//! * **MSHR overflow through the upgrade path** — S→SmA and E→EmA
//!   upgrades allocated MSHR entries without the capacity check the
//!   miss path has, so a core could exceed its MSHR capacity
//!   (seed 42, MSI).
//! * **Lost store through a parked upgrade grant** — a GETX acked as an
//!   upgrade (the directory already counted the requester as owner via
//!   its still-installing E grant) completed the store without ever
//!   applying M state or the store's value to the parked line; a recall
//!   racing behind the ack then cancelled the grant with a clean InvAck
//!   and the store vanished (seed 423, S-MESI).
//!
//! The checker tests plant deliberate violations with
//! `test_force_l1_state` and assert the checker refuses them — guarding
//! against the checker silently going blind.

use sim_engine::Cycle;
use swiftdir::cache::CacheGeometry;
use swiftdir::coherence::{
    Checker, CoreRequest, Hierarchy, HierarchyConfig, L1State, ProtocolKind,
};
use swiftdir::core::fuzz::{
    minimize_outcome, run_fuzz, FuzzConfig, FuzzFailureKind, MinimizeOutcome,
};
use swiftdir::mmu::PhysAddr;

// ---------------------------------------------------------------------------
// Pinned fuzzer-found regressions
// ---------------------------------------------------------------------------

/// Seed 42 under MSI drove a core to 5 in-flight transactions against 4
/// MSHRs by issuing a store-upgrade while every MSHR held a miss.
#[test]
fn pinned_mshr_overflow_via_upgrade_path() {
    let mut cfg = FuzzConfig::new(42, ProtocolKind::Msi);
    cfg.ops = 120;
    let report = run_fuzz(&cfg);
    assert!(report.ok(), "{}", report.failure.unwrap());
    assert_eq!(report.completions, 120);
}

/// Seed 423 under S-MESI lost a store: its GETX was acked as an upgrade
/// against a grant still parked in the installing buffer, and a recall
/// racing behind the ack threw the parked line away clean.
#[test]
fn pinned_lost_store_through_parked_upgrade_grant() {
    let cfg = FuzzConfig::new(423, ProtocolKind::SMesi);
    let report = run_fuzz(&cfg);
    assert!(report.ok(), "{}", report.failure.unwrap());
    assert_eq!(report.completions, cfg.ops);
}

/// Under S-MESI an E copy legitimately coexists with LLC-S sharers (the
/// holder still has to announce its E→M upgrade); the checker once
/// flagged this as a violation. Seed 42 reproduces the constellation.
#[test]
fn pinned_smesi_e_alongside_llc_sharers_is_legal() {
    let mut cfg = FuzzConfig::new(42, ProtocolKind::SMesi);
    cfg.ops = 120;
    let report = run_fuzz(&cfg);
    assert!(report.ok(), "{}", report.failure.unwrap());
}

/// A spread of seeds across all four protocols stays clean, and
/// repeating a seed reproduces the identical completion digest.
#[test]
fn fuzz_seed_spread_is_clean_and_deterministic() {
    for protocol in [
        ProtocolKind::Msi,
        ProtocolKind::Mesi,
        ProtocolKind::SMesi,
        ProtocolKind::SwiftDir,
    ] {
        for seed in [0, 7, 181, 423, 499] {
            let mut cfg = FuzzConfig::new(seed, protocol);
            cfg.ops = 200;
            let first = run_fuzz(&cfg);
            assert!(
                first.ok(),
                "{protocol:?} seed {seed}: {}",
                first.failure.unwrap()
            );
            let second = run_fuzz(&cfg);
            assert_eq!(first.digest, second.digest, "{protocol:?} seed {seed}");
            assert_eq!(first.events, second.events, "{protocol:?} seed {seed}");
        }
    }
}

// ---------------------------------------------------------------------------
// Install retry / stall escalation
// ---------------------------------------------------------------------------

/// Deterministically drives a grant into a set whose every way is held
/// by in-flight upgrade transients: the install must retry a bounded
/// number of times, escalate to a parked stall, and be re-woken when
/// the set drains — completing every request.
#[test]
fn install_retries_escalate_to_stall_and_rewake() {
    let mut cfg = HierarchyConfig::table_v(4, ProtocolKind::Mesi);
    // One set, two ways: blocks A and B fill it completely.
    cfg.l1_geometry = CacheGeometry::new(128, 2, 64);
    // Widen the upgrade-invalidation window far past the retry budget
    // (3 retries x 8 cycles) so the parked-stall path must engage.
    cfg.latency.llc_to_l1 = 30;
    let mut h = Hierarchy::new(cfg);

    let a = PhysAddr(0);
    let b = PhysAddr(64);
    let c = PhysAddr(128);
    // Warm A and B shared between cores 0 and 1, and C into the LLC
    // via cores 2 and 3 (their L1 sets don't matter).
    h.issue(Cycle(0), 1, CoreRequest::load(a));
    h.issue(Cycle(300), 0, CoreRequest::load(a));
    h.issue(Cycle(600), 1, CoreRequest::load(b));
    h.issue(Cycle(900), 0, CoreRequest::load(b));
    h.issue(Cycle(1200), 2, CoreRequest::load(c));
    h.issue(Cycle(1500), 3, CoreRequest::load(c));
    h.run_until_idle();

    // Both of core 0's ways go SmA (upgrades wait on core 1's InvAcks)
    // while C's grant arrives and finds no stable victim.
    h.issue(Cycle(3000), 0, CoreRequest::store(a));
    h.issue(Cycle(3000), 0, CoreRequest::store(b));
    h.issue(Cycle(3000), 0, CoreRequest::load(c));
    let done = h.run_until_idle();
    assert_eq!(done.len(), 3, "all three racing requests complete");

    let metrics = &h.stats().protocol;
    assert!(
        metrics.install_retries() >= 1,
        "the blocked install must have retried"
    );
    assert!(
        metrics.install_stalls() >= 1,
        "retries must have escalated to a parked stall"
    );

    // The hierarchy quiesced consistently despite the contention.
    Checker::new().check_quiescent(&h).expect("quiescent audit");
}

// ---------------------------------------------------------------------------
// The checker catches planted violations
// ---------------------------------------------------------------------------

/// Two cores forced into M for the same block: the checker must flag
/// the SWMR violation rather than silently passing.
#[test]
fn checker_flags_planted_swmr_violation() {
    let mut h = Hierarchy::new(HierarchyConfig::table_v(2, ProtocolKind::Mesi));
    h.test_force_l1_state(0, PhysAddr(0x40), L1State::M, 1);
    h.test_force_l1_state(1, PhysAddr(0x40), L1State::M, 2);
    let err = Checker::new()
        .after_event(&h, &[])
        .expect_err("two M copies must be rejected");
    assert!(
        err.detail.contains("SWMR"),
        "unexpected detail: {}",
        err.detail
    );
}

/// A readable L1 copy with no LLC directory line behind it: the checker
/// must flag the directory as having lost the block.
#[test]
fn checker_flags_planted_directory_loss() {
    let mut h = Hierarchy::new(HierarchyConfig::table_v(2, ProtocolKind::Mesi));
    h.test_force_l1_state(0, PhysAddr(0x40), L1State::S, 0);
    let err = Checker::new()
        .after_event(&h, &[])
        .expect_err("untracked copy must be rejected");
    assert!(
        err.detail.contains("directory lost"),
        "unexpected detail: {}",
        err.detail
    );
}

// ---------------------------------------------------------------------------
// Minimizer outcomes on non-reproducing inputs
// ---------------------------------------------------------------------------

/// Regression: asking the minimizer to shrink a failure that does not
/// reproduce used to leave callers holding a "shrunk" config they then
/// unwrapped a failure out of — a panic in the fuzz bin's FAIL path.
/// The structured outcome must report `StoppedReproducing` instead,
/// carrying both the expected kind and what (if anything) was observed.
#[test]
fn minimize_on_a_clean_config_reports_stopped_reproducing() {
    // Seed 0 under SwiftDir at default scenario parameters is clean
    // (covered by `fuzz_seed_spread_is_clean_and_deterministic`).
    let cfg = FuzzConfig::new(0, ProtocolKind::SwiftDir);
    assert!(
        run_fuzz(&cfg).failure.is_none(),
        "fixture seed must be clean"
    );

    let out = minimize_outcome(&cfg, Some(FuzzFailureKind::Deadlock));
    match out {
        MinimizeOutcome::StoppedReproducing {
            config,
            expected,
            observed,
        } => {
            assert_eq!(expected, FuzzFailureKind::Deadlock);
            assert_eq!(observed, None, "clean config observed a failure");
            // The input comes back untouched — no bogus "shrinking".
            assert_eq!(config, cfg);
        }
        other => panic!("expected StoppedReproducing, got {other:?}"),
    }
}

/// Without an expected kind, a clean config is simply `Clean` — the
/// caller asked "shrink whatever fails here" and nothing does.
#[test]
fn minimize_without_expectation_reports_clean() {
    let cfg = FuzzConfig::new(0, ProtocolKind::SwiftDir);
    match minimize_outcome(&cfg, None) {
        MinimizeOutcome::Clean(c) => assert_eq!(c, cfg),
        other => panic!("expected Clean, got {other:?}"),
    }
    // And the panic-prone accessor path stays total: `config()` is
    // defined for every outcome.
    assert_eq!(minimize_outcome(&cfg, None).config(), cfg);
}
