//! Property-based tests of the coherence protocol invariants, driven by
//! random multi-core request sequences under all four protocols.
//!
//! Invariants checked after quiescing:
//! * every issued request completes (no lost/deadlocked transactions);
//! * single-writer-or-multiple-readers (SWMR): an M line on one core means
//!   no other core can read the block;
//! * L1/LLC directory agreement: a core holding E/M is the line's single
//!   holder; the LLC never claims I while a core holds data;
//! * determinism: the same request sequence produces identical statistics.

use proptest::prelude::*;
use sim_engine::Cycle;
use swiftdir::coherence::{
    CoreRequest, Hierarchy, HierarchyConfig, L1State, LlcState, ProtocolKind,
};
use swiftdir::mmu::PhysAddr;

#[derive(Debug, Clone, Copy)]
struct Op {
    core: usize,
    block: u64,
    store: bool,
    wp: bool,
    gap: u64,
}

fn op_strategy(cores: usize, blocks: u64) -> impl Strategy<Value = Op> {
    (
        0..cores,
        0..blocks,
        any::<bool>(),
        any::<bool>(),
        0u64..32,
    )
        .prop_map(|(core, block, store, wp, gap)| Op {
            core,
            block,
            // WP data is never stored to in practice (CoW redirects);
            // keep the generator faithful.
            store: store && !wp,
            wp: wp && !store,
            gap,
        })
}

fn run_ops(protocol: ProtocolKind, ops: &[Op]) -> (Hierarchy, usize) {
    let mut h = Hierarchy::new(HierarchyConfig::table_v(4, protocol));
    let mut t = Cycle(0);
    for op in ops {
        let addr = PhysAddr(0x10_0000 + op.block * 64);
        let mut req = if op.store {
            CoreRequest::store(addr)
        } else {
            CoreRequest::load(addr)
        };
        if op.wp {
            req = req.write_protected();
        }
        h.issue(t, op.core, req);
        t += Cycle(op.gap);
    }
    let completions = h.run_until_idle();
    (h, completions.len())
}

fn check_invariants(h: &Hierarchy, protocol: ProtocolKind, blocks: u64) {
    for b in 0..blocks {
        let addr = PhysAddr(0x10_0000 + b * 64);
        let states: Vec<L1State> = (0..4).map(|c| h.l1_state(c, addr)).collect();
        let writers = states.iter().filter(|s| **s == L1State::M).count();
        let readers = states.iter().filter(|s| s.load_hits()).count();
        // SWMR: a writer excludes all other readable copies.
        if writers > 0 {
            assert_eq!(writers, 1, "block {b}: multiple writers: {states:?}");
            assert_eq!(readers, 1, "block {b}: writer plus readers: {states:?}");
        }
        // E is exclusive — except under S-MESI, where the LLC serves
        // E-state lines directly (paper §II-C): the old owner keeps an
        // *advisory* E while new sharers hold S. That is safe only because
        // S-MESI has no silent upgrade — every write still asks the LLC,
        // which knows the real sharer set.
        if protocol != ProtocolKind::SMesi {
            let exclusives = states.iter().filter(|s| **s == L1State::E).count();
            if exclusives > 0 {
                assert_eq!(readers, 1, "block {b}: E not exclusive: {states:?}");
            }
        }
        // Inclusion-ish agreement: cores hold data ⇒ LLC knows the block.
        if readers > 0 {
            assert_ne!(
                h.llc_state(addr),
                LlcState::I,
                "block {b}: L1 data without an LLC line"
            );
        }
        // Quiesced lines are stable.
        for (c, s) in states.iter().enumerate() {
            assert!(s.is_stable(), "block {b} core {c}: transient {s} at rest");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_requests_complete_and_swmr_holds(
        ops in prop::collection::vec(op_strategy(4, 12), 1..120),
        protocol in prop::sample::select(vec![
            ProtocolKind::Mesi,
            ProtocolKind::SMesi,
            ProtocolKind::SwiftDir,
            ProtocolKind::Msi,
        ]),
    ) {
        let (h, completed) = run_ops(protocol, &ops);
        prop_assert_eq!(completed, ops.len(), "all requests complete");
        check_invariants(&h, protocol, 12);
    }

    #[test]
    fn simulation_is_deterministic(
        ops in prop::collection::vec(op_strategy(4, 8), 1..60),
    ) {
        let (h1, _) = run_ops(ProtocolKind::SwiftDir, &ops);
        let (h2, _) = run_ops(ProtocolKind::SwiftDir, &ops);
        prop_assert_eq!(h1.now(), h2.now());
        for e in swiftdir::coherence::CoherenceEvent::ALL {
            prop_assert_eq!(h1.stats().event(e), h2.stats().event(e));
        }
    }

    #[test]
    fn wp_loads_never_create_exclusive_lines_under_swiftdir(
        ops in prop::collection::vec(op_strategy(2, 6), 1..80),
    ) {
        // Re-tag every op as a WP load: after quiescing, no L1 line for
        // these blocks may be E or M anywhere.
        let wp_ops: Vec<Op> = ops
            .iter()
            .map(|o| Op { store: false, wp: true, ..*o })
            .collect();
        let (h, _) = run_ops(ProtocolKind::SwiftDir, &wp_ops);
        for b in 0..6u64 {
            let addr = PhysAddr(0x10_0000 + b * 64);
            for c in 0..4 {
                let s = h.l1_state(c, addr);
                prop_assert!(
                    s == L1State::I || s == L1State::S,
                    "WP block {} on core {} reached {}", b, c, s
                );
            }
            let llc = h.llc_state(addr);
            prop_assert!(
                llc == LlcState::I || llc == LlcState::S,
                "WP block {} at LLC reached {}", b, llc
            );
        }
    }

    #[test]
    fn mixed_wp_and_private_traffic_quiesces_with_small_caches(
        ops in prop::collection::vec(op_strategy(4, 64), 1..200),
    ) {
        // A tiny LLC forces recalls and evictions to actually trigger.
        let mut cfg = HierarchyConfig::table_v(4, ProtocolKind::SwiftDir);
        cfg.llc_bank_geometry = swiftdir::cache::CacheGeometry::new(8 * 1024, 2, 64);
        cfg.l1_geometry = swiftdir::cache::CacheGeometry::new(1024, 2, 64);
        let mut h = Hierarchy::new(cfg);
        let mut t = Cycle(0);
        for op in &ops {
            let addr = PhysAddr(0x10_0000 + op.block * 64);
            let mut req = if op.store {
                CoreRequest::store(addr)
            } else {
                CoreRequest::load(addr)
            };
            if op.wp {
                req = req.write_protected();
            }
            h.issue(t, op.core, req);
            t += Cycle(op.gap);
        }
        let completions = h.run_until_idle();
        prop_assert_eq!(completions.len(), ops.len());
    }
}
