//! Randomized tests of the coherence protocol invariants, driven by
//! deterministic multi-core request sequences under all four protocols.
//!
//! Invariants checked after quiescing:
//! * every issued request completes (no lost/deadlocked transactions);
//! * single-writer-or-multiple-readers (SWMR): an M line on one core means
//!   no other core can read the block;
//! * L1/LLC directory agreement: a core holding E/M is the line's single
//!   holder; the LLC never claims I while a core holds data;
//! * determinism: the same request sequence produces identical statistics.
//!
//! The generator is seeded with `sim_engine::DetRng`, so every run explores
//! the same sequences: failures reproduce without a shrinking framework.
//! Sequences that proptest shrank to in earlier revisions are pinned as
//! explicit regression tests at the bottom.

use sim_engine::{Cycle, DetRng};
use swiftdir::coherence::{
    CoreRequest, Hierarchy, HierarchyConfig, L1State, LlcState, ProtocolKind,
};
use swiftdir::mmu::PhysAddr;

#[derive(Debug, Clone, Copy)]
struct Op {
    core: usize,
    block: u64,
    store: bool,
    wp: bool,
    gap: u64,
}

/// Draws one op; mirrors the constraint that WP data is never stored to in
/// practice (CoW redirects), keeping the generator faithful.
fn random_op(rng: &mut DetRng, cores: usize, blocks: u64) -> Op {
    let store = rng.chance(0.5);
    let wp = rng.chance(0.5);
    Op {
        core: rng.below(cores as u64) as usize,
        block: rng.below(blocks),
        store: store && !wp,
        wp: wp && !store,
        gap: rng.below(32),
    }
}

fn random_ops(rng: &mut DetRng, cores: usize, blocks: u64, max_len: u64) -> Vec<Op> {
    let len = rng.range(1, max_len);
    (0..len).map(|_| random_op(rng, cores, blocks)).collect()
}

fn run_ops(protocol: ProtocolKind, ops: &[Op]) -> (Hierarchy, usize) {
    let mut h = Hierarchy::new(HierarchyConfig::table_v(4, protocol));
    let mut t = Cycle(0);
    for op in ops {
        let addr = PhysAddr(0x10_0000 + op.block * 64);
        let mut req = if op.store {
            CoreRequest::store(addr)
        } else {
            CoreRequest::load(addr)
        };
        if op.wp {
            req = req.write_protected();
        }
        h.issue(t, op.core, req);
        t += Cycle(op.gap);
    }
    let completions = h.run_until_idle();
    (h, completions.len())
}

fn check_invariants(h: &Hierarchy, protocol: ProtocolKind, blocks: u64) {
    for b in 0..blocks {
        let addr = PhysAddr(0x10_0000 + b * 64);
        let states: Vec<L1State> = (0..4).map(|c| h.l1_state(c, addr)).collect();
        let writers = states.iter().filter(|s| **s == L1State::M).count();
        let readers = states.iter().filter(|s| s.load_hits()).count();
        // SWMR: a writer excludes all other readable copies.
        if writers > 0 {
            assert_eq!(writers, 1, "block {b}: multiple writers: {states:?}");
            assert_eq!(readers, 1, "block {b}: writer plus readers: {states:?}");
        }
        // E is exclusive — except under S-MESI, where the LLC serves
        // E-state lines directly (paper §II-C): the old owner keeps an
        // *advisory* E while new sharers hold S. That is safe only because
        // S-MESI has no silent upgrade — every write still asks the LLC,
        // which knows the real sharer set.
        if protocol != ProtocolKind::SMesi {
            let exclusives = states.iter().filter(|s| **s == L1State::E).count();
            if exclusives > 0 {
                assert_eq!(readers, 1, "block {b}: E not exclusive: {states:?}");
            }
        }
        // Inclusion-ish agreement: cores hold data ⇒ LLC knows the block.
        if readers > 0 {
            assert_ne!(
                h.llc_state(addr),
                LlcState::I,
                "block {b}: L1 data without an LLC line"
            );
        }
        // Quiesced lines are stable.
        for (c, s) in states.iter().enumerate() {
            assert!(s.is_stable(), "block {b} core {c}: transient {s} at rest");
        }
    }
}

const CASES: u64 = 48;

#[test]
fn all_requests_complete_and_swmr_holds() {
    let mut rng = DetRng::new(0x5317_d1f0);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 4, 12, 120);
        for protocol in ProtocolKind::ALL {
            let (h, completed) = run_ops(protocol, &ops);
            assert_eq!(
                completed,
                ops.len(),
                "case {case} {protocol}: all requests complete"
            );
            check_invariants(&h, protocol, 12);
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let mut rng = DetRng::new(0xdead_beef);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 4, 8, 60);
        let (h1, _) = run_ops(ProtocolKind::SwiftDir, &ops);
        let (h2, _) = run_ops(ProtocolKind::SwiftDir, &ops);
        assert_eq!(h1.now(), h2.now());
        for e in swiftdir::coherence::CoherenceEvent::ALL {
            assert_eq!(h1.stats().event(e), h2.stats().event(e));
        }
    }
}

#[test]
fn wp_loads_never_create_exclusive_lines_under_swiftdir() {
    let mut rng = DetRng::new(0x77aa_10ad);
    for _ in 0..CASES {
        // Re-tag every op as a WP load: after quiescing, no L1 line for
        // these blocks may be E or M anywhere.
        let wp_ops: Vec<Op> = random_ops(&mut rng, 2, 6, 80)
            .iter()
            .map(|o| Op {
                store: false,
                wp: true,
                ..*o
            })
            .collect();
        let (h, _) = run_ops(ProtocolKind::SwiftDir, &wp_ops);
        for b in 0..6u64 {
            let addr = PhysAddr(0x10_0000 + b * 64);
            for c in 0..4 {
                let s = h.l1_state(c, addr);
                assert!(
                    s == L1State::I || s == L1State::S,
                    "WP block {b} on core {c} reached {s}"
                );
            }
            let llc = h.llc_state(addr);
            assert!(
                llc == LlcState::I || llc == LlcState::S,
                "WP block {b} at LLC reached {llc}"
            );
        }
    }
}

#[test]
fn mixed_wp_and_private_traffic_quiesces_with_small_caches() {
    let mut rng = DetRng::new(0x0bad_cafe);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 4, 64, 200);
        // A tiny LLC forces recalls and evictions to actually trigger.
        let mut cfg = HierarchyConfig::table_v(4, ProtocolKind::SwiftDir);
        cfg.llc_bank_geometry = swiftdir::cache::CacheGeometry::new(8 * 1024, 2, 64);
        cfg.l1_geometry = swiftdir::cache::CacheGeometry::new(1024, 2, 64);
        let mut h = Hierarchy::new(cfg);
        let mut t = Cycle(0);
        for op in &ops {
            let addr = PhysAddr(0x10_0000 + op.block * 64);
            let mut req = if op.store {
                CoreRequest::store(addr)
            } else {
                CoreRequest::load(addr)
            };
            if op.wp {
                req = req.write_protected();
            }
            h.issue(t, op.core, req);
            t += Cycle(op.gap);
        }
        let completions = h.run_until_idle();
        assert_eq!(completions.len(), ops.len(), "case {case}: all complete");
    }
}

// ---------------------------------------------------------------------------
// Pinned regression cases (shrunk by proptest in earlier revisions; kept as
// explicit sequences so they run on every `cargo test` forever).
// ---------------------------------------------------------------------------

fn op(core: usize, block: u64, store: bool, wp: bool, gap: u64) -> Op {
    Op {
        core,
        block,
        store,
        wp,
        gap,
    }
}

/// Two same-cycle loads of one block under S-MESI: the second must be served
/// from the LLC after the first's unblock, not lost in the blocked line.
#[test]
fn regression_smesi_back_to_back_loads_same_block() {
    let ops = [op(1, 9, false, false, 0), op(0, 9, false, false, 0)];
    let (h, completed) = run_ops(ProtocolKind::SMesi, &ops);
    assert_eq!(completed, ops.len());
    check_invariants(&h, ProtocolKind::SMesi, 12);
}

/// S-MESI store chain through an advisory-E line: a GETX forwarded to an
/// owner that already gave the line away must still complete.
#[test]
fn regression_smesi_store_races_through_advisory_e() {
    let ops = [
        op(0, 0, false, false, 0),
        op(0, 0, false, false, 0),
        op(0, 5, false, false, 0),
        op(1, 4, false, false, 0),
        op(2, 4, true, false, 0),
        op(1, 4, true, false, 0),
    ];
    let (h, completed) = run_ops(ProtocolKind::SMesi, &ops);
    assert_eq!(completed, ops.len());
    check_invariants(&h, ProtocolKind::SMesi, 12);
}

/// The long mixed WP/store sequence that once deadlocked the small-cache
/// configuration (recall/eviction interleaving); all protocols must drain it.
#[test]
fn regression_mixed_wp_traffic_57_ops() {
    #[rustfmt::skip]
    let ops = [
        op(3, 50, false, false, 20), op(3, 34, false, false, 15),
        op(0, 5, false, true, 3),    op(2, 59, true, false, 6),
        op(3, 47, false, false, 17), op(1, 5, false, false, 12),
        op(2, 31, false, true, 17),  op(2, 3, false, false, 3),
        op(0, 23, false, false, 15), op(1, 43, false, true, 14),
        op(3, 8, false, false, 24),  op(1, 47, false, false, 29),
        op(1, 8, false, true, 26),   op(1, 18, true, false, 0),
        op(2, 16, true, false, 31),  op(1, 10, false, false, 10),
        op(0, 41, false, false, 13), op(3, 3, false, false, 23),
        op(0, 19, false, true, 28),  op(1, 2, false, false, 4),
        op(0, 41, false, false, 2),  op(1, 58, false, false, 24),
        op(0, 52, false, true, 19),  op(2, 12, false, false, 13),
        op(3, 53, false, false, 3),  op(1, 32, false, false, 5),
        op(1, 10, false, false, 1),  op(3, 18, true, false, 23),
        op(1, 14, false, false, 3),  op(3, 4, false, false, 8),
        op(1, 38, false, false, 27), op(1, 21, false, true, 12),
        op(2, 63, true, false, 12),  op(0, 7, true, false, 16),
        op(3, 12, false, true, 6),   op(0, 3, true, false, 0),
        op(1, 57, false, true, 3),   op(3, 38, true, false, 19),
        op(3, 0, false, false, 27),  op(1, 13, false, false, 2),
        op(1, 14, false, false, 20), op(0, 20, false, false, 8),
        op(3, 56, true, false, 10),  op(3, 26, false, true, 15),
        op(1, 52, true, false, 27),  op(3, 51, false, false, 1),
        op(3, 15, false, true, 19),  op(2, 16, false, false, 22),
        op(1, 58, false, true, 2),   op(2, 54, false, false, 11),
        op(1, 10, false, false, 24), op(0, 3, false, false, 26),
        op(0, 40, false, false, 12), op(0, 63, true, false, 25),
        op(1, 33, false, false, 26), op(1, 11, false, true, 2),
    ];
    for protocol in ProtocolKind::ALL {
        let (h, completed) = run_ops(protocol, &ops);
        assert_eq!(completed, ops.len(), "{protocol}");
        check_invariants(&h, protocol, 64);
    }
}

// -- differential cross-protocol regressions -------------------------------
//
// The same access stream must be architecturally indistinguishable across
// protocols: identical per-access values and identical final memory
// images. Streams come from `well_separated_stream`, which serializes
// same-block conflicts so the winner is protocol-independent. On WP-free
// streams, SwiftDir must additionally be MESI cycle-for-cycle.

#[test]
fn differential_architectural_equivalence_fixed_corpus() {
    use swiftdir::core::diff::{architectural_diff, well_separated_stream};
    for seed in 0..12u64 {
        let stream = well_separated_stream(seed, 4, 6, 80, 0.3);
        architectural_diff(&stream, 4, &ProtocolKind::ALL)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn differential_cycle_identity_fixed_corpus() {
    use swiftdir::core::diff::{swiftdir_mesi_cycle_identity, well_separated_stream};
    for seed in 0..12u64 {
        let stream = well_separated_stream(seed, 4, 6, 80, 0.0);
        swiftdir_mesi_cycle_identity(&stream, 4).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn differential_explored_tree_isomorphism() {
    use swiftdir::core::diff::{contended_stream, explored_equivalence};
    use swiftdir::core::explore::ExploreConfig;
    for seed in [5u64, 11] {
        let stream = contended_stream(seed, 2, 2, 5, 0.0);
        let (mesi, swift) = explored_equivalence(&stream, 2, &ExploreConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(mesi.schedules, swift.schedules);
        assert!(mesi.schedules >= 1, "seed {seed} explored nothing");
    }
}
