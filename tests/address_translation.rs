//! End-to-end tests of paper §IV-A/§IV-B: the write-protection bit's
//! journey from `mmap`/KSM through the PTE and TLB to the coherence
//! controller, under all three commercial L1 architectures (Figure 5).

use sim_engine::Cycle;
use swiftdir::cpu::MemOp;
use swiftdir::mmu::LibraryImage;
use swiftdir::prelude::*;

fn system(arch: L1Architecture, protocol: ProtocolKind) -> System {
    System::new(
        SystemConfig::builder()
            .cores(2)
            .protocol(protocol)
            .cpu_model(CpuModel::TimingSimple)
            .l1_architecture(arch)
            .build(),
    )
}

#[test]
fn wp_bit_reaches_llc_under_all_three_architectures() {
    // Figure 5's conclusion: regardless of PIPT/VIPT/VIVT, by the time a
    // request reaches the (always PIPT) LLC the WP bit is available, so
    // GETS_WP works under every architecture.
    for arch in L1Architecture::ALL {
        let mut sys = system(arch, ProtocolKind::SwiftDir);
        let pid = sys.spawn_process();
        let va = sys
            .process_mut(pid)
            .mmap(4096, Prot::READ, MapFlags::PRIVATE)
            .unwrap();
        sys.timed_access(0, pid, va, MemOp::Load);
        assert_eq!(
            sys.hierarchy().stats().event(CoherenceEvent::GetsWp),
            1,
            "{arch}: the WP load must become GETS_WP"
        );
    }
}

#[test]
fn pipt_exposes_tlb_latency_on_hits_vipt_hides_it() {
    // Warm everything, then compare L1-hit latencies: PIPT serializes the
    // 1-cycle TLB in front of the L1; VIPT overlaps it; VIVT needs no
    // translation on a hit at all.
    let mut latencies = Vec::new();
    for arch in L1Architecture::ALL {
        let mut sys = system(arch, ProtocolKind::SwiftDir);
        let pid = sys.spawn_process();
        let va = sys
            .process_mut(pid)
            .mmap(4096, Prot::READ, MapFlags::PRIVATE)
            .unwrap();
        sys.timed_access(0, pid, va, MemOp::Load); // cold
        let hit = sys.timed_access(0, pid, va, MemOp::Load);
        latencies.push((arch, hit));
    }
    let get = |a: L1Architecture| latencies.iter().find(|(x, _)| *x == a).unwrap().1;
    assert_eq!(get(L1Architecture::Vipt), Cycle(1));
    assert_eq!(get(L1Architecture::Vivt), Cycle(1));
    assert_eq!(
        get(L1Architecture::Pipt),
        Cycle(2),
        "PIPT pays the serial TLB lookup on the hit path"
    );
}

#[test]
fn vivt_pays_translation_only_on_the_miss_path() {
    // A VIVT L1 hit involves no translation; an L1 miss must translate
    // before the PIPT LLC — but with a warm TLB that costs nothing extra
    // in this model, so the observable property is: VIVT hit == 1 cycle
    // even with a *cold* TLB.
    let mut sys = system(L1Architecture::Vivt, ProtocolKind::SwiftDir);
    let pid = sys.spawn_process();
    let va = sys
        .process_mut(pid)
        .mmap(4096, Prot::READ, MapFlags::PRIVATE)
        .unwrap();
    sys.timed_access(0, pid, va, MemOp::Load); // faults + fills caches
    let hit = sys.timed_access(0, pid, va, MemOp::Load);
    assert_eq!(hit, Cycle(1));
}

#[test]
fn shared_library_segments_all_protected_end_to_end() {
    // §IV-A1: text (PROT_READ|EXEC), rodata (PROT_READ) and data
    // (PROT_WRITE + MAP_PRIVATE) all fault in write-protected, so all
    // three produce GETS_WP under SwiftDir.
    let mut sys = system(L1Architecture::Vipt, ProtocolKind::SwiftDir);
    let pid = sys.spawn_process();
    let lib = LibraryImage::synthetic("libc.so.6", 2, 2, 2);
    let (loaded, _) = sys.process_mut(pid).load_library(&lib, None).unwrap();
    let mut expected = 0;
    for (_kind, base) in loaded.segment_bases.clone() {
        sys.timed_access(0, pid, base, MemOp::Load);
        expected += 1;
        assert_eq!(
            sys.hierarchy().stats().event(CoherenceEvent::GetsWp),
            expected,
            "every segment's first touch is GETS_WP"
        );
    }
}

#[test]
fn cow_write_redirects_and_unprotects() {
    // Writing the library's data segment triggers copy-on-write; the
    // private copy is no longer write-protected, so *subsequent* loads of
    // it use plain GETS — exactly the paper's "write-protected data are
    // not supposed to associate with the M state".
    let mut sys = system(L1Architecture::Vipt, ProtocolKind::SwiftDir);
    let pid = sys.spawn_process();
    let lib = LibraryImage::synthetic("libcow.so", 1, 0, 1);
    let (loaded, _) = sys.process_mut(pid).load_library(&lib, None).unwrap();
    let data = loaded.base_of(swiftdir::mmu::SegmentKind::Data).unwrap();
    assert!(sys.process_mut(pid).is_write_protected(data).unwrap());
    // A timed store: CoW fault, then the store proceeds on the copy.
    sys.timed_access(0, pid, data, MemOp::Store);
    assert!(!sys.process_mut(pid).is_write_protected(data).unwrap());
    let gets_before = sys.hierarchy().stats().event(CoherenceEvent::Gets);
    // New physical page ⇒ a fresh load misses and uses plain GETS.
    sys.timed_access(1, pid, data, MemOp::Load);
    assert!(sys.hierarchy().stats().event(CoherenceEvent::Gets) > gets_before);
}

#[test]
fn ksm_merged_heap_pages_become_protected_shared_data() {
    let mut sys = system(L1Architecture::Vipt, ProtocolKind::SwiftDir);
    let p1 = sys.spawn_process();
    let p2 = sys.spawn_process();
    let va1 = sys
        .process_mut(p1)
        .mmap(4096, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
        .unwrap();
    let va2 = sys
        .process_mut(p2)
        .mmap(4096, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
        .unwrap();
    sys.process_mut(p1).write(va1, b"dedup candidate").unwrap();
    sys.process_mut(p2).write(va2, b"dedup candidate").unwrap();

    // Before merging: ordinary heap data, not write-protected.
    assert!(!sys.process_mut(p1).is_write_protected(va1).unwrap());

    let stats = sys.run_ksm();
    assert_eq!(stats.merged, 1);
    assert!(sys.process_mut(p1).is_write_protected(va1).unwrap());
    assert!(sys.process_mut(p2).is_write_protected(va2).unwrap());

    // Cross-core loads of the merged page are all LLC-served S data
    // (warm core 1's translation on a neighbouring line first so the
    // probe measures coherence latency, not the page walk).
    sys.timed_access(0, p1, va1, MemOp::Load);
    sys.timed_access(1, p2, VirtAddr(va2.0 + 128), MemOp::Load);
    let remote = sys.timed_access(1, p2, va2, MemOp::Load);
    assert_eq!(remote, Cycle(17), "merged page served from the LLC");
}

#[test]
fn tlb_shootdown_after_cow_keeps_wp_bit_accurate() {
    let mut sys = system(L1Architecture::Vipt, ProtocolKind::SwiftDir);
    let pid = sys.spawn_process();
    let lib = LibraryImage::synthetic("libshoot.so", 0, 0, 1);
    let (loaded, _) = sys.process_mut(pid).load_library(&lib, None).unwrap();
    let data = loaded.base_of(swiftdir::mmu::SegmentKind::Data).unwrap();
    // Load caches the WP translation in the TLB.
    sys.timed_access(0, pid, data, MemOp::Load);
    // Store takes the CoW fault and must not keep serving the stale WP
    // entry afterwards.
    sys.timed_access(0, pid, data, MemOp::Store);
    let wp_gets = sys.hierarchy().stats().event(CoherenceEvent::GetsWp);
    // Evict nothing; access a different line in the same (now private)
    // page from the same core: the translation must be non-WP.
    sys.timed_access(0, pid, VirtAddr(data.0 + 128), MemOp::Load);
    assert_eq!(
        sys.hierarchy().stats().event(CoherenceEvent::GetsWp),
        wp_gets,
        "no further GETS_WP once the page went private"
    );
}
