//! End-to-end determinism: the same configuration must produce
//! bit-identical [`RunStats`] on every run, whether the points execute
//! serially or fanned over the experiment driver's worker threads.
//!
//! This is the property the whole reproduction rests on — every figure is
//! a ratio of runs, so any nondeterminism (hash-order leakage, event-queue
//! tie-break changes, thread-schedule dependence) would silently corrupt
//! results rather than fail loudly. Here it fails loudly.

use swiftdir::coherence::ProtocolKind;
use swiftdir::core::{
    contended_stream, explore_parallel_threads, run_fuzz_many_threads, ExperimentSet,
    ExploreConfig, FuzzConfig, RunStats, System, SystemConfig, TraceConfig,
};
use swiftdir::cpu::CpuModel;
use swiftdir::workloads::{SpecBenchmark, SynthStream, WorkloadRegions};

const INSTRUCTIONS: u64 = 8_000;

fn run_point(bench: SpecBenchmark, protocol: ProtocolKind, model: CpuModel) -> RunStats {
    run_point_traced(bench, protocol, model, TraceConfig::default())
}

fn run_point_traced(
    bench: SpecBenchmark,
    protocol: ProtocolKind,
    model: CpuModel,
    trace: TraceConfig,
) -> RunStats {
    let mut sys = System::with_trace(
        SystemConfig::builder()
            .cores(1)
            .protocol(protocol)
            .cpu_model(model)
            .build(),
        trace,
    );
    let pid = sys.spawn_process();
    let params = bench.params(INSTRUCTIONS);
    let regions = WorkloadRegions::map(&mut sys, pid, &params);
    let stream = SynthStream::new(params, regions, bench.seed());
    sys.run_thread_stream(pid, 0, stream);
    sys.run_to_completion()
}

fn points() -> Vec<(SpecBenchmark, ProtocolKind)> {
    // A small but protocol-diverse grid: 4 benchmarks x all protocols.
    SpecBenchmark::ALL
        .into_iter()
        .take(4)
        .flat_map(|b| ProtocolKind::ALL.into_iter().map(move |p| (b, p)))
        .collect()
}

#[test]
fn same_seed_same_stats_across_repeated_serial_runs() {
    let first: Vec<RunStats> = points()
        .iter()
        .map(|&(b, p)| run_point(b, p, CpuModel::DerivO3))
        .collect();
    let second: Vec<RunStats> = points()
        .iter()
        .map(|&(b, p)| run_point(b, p, CpuModel::DerivO3))
        .collect();
    assert_eq!(first, second, "two serial sweeps diverged");
}

#[test]
fn parallel_driver_matches_serial_run() {
    let serial = ExperimentSet::new(points())
        .threads(1)
        .run(|&(b, p)| run_point(b, p, CpuModel::DerivO3));
    // More workers than the host has cores is fine — oversubscription
    // must not change results, only the schedule.
    let parallel = ExperimentSet::new(points())
        .threads(4)
        .run(|&(b, p)| run_point(b, p, CpuModel::DerivO3));
    assert_eq!(serial, parallel, "thread schedule leaked into stats");
}

#[test]
fn in_order_model_is_deterministic_too() {
    let serial = ExperimentSet::new(points())
        .threads(1)
        .run(|&(b, p)| run_point(b, p, CpuModel::TimingSimple));
    let parallel = ExperimentSet::new(points())
        .threads(3)
        .run(|&(b, p)| run_point(b, p, CpuModel::TimingSimple));
    assert_eq!(serial, parallel);
}

#[test]
fn tracing_never_changes_run_stats() {
    // Observability must be pure measurement: the same point run with a
    // disabled tracer (the default), with a plain `System::new`, and
    // with full file tracing must produce bit-identical RunStats.
    let dir = std::env::temp_dir().join("swiftdir_determinism_trace");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    for &(b, p) in points().iter().take(4) {
        let plain = run_point(b, p, CpuModel::DerivO3);
        let traced = run_point_traced(
            b,
            p,
            CpuModel::DerivO3,
            TraceConfig::to_path(dir.join("point")),
        );
        assert_eq!(plain, traced, "tracing perturbed {b:?}/{p:?}");
        // The snapshot is a pure function of the stats, so it agrees too.
        assert_eq!(plain.snapshot(), traced.snapshot());
    }
}

#[test]
fn driver_preserves_input_order_under_contention() {
    // Workloads of very different lengths: late-finishing early points
    // must still land in their input slots.
    let mut grid: Vec<(SpecBenchmark, ProtocolKind)> = points();
    grid.reverse();
    let expected: Vec<f64> = grid
        .iter()
        .map(|&(b, p)| run_point(b, p, CpuModel::DerivO3).ipc())
        .collect();
    let got = ExperimentSet::new(grid)
        .threads(8)
        .run(|&(b, p)| run_point(b, p, CpuModel::DerivO3).ipc());
    assert_eq!(expected, got);
}

#[test]
fn fuzz_fan_out_digests_are_thread_count_invariant() {
    // The fuzz fan-out must be a pure reordering of work: the digest,
    // event count, and full hierarchy statistics of every seed are
    // bit-identical whether the grid runs on one worker or four.
    let grid: Vec<FuzzConfig> = ProtocolKind::ALL
        .into_iter()
        .flat_map(|p| {
            (0..6u64).map(move |seed| {
                let mut cfg = FuzzConfig::new(seed, p);
                cfg.ops = 80;
                cfg
            })
        })
        .collect();
    let one = run_fuzz_many_threads(&grid, 1);
    let four = run_fuzz_many_threads(&grid, 4);
    assert_eq!(one.len(), four.len());
    for (a, b) in one.iter().zip(&four) {
        assert!(a.ok(), "fuzz {:?} failed", a.config);
        assert_eq!(a.digest, b.digest, "digest diverged for {:?}", a.config);
        assert_eq!(
            a.events, b.events,
            "event count diverged for {:?}",
            a.config
        );
        assert_eq!(a.stats, b.stats, "stats diverged for {:?}", a.config);
    }
}

#[test]
fn explorer_coverage_report_is_thread_count_invariant() {
    // Parallel exploration splits the DFS at the root frontier and
    // merges per-branch reports in canonical order, so the whole report
    // — schedules, outcomes, coverage, latency histograms — must be
    // bit-identical at any worker count.
    let ecfg = ExploreConfig::default();
    for protocol in [ProtocolKind::SwiftDir, ProtocolKind::SMesi] {
        let cfg = swiftdir::core::diff::tiny_config(2, protocol);
        for seed in 0..2 {
            let stream = contended_stream(seed, 2, 2, 4, 0.3);
            let one = explore_parallel_threads(&cfg, &stream, &ecfg, 1);
            let four = explore_parallel_threads(&cfg, &stream, &ecfg, 4);
            assert!(one.error.is_none(), "exploration failed: {:?}", one.error);
            assert_eq!(
                one, four,
                "explorer report diverged for {protocol:?} seed {seed}"
            );
        }
    }
}
