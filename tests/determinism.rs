//! End-to-end determinism: the same configuration must produce
//! bit-identical [`RunStats`] on every run, whether the points execute
//! serially or fanned over the experiment driver's worker threads.
//!
//! This is the property the whole reproduction rests on — every figure is
//! a ratio of runs, so any nondeterminism (hash-order leakage, event-queue
//! tie-break changes, thread-schedule dependence) would silently corrupt
//! results rather than fail loudly. Here it fails loudly.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use swiftdir::coherence::ProtocolKind;
use swiftdir::core::{
    contended_stream, explore_campaign, explore_parallel_threads, run_fuzz_campaign,
    run_fuzz_many_threads, ExperimentSet, ExploreConfig, FuzzConfig, RunStats, System,
    SystemConfig, TraceConfig, EXPLORE_PHASES, FUZZ_PHASES,
};
use swiftdir::cpu::CpuModel;
use swiftdir::engine::{CampaignCounters, ProgressSampler};
use swiftdir::workloads::{SpecBenchmark, SynthStream, WorkloadRegions};

/// An in-memory heartbeat sink (`Box<dyn Write + Send>` over shared
/// bytes), so samplers in tests need no filesystem.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A sampler emitting on every tick (zero interval) into a fresh buffer.
fn test_sampler(campaign: &str, workers: usize, phases: &[&'static str]) -> Arc<ProgressSampler> {
    Arc::new(ProgressSampler::new(
        CampaignCounters::new(campaign, workers, phases),
        Box::new(SharedBuf::default()),
        Duration::from_millis(1),
    ))
}

const INSTRUCTIONS: u64 = 8_000;

fn run_point(bench: SpecBenchmark, protocol: ProtocolKind, model: CpuModel) -> RunStats {
    run_point_traced(bench, protocol, model, TraceConfig::default())
}

fn run_point_traced(
    bench: SpecBenchmark,
    protocol: ProtocolKind,
    model: CpuModel,
    trace: TraceConfig,
) -> RunStats {
    let mut sys = System::with_trace(
        SystemConfig::builder()
            .cores(1)
            .protocol(protocol)
            .cpu_model(model)
            .build(),
        trace,
    );
    let pid = sys.spawn_process();
    let params = bench.params(INSTRUCTIONS);
    let regions = WorkloadRegions::map(&mut sys, pid, &params);
    let stream = SynthStream::new(params, regions, bench.seed());
    sys.run_thread_stream(pid, 0, stream);
    sys.run_to_completion()
}

fn points() -> Vec<(SpecBenchmark, ProtocolKind)> {
    // A small but protocol-diverse grid: 4 benchmarks x all protocols.
    SpecBenchmark::ALL
        .into_iter()
        .take(4)
        .flat_map(|b| ProtocolKind::ALL.into_iter().map(move |p| (b, p)))
        .collect()
}

#[test]
fn same_seed_same_stats_across_repeated_serial_runs() {
    let first: Vec<RunStats> = points()
        .iter()
        .map(|&(b, p)| run_point(b, p, CpuModel::DerivO3))
        .collect();
    let second: Vec<RunStats> = points()
        .iter()
        .map(|&(b, p)| run_point(b, p, CpuModel::DerivO3))
        .collect();
    assert_eq!(first, second, "two serial sweeps diverged");
}

#[test]
fn parallel_driver_matches_serial_run() {
    let serial = ExperimentSet::new(points())
        .threads(1)
        .run(|&(b, p)| run_point(b, p, CpuModel::DerivO3));
    // More workers than the host has cores is fine — oversubscription
    // must not change results, only the schedule.
    let parallel = ExperimentSet::new(points())
        .threads(4)
        .run(|&(b, p)| run_point(b, p, CpuModel::DerivO3));
    assert_eq!(serial, parallel, "thread schedule leaked into stats");
}

#[test]
fn in_order_model_is_deterministic_too() {
    let serial = ExperimentSet::new(points())
        .threads(1)
        .run(|&(b, p)| run_point(b, p, CpuModel::TimingSimple));
    let parallel = ExperimentSet::new(points())
        .threads(3)
        .run(|&(b, p)| run_point(b, p, CpuModel::TimingSimple));
    assert_eq!(serial, parallel);
}

#[test]
fn tracing_never_changes_run_stats() {
    // Observability must be pure measurement: the same point run with a
    // disabled tracer (the default), with a plain `System::new`, and
    // with full file tracing must produce bit-identical RunStats.
    let dir = std::env::temp_dir().join("swiftdir_determinism_trace");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    for &(b, p) in points().iter().take(4) {
        let plain = run_point(b, p, CpuModel::DerivO3);
        let traced = run_point_traced(
            b,
            p,
            CpuModel::DerivO3,
            TraceConfig::to_path(dir.join("point")),
        );
        assert_eq!(plain, traced, "tracing perturbed {b:?}/{p:?}");
        // The snapshot is a pure function of the stats, so it agrees too.
        assert_eq!(plain.snapshot(), traced.snapshot());
    }
}

#[test]
fn driver_preserves_input_order_under_contention() {
    // Workloads of very different lengths: late-finishing early points
    // must still land in their input slots.
    let mut grid: Vec<(SpecBenchmark, ProtocolKind)> = points();
    grid.reverse();
    let expected: Vec<f64> = grid
        .iter()
        .map(|&(b, p)| run_point(b, p, CpuModel::DerivO3).ipc())
        .collect();
    let got = ExperimentSet::new(grid)
        .threads(8)
        .run(|&(b, p)| run_point(b, p, CpuModel::DerivO3).ipc());
    assert_eq!(expected, got);
}

#[test]
fn parallel_bank_tick_is_thread_count_invariant_at_64_cores() {
    // The sharded-directory determinism gate: a 64-core machine with 8
    // address-interleaved directory banks, ticked with 1, 2, and 8
    // threads inside one simulation, produces bit-identical completions,
    // full HierarchyStats, and state digest. The parallel stepper
    // partitions each timestamp bucket by domain (L1s and banks) and
    // replays the serial merge order exactly, so the thread count can
    // only change wall-clock, never results.
    use swiftdir::coherence::{CoreRequest, Hierarchy, HierarchyConfig};
    use swiftdir::engine::Cycle;
    use swiftdir::mmu::PhysAddr;

    let sharded =
        || Hierarchy::new(HierarchyConfig::table_v(64, ProtocolKind::SwiftDir).with_banks(8));
    let drive = |h: &mut Hierarchy| {
        let mut t = Cycle(0);
        let stride = h.config().bank_geometry().size_bytes() / 8;
        for round in 0..20u64 {
            for core in 0..64usize {
                let addr = PhysAddr(0x8_0000 + (round % 32) * stride + (core as u64 % 4) * 64);
                let req = match (round + core as u64) % 4 {
                    0 => CoreRequest::store(addr),
                    1 => CoreRequest::load(addr).write_protected(),
                    _ => CoreRequest::load(addr),
                };
                h.issue(t, core, req);
                t += Cycle(3);
            }
        }
    };

    let mut serial = sharded();
    drive(&mut serial);
    let done_serial = serial.run_until_idle_parallel(1); // threads=1 is the serial path
    let digest = serial.state_digest();
    for threads in [2usize, 8] {
        let mut par = sharded();
        drive(&mut par);
        let done_par = par.run_until_idle_parallel(threads);
        assert_eq!(
            done_serial, done_par,
            "completions diverged at {threads} tick threads"
        );
        assert_eq!(
            serial.stats(),
            par.stats(),
            "HierarchyStats diverged at {threads} tick threads"
        );
        assert_eq!(
            digest,
            par.state_digest(),
            "state digest diverged at {threads} tick threads"
        );
    }
}

#[test]
fn sharded_fuzz_fan_out_is_thread_count_invariant() {
    // The fuzz fan-out invariance holds with the directory sharded too:
    // 8-core/4-bank adversarial scenarios produce identical digests,
    // event counts, and statistics at 1 and 4 campaign workers.
    let grid: Vec<FuzzConfig> = [ProtocolKind::Mesi, ProtocolKind::SwiftDir]
        .into_iter()
        .flat_map(|p| {
            (0..4u64).map(move |seed| {
                let mut cfg = FuzzConfig::new(seed, p);
                cfg.cores = 8;
                cfg.blocks = 16;
                cfg.ops = 100;
                cfg.banks = 4;
                cfg
            })
        })
        .collect();
    let one = run_fuzz_many_threads(&grid, 1);
    let four = run_fuzz_many_threads(&grid, 4);
    for (a, b) in one.iter().zip(&four) {
        assert!(a.ok(), "sharded fuzz {:?} failed", a.config);
        assert_eq!(a.digest, b.digest, "digest diverged for {:?}", a.config);
        assert_eq!(a.stats, b.stats, "stats diverged for {:?}", a.config);
    }
}

#[test]
fn fuzz_fan_out_digests_are_thread_count_invariant() {
    // The fuzz fan-out must be a pure reordering of work: the digest,
    // event count, and full hierarchy statistics of every seed are
    // bit-identical whether the grid runs on one worker or four.
    let grid: Vec<FuzzConfig> = ProtocolKind::ALL
        .into_iter()
        .flat_map(|p| {
            (0..6u64).map(move |seed| {
                let mut cfg = FuzzConfig::new(seed, p);
                cfg.ops = 80;
                cfg
            })
        })
        .collect();
    let one = run_fuzz_many_threads(&grid, 1);
    let four = run_fuzz_many_threads(&grid, 4);
    assert_eq!(one.len(), four.len());
    for (a, b) in one.iter().zip(&four) {
        assert!(a.ok(), "fuzz {:?} failed", a.config);
        assert_eq!(a.digest, b.digest, "digest diverged for {:?}", a.config);
        assert_eq!(
            a.events, b.events,
            "event count diverged for {:?}",
            a.config
        );
        assert_eq!(a.stats, b.stats, "stats diverged for {:?}", a.config);
    }
}

#[test]
fn progress_sampling_never_changes_fuzz_digests() {
    // Campaign telemetry must be strictly passive: the same fuzz grid
    // with no sampler, with a 1 ms sampler on one thread, and with a
    // 1 ms sampler on four threads produces bit-identical digests,
    // event counts, and statistics.
    let grid: Vec<FuzzConfig> = ProtocolKind::ALL
        .into_iter()
        .flat_map(|p| {
            (0..4u64).map(move |seed| {
                let mut cfg = FuzzConfig::new(seed, p);
                cfg.ops = 80;
                cfg
            })
        })
        .collect();
    let bare = run_fuzz_campaign(&grid, Some(1), None);
    let sampled_1 = {
        let s = test_sampler("fuzz", 1, &FUZZ_PHASES);
        let r = run_fuzz_campaign(&grid, Some(1), Some(&s));
        s.finish();
        r
    };
    let sampled_4 = {
        let s = test_sampler("fuzz", 4, &FUZZ_PHASES);
        let r = run_fuzz_campaign(&grid, Some(4), Some(&s));
        s.finish();
        r
    };
    for ((a, b), c) in bare.iter().zip(&sampled_1).zip(&sampled_4) {
        assert!(a.ok(), "fuzz {:?} failed", a.config);
        assert_eq!(
            (a.digest, a.events, &a.stats),
            (b.digest, b.events, &b.stats),
            "1-thread sampling perturbed {:?}",
            a.config
        );
        assert_eq!(
            (a.digest, a.events, &a.stats),
            (c.digest, c.events, &c.stats),
            "4-thread sampling perturbed {:?}",
            a.config
        );
    }
}

#[test]
fn progress_sampling_never_changes_explore_reports() {
    // Same passivity bar for the explorer: whole reports (schedules,
    // outcomes, coverage, latency histograms) are bit-identical with
    // sampling off, on at 1 ms / 1 thread, and on at 1 ms / 4 threads.
    let ecfg = ExploreConfig::default();
    for protocol in [ProtocolKind::SwiftDir, ProtocolKind::Mesi] {
        let cfg = swiftdir::core::diff::tiny_config(2, protocol);
        for seed in 0..2 {
            let stream = contended_stream(seed, 2, 2, 4, 0.3);
            let (bare, bare_profile) = explore_campaign(&cfg, &stream, &ecfg, 1, None);
            assert!(bare.error.is_none(), "exploration failed: {:?}", bare.error);
            for threads in [1usize, 4] {
                let s = test_sampler("explore", threads, &EXPLORE_PHASES);
                let (sampled, profile) = explore_campaign(&cfg, &stream, &ecfg, threads, Some(&s));
                s.finish();
                assert_eq!(
                    bare, sampled,
                    "sampling at {threads} thread(s) perturbed {protocol:?} seed {seed}"
                );
                assert_eq!(
                    bare_profile, profile,
                    "sampling at {threads} thread(s) perturbed the depth profile"
                );
            }
        }
    }
}

#[test]
fn explorer_coverage_report_is_thread_count_invariant() {
    // Parallel exploration splits the DFS at the root frontier and
    // merges per-branch reports in canonical order, so the whole report
    // — schedules, outcomes, coverage, latency histograms — must be
    // bit-identical at any worker count.
    let ecfg = ExploreConfig::default();
    for protocol in [ProtocolKind::SwiftDir, ProtocolKind::SMesi] {
        let cfg = swiftdir::core::diff::tiny_config(2, protocol);
        for seed in 0..2 {
            let stream = contended_stream(seed, 2, 2, 4, 0.3);
            let one = explore_parallel_threads(&cfg, &stream, &ecfg, 1);
            let four = explore_parallel_threads(&cfg, &stream, &ecfg, 4);
            assert!(one.error.is_none(), "exploration failed: {:?}", one.error);
            assert_eq!(
                one, four,
                "explorer report diverged for {protocol:?} seed {seed}"
            );
        }
    }
}
