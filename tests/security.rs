//! Security integration tests: the E/S timing channel exists under MESI
//! and is closed by SwiftDir (and the baselines S-MESI and MSI), via both
//! the covert channel and the side channel of paper §II-B.

use swiftdir::core::{CovertChannel, SideChannel};
use swiftdir::prelude::*;

#[test]
fn covert_channel_accuracy_by_protocol() {
    let bits = 40;
    let mesi = CovertChannel::new(ProtocolKind::Mesi).transmit_random(bits, 11);
    assert!(
        mesi.accuracy() >= 0.975,
        "MESI channel is near-perfect: {}",
        mesi.accuracy()
    );
    for p in [
        ProtocolKind::SwiftDir,
        ProtocolKind::SMesi,
        ProtocolKind::Msi,
    ] {
        let out = CovertChannel::new(p).transmit_random(bits, 11);
        assert!(
            !out.leaks(),
            "{p} must close the covert channel (accuracy {})",
            out.accuracy()
        );
    }
}

#[test]
fn swiftdir_probe_latencies_are_indistinguishable() {
    // The defense is constant-time service, not noise: every receiver
    // probe must observe exactly the same latency.
    let out = CovertChannel::new(ProtocolKind::SwiftDir).transmit_random(32, 23);
    let first = out.latencies[0];
    assert!(
        out.latencies.iter().all(|&l| l == first),
        "latencies vary: {:?}",
        out.latencies
    );
}

#[test]
fn mesi_probe_latencies_split_into_two_clusters() {
    let out = CovertChannel::new(ProtocolKind::Mesi).transmit_random(32, 23);
    let distinct: std::collections::BTreeSet<u64> = out.latencies.iter().map(|c| c.get()).collect();
    assert_eq!(distinct.len(), 2, "E and S latencies: {distinct:?}");
    let gap = distinct.iter().max().unwrap() - distinct.iter().min().unwrap();
    assert_eq!(gap, 26, "the calibrated E/S gap");
}

#[test]
fn side_channel_detects_victim_accesses_only_under_mesi() {
    let mesi = SideChannel::new(ProtocolKind::Mesi).run_random(32, 5);
    assert!(mesi.accuracy() >= 0.975, "MESI: {}", mesi.accuracy());
    for p in [ProtocolKind::SwiftDir, ProtocolKind::SMesi] {
        let out = SideChannel::new(p).run_random(32, 5);
        assert!(!out.leaks(), "{p}: accuracy {}", out.accuracy());
    }
}

#[test]
fn channel_is_deterministic_across_runs() {
    let a = CovertChannel::new(ProtocolKind::Mesi).transmit_random(16, 99);
    let b = CovertChannel::new(ProtocolKind::Mesi).transmit_random(16, 99);
    assert_eq!(a.latencies, b.latencies, "simulation is reproducible");
    assert_eq!(a.decoded, b.decoded);
}

// -- Fig. 6 invariant, quantified over every schedule ----------------------
//
// SwiftDir's security argument is that `GETS_WP` is *indistinguishable*
// from a plain shared `GETS` fill: same grant (Shared), same latency, on
// every possible message interleaving — not just the deterministic one.
// The bounded-exhaustive explorer lets us state that as an exact
// property: explore all schedules and compare completion-latency
// multisets per request.

#[test]
fn gets_wp_fill_latency_matches_plain_shared_fill_on_every_schedule() {
    use swiftdir::coherence::CoherenceEvent;
    use swiftdir::core::diff::{contended_stream, strip_wp, tiny_config};
    use swiftdir::core::explore::{explore, ExploreConfig};

    // All loads write-protected: under SwiftDir every load is a GETS_WP
    // granting Shared. MSI grants Shared for every plain load, so the
    // stripped stream under MSI is the reference "plain shared fill"
    // machine. The paper's invariant says the two must be
    // timing-identical on every schedule.
    let ecfg = ExploreConfig::default();
    let mut wp_issued = 0u64;
    for seed in 0..4u64 {
        let wp_stream = contended_stream(seed, 2, 2, 5, 1.0);
        let plain = strip_wp(&wp_stream);
        let swift = explore(&tiny_config(2, ProtocolKind::SwiftDir), &wp_stream, &ecfg);
        let msi = explore(&tiny_config(2, ProtocolKind::Msi), &plain, &ecfg);
        assert!(
            swift.exhaustive_and_clean(),
            "seed {seed}: {:?}",
            swift.error
        );
        assert!(msi.exhaustive_and_clean(), "seed {seed}: {:?}", msi.error);
        wp_issued += swift.coverage.event(CoherenceEvent::GetsWp);

        assert_eq!(
            swift.schedules, msi.schedules,
            "seed {seed}: schedule trees differ"
        );
        assert_eq!(
            swift.timings, msi.timings,
            "seed {seed}: some schedule is timing-distinguishable"
        );
        // Request ids are sequential in issue order, so compare each
        // access's completion-latency distribution across all schedules.
        for req in 0..wp_stream.len() as u64 {
            assert_eq!(
                swift.latency_multiset(req),
                msi.latency_multiset(req),
                "seed {seed}: request {req} has a distinguishable latency distribution"
            );
        }
    }
    assert!(wp_issued > 0, "the corpus never exercised GETS_WP");
}

#[test]
fn gets_wp_is_timing_identical_per_bank_on_a_sharded_many_core_machine() {
    // Sharding the directory must not open a per-bank timing channel: on
    // a 64-core machine with 8 address-interleaved banks, probe one
    // S-state line owned by each bank and compare a WP load against a
    // plain load from a distant core. The latencies must be equal bank
    // by bank — both on the default zero-cost crossbar and with a
    // nonzero mesh hop latency, where the NoC adds the same
    // placement-dependent cycles to both request kinds.
    use swiftdir::coherence::{CoreRequest, Hierarchy, HierarchyConfig};
    use swiftdir::engine::Cycle;
    use swiftdir::mmu::PhysAddr;

    for hop in [0u64, 2] {
        let cfg = HierarchyConfig::table_v(64, ProtocolKind::SwiftDir)
            .with_banks(8)
            .with_mesh_hop_latency(hop);
        let geom = cfg.bank_geometry();
        let group = geom.block_bytes() * geom.num_sets();
        for bank in 0..8u64 {
            let addr = PhysAddr(bank * group);
            assert_eq!(cfg.bank_of(addr.0), bank as usize, "probe address owner");
            let probe = |wp: bool| {
                let mut h = Hierarchy::new(cfg);
                // Core 0's WP load installs the line Shared in its bank.
                h.issue(Cycle(0), 0, CoreRequest::load(addr).write_protected());
                h.run_until_idle();
                let req = if wp {
                    CoreRequest::load(addr).write_protected()
                } else {
                    CoreRequest::load(addr)
                };
                let id = h.issue(h.now(), 63, req);
                let done = h.run_until_idle();
                done.iter()
                    .find(|c| c.req == id)
                    .expect("probe completed")
                    .latency()
            };
            assert_eq!(
                probe(true),
                probe(false),
                "bank {bank}, hop latency {hop}: the WP bit is timing-visible"
            );
        }
    }
}

#[test]
fn gets_wp_on_a_shared_line_matches_plain_gets() {
    use swiftdir::core::diff::tiny_config;
    use swiftdir::core::explore::{explore, ExploreConfig};
    use swiftdir::core::AccessOp;

    // Pre-shared scenario, entirely within SwiftDir: core 0's WP load
    // installs the block Shared; core 1 then loads it. Whether core 1's
    // load is write-protected must be invisible in its latency, on
    // every schedule.
    let cfg = tiny_config(2, ProtocolKind::SwiftDir);
    let ecfg = ExploreConfig::default();
    let probe_wp = [
        AccessOp::wp_load(0, 0, 0x40),
        AccessOp::wp_load(60, 1, 0x40),
    ];
    let probe_plain = [AccessOp::wp_load(0, 0, 0x40), AccessOp::load(60, 1, 0x40)];
    let a = explore(&cfg, &probe_wp, &ecfg);
    let b = explore(&cfg, &probe_plain, &ecfg);
    assert!(a.exhaustive_and_clean(), "{:?}", a.error);
    assert!(b.exhaustive_and_clean(), "{:?}", b.error);
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(
        a.latency_multiset(1),
        b.latency_multiset(1),
        "probe latency distinguishes GETS_WP from GETS on a shared line"
    );
}
