//! Security integration tests: the E/S timing channel exists under MESI
//! and is closed by SwiftDir (and the baselines S-MESI and MSI), via both
//! the covert channel and the side channel of paper §II-B.

use swiftdir::core::{CovertChannel, SideChannel};
use swiftdir::prelude::*;

#[test]
fn covert_channel_accuracy_by_protocol() {
    let bits = 40;
    let mesi = CovertChannel::new(ProtocolKind::Mesi).transmit_random(bits, 11);
    assert!(
        mesi.accuracy() >= 0.975,
        "MESI channel is near-perfect: {}",
        mesi.accuracy()
    );
    for p in [
        ProtocolKind::SwiftDir,
        ProtocolKind::SMesi,
        ProtocolKind::Msi,
    ] {
        let out = CovertChannel::new(p).transmit_random(bits, 11);
        assert!(
            !out.leaks(),
            "{p} must close the covert channel (accuracy {})",
            out.accuracy()
        );
    }
}

#[test]
fn swiftdir_probe_latencies_are_indistinguishable() {
    // The defense is constant-time service, not noise: every receiver
    // probe must observe exactly the same latency.
    let out = CovertChannel::new(ProtocolKind::SwiftDir).transmit_random(32, 23);
    let first = out.latencies[0];
    assert!(
        out.latencies.iter().all(|&l| l == first),
        "latencies vary: {:?}",
        out.latencies
    );
}

#[test]
fn mesi_probe_latencies_split_into_two_clusters() {
    let out = CovertChannel::new(ProtocolKind::Mesi).transmit_random(32, 23);
    let distinct: std::collections::BTreeSet<u64> = out.latencies.iter().map(|c| c.get()).collect();
    assert_eq!(distinct.len(), 2, "E and S latencies: {distinct:?}");
    let gap = distinct.iter().max().unwrap() - distinct.iter().min().unwrap();
    assert_eq!(gap, 26, "the calibrated E/S gap");
}

#[test]
fn side_channel_detects_victim_accesses_only_under_mesi() {
    let mesi = SideChannel::new(ProtocolKind::Mesi).run_random(32, 5);
    assert!(mesi.accuracy() >= 0.975, "MESI: {}", mesi.accuracy());
    for p in [ProtocolKind::SwiftDir, ProtocolKind::SMesi] {
        let out = SideChannel::new(p).run_random(32, 5);
        assert!(!out.leaks(), "{p}: accuracy {}", out.accuracy());
    }
}

#[test]
fn channel_is_deterministic_across_runs() {
    let a = CovertChannel::new(ProtocolKind::Mesi).transmit_random(16, 99);
    let b = CovertChannel::new(ProtocolKind::Mesi).transmit_random(16, 99);
    assert_eq!(a.latencies, b.latencies, "simulation is reproducible");
    assert_eq!(a.decoded, b.decoded);
}
