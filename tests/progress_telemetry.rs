//! Campaign-telemetry integration: heartbeat streams written by real
//! fuzz and explore campaigns must round-trip through the in-tree
//! parser, satisfy the stream invariants (`swiftdir.progress.v1`
//! schema, strictly increasing `seq`, monotone `done`/`events`, one
//! final record in last position), and reconcile with the reports the
//! campaign returned — the same bar the CI smoke leg holds the bins to.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use swiftdir::coherence::ProtocolKind;
use swiftdir::core::{
    contended_stream, explore_campaign, run_fuzz_campaign, ExploreConfig, FuzzConfig,
    EXPLORE_PHASES, FUZZ_PHASES,
};
use swiftdir::engine::{CampaignCounters, ProgressRecord, ProgressSampler, PROGRESS_SCHEMA};
use swiftdir_bench::progress_view::check_progress_text;

/// An in-memory heartbeat sink capturing what a `--progress FILE` run
/// would write.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("heartbeats are UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn sampler_into(
    buf: &SharedBuf,
    campaign: &str,
    workers: usize,
    phases: &[&'static str],
) -> Arc<ProgressSampler> {
    Arc::new(ProgressSampler::new(
        CampaignCounters::new(campaign, workers, phases),
        Box::new(buf.clone()),
        // Zero interval: every tick emits, exercising the stream
        // invariants as hard as possible.
        Duration::ZERO,
    ))
}

#[test]
fn fuzz_campaign_heartbeats_reconcile_with_reports() {
    let grid: Vec<FuzzConfig> = ProtocolKind::ALL
        .into_iter()
        .flat_map(|p| {
            (0..3u64).map(move |seed| {
                let mut cfg = FuzzConfig::new(seed, p);
                cfg.ops = 60;
                cfg
            })
        })
        .collect();

    let buf = SharedBuf::default();
    let sampler = sampler_into(&buf, "fuzz", 2, &FUZZ_PHASES);
    let reports = run_fuzz_campaign(&grid, Some(2), Some(&sampler));
    sampler.finish();

    let check = check_progress_text(&buf.text()).unwrap_or_else(|e| panic!("{e:#?}"));
    let last = &check.final_record;
    assert_eq!(last.schema, PROGRESS_SCHEMA);
    assert_eq!(last.campaign, "fuzz");

    // The final record must agree with what the campaign returned.
    assert_eq!(last.total, grid.len() as u64);
    assert_eq!(last.done, grid.len() as u64);
    assert_eq!(last.fraction, 1.0);
    assert_eq!(last.queue_depth, 0);
    let total_events: u64 = reports.iter().map(|r| r.events).sum();
    assert_eq!(last.events, total_events, "event total diverged");

    // Worker attribution covers every seed exactly once.
    assert_eq!(last.workers.len(), 2);
    let claimed: u64 = last.workers.iter().map(|w| w.claimed).sum();
    let done: u64 = last.workers.iter().map(|w| w.done).sum();
    assert_eq!(claimed, grid.len() as u64);
    assert_eq!(done, grid.len() as u64);
    assert!(last.workers.iter().all(|w| !w.busy));

    // Phase accounting: spans exist for the declared phases only, the
    // run phase dominates, and the sum respects the wall-clock bound.
    let names: Vec<&str> = last.phases.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, FUZZ_PHASES.to_vec());
    let run_s = last.phases[1].1;
    assert!(run_s > 0.0, "run phase never timed");
    assert!(last.phase_sum_s() <= last.elapsed_s * 3.0 + 1e-6);
}

#[test]
fn explore_campaign_heartbeats_reconcile_with_reports() {
    let ecfg = ExploreConfig::default();
    let cfg = swiftdir::core::diff::tiny_config(2, ProtocolKind::SwiftDir);
    let buf = SharedBuf::default();
    let sampler = sampler_into(&buf, "explore", 2, &EXPLORE_PHASES);

    let trees = 3u64;
    sampler.counters().add_total(trees);
    let mut schedules = 0u64;
    let mut steps = 0u64;
    for seed in 0..trees {
        let stream = contended_stream(seed, 2, 2, 4, 0.3);
        let (report, profile) = explore_campaign(&cfg, &stream, &ecfg, 2, Some(&sampler));
        assert!(
            report.error.is_none(),
            "exploration failed: {:?}",
            report.error
        );
        let profiled_nodes: u64 = profile.depths.iter().map(|s| s.nodes).sum();
        assert!(profiled_nodes > 0, "depth profile not collected");
        schedules += report.schedules;
        steps += report.steps;
        sampler.counters().add_done(1);
        sampler.tick();
    }
    sampler.finish();

    let check = check_progress_text(&buf.text()).unwrap_or_else(|e| panic!("{e:#?}"));
    let last = &check.final_record;
    assert_eq!(last.campaign, "explore");
    assert_eq!((last.done, last.total), (trees, trees));
    assert_eq!(last.schedules, schedules, "schedule total diverged");
    assert_eq!(last.steps, steps, "step total diverged");

    // Memory gauges were exercised: the undo walker pins undo frames
    // and fills the seen table, and high-water marks dominate.
    let gauge = |name: &str| {
        last.memory
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("gauge {name} missing"))
            .1
    };
    assert!(gauge("seen_entries").high > 0, "seen table never sampled");
    assert!(gauge("undo_bytes").high > 0, "undo log never sampled");
    // The byte gauge must account for the swiss-table footprint of the
    // entries it reports: at the flush that set the entry high-water
    // mark, capacity >= len, so the byte high-water mark must dominate
    // the control-overhead-inclusive estimate for that many entries.
    let entry = std::mem::size_of::<(u64, bool)>();
    assert!(
        gauge("seen_bytes").high
            >= swiftdir::engine::map_heap_bytes(gauge("seen_entries").high as usize, entry),
        "seen_bytes undercounts the seen table ({} bytes for {} entries)",
        gauge("seen_bytes").high,
        gauge("seen_entries").high
    );
    for (name, g) in &last.memory {
        assert!(g.high >= g.current, "gauge {name} high < current");
    }
}

#[test]
fn heartbeats_round_trip_and_are_monotone() {
    let grid: Vec<FuzzConfig> = (0..6u64)
        .map(|seed| {
            let mut cfg = FuzzConfig::new(seed, ProtocolKind::Mesi);
            cfg.ops = 60;
            cfg
        })
        .collect();
    let buf = SharedBuf::default();
    let sampler = sampler_into(&buf, "fuzz", 1, &FUZZ_PHASES);
    run_fuzz_campaign(&grid, Some(1), Some(&sampler));
    sampler.finish();

    let text = buf.text();
    let records: Vec<ProgressRecord> = text
        .lines()
        .map(|l| ProgressRecord::parse_line(l).expect("heartbeat line must parse"))
        .collect();
    assert!(
        records.len() >= 2,
        "zero-interval campaign should emit several records"
    );

    // Round-trip: parse(to_json(rec)) is the identity on every record.
    for rec in &records {
        let mut line = String::new();
        rec.to_json().write(&mut line);
        assert_eq!(&ProgressRecord::parse_line(&line).unwrap(), rec);
    }

    // Monotonicity in `done` and `seq`, final record last.
    for pair in records.windows(2) {
        assert!(pair[1].seq > pair[0].seq, "seq must strictly increase");
        assert!(pair[1].done >= pair[0].done, "done must be monotone");
        assert!(!pair[0].is_final, "final record must be last");
    }
    assert!(records.last().unwrap().is_final);
}
