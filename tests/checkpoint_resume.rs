//! Checkpoint/resume determinism: the property the durable campaign
//! path (`--checkpoint` / `--resume` on the bins, `swiftdir-serve` in
//! front of them) stakes everything on is that a campaign killed at an
//! arbitrary instant and resumed finishes with a final digest set
//! **bit-identical** to an uninterrupted run, at any thread count.
//!
//! Three layers are pinned here:
//!
//! * the *journal* layer — resuming from a `swiftdir.ckpt.v1` file cut
//!   at every unit boundary (and with a torn tail) reconverges;
//! * the *cancellation* layer — a campaign stopped by a live
//!   [`CancelToken`] mid-run leaves a journal that resumes to the same
//!   digest set whether the finisher runs 1 or 4 threads;
//! * the *service* layer — a `swiftdir-serve` spool whose server is
//!   stopped mid-job finishes the job on restart with the baseline's
//!   digest set.

use std::path::{Path, PathBuf};

use swiftdir::coherence::ProtocolKind;
use swiftdir::core::diff::tiny_config;
use swiftdir::core::{
    contended_stream, explore_grid_digest, fuzz_grid_digest, run_explore_campaign_resumable,
    run_fuzz_campaign_resumable, CancelToken, Checkpoint, CheckpointWriter, CkptHeader,
    ExploreConfig, ExploreUnit, FuzzConfig,
};
use swiftdir_serve::{FuzzJob, JobKind, JobSpec, Server};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swiftdir-ckptres-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// 2 protocols x 4 seeds at 40 ops: small enough to cut at every
/// boundary, big enough that multi-threaded claims interleave.
fn fuzz_grid() -> Vec<FuzzConfig> {
    [ProtocolKind::SwiftDir, ProtocolKind::Mesi]
        .into_iter()
        .flat_map(|p| {
            (0..4u64).map(move |seed| {
                let mut cfg = FuzzConfig::new(seed, p);
                cfg.ops = 40;
                cfg
            })
        })
        .collect()
}

fn fuzz_header(grid: &[FuzzConfig]) -> CkptHeader {
    CkptHeader {
        kind: "fuzz".to_string(),
        campaign: "fuzz".to_string(),
        config_digest: fuzz_grid_digest(grid),
        total: grid.len() as u64,
    }
}

/// Journals a full uninterrupted run into `path`; returns its digest set.
fn fuzz_baseline(grid: &[FuzzConfig], path: &Path) -> u64 {
    let mut w = CheckpointWriter::create(path, &fuzz_header(grid)).unwrap();
    let out =
        run_fuzz_campaign_resumable(grid, Some(2), None, Some(&mut w), Vec::new(), None).unwrap();
    assert!(out.complete() && !out.cancelled);
    assert_eq!(out.fresh, grid.len());
    out.digest_set_fnv()
}

#[test]
fn fuzz_resume_from_every_cut_point_matches_the_uninterrupted_run() {
    let dir = tempdir("fuzz-cuts");
    let grid = fuzz_grid();
    let full_path = dir.join("full.ckpt");
    let want = fuzz_baseline(&grid, &full_path);

    let journal = std::fs::read_to_string(&full_path).unwrap();
    let lines: Vec<&str> = journal.lines().collect();
    assert_eq!(lines.len(), 1 + grid.len(), "header plus one line per unit");

    for cut in 0..=grid.len() {
        // Rebuild the journal a kill would have left: the header, the
        // first `cut` durable unit lines, and (on odd cuts) a torn
        // fragment of the next line that repair must drop.
        let cut_path = dir.join(format!("cut{cut}.ckpt"));
        let mut text: String = lines[..=cut].join("\n");
        text.push('\n');
        if cut % 2 == 1 && cut < grid.len() {
            text.push_str(&lines[cut + 1][..lines[cut + 1].len() / 2]);
        }
        std::fs::write(&cut_path, text).unwrap();

        let (mut w, resumed) = CheckpointWriter::resume(&cut_path, &fuzz_header(&grid)).unwrap();
        assert_eq!(resumed.len(), cut, "torn tail must not count as durable");
        let out =
            run_fuzz_campaign_resumable(&grid, Some(2), None, Some(&mut w), resumed, None).unwrap();
        drop(w);
        assert!(out.complete(), "cut {cut} did not finish the grid");
        assert_eq!((out.resumed, out.fresh), (cut, grid.len() - cut));
        assert_eq!(
            out.digest_set_fnv(),
            want,
            "cut {cut} diverged from the uninterrupted digest set"
        );
        // The healed journal is now itself a complete record.
        let ckpt = Checkpoint::load(&cut_path).unwrap().unwrap();
        assert!(!ckpt.torn);
        assert_eq!(ckpt.digest_set_fnv(), want);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fuzz_campaign_cancelled_at_a_random_instant_resumes_identically() {
    let dir = tempdir("fuzz-kill");
    let grid = fuzz_grid();
    let want = fuzz_baseline(&grid, &dir.join("full.ckpt"));

    // "Kill" the campaign by tripping the cancel token from another
    // thread while workers are mid-grid. Wherever the claim loop
    // happens to stop, the journal holds exactly the acknowledged
    // units — the same guarantee a SIGKILL gives, minus the process
    // teardown.
    let kill_path = dir.join("killed.ckpt");
    let mut w = CheckpointWriter::create(&kill_path, &fuzz_header(&grid)).unwrap();
    let token = CancelToken::new();
    let killer = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            token.cancel();
        })
    };
    let out =
        run_fuzz_campaign_resumable(&grid, Some(2), None, Some(&mut w), Vec::new(), Some(&token))
            .unwrap();
    killer.join().unwrap();
    drop(w);
    let survivors = out.units.len();

    // Finish the campaign from the journal at both thread counts; both
    // must land on the baseline digest set.
    for threads in [1usize, 4] {
        let resume_path = dir.join(format!("resume-t{threads}.ckpt"));
        std::fs::copy(&kill_path, &resume_path).unwrap();
        let (mut w, resumed) = CheckpointWriter::resume(&resume_path, &fuzz_header(&grid)).unwrap();
        assert_eq!(resumed.len(), survivors);
        let out =
            run_fuzz_campaign_resumable(&grid, Some(threads), None, Some(&mut w), resumed, None)
                .unwrap();
        assert!(out.complete());
        assert_eq!(out.resumed, survivors);
        assert_eq!(
            out.digest_set_fnv(),
            want,
            "resume at {threads} threads diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explore_resume_from_every_cut_point_matches_the_uninterrupted_run() {
    let dir = tempdir("explore-cuts");
    let ecfg = ExploreConfig::default();
    let grid: Vec<ExploreUnit> = [ProtocolKind::SwiftDir, ProtocolKind::Msi]
        .into_iter()
        .flat_map(|p| {
            (0..2u64).map(move |seed| ExploreUnit {
                cfg: tiny_config(2, p),
                stream: contended_stream(seed, 2, 2, 5, 0.3),
            })
        })
        .collect();
    let header = CkptHeader {
        kind: "explore".to_string(),
        campaign: "explore".to_string(),
        config_digest: explore_grid_digest(&grid, &ecfg),
        total: grid.len() as u64,
    };

    let full_path = dir.join("full.ckpt");
    let mut w = CheckpointWriter::create(&full_path, &header).unwrap();
    let out =
        run_explore_campaign_resumable(&grid, &ecfg, Some(2), None, Some(&mut w), Vec::new(), None)
            .unwrap();
    drop(w);
    assert!(out.complete());
    let want = out.digest_set_fnv();

    let journal = std::fs::read_to_string(&full_path).unwrap();
    let lines: Vec<&str> = journal.lines().collect();
    for cut in 0..=grid.len() {
        let cut_path = dir.join(format!("cut{cut}.ckpt"));
        let mut text: String = lines[..=cut].join("\n");
        text.push('\n');
        std::fs::write(&cut_path, text).unwrap();

        let (mut w, resumed) = CheckpointWriter::resume(&cut_path, &header).unwrap();
        let out = run_explore_campaign_resumable(
            &grid,
            &ecfg,
            Some(2),
            None,
            Some(&mut w),
            resumed,
            None,
        )
        .unwrap();
        assert!(out.complete());
        assert_eq!((out.resumed, out.fresh), (cut, grid.len() - cut));
        assert_eq!(out.digest_set_fnv(), want, "explore cut {cut} diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_stopped_server_finishes_the_job_on_restart_with_the_baseline_digest() {
    let spec = JobSpec {
        id: String::new(),
        threads: Some(2),
        kind: JobKind::Fuzz(FuzzJob {
            seeds: 6,
            protocols: vec![ProtocolKind::SwiftDir],
            ops: Some(40),
            jitter: None,
        }),
    };

    // Baseline spool: run the job to completion undisturbed.
    let baseline = Server::new(tempdir("serve-base"));
    baseline.submit(&spec).unwrap();
    baseline.run(true, None).unwrap();
    let base = baseline.status().unwrap()[0].result.clone().unwrap();
    assert!(base.ok && !base.cancelled);

    // Stopped spool: trip the server's stop token from another thread
    // while the job runs. A server stop must leave the job *resumable*
    // (no result.json), unlike a per-job cancel which finalizes it.
    let server = Server::new(tempdir("serve-stop"));
    let id = server.submit(&spec).unwrap();
    let stop = CancelToken::new();
    let stopper = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            stop.cancel();
        })
    };
    server.run(true, Some(&stop)).unwrap();
    stopper.join().unwrap();

    // Restart drains whatever is left — a full re-run if the stop beat
    // the claim, a resume if it landed mid-campaign, a no-op if the
    // job already finished. All three must end at the baseline digest.
    server.run(true, None).unwrap();
    let row = server
        .status()
        .unwrap()
        .into_iter()
        .find(|r| r.id == id)
        .unwrap();
    let result = row.result.expect("job must be done after the restart");
    assert!(result.ok && !result.cancelled);
    assert_eq!(result.units, base.units);
    assert_eq!(
        result.digest_set, base.digest_set,
        "server stop/restart diverged from the uninterrupted digest set"
    );
    std::fs::remove_dir_all(baseline.dir()).ok();
    std::fs::remove_dir_all(server.dir()).ok();
}
