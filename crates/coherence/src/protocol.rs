//! Protocol variants and their policy decisions.

use std::fmt;

/// What the LLC grants a core on the initial load of an uncached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialGrant {
    /// `Data_Exclusive`: the line enters state E (MESI family).
    Exclusive,
    /// Plain `Data`: the line enters state S (MSI, and SwiftDir for
    /// write-protected data — the paper's I→S modification, §IV-C1).
    Shared,
}

/// The coherence protocol in force.
///
/// All four share one controller implementation; they differ in exactly
/// three policy decisions (this is faithful to the paper, which frames
/// SwiftDir as a *lightweight modification* of MESI):
///
/// 1. [`ProtocolKind::initial_load_grant`] — MESI/S-MESI grant E; MSI
///    grants S; SwiftDir grants S **iff the request is `GETS_WP`**.
/// 2. [`ProtocolKind::silent_upgrade`] — MESI/SwiftDir upgrade E→M in the
///    L1 without telling the LLC; S-MESI requires an `Upgrade`/`ACK`
///    round-trip (paper Figure 2); MSI has no E state at all.
/// 3. [`ProtocolKind::llc_serves_e_directly`] — S-MESI's explicit M
///    notification guarantees E-state LLC data are current, so the LLC
///    can serve them without forwarding to the owner (paper §II-C).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The MSI baseline (§II-A2): no E state, every initial load is S.
    Msi,
    /// Unprotected directory-based MESI — the paper's baseline.
    #[default]
    Mesi,
    /// S-MESI (Yao et al.): MESI with silent upgrade revoked for *all*
    /// data; secure but overprotective.
    SMesi,
    /// SwiftDir: MESI with I→S for write-protected data (via `GETS_WP`),
    /// silent upgrade preserved for everything else.
    SwiftDir,
}

impl ProtocolKind {
    /// Grant policy for the initial load of an uncached block.
    /// `write_protected` is the WP bit carried by the request (only
    /// SwiftDir looks at it).
    pub fn initial_load_grant(self, write_protected: bool) -> InitialGrant {
        match self {
            ProtocolKind::Msi => InitialGrant::Shared,
            ProtocolKind::Mesi | ProtocolKind::SMesi => InitialGrant::Exclusive,
            ProtocolKind::SwiftDir => {
                if write_protected {
                    InitialGrant::Shared
                } else {
                    InitialGrant::Exclusive
                }
            }
        }
    }

    /// Whether an L1 store to an E-state line may upgrade to M silently.
    /// (MSI never holds E lines, so the answer is irrelevant there.)
    pub fn silent_upgrade(self) -> bool {
        match self {
            ProtocolKind::Mesi | ProtocolKind::SwiftDir => true,
            ProtocolKind::SMesi => false,
            ProtocolKind::Msi => true, // vacuous: no E state exists
        }
    }

    /// Whether the LLC may serve a request that hits an E-state LLC line
    /// directly (instead of forwarding to the owner). True only for
    /// S-MESI, whose explicit E→M notification keeps E-state LLC data
    /// trustworthy.
    pub fn llc_serves_e_directly(self) -> bool {
        matches!(self, ProtocolKind::SMesi)
    }

    /// Whether this protocol closes the E/S timing channel for
    /// write-protected shared data.
    pub fn secure(self) -> bool {
        match self {
            ProtocolKind::Mesi => false,
            // MSI has no E state, S-MESI serves E from the LLC, SwiftDir
            // never lets WP data reach E.
            ProtocolKind::Msi | ProtocolKind::SMesi | ProtocolKind::SwiftDir => true,
        }
    }

    /// All protocols, in the order the paper's figures present them.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::Mesi,
        ProtocolKind::SwiftDir,
        ProtocolKind::SMesi,
        ProtocolKind::Msi,
    ];
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProtocolKind::Msi => "MSI",
            ProtocolKind::Mesi => "MESI",
            ProtocolKind::SMesi => "S-MESI",
            ProtocolKind::SwiftDir => "SwiftDir",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_grant_matrix() {
        use InitialGrant::*;
        // Non-WP data: only MSI demotes to shared.
        assert_eq!(ProtocolKind::Mesi.initial_load_grant(false), Exclusive);
        assert_eq!(ProtocolKind::SMesi.initial_load_grant(false), Exclusive);
        assert_eq!(ProtocolKind::SwiftDir.initial_load_grant(false), Exclusive);
        assert_eq!(ProtocolKind::Msi.initial_load_grant(false), Shared);
        // WP data: SwiftDir (and MSI) load straight to S.
        assert_eq!(ProtocolKind::SwiftDir.initial_load_grant(true), Shared);
        assert_eq!(ProtocolKind::Mesi.initial_load_grant(true), Exclusive);
        assert_eq!(ProtocolKind::SMesi.initial_load_grant(true), Exclusive);
    }

    #[test]
    fn silent_upgrade_matrix() {
        assert!(ProtocolKind::Mesi.silent_upgrade());
        assert!(ProtocolKind::SwiftDir.silent_upgrade());
        assert!(!ProtocolKind::SMesi.silent_upgrade());
    }

    #[test]
    fn llc_e_service_only_smesi() {
        assert!(ProtocolKind::SMesi.llc_serves_e_directly());
        assert!(!ProtocolKind::Mesi.llc_serves_e_directly());
        assert!(!ProtocolKind::SwiftDir.llc_serves_e_directly());
    }

    #[test]
    fn security_matrix() {
        assert!(!ProtocolKind::Mesi.secure());
        assert!(ProtocolKind::SMesi.secure());
        assert!(ProtocolKind::SwiftDir.secure());
        assert!(ProtocolKind::Msi.secure());
    }

    #[test]
    fn display_names() {
        assert_eq!(ProtocolKind::SwiftDir.to_string(), "SwiftDir");
        assert_eq!(ProtocolKind::SMesi.to_string(), "S-MESI");
    }
}
