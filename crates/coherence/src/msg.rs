//! Coherence messages (paper Table III).

use std::fmt;

use swiftdir_mmu::PhysAddr;

use crate::hierarchy::{RequestId, ServedFrom};
use crate::state::LlcState;

/// A coherence message in flight between controllers.
///
/// `GETS_WP` is the only request SwiftDir introduces (Table III): a `GETS`
/// carrying the MMU's write-protection bit as an argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Msg {
    // ---- L1 → LLC requests ------------------------------------------------
    /// L1 load miss.
    Gets {
        /// Requesting core.
        core: usize,
        /// Block base address.
        addr: PhysAddr,
        /// The core request this serves.
        req: RequestId,
    },
    /// L1 load miss on write-protected data (SwiftDir only).
    GetsWp {
        /// Requesting core.
        core: usize,
        /// Block base address.
        addr: PhysAddr,
        /// The core request this serves.
        req: RequestId,
    },
    /// L1 store miss (needs ownership and data).
    Getx {
        /// Requesting core.
        core: usize,
        /// Block base address.
        addr: PhysAddr,
        /// The core request this serves.
        req: RequestId,
    },
    /// Ownership upgrade for a line the L1 already holds (S→M always;
    /// E→M under S-MESI's revoked silent upgrade).
    Upgrade {
        /// Requesting core.
        core: usize,
        /// Block base address.
        addr: PhysAddr,
        /// The core request this serves.
        req: RequestId,
    },
    /// Clean writeback / eviction notice for an E or S line.
    WbDataClean {
        /// Evicting core.
        core: usize,
        /// Block base address.
        addr: PhysAddr,
    },
    /// Dirty writeback of an M line.
    WbDataDirty {
        /// Evicting core.
        core: usize,
        /// Block base address.
        addr: PhysAddr,
        /// The block's (modelled) contents.
        data: u64,
    },
    /// Requester signals it received `Data`; LLC may unblock the line.
    Unblock {
        /// Requesting core.
        core: usize,
        /// Block base address.
        addr: PhysAddr,
    },
    /// Requester signals it received `Data_Exclusive`.
    ExclusiveUnblock {
        /// Requesting core.
        core: usize,
        /// Block base address.
        addr: PhysAddr,
    },
    /// Sharer acknowledges an invalidation.
    InvAck {
        /// Acknowledging core.
        core: usize,
        /// Block base address.
        addr: PhysAddr,
        /// Whether the invalidated line was dirty (M); carries data.
        dirty: bool,
        /// The block's contents when `dirty` (ignored otherwise).
        data: u64,
    },

    // ---- LLC → L1 ----------------------------------------------------------
    /// LLC sends data without exclusivity (line becomes S).
    Data {
        /// Block base address.
        addr: PhysAddr,
        /// The request this responds to.
        req: RequestId,
        /// LLC directory state when the request was handled.
        llc_was: LlcState,
        /// Where the data came from.
        source: ServedFrom,
        /// The block's (modelled) contents.
        data: u64,
    },
    /// LLC sends data with exclusivity (line becomes E, or M for stores).
    DataExclusive {
        /// Block base address.
        addr: PhysAddr,
        /// The request this responds to.
        req: RequestId,
        /// Whether the grant answers a store (line enters M, not E).
        for_store: bool,
        /// LLC directory state when the request was handled.
        llc_was: LlcState,
        /// Where the data came from.
        source: ServedFrom,
        /// The block's (modelled) contents.
        data: u64,
    },
    /// LLC forwards a load request to the owning core.
    FwdGets {
        /// Core that should supply the data.
        requester: usize,
        /// Block base address.
        addr: PhysAddr,
        /// The forwarded request id.
        req: RequestId,
        /// LLC directory state when the request was handled.
        llc_was: LlcState,
    },
    /// LLC forwards a store request to the owning core (owner invalidates).
    FwdGetx {
        /// Core that should receive ownership and data.
        requester: usize,
        /// Block base address.
        addr: PhysAddr,
        /// The forwarded request id.
        req: RequestId,
        /// LLC directory state when the request was handled.
        llc_was: LlcState,
    },
    /// LLC tells a sharer to invalidate.
    Inv {
        /// Block base address.
        addr: PhysAddr,
    },
    /// LLC acknowledges an `Upgrade` (ownership granted).
    UpgradeAck {
        /// Block base address.
        addr: PhysAddr,
        /// The request this responds to.
        req: RequestId,
        /// LLC directory state when the request was handled.
        llc_was: LlcState,
    },
    /// LLC acknowledges a dirty/clean writeback (the L1 may drop the line).
    WbAck {
        /// Block base address.
        addr: PhysAddr,
    },

    // ---- L1 → L1 -----------------------------------------------------------
    /// Owner supplies data to a remote requester (three-hop load).
    DataFromOwner {
        /// Block base address.
        addr: PhysAddr,
        /// The request this responds to.
        req: RequestId,
        /// Whether the line transfers ownership for a store.
        for_store: bool,
        /// LLC directory state when the request was forwarded.
        llc_was: LlcState,
        /// The block's (modelled) contents.
        data: u64,
    },
}

impl Msg {
    /// The block address this message concerns.
    pub fn addr(&self) -> PhysAddr {
        match *self {
            Msg::Gets { addr, .. }
            | Msg::GetsWp { addr, .. }
            | Msg::Getx { addr, .. }
            | Msg::Upgrade { addr, .. }
            | Msg::WbDataClean { addr, .. }
            | Msg::WbDataDirty { addr, .. }
            | Msg::Unblock { addr, .. }
            | Msg::ExclusiveUnblock { addr, .. }
            | Msg::InvAck { addr, .. }
            | Msg::Data { addr, .. }
            | Msg::DataExclusive { addr, .. }
            | Msg::FwdGets { addr, .. }
            | Msg::FwdGetx { addr, .. }
            | Msg::Inv { addr }
            | Msg::UpgradeAck { addr, .. }
            | Msg::WbAck { addr }
            | Msg::DataFromOwner { addr, .. } => addr,
        }
    }

    /// The core a request-side message names (requester, evicting, or
    /// acknowledging core); `None` for LLC-originated messages.
    pub fn core(&self) -> Option<usize> {
        match *self {
            Msg::Gets { core, .. }
            | Msg::GetsWp { core, .. }
            | Msg::Getx { core, .. }
            | Msg::Upgrade { core, .. }
            | Msg::WbDataClean { core, .. }
            | Msg::WbDataDirty { core, .. }
            | Msg::Unblock { core, .. }
            | Msg::ExclusiveUnblock { core, .. }
            | Msg::InvAck { core, .. } => Some(core),
            Msg::FwdGets { requester, .. } | Msg::FwdGetx { requester, .. } => Some(requester),
            _ => None,
        }
    }

    /// The core request this message serves, if it names one.
    pub fn req(&self) -> Option<RequestId> {
        match *self {
            Msg::Gets { req, .. }
            | Msg::GetsWp { req, .. }
            | Msg::Getx { req, .. }
            | Msg::Upgrade { req, .. }
            | Msg::Data { req, .. }
            | Msg::DataExclusive { req, .. }
            | Msg::FwdGets { req, .. }
            | Msg::FwdGetx { req, .. }
            | Msg::UpgradeAck { req, .. }
            | Msg::DataFromOwner { req, .. } => Some(req),
            _ => None,
        }
    }

    /// The Table III event class of this message, for statistics.
    pub fn event(&self) -> CoherenceEvent {
        match self {
            Msg::Gets { .. } => CoherenceEvent::Gets,
            Msg::GetsWp { .. } => CoherenceEvent::GetsWp,
            Msg::Getx { .. } => CoherenceEvent::Getx,
            Msg::Upgrade { .. } => CoherenceEvent::Upgrade,
            Msg::WbDataClean { .. } => CoherenceEvent::WbDataClean,
            Msg::WbDataDirty { .. } => CoherenceEvent::WbDataDirty,
            Msg::Unblock { .. } => CoherenceEvent::Unblock,
            Msg::ExclusiveUnblock { .. } => CoherenceEvent::ExclusiveUnblock,
            Msg::InvAck { .. } => CoherenceEvent::Ack,
            Msg::Data { .. } => CoherenceEvent::Data,
            Msg::DataExclusive { .. } => CoherenceEvent::DataExclusive,
            Msg::FwdGets { .. } => CoherenceEvent::FwdGets,
            Msg::FwdGetx { .. } => CoherenceEvent::FwdGetx,
            Msg::Inv { .. } => CoherenceEvent::Inv,
            Msg::UpgradeAck { .. } => CoherenceEvent::Ack,
            Msg::WbAck { .. } => CoherenceEvent::Ack,
            Msg::DataFromOwner { .. } => CoherenceEvent::DataFromOwner,
        }
    }
}

/// Table III's coherence event classes, used as statistics keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoherenceEvent {
    /// Core load presented to the L1.
    Load,
    /// Core store presented to the L1.
    Store,
    /// `GETS`: L1 loads data from LLC.
    Gets,
    /// `GETS_WP`: L1 reads write-protected data from LLC (SwiftDir).
    GetsWp,
    /// `GETX`: L1 fetches data with ownership.
    Getx,
    /// `Upgrade`: L1 asks for write permission.
    Upgrade,
    /// `WB_Data_Clean`: clean writeback.
    WbDataClean,
    /// Dirty writeback.
    WbDataDirty,
    /// `Unblock`.
    Unblock,
    /// `Exclusive_Unblock`.
    ExclusiveUnblock,
    /// `Data`: LLC→L1 data without exclusivity.
    Data,
    /// `Data_Exclusive`.
    DataExclusive,
    /// `Fwd_GETS`: LLC forwards a load to the owner.
    FwdGets,
    /// Forwarded store.
    FwdGetx,
    /// Invalidation command.
    Inv,
    /// `Data_From_Owner`: L1→L1 transfer.
    DataFromOwner,
    /// Generic acknowledgement (`ACK`).
    Ack,
    /// `Fetch`: LLC reads from memory.
    Fetch,
    /// `Mem_Data`: memory returns data to LLC.
    MemData,
}

impl CoherenceEvent {
    /// All event classes, for iterating stats tables.
    pub const ALL: [CoherenceEvent; 19] = [
        CoherenceEvent::Load,
        CoherenceEvent::Store,
        CoherenceEvent::Gets,
        CoherenceEvent::GetsWp,
        CoherenceEvent::Getx,
        CoherenceEvent::Upgrade,
        CoherenceEvent::WbDataClean,
        CoherenceEvent::WbDataDirty,
        CoherenceEvent::Unblock,
        CoherenceEvent::ExclusiveUnblock,
        CoherenceEvent::Data,
        CoherenceEvent::DataExclusive,
        CoherenceEvent::FwdGets,
        CoherenceEvent::FwdGetx,
        CoherenceEvent::Inv,
        CoherenceEvent::DataFromOwner,
        CoherenceEvent::Ack,
        CoherenceEvent::Fetch,
        CoherenceEvent::MemData,
    ];

    /// The Table III display name as a static string (tracer/metrics key).
    pub fn name(self) -> &'static str {
        match self {
            CoherenceEvent::Load => "Load",
            CoherenceEvent::Store => "Store",
            CoherenceEvent::Gets => "GETS",
            CoherenceEvent::GetsWp => "GETS_WP",
            CoherenceEvent::Getx => "GETX",
            CoherenceEvent::Upgrade => "Upgrade",
            CoherenceEvent::WbDataClean => "WB_Data_Clean",
            CoherenceEvent::WbDataDirty => "WB_Data_Dirty",
            CoherenceEvent::Unblock => "Unblock",
            CoherenceEvent::ExclusiveUnblock => "Exclusive_Unblock",
            CoherenceEvent::Data => "Data",
            CoherenceEvent::DataExclusive => "Data_Exclusive",
            CoherenceEvent::FwdGets => "Fwd_GETS",
            CoherenceEvent::FwdGetx => "Fwd_GETX",
            CoherenceEvent::Inv => "Inv",
            CoherenceEvent::DataFromOwner => "Data_From_Owner",
            CoherenceEvent::Ack => "ACK",
            CoherenceEvent::Fetch => "Fetch",
            CoherenceEvent::MemData => "Mem_Data",
        }
    }
}

impl fmt::Display for CoherenceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Flat per-event-class counters.
///
/// This replaces a `CoherenceEvent → u64` hash map on the per-message hot
/// path: counting an event is a single indexed add (the enum discriminant
/// is the index), and merging two counter sets is a fixed-width loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventCounts([u64; CoherenceEvent::ALL.len()]);

impl Default for EventCounts {
    fn default() -> Self {
        EventCounts([0; CoherenceEvent::ALL.len()])
    }
}

impl EventCounts {
    /// Counts one occurrence of `e`.
    #[inline]
    pub fn bump(&mut self, e: CoherenceEvent) {
        self.0[e as usize] += 1;
    }

    /// Adds `n` occurrences of `e`.
    #[inline]
    pub fn add(&mut self, e: CoherenceEvent, n: u64) {
        self.0[e as usize] += n;
    }

    /// Count of `e`.
    #[inline]
    pub fn get(&self, e: CoherenceEvent) -> u64 {
        self.0[e as usize]
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &EventCounts) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    /// The event classes with a non-zero count, in [`CoherenceEvent::ALL`]
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (CoherenceEvent, u64)> + '_ {
        CoherenceEvent::ALL
            .iter()
            .map(move |&e| (e, self.0[e as usize]))
            .filter(|&(_, n)| n > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_extraction() {
        let m = Msg::Gets {
            core: 1,
            addr: PhysAddr(0x40),
            req: 0,
        };
        assert_eq!(m.addr(), PhysAddr(0x40));
        let m = Msg::Inv {
            addr: PhysAddr(0x80),
        };
        assert_eq!(m.addr(), PhysAddr(0x80));
    }

    #[test]
    fn event_classification() {
        let wp = Msg::GetsWp {
            core: 0,
            addr: PhysAddr(0),
            req: 0,
        };
        assert_eq!(wp.event(), CoherenceEvent::GetsWp);
        assert_eq!(wp.event().to_string(), "GETS_WP");
        let ack = Msg::WbAck { addr: PhysAddr(0) };
        assert_eq!(ack.event(), CoherenceEvent::Ack);
    }

    #[test]
    fn all_events_have_unique_names() {
        let names: std::collections::HashSet<String> =
            CoherenceEvent::ALL.iter().map(|e| e.to_string()).collect();
        assert_eq!(names.len(), CoherenceEvent::ALL.len());
    }
}
