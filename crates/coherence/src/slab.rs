//! Flat, allocation-recycling containers for the per-block hot path.
//!
//! The L1 controllers track a handful of in-flight blocks at a time
//! (bounded by the MSHR count plus a few transient buffers). Hash maps are
//! the wrong tool at that scale: every lookup hashes a key and chases a
//! bucket, every transaction allocates and frees a `Vec`, and the map's
//! control words evict useful cache lines. The containers here replace
//! them with small flat arrays — lookups are a short linear scan over a
//! dense `u64` key column, and [`MshrTable`] recycles its per-slot request
//! vectors so steady-state transaction turnover performs no heap
//! allocation at all.

/// Key marking a free [`MshrTable`] slot (no real block is all-ones: block
/// addresses are block-aligned physical addresses).
const FREE: u64 = u64::MAX;

/// A fixed-capacity MSHR table: one slot per outstanding transaction,
/// keyed by block address.
///
/// Capacity is the architectural MSHR count, so occupancy checks are
/// structural (`is_full`) rather than a map-length comparison, and slot
/// request vectors live for the table's lifetime — a completed
/// transaction's vector is cleared and reused by the next one.
#[derive(Debug, Clone)]
pub(crate) struct MshrTable<V> {
    blocks: Vec<u64>,
    reqs: Vec<Vec<V>>,
    used: usize,
}

impl<V> MshrTable<V> {
    pub(crate) fn new(capacity: usize) -> Self {
        MshrTable {
            blocks: vec![FREE; capacity],
            reqs: (0..capacity).map(|_| Vec::new()).collect(),
            used: 0,
        }
    }

    /// Architectural capacity (slot count).
    pub(crate) fn capacity(&self) -> usize {
        self.blocks.len()
    }

    /// Number of occupied slots (outstanding transactions).
    pub(crate) fn len(&self) -> usize {
        self.used
    }

    /// Whether every slot is occupied.
    pub(crate) fn is_full(&self) -> bool {
        self.used == self.blocks.len()
    }

    /// Overwrites `self` with `src`'s contents, reusing every per-slot
    /// request buffer's allocation (undo frames call this in a loop).
    pub(crate) fn copy_from(&mut self, src: &Self)
    where
        V: Clone,
    {
        self.blocks.clone_from(&src.blocks);
        self.used = src.used;
        if self.reqs.len() != src.reqs.len() {
            self.reqs.resize_with(src.reqs.len(), Vec::new);
        }
        for (dst, s) in self.reqs.iter_mut().zip(&src.reqs) {
            dst.clone_from(s);
        }
    }

    /// Approximate heap footprint of live contents, for undo-cost
    /// profiling.
    pub(crate) fn approx_bytes(&self) -> u64 {
        (self.blocks.len() * std::mem::size_of::<u64>()
            + self
                .reqs
                .iter()
                .map(|r| r.len() * std::mem::size_of::<V>())
                .sum::<usize>()) as u64
    }

    fn pos(&self, block: u64) -> Option<usize> {
        debug_assert_ne!(block, FREE);
        self.blocks.iter().position(|&b| b == block)
    }

    /// Whether `block` has an outstanding transaction.
    pub(crate) fn contains(&self, block: u64) -> bool {
        self.pos(block).is_some()
    }

    /// The queued requests of `block`'s transaction, if one is open.
    pub(crate) fn get_mut(&mut self, block: u64) -> Option<&mut Vec<V>> {
        self.pos(block).map(|i| &mut self.reqs[i])
    }

    /// Opens a transaction on `block` with `primary` as its first request.
    ///
    /// # Panics
    ///
    /// Panics if the table is full or `block` already has a slot — callers
    /// gate on [`is_full`](Self::is_full) / merge via
    /// [`get_mut`](Self::get_mut) first.
    pub(crate) fn insert(&mut self, block: u64, primary: V) {
        debug_assert!(!self.contains(block), "duplicate MSHR allocation");
        let i = self
            .blocks
            .iter()
            .position(|&b| b == FREE)
            .expect("MSHR table full");
        self.blocks[i] = block;
        debug_assert!(self.reqs[i].is_empty());
        self.reqs[i].push(primary);
        self.used += 1;
    }

    /// Closes `block`'s transaction, draining its queued requests into
    /// `out` (appended in queue order). The slot's vector stays allocated
    /// for reuse. Returns whether a transaction existed.
    pub(crate) fn take_into(&mut self, block: u64, out: &mut Vec<V>) -> bool {
        match self.pos(block) {
            Some(i) => {
                self.blocks[i] = FREE;
                out.append(&mut self.reqs[i]);
                self.used -= 1;
                true
            }
            None => false,
        }
    }

    /// Occupied slots as `(block, queued requests)`, in slot order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &[V])> {
        self.blocks
            .iter()
            .zip(&self.reqs)
            .filter(|(&b, _)| b != FREE)
            .map(|(&b, r)| (b, r.as_slice()))
    }
}

/// A small block-keyed map backed by a flat vector.
///
/// Used for the transient side buffers (writeback buffer, installing
/// buffer) that hold at most a few entries: a linear scan over a dense
/// key/value vector beats hashing at this size, and the vector's
/// allocation is reused across the run.
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockMap<V> {
    entries: Vec<(u64, V)>,
}

impl<V> BlockMap<V> {
    pub(crate) fn new() -> Self {
        BlockMap {
            entries: Vec::new(),
        }
    }

    pub(crate) fn get(&self, block: u64) -> Option<&V> {
        self.entries
            .iter()
            .find(|(b, _)| *b == block)
            .map(|(_, v)| v)
    }

    pub(crate) fn get_mut(&mut self, block: u64) -> Option<&mut V> {
        self.entries
            .iter_mut()
            .find(|(b, _)| *b == block)
            .map(|(_, v)| v)
    }

    /// Inserts or replaces `block`'s entry.
    pub(crate) fn insert(&mut self, block: u64, value: V) {
        match self.get_mut(block) {
            Some(slot) => *slot = value,
            None => self.entries.push((block, value)),
        }
    }

    /// Removes and returns `block`'s entry. Order of the remaining
    /// entries is preserved (iteration order stays insertion order, which
    /// keeps diagnostics and digests deterministic).
    pub(crate) fn remove(&mut self, block: u64) -> Option<V> {
        let i = self.entries.iter().position(|(b, _)| *b == block)?;
        Some(self.entries.remove(i).1)
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.entries.iter().map(|(b, v)| (*b, v))
    }

    /// Overwrites `self` with `src`'s contents, reusing the entry vector's
    /// allocation.
    pub(crate) fn copy_from(&mut self, src: &Self)
    where
        V: Clone,
    {
        self.entries.clone_from(&src.entries);
    }

    /// Approximate heap footprint, for undo-cost profiling.
    pub(crate) fn approx_bytes(&self) -> u64 {
        (self.entries.len() * std::mem::size_of::<(u64, V)>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mshr_slots_recycle_their_vectors() {
        let mut t: MshrTable<u32> = MshrTable::new(2);
        assert_eq!(t.capacity(), 2);
        t.insert(0x40, 1);
        t.get_mut(0x40).unwrap().push(2);
        t.insert(0x80, 3);
        assert!(t.is_full());
        assert!(t.contains(0x40));
        let mut out = Vec::new();
        assert!(t.take_into(0x40, &mut out));
        assert_eq!(out, vec![1, 2]);
        assert_eq!(t.len(), 1);
        assert!(!t.take_into(0x40, &mut out), "already closed");
        // The freed slot is reusable.
        t.insert(0xC0, 4);
        assert!(t.is_full());
        let entries: Vec<(u64, &[u32])> = t.iter().collect();
        assert_eq!(entries.len(), 2);
    }

    #[test]
    #[should_panic(expected = "MSHR table full")]
    fn mshr_overflow_panics() {
        let mut t: MshrTable<u32> = MshrTable::new(1);
        t.insert(0x40, 1);
        t.insert(0x80, 2);
    }

    #[test]
    fn block_map_basics() {
        let mut m: BlockMap<&str> = BlockMap::new();
        assert!(m.get(0x40).is_none());
        m.insert(0x40, "a");
        m.insert(0x80, "b");
        m.insert(0x40, "a2");
        assert_eq!(m.get(0x40), Some(&"a2"));
        *m.get_mut(0x80).unwrap() = "b2";
        assert_eq!(m.remove(0x80), Some("b2"));
        assert_eq!(m.remove(0x80), None);
        assert_eq!(m.iter().count(), 1);
    }
}
