//! Parallel tick: dispatches one timestamp bucket's events across worker
//! threads, one lane per worker, with a deterministic cross-bank merge.
//!
//! # Shard boundary and round protocol
//!
//! The calendar queue's bucket structure is the shard boundary: a *round*
//! is exactly one [`EventQueue::pop_batch`] — every event at the current
//! timestamp. Within one bucket, each event mutates only its own *domain*
//! (the addressed core's L1, or the addressed block's directory bank) plus
//! lane-local accumulators, so events of different domains commute. The
//! round partitioner groups the bucket's events by domain, workers claim
//! whole domains (no two workers ever index the same domain — the claim
//! protocol [`DomainVec`] relies on), and a barrier closes the round
//! before the next bucket opens.
//!
//! # Deterministic merge
//!
//! Every deferred send and completion is tagged with the *batch index* of
//! the event that produced it — its position in the serial bucket order.
//! After the barrier, tags are merged by a stable sort on batch index.
//! Each batch index belongs to exactly one domain, a domain's events run
//! in batch order on one worker, and a lane emits sends in the same order
//! the serial dispatcher would schedule them; so the sorted merge
//! reproduces the serial schedule-call order *exactly*, sequence numbers
//! included. Statistics merge commutatively (counter sums, histogram
//! bucket adds). The result: state digests, stats, and completions are
//! bit-identical to the serial run at every thread count. This is the
//! (time, bank, seq) merge discipline, with "bank" generalized to domain
//! and realized by the batch-index tag.
//!
//! On a protocol error the parallel run reports the erroring event with
//! the smallest batch index (the one the serial run would have hit
//! first), but sibling domains may already have dispatched events the
//! serial run never reached — error *state* is not bit-identical, only
//! error *identity*. Error-free runs carry the full guarantee.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use sim_engine::tracer::Tracer;
use sim_engine::Cycle;
use swiftdir_mmu::PhysAddr;

use crate::hierarchy::{
    Completion, DomainVec, Event, Hierarchy, HierarchyStats, Lane, ProtocolError,
};

/// Below this bucket size the round runs inline on the calling thread:
/// the barrier round-trip costs more than the dispatch itself.
const INLINE_BATCH: usize = 24;

/// One claimed unit of work: every event of one domain, in bucket order.
struct Task {
    /// `(batch index, event)`, ascending batch index.
    events: Vec<(u32, Event)>,
}

/// One task's private output, merged after the round's barrier.
#[derive(Default)]
struct TaskOut {
    stats: HierarchyStats,
    completions: Vec<(u32, Completion)>,
    sends: Vec<(u32, Cycle, Event)>,
    error: Option<(u32, Box<ProtocolError>)>,
}

/// Per-round shared state. Workers receive raw slice pointers (the claim
/// protocol guarantees domain-disjoint access) and claim tasks via an
/// atomic cursor.
struct Round {
    now: Cycle,
    l1s: (*mut crate::hierarchy::L1, usize),
    banks: (*mut crate::hierarchy::LlcBank, usize),
    tasks: Vec<Task>,
    outs: Vec<std::sync::Mutex<TaskOut>>,
}

// SAFETY: the raw pointers are only dereferenced through DomainVec under
// the domain-claim protocol; everything else is owned data or a Mutex.
unsafe impl Sync for Round {}
unsafe impl Send for Round {}

impl Hierarchy {
    /// [`run_until_idle`](Hierarchy::run_until_idle), dispatching each
    /// timestamp bucket across up to `threads` worker threads.
    ///
    /// Bit-identical to the serial run — digests, statistics, and
    /// completions — at every thread count (see the module docs for the
    /// merge-order argument). `threads <= 1` runs the serial path.
    ///
    /// # Panics
    ///
    /// Panics on a protocol error, like `run_until_idle`, and on the
    /// preconditions of
    /// [`try_run_until_idle_parallel`](Self::try_run_until_idle_parallel).
    pub fn run_until_idle_parallel(&mut self, threads: usize) -> Vec<Completion> {
        self.try_run_until_idle_parallel(threads)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`run_until_idle_parallel`](Self::run_until_idle_parallel).
    ///
    /// # Errors
    ///
    /// The first illegal protocol event in serial bucket order, or a
    /// synthesized livelock error when the fuel budget runs out.
    ///
    /// # Panics
    ///
    /// Panics when jitter, tracing, or the undo log is active: jitter
    /// and tracing are lane-order-sensitive, and undo frames capture one
    /// event per frame. (The serial paths keep full support.)
    pub fn try_run_until_idle_parallel(
        &mut self,
        threads: usize,
    ) -> Result<Vec<Completion>, Box<ProtocolError>> {
        if threads <= 1 {
            return self.try_run_until_idle();
        }
        assert!(
            self.jitter.is_none(),
            "parallel tick requires jitter disabled"
        );
        assert!(
            !self.tracer.is_enabled(),
            "parallel tick requires tracing disabled"
        );
        assert!(!self.undo_active(), "parallel tick requires undo disabled");

        let domains = self.cfg.cores + self.cfg.banks;
        let threads = threads.min(domains).max(1);
        let workers = threads - 1;

        let mut fuel: u64 = 500_000_000;
        let mut failure: Option<Box<ProtocolError>> = None;
        let mut batch = std::mem::take(&mut self.batch);
        let mut sends = std::mem::take(&mut self.sends_scratch);

        // Round rendezvous: workers park on `start`, run the claim loop,
        // then park on `end` while the main thread merges.
        let start = Barrier::new(threads);
        let end = Barrier::new(threads);
        let cursor = AtomicUsize::new(0);
        let round: std::sync::Mutex<Option<Round>> = std::sync::Mutex::new(None);
        let cfg = self.cfg;
        let mesh = self.mesh();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut tracer = Tracer::disabled();
                    loop {
                        start.wait();
                        // A `None` round is the shutdown signal.
                        let guard = round.lock().expect("round lock");
                        let Some(r) = guard.as_ref() else {
                            drop(guard);
                            end.wait();
                            return;
                        };
                        // The lock only fences the Option read; claiming
                        // and running tasks is lock-free via the cursor.
                        let r: &Round = unsafe { &*(r as *const Round) };
                        drop(guard);
                        run_tasks(&cfg, mesh, r, &cursor, &mut tracer);
                        end.wait();
                    }
                });
            }

            let mut tracer = Tracer::disabled();
            'ticks: while let Some(now) = self.queue.pop_batch(Cycle::MAX, &mut batch) {
                if fuel < batch.len() as u64 {
                    failure = Some(self.protocol_error(
                        now,
                        PhysAddr(0),
                        None,
                        "hierarchy failed to quiesce: livelock suspected".to_string(),
                    ));
                    break 'ticks;
                }
                fuel -= batch.len() as u64;

                if batch.len() < INLINE_BATCH {
                    // Small bucket: the serial dispatcher, verbatim.
                    for ev in batch.drain(..) {
                        let result = self.lane(&mut sends).dispatch(now, ev);
                        for (at, ev) in sends.drain(..) {
                            self.queue.schedule(at, ev);
                        }
                        if let Err(e) = result {
                            failure = Some(e);
                            break 'ticks;
                        }
                    }
                    continue;
                }

                // Partition the bucket by domain, preserving batch order
                // within each domain.
                let mut by_domain: Vec<Vec<(u32, Event)>> = vec![Vec::new(); domains];
                for (idx, ev) in batch.drain(..).enumerate() {
                    by_domain[domain_of(&cfg, &ev)].push((idx as u32, ev));
                }
                let tasks: Vec<Task> = by_domain
                    .into_iter()
                    .filter(|v| !v.is_empty())
                    .map(|events| Task { events })
                    .collect();
                let outs = tasks
                    .iter()
                    .map(|_| std::sync::Mutex::new(TaskOut::default()))
                    .collect();
                let r = Round {
                    now,
                    l1s: (self.l1s.as_mut_ptr(), self.l1s.len()),
                    banks: (self.banks.as_mut_ptr(), self.banks.len()),
                    tasks,
                    outs,
                };
                cursor.store(0, Ordering::SeqCst);
                *round.lock().expect("round lock") = Some(r);

                start.wait();
                {
                    // Main participates; it must not touch `self.l1s` /
                    // `self.banks` except through the round's pointers
                    // until the end barrier closes the claim window.
                    let guard = round.lock().expect("round lock");
                    let r: &Round =
                        unsafe { &*(guard.as_ref().expect("round set") as *const Round) };
                    drop(guard);
                    run_tasks(&cfg, mesh, r, &cursor, &mut tracer);
                }
                end.wait();

                // Merge: stats commute; sends and completions replay in
                // serial bucket order via their batch-index tags.
                let r = round.lock().expect("round lock").take().expect("round set");
                let mut all_sends: Vec<(u32, Cycle, Event)> = Vec::new();
                let mut all_completions: Vec<(u32, Completion)> = Vec::new();
                let mut round_error: Option<(u32, Box<ProtocolError>)> = None;
                for out in r.outs {
                    let mut out = out.into_inner().expect("task out lock");
                    self.stats.merge(&out.stats);
                    all_sends.append(&mut out.sends);
                    all_completions.append(&mut out.completions);
                    if let Some((idx, e)) = out.error.take() {
                        let better = round_error.as_ref().is_none_or(|(best, _)| idx < *best);
                        if better {
                            round_error = Some((idx, e));
                        }
                    }
                }
                all_sends.sort_by_key(|(idx, _, _)| *idx);
                all_completions.sort_by_key(|(idx, _)| *idx);
                for (_, at, ev) in all_sends {
                    self.queue.schedule(at, ev);
                }
                self.completions
                    .extend(all_completions.into_iter().map(|(_, c)| c));
                if let Some((_, e)) = round_error {
                    failure = Some(e);
                    break 'ticks;
                }
            }

            // Shutdown: release the workers parked on `start`.
            *round.lock().expect("round lock") = None;
            start.wait();
            end.wait();
        });

        batch.clear();
        self.batch = batch;
        sends.clear();
        self.sends_scratch = sends;
        match failure {
            Some(e) => Err(e),
            None => Ok(std::mem::take(&mut self.completions)),
        }
    }
}

/// The domain one event dispatches into: core L1s first, then banks.
fn domain_of(cfg: &crate::config::HierarchyConfig, ev: &Event) -> usize {
    match ev {
        Event::CoreReq { core, .. }
        | Event::ToL1 { core, .. }
        | Event::L1InsertRetry { core, .. } => *core,
        Event::ToLlc(msg) => cfg.cores + cfg.bank_of(msg.addr().0),
        Event::MemDone { addr } => cfg.cores + cfg.bank_of(addr.0),
    }
}

/// Claim-and-run loop: grab the next unclaimed task, dispatch its events
/// through a lane over aliased domain views, tag the outputs.
fn run_tasks(
    cfg: &crate::config::HierarchyConfig,
    mesh: sim_engine::MeshTopology,
    r: &Round,
    cursor: &AtomicUsize,
    tracer: &mut Tracer,
) {
    let mut completions: Vec<Completion> = Vec::new();
    let mut sends: Vec<(Cycle, Event)> = Vec::new();
    let mut finish_scratch: Vec<crate::hierarchy::PendingReq> = Vec::new();
    loop {
        let i = cursor.fetch_add(1, Ordering::SeqCst);
        if i >= r.tasks.len() {
            return;
        }
        let task = &r.tasks[i];
        let mut guard = r.outs[i].lock().expect("task out lock");
        let out: &mut TaskOut = &mut guard;
        completions.clear();
        sends.clear();
        {
            // SAFETY: task `i` holds events of exactly one domain, and
            // the cursor hands each task to exactly one claimant, so no
            // two live lanes index the same element (DomainVec's claim
            // protocol). The pointers were taken from live Vecs that the
            // main thread leaves untouched until the end barrier.
            let mut lane = Lane {
                cfg,
                mesh,
                l1s: unsafe { DomainVec::alias(r.l1s.0, r.l1s.1) },
                banks: unsafe { DomainVec::alias(r.banks.0, r.banks.1) },
                stats: &mut out.stats,
                completions: &mut completions,
                sends: &mut sends,
                finish_scratch: &mut finish_scratch,
                tracer,
                jitter: None,
                undo_lat: None,
            };
            for (idx, ev) in &task.events {
                let done_before = lane.completions.len();
                let sent_before = lane.sends.len();
                let result = lane.dispatch(r.now, ev.clone());
                // Tag this event's emissions with its serial bucket
                // position; the post-barrier merge sorts on it.
                for (at, ev) in lane.sends.drain(sent_before..) {
                    out.sends.push((*idx, at, ev));
                }
                for c in lane.completions.drain(done_before..) {
                    out.completions.push((*idx, c));
                }
                if let Err(e) = result {
                    out.error = Some((*idx, e));
                    // Serial semantics stop at the first error; the rest
                    // of this domain's bucket must not run.
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use sim_engine::Cycle;
    use swiftdir_mmu::PhysAddr;

    use crate::config::HierarchyConfig;
    use crate::hierarchy::{CoreRequest, Hierarchy};
    use crate::protocol::ProtocolKind;

    /// A contended many-core workload touching every bank: strided
    /// blocks hit all set-groups, with cross-core sharing and stores.
    fn drive(h: &mut Hierarchy, cores: usize, rounds: u64) -> usize {
        let mut t = Cycle(0);
        let mut n = 0;
        let stride = h.config().bank_geometry().size_bytes() / 8;
        for round in 0..rounds {
            for core in 0..cores {
                let addr = PhysAddr(0x8_0000 + (round % 32) * stride + (core as u64 % 4) * 64);
                let req = match (round + core as u64) % 4 {
                    0 => CoreRequest::store(addr),
                    1 => CoreRequest::load(addr).write_protected(),
                    _ => CoreRequest::load(addr),
                };
                h.issue(t, core, req);
                n += 1;
                t += Cycle(3);
            }
        }
        n
    }

    fn sharded(cores: usize, banks: usize) -> Hierarchy {
        Hierarchy::new(HierarchyConfig::table_v(cores, ProtocolKind::SwiftDir).with_banks(banks))
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit_at_every_thread_count() {
        let cores = 16;
        let mut serial = sharded(cores, 8);
        let n = drive(&mut serial, cores, 40);
        let done_serial = serial.run_until_idle();
        assert_eq!(done_serial.len(), n);
        for threads in [2usize, 4, 8] {
            let mut par = sharded(cores, 8);
            drive(&mut par, cores, 40);
            let done_par = par.run_until_idle_parallel(threads);
            assert_eq!(
                done_serial, done_par,
                "completions diverged at {threads} threads"
            );
            assert_eq!(
                serial.stats(),
                par.stats(),
                "stats diverged at {threads} threads"
            );
            assert_eq!(
                serial.state_digest(),
                par.state_digest(),
                "state digest diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn single_bank_parallel_is_identical_too() {
        let cores = 8;
        let mut serial = sharded(cores, 1);
        drive(&mut serial, cores, 30);
        let done_serial = serial.run_until_idle();
        let mut par = sharded(cores, 1);
        drive(&mut par, cores, 30);
        let done_par = par.run_until_idle_parallel(4);
        assert_eq!(done_serial, done_par);
        assert_eq!(serial.state_digest(), par.state_digest());
    }

    #[test]
    fn sharding_is_transparent_modulo_dram_channels() {
        // Set-group interleaving gives every bank the same set population
        // its slice had in the aggregate array, and the default mesh is a
        // zero-cost crossbar — so with accesses spaced far enough apart
        // that each quiesces before the next, the *protocol* outcome of
        // every access (classification, data source, observed value) is
        // independent of the bank count. Only DRAM latencies may differ:
        // eight banks mean eight independent DRAM channels with their own
        // row-buffer state, which is exactly the modeled scale-out.
        let strip = |h: &mut Hierarchy| {
            let mut t = Cycle(0);
            // Three 8-bank set-groups per step, so consecutive accesses
            // rotate through banks; identical addresses in both configs.
            let stride = 3 * 16 * 1024;
            for round in 0..24u64 {
                let addr = PhysAddr(0x8_0000 + (round % 12) * stride);
                let req = if round % 3 == 0 {
                    CoreRequest::store(addr)
                } else {
                    CoreRequest::load(addr)
                };
                h.issue(t, 0, req);
                t += Cycle(2_000); // far beyond any DRAM round trip
            }
            h.run_until_idle()
                .into_iter()
                .map(|c| (c.req, c.core, c.block, c.class, c.served_from, c.value))
                .collect::<Vec<_>>()
        };
        let one = strip(&mut sharded(1, 1));
        let eight = strip(&mut sharded(1, 8));
        assert_eq!(one, eight, "bank count changed a protocol outcome");
    }
}
