//! Always-on protocol metrics: the full MESI transition-count matrix and
//! per-request-class latency histograms.
//!
//! Unlike the [`tracer`](sim_engine::tracer) (off by default, per-event),
//! these are plain array increments cheap enough to keep on in production
//! runs. They live inside
//! [`HierarchyStats`](crate::hierarchy::HierarchyStats) so they are cloned
//! into every run's results and covered by the determinism suite.

use sim_engine::{Histogram, Json, Metric, MetricsRegistry};

use crate::hierarchy::{AccessKind, ServedFrom};
use crate::state::{L1State, LlcState};

/// How a completed request is accounted in the latency histograms: the
/// coherence request it turned into, or a plain L1 hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Served by the local L1 (includes silent-upgrade stores).
    Hit,
    /// Load miss → `GETS`.
    Gets,
    /// Load miss on write-protected data → `GETS_WP` (SwiftDir).
    GetsWp,
    /// Store miss → `GETX`.
    Getx,
    /// Store to a held S/E line → `Upgrade` (even when a lost race
    /// degenerates it to a data grant: the core asked for an upgrade).
    Upgrade,
}

impl RequestClass {
    /// Every class, in [`RequestClass::index`] order.
    pub const ALL: [RequestClass; Self::COUNT] = [
        RequestClass::Hit,
        RequestClass::Gets,
        RequestClass::GetsWp,
        RequestClass::Getx,
        RequestClass::Upgrade,
    ];

    /// Number of request classes.
    pub const COUNT: usize = 5;

    /// Dense index into [`RequestClass::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable display name (metrics key / tracer label).
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Hit => "Hit",
            RequestClass::Gets => "GETS",
            RequestClass::GetsWp => "GETS_WP",
            RequestClass::Getx => "GETX",
            RequestClass::Upgrade => "Upgrade",
        }
    }

    /// Classifies a completed request from its issue-time facts.
    ///
    /// `swiftdir` says whether the protocol turns WP load misses into
    /// `GETS_WP`; other protocols issue a plain `GETS` for them.
    pub fn classify(
        kind: AccessKind,
        l1_before: L1State,
        write_protected: bool,
        swiftdir: bool,
        served_from: ServedFrom,
    ) -> RequestClass {
        if served_from == ServedFrom::L1 {
            return RequestClass::Hit;
        }
        match kind {
            AccessKind::Load => {
                if write_protected && swiftdir {
                    RequestClass::GetsWp
                } else {
                    RequestClass::Gets
                }
            }
            AccessKind::Store => {
                if matches!(l1_before, L1State::S | L1State::E) {
                    RequestClass::Upgrade
                } else {
                    RequestClass::Getx
                }
            }
        }
    }
}

impl std::fmt::Display for RequestClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Exact-bucket cap for the latency histograms. Coherence latencies are
/// tens to hundreds of cycles; 4096 covers heavy DRAM queueing with room
/// to spare (larger samples still count via the overflow bucket).
pub const LATENCY_CAP: usize = 4096;

/// The transition-count matrices and latency histograms the hierarchy
/// maintains unconditionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolMetrics {
    /// `l1[from][to]`: L1 state-machine transition counts, including
    /// transients (indices per [`L1State::index`]).
    l1: [[u64; L1State::COUNT]; L1State::COUNT],
    /// `llc[from][to]`: LLC directory transition counts.
    llc: [[u64; LlcState::COUNT]; LlcState::COUNT],
    /// Per-class end-to-end latency (indices per [`RequestClass::index`]).
    latency: [Histogram; RequestClass::COUNT],
    /// L1 data installs re-scheduled because every way of the target set
    /// was mid-transaction.
    install_retries: u64,
    /// Install retries that exhausted their budget and escalated to a
    /// blocking stall (woken when a way in the set frees up).
    install_stalls: u64,
}

/// Flat `Copy` snapshot of [`ProtocolMetrics`]' non-histogram counters;
/// see [`ProtocolMetrics::counters_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsCounters {
    l1: [[u64; L1State::COUNT]; L1State::COUNT],
    llc: [[u64; LlcState::COUNT]; LlcState::COUNT],
    install_retries: u64,
    install_stalls: u64,
}

impl Default for MetricsCounters {
    fn default() -> Self {
        MetricsCounters {
            l1: [[0; L1State::COUNT]; L1State::COUNT],
            llc: [[0; LlcState::COUNT]; LlcState::COUNT],
            install_retries: 0,
            install_stalls: 0,
        }
    }
}

impl Default for ProtocolMetrics {
    fn default() -> Self {
        ProtocolMetrics {
            l1: [[0; L1State::COUNT]; L1State::COUNT],
            llc: [[0; LlcState::COUNT]; LlcState::COUNT],
            latency: std::array::from_fn(|_| Histogram::new(LATENCY_CAP)),
            install_retries: 0,
            install_stalls: 0,
        }
    }
}

impl ProtocolMetrics {
    /// Counts one L1 transition (self-transitions are not recorded).
    #[inline]
    pub fn record_l1(&mut self, from: L1State, to: L1State) {
        if from != to {
            self.l1[from.index()][to.index()] += 1;
        }
    }

    /// Counts one LLC directory transition (self-transitions are not
    /// recorded).
    #[inline]
    pub fn record_llc(&mut self, from: LlcState, to: LlcState) {
        if from != to {
            self.llc[from.index()][to.index()] += 1;
        }
    }

    /// Records one completed request's end-to-end latency.
    #[inline]
    pub fn record_latency(&mut self, class: RequestClass, cycles: u64) {
        self.latency[class.index()].record(cycles);
    }

    /// Count of L1 `from → to` transitions.
    pub fn l1_transitions(&self, from: L1State, to: L1State) -> u64 {
        self.l1[from.index()][to.index()]
    }

    /// Count of LLC `from → to` transitions.
    pub fn llc_transitions(&self, from: LlcState, to: LlcState) -> u64 {
        self.llc[from.index()][to.index()]
    }

    /// Total L1 transitions of any kind.
    pub fn l1_total(&self) -> u64 {
        self.l1.iter().flatten().sum()
    }

    /// Total LLC transitions of any kind.
    pub fn llc_total(&self) -> u64 {
        self.llc.iter().flatten().sum()
    }

    /// L1 data installs: transitions out of the miss transients
    /// (`IS_D`/`IM_D`) into a stable valid state. Each `Data`,
    /// `Data_Exclusive`, or `Data_From_Owner` message produces exactly one,
    /// which is the reconciliation the observability tests check against
    /// `HierarchyStats::events`.
    pub fn l1_installs(&self) -> u64 {
        [L1State::IsD, L1State::ImD]
            .into_iter()
            .map(|from| {
                [L1State::S, L1State::E, L1State::M]
                    .into_iter()
                    .map(|to| self.l1_transitions(from, to))
                    .sum::<u64>()
            })
            .sum()
    }

    /// The latency histogram of one request class.
    pub fn latency(&self, class: RequestClass) -> &Histogram {
        &self.latency[class.index()]
    }

    /// Counts one rescheduled L1 install attempt.
    #[inline]
    pub fn record_install_retry(&mut self) {
        self.install_retries += 1;
    }

    /// Counts one install-retry escalation to a blocking stall.
    #[inline]
    pub fn record_install_stall(&mut self) {
        self.install_stalls += 1;
    }

    /// L1 installs re-scheduled because no way was evictable.
    pub fn install_retries(&self) -> u64 {
        self.install_retries
    }

    /// Install retries that escalated to a blocking stall.
    pub fn install_stalls(&self) -> u64 {
        self.install_stalls
    }

    /// Copies every `Copy`-sized counter (both transition matrices and the
    /// install counters) into a flat snapshot. The latency histograms are
    /// deliberately excluded — they are journaled per-record via
    /// [`latency_mark`](Self::latency_mark) /
    /// [`unrecord_latency`](Self::unrecord_latency) because a full
    /// histogram copy is [`LATENCY_CAP`]-sized.
    pub fn counters_snapshot(&self) -> MetricsCounters {
        MetricsCounters {
            l1: self.l1,
            llc: self.llc,
            install_retries: self.install_retries,
            install_stalls: self.install_stalls,
        }
    }

    /// Restores counters captured by
    /// [`counters_snapshot`](Self::counters_snapshot).
    pub fn restore_counters(&mut self, snap: &MetricsCounters) {
        self.l1 = snap.l1;
        self.llc = snap.llc;
        self.install_retries = snap.install_retries;
        self.install_stalls = snap.install_stalls;
    }

    /// Pre-record mark for one class's latency histogram; pair with
    /// [`unrecord_latency`](Self::unrecord_latency).
    pub fn latency_mark(&self, class: RequestClass) -> sim_engine::HistogramMark {
        self.latency[class.index()].mark()
    }

    /// Reverses one [`record_latency`](Self::record_latency) (LIFO order
    /// only; see [`Histogram::unrecord`]).
    pub fn unrecord_latency(
        &mut self,
        class: RequestClass,
        cycles: u64,
        mark: sim_engine::HistogramMark,
    ) {
        self.latency[class.index()].unrecord(cycles, mark);
    }

    /// Iterates over non-zero L1 matrix cells as `(from, to, count)`.
    pub fn l1_nonzero(&self) -> impl Iterator<Item = (L1State, L1State, u64)> + '_ {
        L1State::ALL.into_iter().flat_map(move |from| {
            L1State::ALL.into_iter().filter_map(move |to| {
                let n = self.l1_transitions(from, to);
                (n > 0).then_some((from, to, n))
            })
        })
    }

    /// Iterates over non-zero LLC matrix cells as `(from, to, count)`.
    pub fn llc_nonzero(&self) -> impl Iterator<Item = (LlcState, LlcState, u64)> + '_ {
        LlcState::ALL.into_iter().flat_map(move |from| {
            LlcState::ALL.into_iter().filter_map(move |to| {
                let n = self.llc_transitions(from, to);
                (n > 0).then_some((from, to, n))
            })
        })
    }

    /// Merges another run's metrics into this one (for aggregating cores
    /// or repetitions).
    pub fn merge(&mut self, other: &ProtocolMetrics) {
        for (row, orow) in self.l1.iter_mut().zip(&other.l1) {
            for (cell, ocell) in row.iter_mut().zip(orow) {
                *cell += ocell;
            }
        }
        for (row, orow) in self.llc.iter_mut().zip(&other.llc) {
            for (cell, ocell) in row.iter_mut().zip(orow) {
                *cell += ocell;
            }
        }
        for (h, oh) in self.latency.iter_mut().zip(&other.latency) {
            h.merge(oh);
        }
        self.install_retries += other.install_retries;
        self.install_stalls += other.install_stalls;
    }

    /// Exports everything into `reg` under `prefix`: non-zero matrix cells
    /// as counters (`{prefix}transitions.l1.{from}->{to}`) and one latency
    /// histogram per class (`{prefix}latency.{class}`, always present so
    /// reports have a stable shape).
    pub fn export_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        for (from, to, n) in self.l1_nonzero() {
            reg.counter(&format!(
                "{prefix}transitions.l1.{}->{}",
                from.name(),
                to.name()
            ))
            .add(n);
        }
        for (from, to, n) in self.llc_nonzero() {
            reg.counter(&format!(
                "{prefix}transitions.llc.{}->{}",
                from.name(),
                to.name()
            ))
            .add(n);
        }
        for class in RequestClass::ALL {
            reg.insert(
                &format!("{prefix}latency.{}", class.name()),
                Metric::Histogram(self.latency(class).clone()),
            );
        }
        reg.counter(&format!("{prefix}install_retries"))
            .add(self.install_retries);
        reg.counter(&format!("{prefix}install_stalls"))
            .add(self.install_stalls);
    }

    /// The matrices as nested JSON objects (`{"from": {"to": count}}`,
    /// non-zero cells only) plus per-class latency summaries — the
    /// `coherence` section of a run snapshot.
    pub fn to_json(&self) -> Json {
        let matrix_json = |cells: Vec<(&'static str, &'static str, u64)>| {
            let mut rows: Vec<(String, Json)> = Vec::new();
            for (from, to, n) in cells {
                match rows.iter_mut().find(|(name, _)| name == from) {
                    Some((_, Json::Object(members))) => {
                        members.push((to.to_string(), Json::from(n)));
                    }
                    _ => {
                        rows.push((
                            from.to_string(),
                            Json::Object(vec![(to.to_string(), Json::from(n))]),
                        ));
                    }
                }
            }
            Json::Object(rows)
        };
        Json::object([
            (
                "l1_transitions",
                matrix_json(
                    self.l1_nonzero()
                        .map(|(f, t, n)| (f.name(), t.name(), n))
                        .collect(),
                ),
            ),
            (
                "llc_transitions",
                matrix_json(
                    self.llc_nonzero()
                        .map(|(f, t, n)| (f.name(), t.name(), n))
                        .collect(),
                ),
            ),
            (
                "latency",
                Json::Object(
                    RequestClass::ALL
                        .into_iter()
                        .map(|c| {
                            (
                                c.name().to_string(),
                                Metric::Histogram(self.latency(c).clone()).to_json(),
                            )
                        })
                        .collect(),
                ),
            ),
            ("install_retries", Json::from(self.install_retries)),
            ("install_stalls", Json::from(self.install_stalls)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_figure7_request_mix() {
        use AccessKind::{Load, Store};
        use RequestClass as C;
        let classify = |kind, before, wp, swiftdir, from| {
            RequestClass::classify(kind, before, wp, swiftdir, from)
        };
        assert_eq!(
            classify(Load, L1State::S, false, true, ServedFrom::L1),
            C::Hit
        );
        assert_eq!(
            classify(Load, L1State::I, false, true, ServedFrom::Memory),
            C::Gets
        );
        assert_eq!(
            classify(Load, L1State::I, true, true, ServedFrom::Llc),
            C::GetsWp
        );
        assert_eq!(
            classify(Load, L1State::I, true, false, ServedFrom::Llc),
            C::Gets,
            "non-SwiftDir protocols ignore the WP bit"
        );
        assert_eq!(
            classify(Store, L1State::I, false, true, ServedFrom::RemoteL1),
            C::Getx
        );
        assert_eq!(
            classify(Store, L1State::S, false, false, ServedFrom::Llc),
            C::Upgrade
        );
        assert_eq!(
            classify(Store, L1State::E, false, false, ServedFrom::Llc),
            C::Upgrade,
            "S-MESI explicit E->M is an upgrade"
        );
    }

    #[test]
    fn matrices_count_and_skip_self_transitions() {
        let mut m = ProtocolMetrics::default();
        m.record_l1(L1State::I, L1State::IsD);
        m.record_l1(L1State::IsD, L1State::E);
        m.record_l1(L1State::E, L1State::E); // self: ignored
        m.record_llc(LlcState::I, LlcState::E);
        m.record_llc(LlcState::S, LlcState::S); // self: ignored
        assert_eq!(m.l1_transitions(L1State::I, L1State::IsD), 1);
        assert_eq!(m.l1_total(), 2);
        assert_eq!(m.llc_total(), 1);
        assert_eq!(m.l1_installs(), 1);
    }

    #[test]
    fn export_names_are_stable() {
        let mut m = ProtocolMetrics::default();
        m.record_l1(L1State::E, L1State::M);
        m.record_latency(RequestClass::GetsWp, 17);
        let mut reg = MetricsRegistry::new();
        m.export_into(&mut reg, "coherence.");
        assert!(reg.get("coherence.transitions.l1.E->M").is_some());
        assert!(reg.get("coherence.latency.GETS_WP").is_some());
        assert!(
            reg.get("coherence.latency.GETX").is_some(),
            "empty classes still exported for stable report shape"
        );
        assert!(reg.get("coherence.transitions.l1.I->S").is_none());
    }

    #[test]
    fn json_matrix_is_nested_by_from_state() {
        let mut m = ProtocolMetrics::default();
        m.record_l1(L1State::I, L1State::IsD);
        m.record_l1(L1State::I, L1State::ImD);
        m.record_llc(LlcState::I, LlcState::M);
        let j = m.to_json();
        let l1 = j.get("l1_transitions").unwrap();
        let from_i = l1.get("I").unwrap();
        assert_eq!(from_i.get("IS_D").and_then(Json::as_u64), Some(1));
        assert_eq!(from_i.get("IM_D").and_then(Json::as_u64), Some(1));
        let llc = j.get("llc_transitions").unwrap();
        assert_eq!(
            llc.get("I").and_then(|r| r.get("M")).and_then(Json::as_u64),
            Some(1)
        );
        assert!(j.get("latency").and_then(|l| l.get("GETS_WP")).is_some());
    }

    #[test]
    fn merge_adds_cellwise() {
        let mut a = ProtocolMetrics::default();
        let mut b = ProtocolMetrics::default();
        a.record_l1(L1State::I, L1State::IsD);
        b.record_l1(L1State::I, L1State::IsD);
        b.record_latency(RequestClass::Gets, 17);
        a.merge(&b);
        assert_eq!(a.l1_transitions(L1State::I, L1State::IsD), 2);
        assert_eq!(a.latency(RequestClass::Gets).count(), 1);
    }
}
