//! Global coherence-invariant checking for stress testing.
//!
//! The [`Checker`] audits a [`Hierarchy`] from the outside after every
//! simulator event. It validates the structural invariants every
//! directory protocol must keep — single-writer-multiple-reader, the
//! directory's sharer tracking being a superset of the actual holders,
//! transient-state occupancy bounds — plus *data-value consistency*: a
//! golden memory model is replayed from the stream of [`Completion`]s
//! (stores write a unique value derived from their request id, loads
//! report what they observed), and any load that observes a value other
//! than the last serialized store to its block is flagged.
//!
//! The checker deliberately knows nothing about the hierarchy's internal
//! scheduling; it only reads controller state between events. That makes
//! it usable both from the fuzzer (after every [`Hierarchy::try_step`])
//! and from ordinary tests (after a run, via
//! [`Checker::check_quiescent`]).

use sim_engine::FxHashMap;
use swiftdir_mmu::PhysAddr;

use crate::hierarchy::{AccessKind, Completion, Hierarchy, LlcTxn, ProtocolError};
use crate::state::{L1State, LlcState};

/// An invariant violation, with the same diagnostic payload as a
/// [`ProtocolError`]: when the hierarchy has a ring tracer attached, the
/// offending block's recent event history rides along.
pub type Violation = ProtocolError;

/// One core's view of a block, as collected from the L1 arrays and
/// installing buffers.
struct Holder {
    core: usize,
    state: L1State,
    data: u64,
}

/// Audits global invariants over a [`Hierarchy`].
///
/// # Example
///
/// ```
/// use sim_engine::Cycle;
/// use swiftdir_coherence::check::Checker;
/// use swiftdir_coherence::{CoreRequest, Hierarchy, HierarchyConfig, ProtocolKind};
/// use swiftdir_mmu::PhysAddr;
///
/// let mut h = Hierarchy::new(HierarchyConfig::table_v(2, ProtocolKind::Mesi));
/// let mut checker = Checker::new();
/// h.issue(Cycle(0), 0, CoreRequest::store(PhysAddr(0x80)));
/// h.issue(Cycle(40), 1, CoreRequest::load(PhysAddr(0x80)));
/// while let Some(_) = h.try_step().expect("no protocol error") {
///     let done = h.drain_completions();
///     checker.after_event(&h, &done).expect("invariants hold");
/// }
/// checker.check_quiescent(&h).expect("quiescent state consistent");
/// ```
#[derive(Debug, Default, Clone)]
pub struct Checker {
    /// Golden memory model: the last store value serialized per block
    /// (absent = 0, the value uninitialized memory reads as).
    golden: FxHashMap<u64, u64>,
}

impl Checker {
    /// A checker with an all-zero golden memory.
    pub fn new() -> Self {
        Checker::default()
    }

    /// The golden value of `block` (0 when never stored to).
    pub fn golden(&self, block: u64) -> u64 {
        self.golden.get(&block).copied().unwrap_or(0)
    }

    /// Overwrites this checker's golden memory with `src`'s, reusing the
    /// map's allocation. Equivalent to `*self = src.clone()` without the
    /// fresh allocation — the undo-log walker calls this once per DFS step.
    pub fn assign_from(&mut self, src: &Checker) {
        self.golden.clone_from(&src.golden);
    }

    /// Audits the hierarchy after one simulator event. `completions` are
    /// the completions that event produced, in serialization order.
    ///
    /// # Errors
    ///
    /// The first violated invariant.
    pub fn after_event(
        &mut self,
        h: &Hierarchy,
        completions: &[Completion],
    ) -> Result<(), Box<Violation>> {
        self.replay_completions(h, completions)?;
        self.check_structure(h)
    }

    /// Replays completions into the golden model, flagging loads that
    /// observed a value other than the last serialized store.
    fn replay_completions(
        &mut self,
        h: &Hierarchy,
        completions: &[Completion],
    ) -> Result<(), Box<Violation>> {
        for c in completions {
            // Completions carry the full (word-per-block) address already.
            let block = block_of(h, c);
            match c.class.kind {
                AccessKind::Store => {
                    self.golden.insert(block, c.value);
                }
                AccessKind::Load => {
                    let want = self.golden(block);
                    if c.value != want {
                        return Err(violation(
                            h,
                            PhysAddr(block),
                            Some(c.core),
                            format!(
                                "load {} observed value {:#x}, golden model says {:#x}",
                                c.req, c.value, want
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The structural invariants: SWMR, directory-superset, transient
    /// bounds, and shared-data agreement.
    fn check_structure(&self, h: &Hierarchy) -> Result<(), Box<Violation>> {
        let cores = h.config().cores;
        let silent_e = h.config().protocol.silent_upgrade();

        // Collect every core's view of every block.
        let mut holders: FxHashMap<u64, Vec<Holder>> = FxHashMap::default();
        for core in 0..cores {
            let l1 = &h.l1s[core];
            for (block, line) in l1.array.iter() {
                if let Some(bad) = match line.state {
                    L1State::IsD | L1State::MiA | L1State::EiA => Some(line.state),
                    _ => None,
                } {
                    return Err(violation(
                        h,
                        PhysAddr(block),
                        Some(core),
                        format!("L1 array holds buffer-only state {bad}"),
                    ));
                }
                holders.entry(block).or_default().push(Holder {
                    core,
                    state: line.state,
                    data: line.data,
                });
            }
            for (block, ins) in l1.installing.iter() {
                if !matches!(ins.state, L1State::S | L1State::E | L1State::M) {
                    return Err(violation(
                        h,
                        PhysAddr(block),
                        Some(core),
                        format!("installing buffer holds non-stable grant {}", ins.state),
                    ));
                }
                holders.entry(block).or_default().push(Holder {
                    core,
                    state: ins.state,
                    data: ins.data,
                });
            }
            for (block, entry) in l1.wb_buffer.iter() {
                if !matches!(entry.state, L1State::MiA | L1State::EiA) {
                    return Err(violation(
                        h,
                        PhysAddr(block),
                        Some(core),
                        format!("wb_buffer holds non-eviction state {}", entry.state),
                    ));
                }
            }
            if l1.pending.len() > l1.pending.capacity() {
                return Err(violation(
                    h,
                    PhysAddr(0),
                    Some(core),
                    format!(
                        "MSHR occupancy {} exceeds capacity {}",
                        l1.pending.len(),
                        l1.pending.capacity()
                    ),
                ));
            }
            // An upgrade transient in the array must have a transaction
            // backing it, or it can never leave.
            for (block, line) in l1.array.iter() {
                if matches!(line.state, L1State::SmA | L1State::EmA | L1State::ImD)
                    && !l1.pending.contains(block)
                {
                    return Err(violation(
                        h,
                        PhysAddr(block),
                        Some(core),
                        format!("array transient {} has no pending transaction", line.state),
                    ));
                }
            }
        }

        for (&block, hs) in &holders {
            // --- single writer, multiple readers --------------------------
            let exclusive: Vec<&Holder> = hs
                .iter()
                .filter(|x| x.state == L1State::M || (silent_e && x.state == L1State::E))
                .collect();
            if exclusive.len() > 1 {
                return Err(violation(
                    h,
                    PhysAddr(block),
                    Some(exclusive[1].core),
                    format!(
                        "SWMR violated: cores {} and {} both hold the block exclusively ({} / {})",
                        exclusive[0].core,
                        exclusive[1].core,
                        exclusive[0].state,
                        exclusive[1].state
                    ),
                ));
            }
            if let Some(x) = exclusive.first() {
                if let Some(other) = hs.iter().find(|o| o.core != x.core && readable(o.state)) {
                    return Err(violation(
                        h,
                        PhysAddr(block),
                        Some(other.core),
                        format!(
                            "SWMR violated: core {} holds {} while core {} can still read it as {}",
                            x.core, x.state, other.core, other.state
                        ),
                    ));
                }
            }

            // --- directory sharer tracking ⊇ actual holders ---------------
            let Some(line) = h.llc_peek(block) else {
                if let Some(x) = hs.iter().find(|x| readable(x.state)) {
                    return Err(violation(
                        h,
                        PhysAddr(block),
                        Some(x.core),
                        format!(
                            "directory lost the block: core {} holds {} but the LLC has no line",
                            x.core, x.state
                        ),
                    ));
                }
                continue;
            };
            for x in hs.iter().filter(|x| readable(x.state)) {
                let tracked = line.sharers & (1 << x.core) != 0
                    || line.owner == Some(x.core)
                    || txn_requester(line.txn) == Some(x.core);
                if !tracked {
                    return Err(violation(
                        h,
                        PhysAddr(block),
                        Some(x.core),
                        format!(
                            "directory under-tracks: core {} holds {} but is neither sharer, \
                             owner, nor the in-flight requester",
                            x.core, x.state
                        ),
                    ));
                }
            }

            // --- shared data agreement ------------------------------------
            if line.state == LlcState::S && line.txn.is_none() {
                for x in hs {
                    match x.state {
                        L1State::S | L1State::SmA if x.data != line.data => {
                            return Err(violation(
                                h,
                                PhysAddr(block),
                                Some(x.core),
                                format!(
                                    "shared-data mismatch: core {} caches {:#x}, LLC has {:#x}",
                                    x.core, x.data, line.data
                                ),
                            ));
                        }
                        // Under explicit-upgrade protocols (S-MESI) an E
                        // copy legitimately coexists with LLC-S sharers —
                        // the holder must still announce the E→M upgrade —
                        // but its clean data must agree.
                        L1State::E if !silent_e && x.data != line.data => {
                            return Err(violation(
                                h,
                                PhysAddr(block),
                                Some(x.core),
                                format!(
                                    "clean-E data mismatch: core {} caches {:#x}, LLC has {:#x}",
                                    x.core, x.data, line.data
                                ),
                            ));
                        }
                        L1State::E if !silent_e => {}
                        L1State::E | L1State::M => {
                            return Err(violation(
                                h,
                                PhysAddr(block),
                                Some(x.core),
                                format!(
                                    "LLC believes the block is shared-clean but core {} holds {}",
                                    x.core, x.state
                                ),
                            ));
                        }
                        _ => {}
                    }
                }
            }
        }
        Ok(())
    }

    /// Quiescence audit: with no events left, every transient structure
    /// must be empty and every reachable copy of every block must agree
    /// with the golden model.
    ///
    /// # Errors
    ///
    /// The first residual transient or final-value mismatch.
    pub fn check_quiescent(&self, h: &Hierarchy) -> Result<(), Box<Violation>> {
        let stuck = h.debug_stuck();
        if !stuck.is_empty() {
            return Err(violation(
                h,
                PhysAddr(0),
                None,
                format!("residual transient state at quiescence:\n{stuck}"),
            ));
        }
        self.check_structure(h)?;

        for (&block, &want) in &self.golden {
            let got = self.final_value(h, block);
            if got != want {
                return Err(violation(
                    h,
                    PhysAddr(block),
                    None,
                    format!("final value {got:#x} does not match golden {want:#x}"),
                ));
            }
        }
        Ok(())
    }

    /// The block's value as the next reader would observe it: an owning
    /// L1 copy first, then the LLC, then the written-back DRAM image.
    fn final_value(&self, h: &Hierarchy, block: u64) -> u64 {
        for l1 in &h.l1s {
            if let Some(line) = l1.array.peek(block) {
                if matches!(line.state, L1State::M | L1State::E) {
                    return line.data;
                }
            }
        }
        if let Some(line) = h.llc_peek(block) {
            return line.data;
        }
        h.mem_image_get(block)
    }
}

/// States under which a core can still read the block without any
/// further coherence traffic.
fn readable(s: L1State) -> bool {
    s.load_hits()
}

/// The core a directory transaction is being performed for, if any: a
/// granted-but-not-yet-unblocked requester legitimately holds the line
/// before its sharer/owner bit is set.
fn txn_requester(txn: Option<LlcTxn>) -> Option<usize> {
    match txn? {
        LlcTxn::Fetch { requester, .. }
        | LlcTxn::AwaitUnblockS { requester }
        | LlcTxn::AwaitUnblockE { requester, .. }
        | LlcTxn::FwdLoad { requester, .. }
        | LlcTxn::FwdStore { requester, .. }
        | LlcTxn::Invalidating { requester, .. } => Some(requester),
        LlcTxn::Recall { .. } => None,
    }
}

/// The completion's block address.
fn block_of(_h: &Hierarchy, c: &Completion) -> u64 {
    c.block.0
}

fn violation(h: &Hierarchy, addr: PhysAddr, core: Option<usize>, detail: String) -> Box<Violation> {
    Box::new(ProtocolError {
        at: h.now(),
        addr,
        core,
        detail,
        history: h.history_for(addr),
    })
}
