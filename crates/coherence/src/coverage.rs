//! Tables I–III transition-coverage specification and gating.
//!
//! Each protocol admits a different slice of the paper's state machines:
//! MSI never touches the E states, only S-MESI uses the `EM_A` upgrade
//! transient, only SwiftDir issues `GETS_WP`. [`CoverageSpec`] encodes,
//! per [`ProtocolKind`], exactly which L1 (Table I) and LLC (Table II)
//! transitions and which Table III event classes are legal, and
//! [`CoverageSpec::check`] diffs an observed [`ObservedCoverage`] union
//! against that spec in both directions:
//!
//! * **soundness** — every observed transition/event is legal (an
//!   illegal observation means the simulator wandered off the paper's
//!   tables);
//! * **completeness** — every legal transition/event was observed (an
//!   uncovered entry means the test corpus failed to exercise part of
//!   the protocol).
//!
//! The `swiftdir-explore --coverage` gate requires both.

use std::fmt;

use crate::hierarchy::HierarchyStats;
use crate::msg::{CoherenceEvent, EventCounts};
use crate::protocol::ProtocolKind;
use crate::state::{L1State, LlcState};

/// A union of transition matrices and event counts accumulated across
/// any number of runs (fuzz seeds, explored schedules, protocols ran
/// separately and merged).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObservedCoverage {
    l1: Vec<((L1State, L1State), u64)>,
    llc: Vec<((LlcState, LlcState), u64)>,
    events: EventCounts,
}

impl ObservedCoverage {
    /// An empty union.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run's statistics into the union.
    pub fn add(&mut self, stats: &HierarchyStats) {
        for from in L1State::ALL {
            for to in L1State::ALL {
                let n = stats.protocol.l1_transitions(from, to);
                if n > 0 {
                    self.bump_l1(from, to, n);
                }
            }
        }
        for from in LlcState::ALL {
            for to in LlcState::ALL {
                let n = stats.protocol.llc_transitions(from, to);
                if n > 0 {
                    self.bump_llc(from, to, n);
                }
            }
        }
        self.events.merge(&stats.events);
    }

    fn bump_l1(&mut self, from: L1State, to: L1State, n: u64) {
        match self.l1.iter_mut().find(|(k, _)| *k == (from, to)) {
            Some((_, c)) => *c += n,
            None => self.l1.push(((from, to), n)),
        }
    }

    fn bump_llc(&mut self, from: LlcState, to: LlcState, n: u64) {
        match self.llc.iter_mut().find(|(k, _)| *k == (from, to)) {
            Some((_, c)) => *c += n,
            None => self.llc.push(((from, to), n)),
        }
    }

    /// Count of one L1 transition in the union.
    pub fn l1(&self, from: L1State, to: L1State) -> u64 {
        self.l1
            .iter()
            .find(|(k, _)| *k == (from, to))
            .map_or(0, |(_, c)| *c)
    }

    /// Count of one LLC transition in the union.
    pub fn llc(&self, from: LlcState, to: LlcState) -> u64 {
        self.llc
            .iter()
            .find(|(k, _)| *k == (from, to))
            .map_or(0, |(_, c)| *c)
    }

    /// Count of one event class in the union.
    pub fn event(&self, ev: CoherenceEvent) -> u64 {
        self.events.get(ev)
    }

    /// Folds another union into this one.
    pub fn merge(&mut self, other: &ObservedCoverage) {
        for &((from, to), n) in &other.l1 {
            self.bump_l1(from, to, n);
        }
        for &((from, to), n) in &other.llc {
            self.bump_llc(from, to, n);
        }
        self.events.merge(&other.events);
    }
}

/// The set of Table I–III transitions and events a protocol may legally
/// produce under this simulator's controller.
#[derive(Debug, Clone)]
pub struct CoverageSpec {
    /// The protocol the spec describes.
    pub protocol: ProtocolKind,
    l1: Vec<(L1State, L1State)>,
    llc: Vec<(LlcState, LlcState)>,
    events: Vec<CoherenceEvent>,
}

impl CoverageSpec {
    /// The legal transition/event sets for `protocol`.
    pub fn for_protocol(protocol: ProtocolKind) -> Self {
        use CoherenceEvent as Ev;
        use L1State::{EiA, EmA, ImD, IsD, MiA, SmA, E, I, M, S};

        let has_e = protocol != ProtocolKind::Msi;
        let silent = protocol.silent_upgrade() && has_e;
        let smesi = protocol == ProtocolKind::SMesi;

        // ---- Table I: L1 transitions --------------------------------
        // Shared by all four protocols: the MSI skeleton.
        let mut l1 = vec![
            (I, IsD), // load miss enters the MSHR transient
            (I, ImD), // store miss
            (IsD, S), // shared grant installs
            (ImD, M), // exclusive-for-store grant installs
            (S, SmA), // store hit on shared: Upgrade round trip
            (S, I),   // eviction notice / Inv / lost install race
            (SmA, M), // Upgrade_ACK
            (SmA, I), // upgrade raced an invalidation and lost
            // A store merged behind a shared grant that parked in the
            // installing buffer re-requests with GETX; if the S install
            // lands in the array before Data_Exclusive arrives, the
            // exclusive install replaces the line in place.
            (S, M),
            (M, S),   // Fwd_GETS demotes the dirty owner
            (M, MiA), // dirty eviction awaits WB_ACK
            (M, I),   // Fwd_GETX / Inv / recall
            (MiA, I), // WB_ACK closes the eviction handshake
        ];
        if has_e {
            l1.extend([
                (IsD, E), // initial load granted exclusively
                (E, EiA), // clean-exclusive eviction awaits WB_ACK
                (E, I),   // Fwd_GETX / Inv / recall
                (EiA, I), // WB_ACK closes the eviction handshake
                // Silent upgrade (MESI/SwiftDir), or S-MESI's directory-
                // acked store against an E grant still parked in the
                // installing buffer (the owner bit was already set, so
                // the LLC answers the GETX with a bare Upgrade_ACK).
                (E, M),
            ]);
        }
        if silent {
            // Only silently-upgrading protocols leave a stale-E owner
            // for the directory to forward loads to.
            l1.push((E, S));
        }
        if smesi {
            // Note: `EM_A → SM_A` (the Fwd_GETS-races-Upgrade_ACK demote)
            // exists in the controller but is unreachable under ordered
            // links: S-MESI only forwards GETS for M lines, the line only
            // becomes M after the Upgrade_ACK is queued, and the LLC→owner
            // link is FIFO — the forward can never overtake the ack.
            l1.extend([
                (E, EmA),   // explicit E→M upgrade request (paper Fig. 2)
                (EmA, M),   // Upgrade_ACK
                (EmA, ImD), // upgrade raced a remote store; needs data
                (EmA, I),   // upgrade raced an invalidation
            ]);
        }

        // ---- Table II: LLC transitions ------------------------------
        let mut llc = vec![
            (LlcState::I, LlcState::M), // store-miss fetch granted M
            (LlcState::S, LlcState::M), // GETX/Upgrade over shared copies
            (LlcState::S, LlcState::I), // eviction / recall
            (LlcState::M, LlcState::S), // GETS demotes the owner
            (LlcState::M, LlcState::I), // eviction / recall
        ];
        if protocol.initial_load_grant(false) == crate::protocol::InitialGrant::Shared
            || protocol == ProtocolKind::SwiftDir
        {
            // MSI grants every initial load S; SwiftDir does for WP loads.
            llc.push((LlcState::I, LlcState::S));
        }
        if has_e {
            llc.extend([
                (LlcState::I, LlcState::E), // load-miss fetch granted E
                (LlcState::S, LlcState::E), // copyless shared line re-granted E
                (LlcState::E, LlcState::S), // GETS demotes / owner evicts
                (LlcState::E, LlcState::M), // store over the E line
                (LlcState::E, LlcState::I), // recall of the exclusive copy
            ]);
        }

        // ---- Table III: event classes -------------------------------
        let mut events: Vec<Ev> = Ev::ALL.to_vec();
        if protocol != ProtocolKind::SwiftDir {
            events.retain(|e| *e != Ev::GetsWp);
        }

        CoverageSpec {
            protocol,
            l1,
            llc,
            events,
        }
    }

    /// Whether the L1 transition `from → to` is legal.
    pub fn l1_legal(&self, from: L1State, to: L1State) -> bool {
        self.l1.contains(&(from, to))
    }

    /// Whether the LLC transition `from → to` is legal.
    pub fn llc_legal(&self, from: LlcState, to: LlcState) -> bool {
        self.llc.contains(&(from, to))
    }

    /// Whether the event class is legal.
    pub fn event_legal(&self, ev: CoherenceEvent) -> bool {
        self.events.contains(&ev)
    }

    /// Number of legal L1 transitions.
    pub fn l1_len(&self) -> usize {
        self.l1.len()
    }

    /// Number of legal LLC transitions.
    pub fn llc_len(&self) -> usize {
        self.llc.len()
    }

    /// Number of legal event classes.
    pub fn events_len(&self) -> usize {
        self.events.len()
    }

    /// Diffs `observed` against the spec in both directions.
    pub fn check(&self, observed: &ObservedCoverage) -> CoverageReport {
        let mut r = CoverageReport {
            protocol: self.protocol,
            l1_legal: self.l1.len(),
            llc_legal: self.llc.len(),
            events_legal: self.events.len(),
            ..CoverageReport::default()
        };
        for &(from, to) in &self.l1 {
            if observed.l1(from, to) == 0 {
                r.uncovered_l1.push((from, to));
            }
        }
        for &((from, to), n) in &observed.l1 {
            if !self.l1_legal(from, to) {
                r.illegal_l1.push((from, to, n));
            }
        }
        for &(from, to) in &self.llc {
            if observed.llc(from, to) == 0 {
                r.uncovered_llc.push((from, to));
            }
        }
        for &((from, to), n) in &observed.llc {
            if !self.llc_legal(from, to) {
                r.illegal_llc.push((from, to, n));
            }
        }
        for &ev in &self.events {
            if observed.event(ev) == 0 {
                r.uncovered_events.push(ev);
            }
        }
        // `EventCounts::iter` yields non-zero classes in declaration
        // order, so the report is deterministic without sorting.
        for (ev, n) in observed.events.iter() {
            if !self.event_legal(ev) {
                r.illegal_events.push((ev, n));
            }
        }
        r
    }

    /// Convenience: checks a single run's statistics.
    pub fn check_stats(&self, stats: &HierarchyStats) -> CoverageReport {
        let mut obs = ObservedCoverage::new();
        obs.add(stats);
        self.check(&obs)
    }
}

/// The two-directional diff of observed coverage against a
/// [`CoverageSpec`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageReport {
    /// The protocol checked.
    pub protocol: ProtocolKind,
    /// Legal L1 transitions never observed.
    pub uncovered_l1: Vec<(L1State, L1State)>,
    /// Observed L1 transitions outside the spec, with counts.
    pub illegal_l1: Vec<(L1State, L1State, u64)>,
    /// Legal LLC transitions never observed.
    pub uncovered_llc: Vec<(LlcState, LlcState)>,
    /// Observed LLC transitions outside the spec, with counts.
    pub illegal_llc: Vec<(LlcState, LlcState, u64)>,
    /// Legal event classes never observed.
    pub uncovered_events: Vec<CoherenceEvent>,
    /// Observed event classes outside the spec, with counts.
    pub illegal_events: Vec<(CoherenceEvent, u64)>,
    /// Size of the legal L1 transition set.
    pub l1_legal: usize,
    /// Size of the legal LLC transition set.
    pub llc_legal: usize,
    /// Size of the legal event-class set.
    pub events_legal: usize,
}

impl CoverageReport {
    /// No observed transition or event fell outside the spec.
    pub fn is_sound(&self) -> bool {
        self.illegal_l1.is_empty() && self.illegal_llc.is_empty() && self.illegal_events.is_empty()
    }

    /// Every legal transition and event was observed at least once.
    pub fn is_complete(&self) -> bool {
        self.uncovered_l1.is_empty()
            && self.uncovered_llc.is_empty()
            && self.uncovered_events.is_empty()
    }

    /// Sound **and** complete.
    pub fn is_clean(&self) -> bool {
        self.is_sound() && self.is_complete()
    }

    /// Covered / legal counts as `(l1, llc, events)` pairs.
    pub fn covered(&self) -> [(usize, usize); 3] {
        [
            (self.l1_legal - self.uncovered_l1.len(), self.l1_legal),
            (self.llc_legal - self.uncovered_llc.len(), self.llc_legal),
            (
                self.events_legal - self.uncovered_events.len(),
                self.events_legal,
            ),
        ]
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [(l1c, l1t), (llcc, llct), (evc, evt)] = self.covered();
        writeln!(
            f,
            "{:?} coverage: L1 {l1c}/{l1t}, LLC {llcc}/{llct}, events {evc}/{evt} — {}",
            self.protocol,
            if self.is_clean() {
                "clean"
            } else if self.is_sound() {
                "incomplete"
            } else {
                "UNSOUND"
            }
        )?;
        for (from, to) in &self.uncovered_l1 {
            writeln!(f, "  uncovered L1  {:>4} -> {}", from.name(), to.name())?;
        }
        for (from, to) in &self.uncovered_llc {
            writeln!(f, "  uncovered LLC {:>4} -> {}", from.name(), to.name())?;
        }
        for ev in &self.uncovered_events {
            writeln!(f, "  uncovered event {}", ev.name())?;
        }
        for (from, to, n) in &self.illegal_l1 {
            writeln!(
                f,
                "  ILLEGAL L1  {:>4} -> {} ({n} times)",
                from.name(),
                to.name()
            )?;
        }
        for (from, to, n) in &self.illegal_llc {
            writeln!(
                f,
                "  ILLEGAL LLC {:>4} -> {} ({n} times)",
                from.name(),
                to.name()
            )?;
        }
        for (ev, n) in &self.illegal_events {
            writeln!(f, "  ILLEGAL event {} ({n} times)", ev.name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msi_spec_excludes_e_machinery() {
        let spec = CoverageSpec::for_protocol(ProtocolKind::Msi);
        assert!(!spec.l1_legal(L1State::IsD, L1State::E));
        assert!(!spec.l1_legal(L1State::E, L1State::M));
        assert!(!spec.l1_legal(L1State::E, L1State::EmA));
        assert!(!spec.llc_legal(LlcState::I, LlcState::E));
        assert!(spec.llc_legal(LlcState::I, LlcState::S));
        assert!(!spec.event_legal(CoherenceEvent::GetsWp));
    }

    #[test]
    fn only_swiftdir_admits_gets_wp() {
        for p in ProtocolKind::ALL {
            let spec = CoverageSpec::for_protocol(p);
            assert_eq!(
                spec.event_legal(CoherenceEvent::GetsWp),
                p == ProtocolKind::SwiftDir,
                "{p:?}"
            );
        }
    }

    #[test]
    fn ema_transient_is_smesi_only() {
        for p in ProtocolKind::ALL {
            let spec = CoverageSpec::for_protocol(p);
            assert_eq!(
                spec.l1_legal(L1State::E, L1State::EmA),
                p == ProtocolKind::SMesi,
                "{p:?}"
            );
        }
    }

    #[test]
    fn swiftdir_is_the_only_e_protocol_granting_initial_shared() {
        for p in [ProtocolKind::Mesi, ProtocolKind::SMesi] {
            assert!(!CoverageSpec::for_protocol(p).llc_legal(LlcState::I, LlcState::S));
        }
        assert!(
            CoverageSpec::for_protocol(ProtocolKind::SwiftDir).llc_legal(LlcState::I, LlcState::S)
        );
    }

    #[test]
    fn empty_observation_is_sound_but_incomplete() {
        let spec = CoverageSpec::for_protocol(ProtocolKind::SwiftDir);
        let report = spec.check(&ObservedCoverage::new());
        assert!(report.is_sound());
        assert!(!report.is_complete());
        assert_eq!(report.uncovered_l1.len(), spec.l1_len());
    }

    #[test]
    fn illegal_observation_is_flagged() {
        let spec = CoverageSpec::for_protocol(ProtocolKind::Msi);
        let mut stats = HierarchyStats::default();
        stats.protocol.record_l1(L1State::IsD, L1State::E);
        let report = spec.check_stats(&stats);
        assert!(!report.is_sound());
        assert_eq!(report.illegal_l1, vec![(L1State::IsD, L1State::E, 1)]);
    }
}
