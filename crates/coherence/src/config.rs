//! Hierarchy configuration: geometry and interconnect latencies.

use swiftdir_cache::{CacheGeometry, ReplacementPolicy};
use swiftdir_mem::DramConfig;

use crate::protocol::ProtocolKind;

/// Point-to-point latencies in CPU cycles.
///
/// Defaults are calibrated against the two anchor figures the paper uses:
///
/// * an L1-miss load served directly by the LLC completes in
///   `l1_lookup + l1_to_llc + llc_lookup + llc_to_l1` = 1+7+2+7 = **17
///   cycles** (Table V's 16-cycle L2 round trip plus the 1-cycle L1 probe;
///   Figure 6 centres there), and
/// * a directory-forwarded remote E-state load costs
///   `fwd_to_owner + owner_lookup + owner_to_requester − llc_to_l1`
///   = 7+4+22−7 = **26 additional cycles**, the Intel Xeon E/S gap
///   reported by Yao et al. and quoted in §I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 array lookup (Table V: 1-cycle round trip).
    pub l1_lookup: u64,
    /// Hop from an L1 to the LLC.
    pub l1_to_llc: u64,
    /// LLC array + directory lookup.
    pub llc_lookup: u64,
    /// Hop from the LLC back to an L1.
    pub llc_to_l1: u64,
    /// Hop from the LLC to an owning L1 (forwarded requests).
    pub fwd_to_owner: u64,
    /// Owner L1 probe + response injection.
    pub owner_lookup: u64,
    /// Cross-core L1→L1 data transfer.
    pub owner_to_requester: u64,
}

impl LatencyConfig {
    /// The calibrated defaults described on the type.
    pub fn calibrated() -> Self {
        LatencyConfig {
            l1_lookup: 1,
            l1_to_llc: 7,
            llc_lookup: 2,
            llc_to_l1: 7,
            fwd_to_owner: 7,
            owner_lookup: 4,
            owner_to_requester: 22,
        }
    }

    /// Latency of a load served directly from the LLC, as observed by the
    /// core (the Figure 6 anchor).
    pub fn llc_load_latency(&self) -> u64 {
        self.l1_lookup + self.l1_to_llc + self.llc_lookup + self.llc_to_l1
    }

    /// Extra latency of the three-hop owner-forwarded path over the direct
    /// LLC path (the E/S gap).
    pub fn forwarding_penalty(&self) -> u64 {
        self.fwd_to_owner + self.owner_lookup + self.owner_to_requester - self.llc_to_l1
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Full hierarchy configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// Number of cores (Table V: 1–4).
    pub cores: usize,
    /// Coherence protocol in force.
    pub protocol: ProtocolKind,
    /// Private L1 data-cache geometry (Table V: 32 KB, 4-way, 64 B).
    pub l1_geometry: CacheGeometry,
    /// Shared LLC geometry **per core bank** (Table V: 2 MB, 16-way).
    pub llc_bank_geometry: CacheGeometry,
    /// Replacement policy for both levels (Table V implies LRU).
    pub replacement: ReplacementPolicy,
    /// Outstanding-miss capacity per L1 (bounds OoO memory parallelism).
    pub l1_mshrs: usize,
    /// Interconnect latencies.
    pub latency: LatencyConfig,
    /// DRAM timing model.
    pub dram: DramConfig,
    /// Address-sharded LLC/directory banks (power of two). Each bank owns
    /// `1/banks` of the aggregate LLC capacity, its own MSHR/stall slabs,
    /// its own DRAM channel, and its own slice of the golden memory
    /// image; `bank_of` maps every block to exactly one bank.
    pub banks: usize,
    /// Per-hop latency of the 2D mesh NoC connecting cores and banks
    /// (cycles). `0` — the default — models a zero-cost crossbar and
    /// preserves the calibrated point-to-point latency anchors above.
    pub mesh_hop_latency: u64,
}

impl HierarchyConfig {
    /// The paper's Table V configuration for `cores` cores and the given
    /// protocol: 32 KB 4-way L1s, one 2 MB 16-way LLC bank per core, LRU,
    /// DDR3-1600.
    pub fn table_v(cores: usize, protocol: ProtocolKind) -> Self {
        assert!(cores >= 1, "at least one core");
        // Total LLC = 2 MB per core; geometry here is the aggregate shared
        // LLC (banked by address internally; a single array with the
        // aggregate capacity is timing-equivalent at our abstraction).
        // Rounded up to a power of two for index/tag extraction (matters
        // only for 3-core configurations).
        let llc_size = (2 * 1024 * 1024 * cores as u64).next_power_of_two();
        HierarchyConfig {
            cores,
            protocol,
            l1_geometry: CacheGeometry::table_v_l1(),
            llc_bank_geometry: CacheGeometry::new(llc_size, 16, 64),
            replacement: ReplacementPolicy::Lru,
            l1_mshrs: 16,
            latency: LatencyConfig::calibrated(),
            dram: DramConfig::ddr3_1600_8x8(),
            banks: 1,
            mesh_hop_latency: 0,
        }
    }

    /// Shards the LLC into `banks` address-interleaved directory banks.
    ///
    /// # Panics
    ///
    /// Panics unless `banks` is a power of two that divides the aggregate
    /// LLC into banks of at least one set each.
    pub fn with_banks(mut self, banks: usize) -> Self {
        assert!(
            banks.is_power_of_two(),
            "banks must be a power of two, got {banks}"
        );
        let geom = self.bank_geometry_for(banks);
        assert!(geom.num_sets() >= 1, "{banks} banks leave no sets per bank");
        self.banks = banks;
        self
    }

    /// Sets the per-hop mesh NoC latency (see `mesh_hop_latency`).
    pub fn with_mesh_hop_latency(mut self, cycles: u64) -> Self {
        self.mesh_hop_latency = cycles;
        self
    }

    /// Geometry of one directory bank: the aggregate LLC capacity split
    /// evenly, same associativity and block size.
    pub fn bank_geometry(&self) -> CacheGeometry {
        self.bank_geometry_for(self.banks)
    }

    fn bank_geometry_for(&self, banks: usize) -> CacheGeometry {
        CacheGeometry::new(
            self.llc_bank_geometry.size_bytes() / banks as u64,
            self.llc_bank_geometry.associativity(),
            self.llc_bank_geometry.block_bytes(),
        )
    }

    /// The directory bank owning `addr`'s block.
    ///
    /// Banks interleave on the address bits just above one bank's set
    /// index, so a bank's array indexes the full address with zero set
    /// aliasing: within one bank every set is reachable, and two blocks
    /// that differ only in their bank bits land in different banks.
    #[inline]
    pub fn bank_of(&self, addr: u64) -> usize {
        if self.banks == 1 {
            return 0;
        }
        let geom = self.bank_geometry();
        let shift = geom.offset_bits() + geom.index_bits();
        ((addr >> shift) as usize) & (self.banks - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_anchors() {
        let lat = LatencyConfig::calibrated();
        assert_eq!(lat.llc_load_latency(), 17, "Figure 6 anchor");
        assert_eq!(lat.forwarding_penalty(), 26, "Intel Xeon E/S gap");
    }

    #[test]
    fn table_v_config() {
        let cfg = HierarchyConfig::table_v(4, ProtocolKind::Mesi);
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.l1_geometry.size_bytes(), 32 * 1024);
        assert_eq!(cfg.llc_bank_geometry.size_bytes(), 8 * 1024 * 1024);
        assert_eq!(cfg.llc_bank_geometry.associativity(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        HierarchyConfig::table_v(0, ProtocolKind::Mesi);
    }

    #[test]
    fn bank_mapping_is_a_partition() {
        let cfg = HierarchyConfig::table_v(64, ProtocolKind::SwiftDir).with_banks(8);
        let geom = cfg.bank_geometry();
        assert_eq!(geom.size_bytes() * 8, cfg.llc_bank_geometry.size_bytes());
        // Every block maps to exactly one bank, and consecutive set-groups
        // rotate through all banks.
        let group = geom.block_bytes() * geom.num_sets();
        let mut seen = [false; 8];
        for g in 0..16u64 {
            let b = cfg.bank_of(g * group);
            assert!(b < 8);
            seen[b] = true;
            // All blocks inside one set-group share the bank.
            assert_eq!(cfg.bank_of(g * group + 64), b);
            assert_eq!(cfg.bank_of(g * group + group - 64), b);
        }
        assert!(seen.iter().all(|&s| s), "some bank owns no set-group");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_banks_rejected() {
        let _ = HierarchyConfig::table_v(4, ProtocolKind::Mesi).with_banks(3);
    }
}
