//! Hierarchy configuration: geometry and interconnect latencies.

use swiftdir_cache::{CacheGeometry, ReplacementPolicy};
use swiftdir_mem::DramConfig;

use crate::protocol::ProtocolKind;

/// Point-to-point latencies in CPU cycles.
///
/// Defaults are calibrated against the two anchor figures the paper uses:
///
/// * an L1-miss load served directly by the LLC completes in
///   `l1_lookup + l1_to_llc + llc_lookup + llc_to_l1` = 1+7+2+7 = **17
///   cycles** (Table V's 16-cycle L2 round trip plus the 1-cycle L1 probe;
///   Figure 6 centres there), and
/// * a directory-forwarded remote E-state load costs
///   `fwd_to_owner + owner_lookup + owner_to_requester − llc_to_l1`
///   = 7+4+22−7 = **26 additional cycles**, the Intel Xeon E/S gap
///   reported by Yao et al. and quoted in §I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 array lookup (Table V: 1-cycle round trip).
    pub l1_lookup: u64,
    /// Hop from an L1 to the LLC.
    pub l1_to_llc: u64,
    /// LLC array + directory lookup.
    pub llc_lookup: u64,
    /// Hop from the LLC back to an L1.
    pub llc_to_l1: u64,
    /// Hop from the LLC to an owning L1 (forwarded requests).
    pub fwd_to_owner: u64,
    /// Owner L1 probe + response injection.
    pub owner_lookup: u64,
    /// Cross-core L1→L1 data transfer.
    pub owner_to_requester: u64,
}

impl LatencyConfig {
    /// The calibrated defaults described on the type.
    pub fn calibrated() -> Self {
        LatencyConfig {
            l1_lookup: 1,
            l1_to_llc: 7,
            llc_lookup: 2,
            llc_to_l1: 7,
            fwd_to_owner: 7,
            owner_lookup: 4,
            owner_to_requester: 22,
        }
    }

    /// Latency of a load served directly from the LLC, as observed by the
    /// core (the Figure 6 anchor).
    pub fn llc_load_latency(&self) -> u64 {
        self.l1_lookup + self.l1_to_llc + self.llc_lookup + self.llc_to_l1
    }

    /// Extra latency of the three-hop owner-forwarded path over the direct
    /// LLC path (the E/S gap).
    pub fn forwarding_penalty(&self) -> u64 {
        self.fwd_to_owner + self.owner_lookup + self.owner_to_requester - self.llc_to_l1
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Full hierarchy configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// Number of cores (Table V: 1–4).
    pub cores: usize,
    /// Coherence protocol in force.
    pub protocol: ProtocolKind,
    /// Private L1 data-cache geometry (Table V: 32 KB, 4-way, 64 B).
    pub l1_geometry: CacheGeometry,
    /// Shared LLC geometry **per core bank** (Table V: 2 MB, 16-way).
    pub llc_bank_geometry: CacheGeometry,
    /// Replacement policy for both levels (Table V implies LRU).
    pub replacement: ReplacementPolicy,
    /// Outstanding-miss capacity per L1 (bounds OoO memory parallelism).
    pub l1_mshrs: usize,
    /// Interconnect latencies.
    pub latency: LatencyConfig,
    /// DRAM timing model.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    /// The paper's Table V configuration for `cores` cores and the given
    /// protocol: 32 KB 4-way L1s, one 2 MB 16-way LLC bank per core, LRU,
    /// DDR3-1600.
    pub fn table_v(cores: usize, protocol: ProtocolKind) -> Self {
        assert!(cores >= 1, "at least one core");
        // Total LLC = 2 MB per core; geometry here is the aggregate shared
        // LLC (banked by address internally; a single array with the
        // aggregate capacity is timing-equivalent at our abstraction).
        // Rounded up to a power of two for index/tag extraction (matters
        // only for 3-core configurations).
        let llc_size = (2 * 1024 * 1024 * cores as u64).next_power_of_two();
        HierarchyConfig {
            cores,
            protocol,
            l1_geometry: CacheGeometry::table_v_l1(),
            llc_bank_geometry: CacheGeometry::new(llc_size, 16, 64),
            replacement: ReplacementPolicy::Lru,
            l1_mshrs: 16,
            latency: LatencyConfig::calibrated(),
            dram: DramConfig::ddr3_1600_8x8(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_anchors() {
        let lat = LatencyConfig::calibrated();
        assert_eq!(lat.llc_load_latency(), 17, "Figure 6 anchor");
        assert_eq!(lat.forwarding_penalty(), 26, "Intel Xeon E/S gap");
    }

    #[test]
    fn table_v_config() {
        let cfg = HierarchyConfig::table_v(4, ProtocolKind::Mesi);
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.l1_geometry.size_bytes(), 32 * 1024);
        assert_eq!(cfg.llc_bank_geometry.size_bytes(), 8 * 1024 * 1024);
        assert_eq!(cfg.llc_bank_geometry.associativity(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        HierarchyConfig::table_v(0, ProtocolKind::Mesi);
    }
}
