//! Stable and transient coherence states (paper Tables I and II).

use std::fmt;

/// L1 cache-line states: the four stable MESI states plus the transient
/// states of paper Table I (and the eviction-handshake transients the
/// protocol needs for forward-progress).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1State {
    /// Invalid (or not present).
    #[default]
    I,
    /// Shared: clean, possibly other copies exist.
    S,
    /// Exclusive: clean, the only cached copy.
    E,
    /// Modified: dirty, the only valid copy.
    M,
    /// I→S/E, waiting for a Data response (`IS^D`, Table I). Ends in E if
    /// the response carries exclusivity.
    IsD,
    /// I→M, waiting for data with ownership (store miss).
    ImD,
    /// S→M, waiting for the LLC's upgrade ACK.
    SmA,
    /// E→M, waiting for the LLC's ACK (`EM^A`, Table I — S-MESI only).
    EmA,
    /// M→I, waiting for the LLC's writeback ACK (still owns the data and
    /// answers forwards while here).
    MiA,
    /// E→I, waiting for the LLC's writeback ACK.
    EiA,
}

impl L1State {
    /// Every L1 state, in [`L1State::index`] order (rows/columns of the
    /// transition-count matrix).
    pub const ALL: [L1State; Self::COUNT] = [
        L1State::I,
        L1State::S,
        L1State::E,
        L1State::M,
        L1State::IsD,
        L1State::ImD,
        L1State::SmA,
        L1State::EmA,
        L1State::MiA,
        L1State::EiA,
    ];

    /// Number of L1 states (stable + transient).
    pub const COUNT: usize = 10;

    /// Dense index of this state into [`L1State::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// The Table I / Table II display name as a static string (what the
    /// tracer and metrics snapshots use).
    pub fn name(self) -> &'static str {
        match self {
            L1State::I => "I",
            L1State::S => "S",
            L1State::E => "E",
            L1State::M => "M",
            L1State::IsD => "IS_D",
            L1State::ImD => "IM_D",
            L1State::SmA => "SM_A",
            L1State::EmA => "EM_A",
            L1State::MiA => "MI_A",
            L1State::EiA => "EI_A",
        }
    }

    /// Whether this is one of the four stable states.
    pub fn is_stable(self) -> bool {
        matches!(self, L1State::I | L1State::S | L1State::E | L1State::M)
    }

    /// Whether a local load hits in this state.
    pub fn load_hits(self) -> bool {
        matches!(self, L1State::S | L1State::E | L1State::M)
    }

    /// Whether the line holds valid data (stable or eviction-pending).
    pub fn has_data(self) -> bool {
        matches!(
            self,
            L1State::S | L1State::E | L1State::M | L1State::MiA | L1State::EiA
        )
    }

    /// Whether the line's data is dirty with respect to the LLC.
    pub fn is_dirty(self) -> bool {
        matches!(self, L1State::M | L1State::MiA)
    }
}

impl fmt::Display for L1State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The stable class of an LLC directory line, reported in completions so
/// experiments can classify accesses (e.g. Figure 6's `Load(L1I&L2S)`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlcState {
    /// Not present.
    #[default]
    I,
    /// Present, clean, served directly from the LLC.
    S,
    /// Present, one core holds it exclusively; LLC data possibly stale
    /// under silent upgrade.
    E,
    /// One core holds it modified (explicitly known to the LLC).
    M,
}

impl LlcState {
    /// Every LLC state, in [`LlcState::index`] order.
    pub const ALL: [LlcState; Self::COUNT] = [LlcState::I, LlcState::S, LlcState::E, LlcState::M];

    /// Number of LLC directory states.
    pub const COUNT: usize = 4;

    /// Dense index of this state into [`LlcState::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// The display name as a static string.
    pub fn name(self) -> &'static str {
        match self {
            LlcState::I => "I",
            LlcState::S => "S",
            LlcState::E => "E",
            LlcState::M => "M",
        }
    }
}

impl fmt::Display for LlcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_classification() {
        assert!(L1State::I.is_stable());
        assert!(L1State::M.is_stable());
        assert!(!L1State::IsD.is_stable());
        assert!(!L1State::EmA.is_stable());
    }

    #[test]
    fn hit_rules() {
        assert!(L1State::S.load_hits());
        assert!(L1State::E.load_hits());
        assert!(L1State::M.load_hits());
        assert!(!L1State::I.load_hits());
        assert!(!L1State::IsD.load_hits());
    }

    #[test]
    fn data_and_dirtiness() {
        assert!(
            L1State::MiA.has_data(),
            "evicting M line still answers forwards"
        );
        assert!(L1State::MiA.is_dirty());
        assert!(L1State::EiA.has_data());
        assert!(!L1State::EiA.is_dirty());
        assert!(!L1State::IsD.has_data());
    }

    #[test]
    fn index_matches_all_order() {
        for (i, s) in L1State::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, s) in LlcState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn display_names_match_tables() {
        assert_eq!(L1State::IsD.to_string(), "IS_D");
        assert_eq!(L1State::EmA.to_string(), "EM_A");
        assert_eq!(LlcState::M.to_string(), "M");
        assert_eq!(L1State::default(), L1State::I);
        assert_eq!(LlcState::default(), LlcState::I);
    }
}
