//! Directory-based cache coherence: MESI, S-MESI, SwiftDir, and MSI.
//!
//! This crate implements the two-level protocol of the paper (private L1s,
//! shared LLC with an integrated directory, DRAM behind the LLC) as a
//! deterministic transaction-level state machine:
//!
//! * [`msg`] — the coherence messages of paper Table III, including the
//!   single request SwiftDir adds, **`GETS_WP`**.
//! * [`state`] — stable and transient states for L1 (Table I) and LLC
//!   (Table II).
//! * [`protocol`] — [`ProtocolKind`] and the three policy decisions that
//!   distinguish the protocols: what an initial load is granted, whether
//!   E→M upgrades silently, and whether the LLC may serve E-state data
//!   directly.
//! * [`config`] — hierarchy geometry and interconnect latencies, tuned so
//!   an LLC-served load costs ≈17 cycles and a directory-forwarded remote
//!   E-state load ≈26 cycles more, matching the measurements the paper
//!   builds on.
//! * [`hierarchy`] — the [`Hierarchy`]: cores issue timed requests, the
//!   event queue drives the controllers, completions report latency and
//!   the access class (which L1/LLC states served it).
//! * [`check`] — the [`Checker`]: global invariant auditing (SWMR,
//!   directory-superset sharer tracking, transient-occupancy bounds, and
//!   a golden-memory data-value model) used by the stress fuzzer after
//!   every simulated event.
//!
//! # Example
//!
//! ```
//! use sim_engine::Cycle;
//! use swiftdir_coherence::{CoreRequest, Hierarchy, HierarchyConfig, ProtocolKind};
//! use swiftdir_mmu::PhysAddr;
//!
//! let mut hier = Hierarchy::new(HierarchyConfig::table_v(2, ProtocolKind::SwiftDir));
//! // Core 0 loads a write-protected block.
//! hier.issue(Cycle(0), 0, CoreRequest::load(PhysAddr(0x1000)).write_protected());
//! let done = hier.run_until_idle();
//! assert_eq!(done.len(), 1);
//! ```

pub mod check;
pub mod config;
pub mod coverage;
pub mod hierarchy;
pub mod metrics;
pub mod msg;
mod parallel;
pub mod protocol;
mod slab;
pub mod state;

pub use check::{Checker, Violation};
pub use config::{HierarchyConfig, LatencyConfig};
pub use coverage::{CoverageReport, CoverageSpec, ObservedCoverage};
pub use hierarchy::{
    AccessClass, AccessKind, Choice, ChoiceKind, Completion, CoreRequest, Hierarchy,
    HierarchyStats, ProtocolError, RequestId, ServedFrom,
};
pub use metrics::{ProtocolMetrics, RequestClass};
pub use msg::{CoherenceEvent, EventCounts, Msg};
pub use protocol::ProtocolKind;
pub use state::{L1State, LlcState};
