//! The two-level coherent cache hierarchy: per-core L1 controllers, a
//! shared LLC with integrated directory, and DRAM behind it.
//!
//! The state machine follows gem5's `MESI_Two_Level` shape, simplified to
//! a blocking directory: a line with a transaction in flight stalls new
//! requests (they queue and replay on unblock). Sharer tracking is
//! *conservative* — a core may stay listed after silently dropping a clean
//! line, and an `Inv` to a non-holder is simply acknowledged — which keeps
//! every race benign while preserving the single-writer invariant.

use std::collections::VecDeque;
use std::fmt;

use sim_engine::tracer::{TraceEvent, TraceKind, Tracer, Unit};
use sim_engine::{
    Cycle, EventQueue, FxHashMap, HistogramMark, LinkJitter, MeshEndpoint, MeshTopology, PopOrigin,
    QueueMark,
};
use swiftdir_cache::{CacheArray, CacheGeometry};
use swiftdir_mem::{MemUndo, MemoryController};
use swiftdir_mmu::PhysAddr;

use crate::config::HierarchyConfig;
use crate::metrics::{MetricsCounters, ProtocolMetrics, RequestClass};
use crate::msg::{CoherenceEvent, EventCounts, Msg};
use crate::protocol::{InitialGrant, ProtocolKind};
use crate::slab::{BlockMap, MshrTable};
use crate::state::{L1State, LlcState};

/// Identifier of one core-issued memory request.
pub type RequestId = u64;

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data load.
    Load,
    /// Data store.
    Store,
}

/// A memory request as issued by a core (after address translation: the
/// physical address and the PTE's write-protection bit travel together,
/// which is SwiftDir's transport for the WP signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreRequest {
    /// Physical address (any byte within the target block).
    pub addr: PhysAddr,
    /// Load or store.
    pub kind: AccessKind,
    /// The MMU-provided write-protection bit.
    pub write_protected: bool,
}

impl CoreRequest {
    /// A load request.
    pub fn load(addr: PhysAddr) -> Self {
        CoreRequest {
            addr,
            kind: AccessKind::Load,
            write_protected: false,
        }
    }

    /// A store request.
    pub fn store(addr: PhysAddr) -> Self {
        CoreRequest {
            addr,
            kind: AccessKind::Store,
            write_protected: false,
        }
    }

    /// Marks the request as targeting write-protected data.
    #[must_use]
    pub fn write_protected(mut self) -> Self {
        self.write_protected = true;
        self
    }
}

/// Which component ultimately supplied the data / permission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedFrom {
    /// Local L1 hit.
    L1,
    /// Served directly from the LLC.
    Llc,
    /// LLC missed; DRAM supplied the block.
    Memory,
    /// A remote L1 (owner) supplied the block.
    RemoteL1,
}

impl ServedFrom {
    /// Stable display name (tracer/report label).
    pub fn name(self) -> &'static str {
        match self {
            ServedFrom::L1 => "L1",
            ServedFrom::Llc => "LLC",
            ServedFrom::Memory => "Memory",
            ServedFrom::RemoteL1 => "RemoteL1",
        }
    }
}

/// Classification of a completed access, sufficient to reproduce the
/// paper's latency taxonomy (e.g. Figure 6's `Load(L1I&L2S)` and
/// `Load_WP(L1I&L2S)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessClass {
    /// Load or store.
    pub kind: AccessKind,
    /// L1 state when the request arrived (stable).
    pub l1_before: L1State,
    /// LLC directory state when the request reached it (`None` for L1 hits).
    pub llc_before: Option<LlcState>,
    /// The request's write-protection bit.
    pub write_protected: bool,
}

/// A finished memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request's id (as returned by [`Hierarchy::issue`]).
    pub req: RequestId,
    /// The issuing core.
    pub core: usize,
    /// The block the access targeted (block-aligned).
    pub block: PhysAddr,
    /// When the request entered the L1.
    pub issued_at: Cycle,
    /// When the data/permission reached the core.
    pub done_at: Cycle,
    /// Access classification.
    pub class: AccessClass,
    /// Who supplied the data.
    pub served_from: ServedFrom,
    /// The value the access observed (loads) or wrote (stores), in the
    /// modelled one-word-per-block data image. Stores write a value
    /// derived from their request id; loads report the block's current
    /// contents, which the invariant checker audits against a golden
    /// memory model.
    pub value: u64,
}

impl Completion {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.done_at.saturating_since(self.issued_at)
    }
}

/// Aggregate statistics of a hierarchy run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Message counts by Table III event class.
    pub events: EventCounts,
    /// L1 load/store hits.
    pub l1_hits: u64,
    /// L1 misses (primary, excluding MSHR merges).
    pub l1_misses: u64,
    /// Requests that found their block's MSHR already allocated.
    pub mshr_merges: u64,
    /// LLC recalls (inclusion-victim invalidations).
    pub recalls: u64,
    /// Silent E→M upgrades performed in L1s.
    pub silent_upgrades: u64,
    /// Total simulator events dispatched (the denominator of event
    /// throughput in driver reports).
    pub dispatched: u64,
    /// Transition-count matrices and per-class latency histograms.
    pub protocol: ProtocolMetrics,
}

impl HierarchyStats {
    /// Count of one event class.
    pub fn event(&self, e: CoherenceEvent) -> u64 {
        self.events.get(e)
    }

    /// Accumulates another lane's statistics. Every field is a counter
    /// sum or histogram-bucket add, so merging is commutative and
    /// associative — the parallel tick's per-worker stats fold into the
    /// exact totals the serial tick accumulates, in any merge order.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.events.merge(&other.events);
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.mshr_merges += other.mshr_merges;
        self.recalls += other.recalls;
        self.silent_upgrades += other.silent_upgrades;
        self.dispatched += other.dispatched;
        self.protocol.merge(&other.protocol);
    }
}

// ---------------------------------------------------------------------------
// internal structures
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingReq {
    id: RequestId,
    block: PhysAddr,
    kind: AccessKind,
    wp: bool,
    issued_at: Cycle,
    l1_before: L1State,
}

#[derive(Debug, Clone, Copy, Hash)]
pub(crate) struct L1Line {
    pub(crate) state: L1State,
    pub(crate) data: u64,
}

/// A granted line that has arrived at the L1 but not yet landed in the
/// array (every way of its set was mid-transaction). The entry is the
/// single source of truth for the grant: a racing `Inv` or forward
/// between the grant and the eventual install updates or cancels it here,
/// so the install can never resurrect a state the protocol has since
/// revoked.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingInstall {
    pub(crate) state: L1State,
    pub(crate) data: u64,
}

/// An evicted E/M line awaiting the LLC's writeback ack.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WbEntry {
    pub(crate) state: L1State,
    pub(crate) data: u64,
}

/// One L1 controller's private state.
#[derive(Debug, Clone)]
pub(crate) struct L1 {
    pub(crate) array: CacheArray<L1Line>,
    /// Blocks with an outstanding L1 transaction → queued requests
    /// (index 0 is the primary that created the transaction). Slab slots:
    /// capacity is the architectural MSHR count, and request vectors are
    /// recycled across transactions.
    pub(crate) pending: MshrTable<PendingReq>,
    /// Evicted E/M lines awaiting the LLC's writeback ack; they still
    /// answer forwarded requests from here.
    pub(crate) wb_buffer: BlockMap<WbEntry>,
    /// Granted lines waiting for an eligible way (see [`PendingInstall`]).
    pub(crate) installing: BlockMap<PendingInstall>,
    /// Blocks whose install exhausted its retry budget; woken when a way
    /// in their set becomes eligible.
    pub(crate) stalled_installs: Vec<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum LlcTxn {
    /// Waiting for DRAM data.
    Fetch {
        requester: usize,
        req: RequestId,
        for_store: bool,
        grant_shared: bool,
    },
    /// Data sent; waiting for `Unblock`.
    AwaitUnblockS { requester: usize },
    /// Exclusive data sent; waiting for `Exclusive_Unblock`.
    AwaitUnblockE { requester: usize, final_m: bool },
    /// `Fwd_GETS` sent to the owner; waiting for the owner's writeback and
    /// the requester's `Unblock`.
    FwdLoad {
        requester: usize,
        wb_done: bool,
        unblock_done: bool,
    },
    /// `Fwd_GETX` sent to the owner; waiting for the owner's ack/writeback
    /// and the requester's `Exclusive_Unblock`.
    FwdStore {
        requester: usize,
        wb_done: bool,
        unblock_done: bool,
    },
    /// Invalidating sharers before granting ownership. `pending` is a
    /// bitmask of cores whose acks are outstanding.
    Invalidating {
        requester: usize,
        req: RequestId,
        pending: u64,
        /// Send data with the grant (GETX) vs a bare ack (Upgrade).
        with_data: bool,
        llc_was: LlcState,
    },
    /// Recalling all private copies so the line can be evicted.
    Recall { pending: u64 },
}

#[derive(Debug, Clone, Hash)]
pub(crate) struct LlcLine {
    pub(crate) state: LlcState,
    pub(crate) sharers: u64,
    pub(crate) owner: Option<usize>,
    /// LLC data differs from memory (writeback needed on eviction).
    pub(crate) dirty: bool,
    pub(crate) txn: Option<LlcTxn>,
    /// Requests stalled on this line while a transaction is in flight.
    pub(crate) waiters: VecDeque<Msg>,
    /// The block's (modelled) contents as last known to the LLC.
    pub(crate) data: u64,
}

impl LlcLine {
    fn fresh() -> Self {
        LlcLine {
            state: LlcState::I,
            sharers: 0,
            owner: None,
            dirty: false,
            txn: None,
            waiters: VecDeque::new(),
            data: 0,
        }
    }

    fn has_copies(&self) -> bool {
        self.sharers != 0 || self.owner.is_some()
    }
}

/// One address-sharded LLC/directory bank: a slice of the aggregate LLC
/// array plus that slice's set stalls, DRAM channel, and golden memory
/// image. Banks share nothing, which is what lets the parallel tick
/// dispatch into different banks concurrently.
#[derive(Debug, Clone)]
pub(crate) struct LlcBank {
    pub(crate) array: CacheArray<LlcLine>,
    /// Requests stalled because their LLC set had no eligible victim,
    /// keyed by bank-local set index.
    pub(crate) set_stalls: FxHashMap<u64, VecDeque<Msg>>,
    /// This bank's DRAM channel.
    pub(crate) mem: MemoryController,
    /// Golden DRAM image for this bank's blocks (absent = 0).
    pub(crate) mem_image: FxHashMap<u64, u64>,
}

/// An indexable view of one domain slice (`Vec<L1>` / `Vec<LlcBank>`)
/// that a [`Lane`] dispatches into.
///
/// Serially it is a plain reborrow of the whole slice. In the parallel
/// tick every worker holds a view of the *same* slice, and exclusivity
/// is by protocol instead of by type: the round partitioner hands each
/// domain (one core's L1, one LLC bank) to at most one worker, and a
/// lane only ever indexes the domains of events it was handed. Raw
/// pointers (rather than overlapping `&mut [T]`, which would be
/// immediate UB) keep that aliasing legal; the generalization of
/// `split_at_mut` to an arbitrary partition.
pub(crate) struct DomainVec<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

impl<'a, T> DomainVec<'a, T> {
    /// The serial view: exclusive over the whole slice.
    pub(crate) fn full(slice: &'a mut [T]) -> Self {
        DomainVec {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// An aliasing view for one parallel worker.
    ///
    /// # Safety
    ///
    /// `ptr..ptr + len` must stay valid (and un-moved) for `'a`, and no
    /// two concurrently live views may index the same element — the
    /// round partitioner's domain-claim protocol.
    pub(crate) unsafe fn alias(ptr: *mut T, len: usize) -> Self {
        DomainVec {
            ptr,
            len,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T> std::ops::Index<usize> for DomainVec<'_, T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        assert!(i < self.len, "domain {i} out of range ({})", self.len);
        unsafe { &*self.ptr.add(i) }
    }
}

impl<T> std::ops::IndexMut<usize> for DomainVec<'_, T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len, "domain {i} out of range ({})", self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

// SAFETY: views move to workers only under the claim protocol above, and
// the underlying elements are plain owned data.
unsafe impl<T: Send> Send for DomainVec<'_, T> {}

/// Everything one dispatched event may touch, split out of [`Hierarchy`]
/// so the same handler code serves both the serial tick (one lane over
/// all domains) and the parallel tick (one lane per worker, restricted by
/// the claim protocol to the domains it was handed).
///
/// Handlers never schedule into the event queue directly: sends collect
/// in `sends` in emission order and the caller drains them, which is what
/// makes a round of concurrently dispatched events mergeable into the
/// exact serial schedule order.
pub(crate) struct Lane<'a> {
    pub(crate) cfg: &'a HierarchyConfig,
    pub(crate) mesh: MeshTopology,
    pub(crate) l1s: DomainVec<'a, L1>,
    pub(crate) banks: DomainVec<'a, LlcBank>,
    pub(crate) stats: &'a mut HierarchyStats,
    pub(crate) completions: &'a mut Vec<Completion>,
    pub(crate) sends: &'a mut Vec<(Cycle, Event)>,
    pub(crate) finish_scratch: &'a mut Vec<PendingReq>,
    pub(crate) tracer: &'a mut Tracer,
    pub(crate) jitter: Option<&'a mut LinkJitter>,
    /// When the undo log is armed: the top frame's latency-record journal
    /// (completions log histogram marks there so undo can reverse them).
    pub(crate) undo_lat: Option<&'a mut Vec<(RequestClass, u64, HistogramMark)>>,
}

#[derive(Debug, Clone)]
pub(crate) enum Event {
    /// A core request arrives at its L1.
    CoreReq { core: usize, req: PendingReq },
    /// A message arrives at the LLC.
    ToLlc(Msg),
    /// A message arrives at core `core`'s L1 from `src` (`None` = the LLC,
    /// `Some(owner)` for L1→L1 `DataFromOwner` hops). The source names the
    /// network link the message rides, which the schedule explorer uses to
    /// keep per-link FIFO order when enumerating delivery choices.
    ToL1 {
        core: usize,
        src: Option<usize>,
        msg: Msg,
    },
    /// DRAM data for `addr` arrives back at the LLC.
    MemDone { addr: PhysAddr },
    /// Retry an L1 data insertion that found no eligible victim.
    L1InsertRetry {
        core: usize,
        block: PhysAddr,
        attempt: u32,
    },
}

/// What kind of simulator event a schedule [`Choice`] would deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChoiceKind {
    /// A core request arriving at its L1 (per-core program order).
    CoreReq,
    /// An L1→LLC message.
    ToLlc,
    /// A message arriving at an L1 (from the LLC or a remote owner).
    ToL1,
    /// DRAM data returning to the LLC.
    MemDone,
    /// An L1 install retry timer firing.
    InstallRetry,
}

/// One deliverable next event, as exposed to schedule exploration by
/// [`Hierarchy::frontier_choices`].
///
/// Only per-link FIFO heads are offered: a message can never overtake an
/// earlier message on the same source→destination link, which is the
/// ordering the protocol itself relies on (e.g. a `WbAck` must not pass a
/// crossing forward). Everything else — cross-link interleaving, and
/// delaying an earlier message past a later one on a different link — is a
/// legal network behavior the explorer may pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// Stable identity; pass to [`Hierarchy::try_step_choice`]. Remains
    /// valid across steps until this event is delivered.
    pub seq: u64,
    /// Effective delivery time if chosen next (never before `now`).
    pub at: Cycle,
    /// The block the event concerns.
    pub block: PhysAddr,
    /// The core involved (destination L1, issuing core, ...), if any.
    pub core: Option<usize>,
    /// Event category.
    pub kind: ChoiceKind,
    /// Table III message name for `ToLlc`/`ToL1` choices.
    pub msg: Option<&'static str>,
    /// Whether dispatching this event may touch the shared DRAM timing
    /// state (used by partial-order reduction: two choices on different
    /// blocks are only independent when at most one of them can).
    pub touches_dram: bool,
}

/// Opaque position in the hierarchy's undo log, returned by
/// [`Hierarchy::undo_mark`] and consumed by [`Hierarchy::undo_to`].
/// Marks are a stack discipline: taking a mark, stepping, and undoing to
/// the mark restores the hierarchy bit-exactly; marks taken earlier remain
/// valid after an undo, marks taken later do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct UndoMark(usize);

/// Which controller's transient buffers one undo frame snapshots.
///
/// Every event dispatches into exactly one side of the hierarchy: core
/// requests, L1-bound messages, and install retries mutate one core's L1
/// transient state (MSHRs, writeback/installing buffers, stall list) and
/// never the LLC's; LLC-bound messages and DRAM completions mutate the
/// LLC's stall queues, the DRAM timing model, and the golden memory image
/// and never an L1's. (The cache *arrays* on both sides are covered
/// separately by their own mutation journals, because an LLC-side recall
/// or an L1-side drain may touch lines outside the event's own set.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameSide {
    /// Frame predates any step (pool default); restores nothing extra.
    None,
    /// The event dispatched into core `n`'s L1 controller.
    L1(usize),
    /// The event dispatched into the LLC / memory controller.
    Llc,
}

/// Everything needed to reverse one [`Hierarchy::try_step_choice`]: the
/// queue rewind point plus pre-dispatch copies of the small mutable state
/// the dispatched side may touch. Frames are pooled and refilled so
/// steady-state stepping performs no heap allocation.
#[derive(Debug)]
struct UndoFrame {
    qmark: QueueMark,
    popped_origin: PopOrigin,
    popped_seq: u64,
    /// The delivered event, returned to the queue on undo.
    popped: Option<Event>,
    completions_len: usize,
    next_req: RequestId,
    /// Flat copies of every accumulated counter (all `Copy`).
    events: EventCounts,
    l1_hits: u64,
    l1_misses: u64,
    mshr_merges: u64,
    recalls: u64,
    silent_upgrades: u64,
    dispatched: u64,
    counters: MetricsCounters,
    /// Latency-histogram records made during this step, reversed LIFO on
    /// undo (whole-histogram copies would be ~160 KB per frame).
    lat_records: Vec<(RequestClass, u64, HistogramMark)>,
    side: FrameSide,
    // L1-side buffers (valid when `side == L1(_)`); kept allocated across
    // frame reuse via `copy_from`/`clone_from`.
    l1_pending: MshrTable<PendingReq>,
    l1_wb: BlockMap<WbEntry>,
    l1_installing: BlockMap<PendingInstall>,
    l1_stalled: Vec<u64>,
    // LLC-side buffers (valid when `side == Llc`; they snapshot the one
    // bank the event dispatched into, recorded in `llc_bank`).
    llc_bank: usize,
    llc_set_stalls: FxHashMap<u64, VecDeque<Msg>>,
    mem_undo: MemUndo,
    mem_image: FxHashMap<u64, u64>,
    /// Per-array journal watermarks at frame creation; rollback targets.
    /// `llc_mark` watermarks `llc_bank`'s array (only that bank's lines
    /// can change under an LLC-side event).
    l1_marks: Vec<usize>,
    llc_mark: usize,
    /// Approximate heap bytes this frame pinned (depth profiling).
    bytes: u64,
}

impl Default for UndoFrame {
    fn default() -> Self {
        UndoFrame {
            qmark: QueueMark::default(),
            popped_origin: PopOrigin::default(),
            popped_seq: 0,
            popped: None,
            completions_len: 0,
            next_req: 0,
            events: EventCounts::default(),
            l1_hits: 0,
            l1_misses: 0,
            mshr_merges: 0,
            recalls: 0,
            silent_upgrades: 0,
            dispatched: 0,
            counters: MetricsCounters::default(),
            lat_records: Vec::new(),
            side: FrameSide::None,
            l1_pending: MshrTable::new(0),
            l1_wb: BlockMap::new(),
            l1_installing: BlockMap::new(),
            l1_stalled: Vec::new(),
            llc_bank: 0,
            llc_set_stalls: FxHashMap::default(),
            mem_undo: MemUndo::default(),
            mem_image: FxHashMap::default(),
            l1_marks: Vec::new(),
            llc_mark: 0,
            bytes: 0,
        }
    }
}

/// The hierarchy's step-reversal log: one [`UndoFrame`] per dispatched
/// event since [`Hierarchy::enable_undo`]. Popped frames return to a free
/// pool so their buffers (MSHR copies, latency journals, ...) are reused.
// Frames are boxed on purpose: an `UndoFrame` embeds whole-table copies
// (MSHRs, block maps, stall state), so keeping it behind a pointer makes
// push/pop and pool recycling a pointer move instead of a bulk memcpy.
#[allow(clippy::vec_box)]
#[derive(Debug, Default)]
struct UndoLog {
    enabled: bool,
    frames: Vec<Box<UndoFrame>>,
    pool: Vec<Box<UndoFrame>>,
}

/// How many times an L1 install is re-scheduled before it escalates to a
/// blocking stall (woken by the next state change in its set).
const INSTALL_RETRY_LIMIT: u32 = 3;

/// Delay between L1 install retry attempts.
const INSTALL_RETRY_DELAY: u64 = 8;

/// The value a store writes into the modelled data image: unique per
/// request and never the `0` that uninitialized memory reads as.
fn store_value(id: RequestId) -> u64 {
    id.wrapping_add(1)
}

/// A protocol state the FSM has no legal transition for.
///
/// The stress fuzzer steers the hierarchy into adversarial interleavings;
/// when a controller receives a message its state machine cannot accept,
/// the error carries the offending event plus the per-block history from
/// the tracer ring (when one is attached) so the failure is diagnosable
/// from the report alone.
#[derive(Debug, Clone)]
pub struct ProtocolError {
    /// When the illegal event was processed.
    pub at: Cycle,
    /// The block involved.
    pub addr: PhysAddr,
    /// The core involved, if the event targeted an L1.
    pub core: Option<usize>,
    /// What went wrong.
    pub detail: String,
    /// Per-block event history harvested from the tracer ring (empty when
    /// no ring is attached).
    pub history: Vec<String>,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protocol error at cycle {}: {} (block {:#x}",
            self.at.get(),
            self.detail,
            self.addr.0
        )?;
        match self.core {
            Some(c) => write!(f, ", core {c})")?,
            None => write!(f, ")")?,
        }
        if self.history.is_empty() {
            write!(f, "\n  (attach a ring tracer for per-block history)")?;
        } else {
            write!(f, "\n  history of block {:#x}:", self.addr.0)?;
            for h in &self.history {
                write!(f, "\n    {h}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for ProtocolError {}

pub(crate) type PResult = Result<(), Box<ProtocolError>>;

/// One canonicalized pending event in [`Hierarchy::state_digest`]:
/// `(relative time, link key, rank within link, payload hash)`.
type FrontierItem = (u64, (u8, u64, u64), u64, u64);

/// The coherent two-level hierarchy.
///
/// Cores [`issue`](Hierarchy::issue) timed requests; the hierarchy is
/// advanced either to a deadline with [`tick`](Hierarchy::tick) (for
/// co-simulation with CPU models) or to quiescence with
/// [`run_until_idle`](Hierarchy::run_until_idle). Completed requests are
/// returned as [`Completion`]s carrying latency and classification.
#[derive(Debug)]
pub struct Hierarchy {
    pub(crate) cfg: HierarchyConfig,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) l1s: Vec<L1>,
    /// Address-sharded LLC/directory banks (`cfg.banks` of them; bank
    /// `cfg.bank_of(addr)` owns block `addr`).
    pub(crate) banks: Vec<LlcBank>,
    next_req: RequestId,
    pub(crate) completions: Vec<Completion>,
    /// Scratch buffer for [`EventQueue::pop_batch`]; kept on the struct so
    /// its allocation is reused across ticks.
    pub(crate) batch: Vec<Event>,
    /// Scratch for draining a closed MSHR transaction's queued requests;
    /// reused so transaction completion never allocates.
    pub(crate) finish_scratch: Vec<PendingReq>,
    pub(crate) stats: HierarchyStats,
    /// Structured protocol tracer (disabled by default: one branch per
    /// would-be event).
    pub(crate) tracer: Tracer,
    /// Optional per-hop latency jitter (fuzzing only; `None` keeps the
    /// calibrated fixed latencies).
    pub(crate) jitter: Option<LinkJitter>,
    /// Step-reversal log (inactive until [`enable_undo`](Self::enable_undo)).
    undo: UndoLog,
    /// Scratch for per-L1 content digests in
    /// [`state_digest_cached`](Self::state_digest_cached).
    digest_l1_scratch: Vec<u64>,
    /// Scratch for per-bank content digests, same purpose.
    digest_bank_scratch: Vec<u64>,
    /// Scratch for the serial dispatch path's deferred sends.
    pub(crate) sends_scratch: Vec<(Cycle, Event)>,
}

impl Hierarchy {
    /// Builds an idle hierarchy from `cfg`.
    pub fn new(cfg: HierarchyConfig) -> Self {
        let l1s = (0..cfg.cores)
            .map(|_| L1 {
                array: CacheArray::new(cfg.l1_geometry, cfg.replacement),
                pending: MshrTable::new(cfg.l1_mshrs),
                wb_buffer: BlockMap::new(),
                installing: BlockMap::new(),
                stalled_installs: Vec::new(),
            })
            .collect();
        let bank_geom = cfg.bank_geometry();
        let banks = (0..cfg.banks)
            .map(|_| LlcBank {
                array: CacheArray::new(bank_geom, cfg.replacement),
                set_stalls: FxHashMap::default(),
                mem: MemoryController::new(cfg.dram),
                mem_image: FxHashMap::default(),
            })
            .collect();
        Hierarchy {
            queue: EventQueue::new(),
            l1s,
            banks,
            next_req: 0,
            completions: Vec::new(),
            batch: Vec::new(),
            finish_scratch: Vec::new(),
            stats: HierarchyStats::default(),
            tracer: Tracer::disabled(),
            jitter: None,
            undo: UndoLog::default(),
            digest_l1_scratch: Vec::new(),
            digest_bank_scratch: Vec::new(),
            sends_scratch: Vec::new(),
            cfg,
        }
    }

    /// Enables randomized per-hop latency jitter of up to `max_extra`
    /// cycles, seeded by `seed`. Each source→destination link stays FIFO
    /// (see [`LinkJitter`]); cross-link interleavings vary. Intended for
    /// the stress fuzzer — jitter invalidates the calibrated Figure-6
    /// latency anchors, so benchmarks leave it off.
    pub fn set_jitter(&mut self, seed: u64, max_extra: u64) {
        self.jitter = if max_extra == 0 {
            None
        } else {
            Some(LinkJitter::new(seed, max_extra))
        };
    }

    /// Replaces the tracer (pass an enabled [`Tracer`] with sinks attached
    /// to record a run; the default is disabled).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The tracer in force.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Finalizes the tracer's sinks (flushes files, closes the Chrome
    /// array) and disables further tracing.
    ///
    /// # Errors
    ///
    /// Propagates the first sink I/O failure.
    pub fn finish_trace(&mut self) -> std::io::Result<()> {
        self.tracer.finish()
    }

    /// The configuration in force.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// The protocol in force.
    pub fn protocol(&self) -> ProtocolKind {
        self.cfg.protocol
    }

    /// Issues a request from `core` at absolute time `at`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn issue(&mut self, at: Cycle, core: usize, req: CoreRequest) -> RequestId {
        self.issue_translated(at, 0, core, req)
    }

    /// Issues a request whose address translation takes `translation`
    /// cycles before it reaches the L1. The completion's latency is
    /// measured from `at` (translation is on the access's critical path),
    /// but the request only arrives at the L1 at `at + translation`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn issue_translated(
        &mut self,
        at: Cycle,
        translation: u64,
        core: usize,
        req: CoreRequest,
    ) -> RequestId {
        assert!(core < self.cfg.cores, "core {core} out of range");
        let id = self.next_req;
        self.next_req += 1;
        let block = PhysAddr(self.cfg.l1_geometry.block_base(req.addr.0));
        self.stats.events.bump(match req.kind {
            AccessKind::Load => CoherenceEvent::Load,
            AccessKind::Store => CoherenceEvent::Store,
        });
        let pending = PendingReq {
            id,
            block,
            kind: req.kind,
            wp: req.write_protected,
            issued_at: at,
            l1_before: L1State::I, // filled in at L1 arrival
        };
        self.tracer.emit(|| TraceEvent {
            at,
            core: Some(core),
            addr: block.0,
            req: Some(id),
            kind: TraceKind::Issue {
                class: match (req.kind, req.write_protected) {
                    (AccessKind::Load, true) => "Load_WP",
                    (AccessKind::Load, false) => "Load",
                    (AccessKind::Store, _) => "Store",
                },
            },
        });
        self.queue.schedule(
            at + Cycle(translation),
            Event::CoreReq { core, req: pending },
        );
        id
    }

    /// Current simulated time (timestamp of the last processed event).
    pub fn now(&self) -> Cycle {
        self.queue.now()
    }

    /// Timestamp of the next internal event, if any.
    pub fn next_event_time(&self) -> Option<Cycle> {
        self.queue.peek_time()
    }

    /// Processes all events with timestamp ≤ `upto`; returns completions
    /// produced in that window.
    ///
    /// Events are drained one timestamp at a time via
    /// [`EventQueue::pop_batch`]: one heap operation per distinct cycle
    /// instead of a peek/pop pair per event, with dispatch order identical
    /// to the one-at-a-time loop.
    pub fn tick(&mut self, upto: Cycle) -> Vec<Completion> {
        self.try_tick(upto).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Buffer-reusing [`tick`](Hierarchy::tick): appends the window's
    /// completions to `out` instead of returning a fresh vector, so the
    /// internal completion buffer keeps its capacity across batches.
    /// This is the simulation main loop's variant — one `tick` per
    /// distinct event time means the returning-vector form reallocates
    /// on every batch.
    pub fn tick_into(&mut self, upto: Cycle, out: &mut Vec<Completion>) {
        if let Err(e) = self.try_tick_into(upto, out) {
            panic!("{e}");
        }
    }

    /// Fallible [`tick_into`](Hierarchy::tick_into).
    ///
    /// # Errors
    ///
    /// The first illegal protocol event encountered; completions from
    /// the partial window stay queued internally, as with
    /// [`try_tick`](Hierarchy::try_tick).
    pub fn try_tick_into(
        &mut self,
        upto: Cycle,
        out: &mut Vec<Completion>,
    ) -> Result<(), Box<ProtocolError>> {
        let mut batch = std::mem::take(&mut self.batch);
        let mut failure = None;
        'ticks: while let Some(now) = self.queue.pop_batch(upto, &mut batch) {
            for ev in batch.drain(..) {
                if let Err(e) = self.dispatch(now, ev) {
                    failure = Some(e);
                    break 'ticks;
                }
            }
        }
        batch.clear();
        self.batch = batch;
        match failure {
            Some(e) => Err(e),
            None => {
                out.append(&mut self.completions);
                Ok(())
            }
        }
    }

    /// Fallible [`tick`](Hierarchy::tick): returns the [`ProtocolError`]
    /// instead of panicking when a controller receives a message its state
    /// machine has no transition for.
    ///
    /// # Errors
    ///
    /// The first illegal protocol event encountered.
    pub fn try_tick(&mut self, upto: Cycle) -> Result<Vec<Completion>, Box<ProtocolError>> {
        let mut out = Vec::new();
        self.try_tick_into(upto, &mut out)?;
        Ok(out)
    }

    /// Processes the single next event, if any; returns its timestamp.
    /// This is the fuzzer's stepping primitive: invariants are checked
    /// between every two events, not just at tick granularity.
    ///
    /// # Errors
    ///
    /// The [`ProtocolError`] if the event was illegal in the current state.
    pub fn try_step(&mut self) -> Result<Option<Cycle>, Box<ProtocolError>> {
        match self.queue.pop() {
            Some((now, ev)) => {
                self.dispatch(now, ev)?;
                Ok(Some(now))
            }
            None => Ok(None),
        }
    }

    /// Drains completions produced so far (used with
    /// [`try_step`](Hierarchy::try_step), which does not return them).
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Runs until no events remain; returns all completions.
    pub fn run_until_idle(&mut self) -> Vec<Completion> {
        self.try_run_until_idle().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`run_until_idle`](Hierarchy::run_until_idle).
    ///
    /// # Errors
    ///
    /// The first illegal protocol event, or a synthesized error when the
    /// hierarchy fails to quiesce within its fuel budget (livelock).
    pub fn try_run_until_idle(&mut self) -> Result<Vec<Completion>, Box<ProtocolError>> {
        let mut fuel: u64 = 500_000_000;
        let mut batch = std::mem::take(&mut self.batch);
        let mut failure = None;
        'ticks: while let Some(now) = self.queue.pop_batch(Cycle::MAX, &mut batch) {
            for ev in batch.drain(..) {
                match self.dispatch(now, ev) {
                    Err(e) => {
                        failure = Some(e);
                        break 'ticks;
                    }
                    Ok(()) => {
                        fuel -= 1;
                        if fuel == 0 {
                            failure = Some(self.protocol_error(
                                now,
                                PhysAddr(0),
                                None,
                                "hierarchy failed to quiesce: livelock suspected".to_string(),
                            ));
                            break 'ticks;
                        }
                    }
                }
            }
        }
        batch.clear();
        self.batch = batch;
        match failure {
            Some(e) => Err(e),
            None => Ok(std::mem::take(&mut self.completions)),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Describes any state that should not exist at quiescence — L1
    /// transactions still pending, LLC lines mid-transaction, queued
    /// waiters — for debugging lost requests. Empty string when clean.
    pub fn debug_stuck(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (c, l1) in self.l1s.iter().enumerate() {
            for (block, reqs) in l1.pending.iter() {
                let state = l1.array.peek(block).map_or(L1State::I, |l| l.state);
                let _ = writeln!(
                    out,
                    "L1[{c}] pending block {block:#x} state {state} ({} reqs)",
                    reqs.len()
                );
            }
            for (block, entry) in l1.wb_buffer.iter() {
                let _ = writeln!(out, "L1[{c}] wb_buffer {block:#x} {}", entry.state);
            }
            for (block, ins) in l1.installing.iter() {
                let _ = writeln!(out, "L1[{c}] installing {block:#x} {}", ins.state);
            }
            for &block in &l1.stalled_installs {
                let _ = writeln!(out, "L1[{c}] install stalled {block:#x}");
            }
        }
        for (b, bank) in self.banks.iter().enumerate() {
            for (addr, line) in bank.array.iter() {
                if line.txn.is_some() || !line.waiters.is_empty() {
                    let _ = writeln!(
                        out,
                        "LLC[{b}] {addr:#x} state {} txn {:?} waiters {:?} sharers {:#b} owner {:?}",
                        line.state, line.txn, line.waiters, line.sharers, line.owner
                    );
                }
            }
            for (set, stalls) in &bank.set_stalls {
                if !stalls.is_empty() {
                    let _ = writeln!(out, "LLC[{b}] set {set} stalls: {stalls:?}");
                }
            }
        }
        out
    }

    /// DRAM statistics, summed over every bank's channel.
    pub fn mem_stats(&self) -> swiftdir_mem::MemStats {
        let mut total = self.banks[0].mem.stats();
        for bank in &self.banks[1..] {
            total.merge(&bank.mem.stats());
        }
        total
    }

    /// The stable L1 state of `addr` on `core` (probe; no recency update).
    pub fn l1_state(&self, core: usize, addr: PhysAddr) -> L1State {
        let block = self.cfg.l1_geometry.block_base(addr.0);
        self.l1s[core]
            .array
            .peek(block)
            .map_or(L1State::I, |l| l.state)
    }

    /// The LLC directory state of `addr` (probe, routed to its bank).
    pub fn llc_state(&self, addr: PhysAddr) -> LlcState {
        self.llc_peek(self.cfg.l1_geometry.block_base(addr.0))
            .map_or(LlcState::I, |l| l.state)
    }

    /// The directory line holding `block`, if any (bank-routed probe).
    pub(crate) fn llc_peek(&self, block: u64) -> Option<&LlcLine> {
        self.banks[self.cfg.bank_of(block)].array.peek(block)
    }

    /// Golden-image contents of `block` (0 when never written back).
    pub(crate) fn mem_image_get(&self, block: u64) -> u64 {
        self.banks[self.cfg.bank_of(block)]
            .mem_image
            .get(&block)
            .copied()
            .unwrap_or(0)
    }

    /// The per-block event history recorded in the tracer ring, rendered
    /// for diagnostics (empty when no ring is attached).
    pub fn history_for(&self, addr: PhysAddr) -> Vec<String> {
        self.tracer
            .ring()
            .map(|ring| {
                ring.iter()
                    .filter(|(_, e)| e.addr == addr.0)
                    .map(|(_, e)| e.to_json().to_string())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Overwrites `addr`'s stable L1 state on `core` — a test-only hook
    /// for planting invariant violations the checker must catch.
    #[doc(hidden)]
    pub fn test_force_l1_state(&mut self, core: usize, addr: PhysAddr, state: L1State, data: u64) {
        let block = self.cfg.l1_geometry.block_base(addr.0);
        self.l1s[core].array.insert(block, L1Line { state, data });
    }

    // -- schedule exploration ----------------------------------------------

    /// An independent copy of the hierarchy for schedule-tree branching.
    ///
    /// Everything behavioral is cloned — controller state, the event queue
    /// (with in-flight messages and their identities), DRAM timing, the
    /// data image, undrained completions, and accumulated stats. The one
    /// exception is the tracer, which holds non-clonable sinks: forks get
    /// [`Tracer::disabled`], so a forked run is silent even when the parent
    /// records.
    pub fn fork(&self) -> Hierarchy {
        Hierarchy {
            cfg: self.cfg,
            queue: self.queue.clone(),
            l1s: self.l1s.clone(),
            banks: self.banks.clone(),
            next_req: self.next_req,
            completions: self.completions.clone(),
            batch: Vec::new(),
            finish_scratch: Vec::new(),
            stats: self.stats.clone(),
            tracer: Tracer::disabled(),
            jitter: self.jitter.clone(),
            // The undo log is a traversal artifact, not hierarchy state: a
            // fork starts its own (callers re-arm with `enable_undo`).
            undo: UndoLog::default(),
            digest_l1_scratch: Vec::new(),
            digest_bank_scratch: Vec::new(),
            sends_scratch: Vec::new(),
        }
    }

    /// The network link a pending event rides, for FIFO filtering. Events
    /// on the same key must deliver in send order; events on different
    /// keys may interleave freely (matching [`LinkJitter`]'s channels).
    fn link_key(&self, ev: &Event) -> (u8, u64, u64) {
        let enc = |c: Option<usize>| c.map_or(u64::MAX, |c| c as u64);
        match ev {
            // Per-core program order into the L1.
            Event::CoreReq { core, .. } => (0, *core as u64, 0),
            // Every L1→LLC message names its sending core; distinct
            // destination banks are distinct physical links (the third
            // component stays 0 on single-bank configurations).
            Event::ToLlc(msg) => (1, enc(msg.core()), self.cfg.bank_of(msg.addr().0) as u64),
            // Distinct (source, destination) pairs are distinct links.
            Event::ToL1 { core, src, .. } => (2, enc(*src), *core as u64),
            // DRAM responses are per-block FIFO; different blocks may
            // complete in any order (bank parallelism).
            Event::MemDone { addr } => (3, addr.0, 0),
            // Retry timers are per (core, block).
            Event::L1InsertRetry { core, block, .. } => (4, *core as u64, block.0),
        }
    }

    fn describe_choice(&self, seq: u64, at: Cycle, ev: &Event) -> Choice {
        let (block, core, kind, msg, touches_dram) = match ev {
            Event::CoreReq { core, req } => {
                (req.block, Some(*core), ChoiceKind::CoreReq, None, false)
            }
            Event::ToLlc(m) => (
                m.addr(),
                m.core(),
                ChoiceKind::ToLlc,
                Some(m.event().name()),
                // Request/writeback handling at the LLC may issue a DRAM
                // access (fetch or writeback) on the shared controller.
                true,
            ),
            Event::ToL1 { core, msg: m, .. } => (
                m.addr(),
                Some(*core),
                ChoiceKind::ToL1,
                Some(m.event().name()),
                false,
            ),
            Event::MemDone { addr } => (*addr, None, ChoiceKind::MemDone, None, true),
            Event::L1InsertRetry { core, block, .. } => {
                (*block, Some(*core), ChoiceKind::InstallRetry, None, false)
            }
        };
        Choice {
            seq,
            at,
            block,
            core,
            kind,
            msg,
            touches_dram,
        }
    }

    /// Every event the simulator could legally deliver next, within
    /// `window` cycles of the earliest pending one.
    ///
    /// For each link (see [`Choice`]) only the earliest-sent message is
    /// offered; links whose head lies beyond the window contribute no
    /// choice. Choosing an event with a later timestamp advances the clock
    /// there, and the skipped events deliver at the (later) current time —
    /// the physical reading is that their messages spent longer on the
    /// wire. `window == 0` restricts exploration to reordering events that
    /// are tied for earliest delivery.
    pub fn frontier_choices(&self, window: Cycle) -> Vec<Choice> {
        let mut keys = Vec::new();
        let mut out = Vec::new();
        self.frontier_choices_into(window, &mut keys, &mut out);
        out
    }

    /// Buffer-reusing variant of
    /// [`frontier_choices`](Hierarchy::frontier_choices): fills `out` with
    /// the same choices, using `keys` as link-key scratch. A single pass
    /// over the pending events via [`EventQueue::for_each_pending`] — no
    /// full-frontier vector is materialized or sorted, and callers that
    /// step repeatedly (the schedule explorer) reuse both buffers'
    /// allocations across steps.
    pub fn frontier_choices_into(
        &self,
        window: Cycle,
        keys: &mut Vec<(u8, u64, u64)>,
        out: &mut Vec<Choice>,
    ) {
        keys.clear();
        out.clear();
        let mut earliest = Cycle::MAX;
        self.queue.for_each_pending(|p| {
            earliest = earliest.min(p.at);
            let key = self.link_key(p.event);
            // `keys` runs parallel to `out`; link counts are small (a few
            // per core), so a linear scan beats hashing here.
            match keys.iter().position(|k| *k == key) {
                Some(i) => {
                    if p.seq < out[i].seq {
                        out[i] = self.describe_choice(p.seq, p.at, p.event);
                    }
                }
                None => {
                    keys.push(key);
                    out.push(self.describe_choice(p.seq, p.at, p.event));
                }
            }
        });
        let horizon = earliest.saturating_add(window);
        out.retain(|c| c.at <= horizon);
        out.sort_by_key(|c| (c.at, c.seq));
    }

    /// Delivers the pending event identified by `seq` (from
    /// [`frontier_choices`](Hierarchy::frontier_choices)) and dispatches
    /// it. Returns its delivery timestamp, or `Ok(None)` if no pending
    /// event has that identity.
    ///
    /// # Errors
    ///
    /// The [`ProtocolError`] if the event was illegal in the current state.
    pub fn try_step_choice(&mut self, seq: u64) -> Result<Option<Cycle>, Box<ProtocolError>> {
        // The queue mark captures pre-pop scalars, so it must be taken
        // before `pop_seq`; it is free (three words), so an unmatched-seq
        // miss wastes nothing.
        let qmark = self.undo.enabled.then(|| self.queue.mark());
        match self.queue.pop_seq_traced(seq) {
            Some((now, origin, ev)) => {
                if let Some(qmark) = qmark {
                    self.push_undo_frame(qmark, origin, seq, &ev);
                }
                self.dispatch(now, ev)?;
                Ok(Some(now))
            }
            None => Ok(None),
        }
    }

    // -- undo log -----------------------------------------------------------

    /// Arms the step-reversal log: every subsequent
    /// [`try_step_choice`](Self::try_step_choice) records an undo frame,
    /// and [`undo_to`](Self::undo_to) rewinds dispatched steps in place —
    /// the backbone of the explorer's snapshot-free depth-first search.
    ///
    /// Also switches every cache array into journaling mode (their line
    /// mutations are rolled back per-set rather than copied wholesale).
    /// Undo only reverses *stepping*; interleaving [`issue`](Self::issue),
    /// [`tick`](Self::tick), or [`run_until_idle`](Self::run_until_idle)
    /// with marked steps is unsupported. The tracer is not rewound —
    /// exploration runs with tracing disabled.
    pub fn enable_undo(&mut self) {
        self.undo.enabled = true;
        self.undo.frames.clear();
        for l1 in &mut self.l1s {
            l1.array.enable_journal();
        }
        for bank in &mut self.banks {
            bank.array.enable_journal();
        }
    }

    /// The current undo-log position. Stepping pushes frames past it;
    /// [`undo_to`](Self::undo_to) pops back down to it.
    pub fn undo_mark(&self) -> UndoMark {
        UndoMark(self.undo.frames.len())
    }

    /// Rewinds every step taken since `mark`, newest first, restoring the
    /// hierarchy — queue, caches, transient buffers, DRAM timing, stats,
    /// completions — to its exact state when the mark was taken.
    ///
    /// # Panics
    ///
    /// Panics if `mark` lies above the current log (i.e. it was taken on a
    /// branch already undone).
    pub fn undo_to(&mut self, mark: UndoMark) {
        assert!(
            mark.0 <= self.undo.frames.len(),
            "undo_to: mark {} above log top {}",
            mark.0,
            self.undo.frames.len()
        );
        while self.undo.frames.len() > mark.0 {
            let mut frame = self.undo.frames.pop().expect("len checked");
            self.restore_frame(&mut frame);
            self.undo.pool.push(frame);
        }
    }

    /// Approximate heap bytes pinned by the most recent undo frame (0 when
    /// none) — the per-step cost the depth profiler reports.
    pub fn undo_frame_bytes(&self) -> u64 {
        self.undo.frames.last().map_or(0, |f| f.bytes)
    }

    /// Approximate heap bytes pinned by the whole undo log: every live
    /// frame plus the recycle pool (pooled frames keep their buffers,
    /// sized by their last use). Memory-accounting telemetry samples
    /// this; it is `O(frames)` and touches nothing.
    pub fn undo_log_bytes(&self) -> u64 {
        let sum = |frames: &[Box<UndoFrame>]| frames.iter().map(|f| f.bytes).sum::<u64>();
        sum(&self.undo.frames) + sum(&self.undo.pool)
    }

    /// Approximate heap bytes of the transient-state slabs across the
    /// hierarchy: per-core MSHR tables, in-flight install and writeback
    /// maps, and install-stall lists. A passive read for occupancy
    /// telemetry (high-water tracking happens at the sampling site).
    pub fn transient_bytes(&self) -> u64 {
        self.l1s
            .iter()
            .map(|l1| {
                l1.pending.approx_bytes()
                    + l1.wb_buffer.approx_bytes()
                    + l1.installing.approx_bytes()
                    + (l1.stalled_installs.len() * std::mem::size_of::<u64>()) as u64
            })
            .sum()
    }

    /// Number of undrained completions (pair with
    /// [`completions_since`](Self::completions_since) for drain-free reads:
    /// the undo log truncates the completion list on rewind, so undo-mode
    /// traversal must never [`drain_completions`](Self::drain_completions)).
    pub fn completions_len(&self) -> usize {
        self.completions.len()
    }

    /// The completions recorded since the list was `len` long.
    pub fn completions_since(&self, len: usize) -> &[Completion] {
        &self.completions[len..]
    }

    /// Captures the pre-dispatch state of everything `ev`'s handler may
    /// mutate. `qmark` was taken before the queue pop; `origin`/`seq`/`ev`
    /// identify the popped event so the rewind can reinsert it losslessly.
    fn push_undo_frame(&mut self, qmark: QueueMark, origin: PopOrigin, seq: u64, ev: &Event) {
        let mut f = self.undo.pool.pop().unwrap_or_default();
        f.qmark = qmark;
        f.popped_origin = origin;
        f.popped_seq = seq;
        f.popped = Some(ev.clone());
        f.completions_len = self.completions.len();
        f.next_req = self.next_req;
        f.events = self.stats.events;
        f.l1_hits = self.stats.l1_hits;
        f.l1_misses = self.stats.l1_misses;
        f.mshr_merges = self.stats.mshr_merges;
        f.recalls = self.stats.recalls;
        f.silent_upgrades = self.stats.silent_upgrades;
        f.dispatched = self.stats.dispatched;
        f.counters = self.stats.protocol.counters_snapshot();
        f.lat_records.clear();
        f.l1_marks.clear();
        for l1 in &self.l1s {
            f.l1_marks.push(l1.array.journal_mark());
        }
        let side_bytes;
        f.side = match ev {
            Event::CoreReq { core, .. }
            | Event::ToL1 { core, .. }
            | Event::L1InsertRetry { core, .. } => {
                let l1 = &self.l1s[*core];
                f.l1_pending.copy_from(&l1.pending);
                f.l1_wb.copy_from(&l1.wb_buffer);
                f.l1_installing.copy_from(&l1.installing);
                f.l1_stalled.clone_from(&l1.stalled_installs);
                side_bytes = f.l1_pending.approx_bytes()
                    + f.l1_wb.approx_bytes()
                    + f.l1_installing.approx_bytes()
                    + (f.l1_stalled.len() * std::mem::size_of::<u64>()) as u64;
                // An L1-side event never touches a bank array, so no bank
                // watermark is needed; `llc_bank`/`llc_mark` stay stale
                // and unused for this frame.
                FrameSide::L1(*core)
            }
            Event::ToLlc(_) | Event::MemDone { .. } => {
                let addr = match ev {
                    Event::ToLlc(msg) => msg.addr(),
                    Event::MemDone { addr } => *addr,
                    _ => unreachable!("matched above"),
                };
                let b = self.cfg.bank_of(addr.0);
                let bank = &mut self.banks[b];
                f.llc_bank = b;
                f.llc_mark = bank.array.journal_mark();
                f.llc_set_stalls.clone_from(&bank.set_stalls);
                bank.mem.save_into(&mut f.mem_undo);
                f.mem_image.clone_from(&bank.mem_image);
                side_bytes = f.mem_undo.approx_bytes()
                    + (bank.set_stalls.len() + bank.mem_image.len()) as u64 * 16;
                FrameSide::Llc
            }
        };
        f.bytes = std::mem::size_of::<UndoFrame>() as u64 + side_bytes;
        self.undo.frames.push(f);
    }

    /// Reverses one recorded step. The array journals roll back the line
    /// mutations (on *both* sides — an L1 drain or LLC recall may touch
    /// sets beyond the event's own); everything else restores from the
    /// frame's flat copies.
    fn restore_frame(&mut self, f: &mut UndoFrame) {
        let ev = f.popped.take().expect("undo frame holds its event");
        self.queue
            .restore_mark(f.qmark, f.popped_origin, f.popped_seq, ev);
        self.completions.truncate(f.completions_len);
        self.next_req = f.next_req;
        self.stats.events = f.events;
        self.stats.l1_hits = f.l1_hits;
        self.stats.l1_misses = f.l1_misses;
        self.stats.mshr_merges = f.mshr_merges;
        self.stats.recalls = f.recalls;
        self.stats.silent_upgrades = f.silent_upgrades;
        self.stats.dispatched = f.dispatched;
        self.stats.protocol.restore_counters(&f.counters);
        for (class, cycles, hmark) in f.lat_records.drain(..).rev() {
            self.stats.protocol.unrecord_latency(class, cycles, hmark);
        }
        for (l1, &mark) in self.l1s.iter_mut().zip(&f.l1_marks) {
            l1.array.journal_rollback(mark);
        }
        match f.side {
            FrameSide::None => unreachable!("restored a frame that was never filled"),
            FrameSide::L1(core) => {
                let l1 = &mut self.l1s[core];
                l1.pending.copy_from(&f.l1_pending);
                l1.wb_buffer.copy_from(&f.l1_wb);
                l1.installing.copy_from(&f.l1_installing);
                l1.stalled_installs.clone_from(&f.l1_stalled);
            }
            FrameSide::Llc => {
                let bank = &mut self.banks[f.llc_bank];
                bank.array.journal_rollback(f.llc_mark);
                bank.set_stalls.clone_from(&f.llc_set_stalls);
                bank.mem.restore(&f.mem_undo);
                bank.mem_image.clone_from(&f.mem_image);
            }
        }
    }

    /// A canonical digest of the hierarchy's *behavioral* state, for
    /// pruning revisited states during schedule exploration.
    ///
    /// Two states digest identically exactly when their future evolution is
    /// the same modulo a global time shift: all pending-event and
    /// bank-ready times are hashed relative to `now`, request issue times
    /// relative to `now` (so remaining *latencies* are preserved), cache
    /// recency as per-set ranks rather than absolute ticks, and in-flight
    /// messages by per-link send order rather than raw sequence numbers.
    /// Accumulated statistics, undrained completions, and tracer state are
    /// excluded — they record the past, not the future. Jitter must be
    /// disabled (exploration owns delivery-order variation; the jitter
    /// rng's internal state is deliberately not hashed).
    pub fn state_digest(&self) -> u64 {
        let l1_digests: Vec<u64> = self
            .l1s
            .iter()
            .map(|l1| l1.array.content_digest_uncached())
            .collect();
        let bank_digests: Vec<u64> = self
            .banks
            .iter()
            .map(|b| b.array.content_digest_uncached())
            .collect();
        self.state_digest_with(&l1_digests, &bank_digests)
    }

    /// [`state_digest`](Self::state_digest) with the cache-array portions
    /// served from each array's incrementally maintained rolling digest:
    /// only sets mutated since the last call are rehashed, killing the
    /// per-leaf full-state scan in the schedule explorer. Bit-identical to
    /// `state_digest` (the rolling digest re-derives exactly the rescan's
    /// per-set hashes; the cache is behaviorally invisible).
    pub fn state_digest_cached(&mut self) -> u64 {
        let mut scratch = std::mem::take(&mut self.digest_l1_scratch);
        scratch.clear();
        for l1 in &mut self.l1s {
            scratch.push(l1.array.content_digest());
        }
        let mut bank_scratch = std::mem::take(&mut self.digest_bank_scratch);
        bank_scratch.clear();
        for bank in &mut self.banks {
            bank_scratch.push(bank.array.content_digest());
        }
        let digest = self.state_digest_with(&scratch, &bank_scratch);
        self.digest_l1_scratch = scratch;
        self.digest_bank_scratch = bank_scratch;
        digest
    }

    /// Digest core: everything outside the cache arrays is hashed here;
    /// the arrays' content digests (one per L1, one per bank) are mixed
    /// in as opaque words so the cached and uncached entry points share
    /// every byte of this logic.
    fn state_digest_with(&self, l1_digests: &[u64], bank_digests: &[u64]) -> u64 {
        use std::hash::{Hash, Hasher};
        debug_assert!(
            self.jitter.is_none(),
            "state_digest is only meaningful with jitter disabled"
        );
        let now = self.queue.now();
        let rel = |t: Cycle| t.get().wrapping_sub(now.get());
        let mut h = sim_engine::FxHasher::default();

        // Pending events, canonicalized: (relative time, link, rank-in-link).
        let mut pend = Vec::new();
        self.queue.for_each_pending(|p| pend.push(p));
        pend.sort_by_key(|p| p.seq);
        let mut link_ranks: FxHashMap<(u8, u64, u64), u64> = FxHashMap::default();
        let mut items: Vec<FrontierItem> = Vec::with_capacity(pend.len());
        for p in &pend {
            let key = self.link_key(p.event);
            let rank = link_ranks.entry(key).or_insert(0);
            items.push((rel(p.at), key, *rank, Self::event_digest(p.event, now)));
            *rank += 1;
        }
        items.sort_unstable();
        items.hash(&mut h);

        for (l1, digest) in self.l1s.iter().zip(l1_digests) {
            0xA11C_A5E5u64.hash(&mut h);
            digest.hash(&mut h);
            let mut pending: Vec<_> = l1.pending.iter().collect();
            pending.sort_by_key(|(b, _)| *b);
            for (block, reqs) in pending {
                block.hash(&mut h);
                for r in reqs {
                    (r.id, r.block.0, r.kind, r.wp, rel(r.issued_at), r.l1_before).hash(&mut h);
                }
            }
            let mut wb: Vec<_> = l1.wb_buffer.iter().collect();
            wb.sort_by_key(|(b, _)| *b);
            for (block, e) in wb {
                (block, e.state, e.data).hash(&mut h);
            }
            let mut ins: Vec<_> = l1.installing.iter().collect();
            ins.sort_by_key(|(b, _)| *b);
            for (block, e) in ins {
                (block, e.state, e.data).hash(&mut h);
            }
            // Wake order is behavioral: hash in place.
            l1.stalled_installs.hash(&mut h);
        }

        // LLC lines — directory state, transactions, and waiter queues —
        // hash through `LlcLine: Hash` inside the array content digests,
        // one section per bank (single-bank streams match the pre-sharded
        // layout byte for byte).
        for (bank, digest) in self.banks.iter().zip(bank_digests) {
            0x11C0_FFEEu64.hash(&mut h);
            digest.hash(&mut h);
            let mut stalls: Vec<_> = bank
                .set_stalls
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .collect();
            stalls.sort_by_key(|(s, _)| **s);
            for (set, q) in stalls {
                set.hash(&mut h);
                for m in q {
                    m.hash(&mut h);
                }
            }

            bank.mem.digest_into(now, &mut |x| x.hash(&mut h));
            let mut image: Vec<_> = bank.mem_image.iter().collect();
            image.sort_unstable();
            image.hash(&mut h);
        }
        self.next_req.hash(&mut h);
        h.finish()
    }

    /// Hash of one pending event's payload, times relative to `now`.
    fn event_digest(ev: &Event, now: Cycle) -> u64 {
        use std::hash::{Hash, Hasher};
        let rel = |t: Cycle| t.get().wrapping_sub(now.get());
        let mut h = sim_engine::FxHasher::default();
        match ev {
            Event::CoreReq { core, req } => {
                (0u8, *core, req.id, req.block.0).hash(&mut h);
                (req.kind, req.wp, rel(req.issued_at), req.l1_before).hash(&mut h);
            }
            Event::ToLlc(msg) => (1u8, msg).hash(&mut h),
            Event::ToL1 { core, src, msg } => (2u8, *core, *src, msg).hash(&mut h),
            Event::MemDone { addr } => (3u8, addr.0).hash(&mut h),
            Event::L1InsertRetry {
                core,
                block,
                attempt,
            } => (4u8, *core, block.0, *attempt).hash(&mut h),
        }
        h.finish()
    }

    /// Test-only: names the first behavioral component where `self` and
    /// `other` differ (empty string when none) — undo-debugging aid.
    #[cfg(test)]
    fn debug_divergence(&self, other: &Hierarchy) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.queue.now() != other.queue.now() {
            let _ = writeln!(
                out,
                "now: {:?} vs {:?}",
                self.queue.now(),
                other.queue.now()
            );
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        self.queue
            .for_each_pending(|p| a.push((p.at, p.seq, format!("{:?}", p.event))));
        other
            .queue
            .for_each_pending(|p| b.push((p.at, p.seq, format!("{:?}", p.event))));
        a.sort();
        b.sort();
        if a != b {
            let _ = writeln!(out, "pending: {a:#?} vs {b:#?}");
        }
        for (i, (x, y)) in self.l1s.iter().zip(&other.l1s).enumerate() {
            if x.array.content_digest_uncached() != y.array.content_digest_uncached() {
                let _ = writeln!(out, "l1[{i}].array: {:?}\n vs {:?}", x.array, y.array);
            }
            let fmt = |l: &L1| {
                format!(
                    "pending {:?} wb {:?} ins {:?} stalled {:?}",
                    l.pending.iter().collect::<Vec<_>>(),
                    l.wb_buffer.iter().collect::<Vec<_>>(),
                    l.installing.iter().collect::<Vec<_>>(),
                    l.stalled_installs
                )
            };
            if fmt(x) != fmt(y) {
                let _ = writeln!(out, "l1[{i}] transients: {} vs {}", fmt(x), fmt(y));
            }
        }
        for (i, (x, y)) in self.banks.iter().zip(&other.banks).enumerate() {
            if x.array.content_digest_uncached() != y.array.content_digest_uncached() {
                let _ = writeln!(out, "llc[{i}] array: {:?}\n vs {:?}", x.array, y.array);
            }
            if format!("{:?}", x.set_stalls) != format!("{:?}", y.set_stalls) {
                let _ = writeln!(
                    out,
                    "llc[{i}] set_stalls: {:?} vs {:?}",
                    x.set_stalls, y.set_stalls
                );
            }
            let memd = |b: &LlcBank, now: Cycle| {
                let mut v = Vec::new();
                b.mem.digest_into(now, &mut |x| v.push(x));
                v
            };
            let (ma, mb) = (memd(x, self.queue.now()), memd(y, other.queue.now()));
            if ma != mb {
                let _ = writeln!(out, "llc[{i}] mem: {ma:?} vs {mb:?}");
            }
            if x.mem_image != y.mem_image {
                let _ = writeln!(
                    out,
                    "llc[{i}] mem_image: {:?} vs {:?}",
                    x.mem_image, y.mem_image
                );
            }
        }
        if self.next_req != other.next_req {
            let _ = writeln!(out, "next_req: {} vs {}", self.next_req, other.next_req);
        }
        out
    }

    // -- dispatch plumbing -------------------------------------------------

    pub(crate) fn protocol_error(
        &self,
        at: Cycle,
        addr: PhysAddr,
        core: Option<usize>,
        detail: String,
    ) -> Box<ProtocolError> {
        Box::new(ProtocolError {
            at,
            addr,
            core,
            detail,
            history: self.history_for(addr),
        })
    }

    /// The 2D mesh placement implied by the configuration.
    pub fn mesh(&self) -> MeshTopology {
        MeshTopology::new(self.cfg.cores, self.cfg.banks, self.cfg.mesh_hop_latency)
    }

    /// Whether the undo log is armed (the parallel tick refuses to run
    /// with it on: rounds dispatch many events per frame).
    pub(crate) fn undo_active(&self) -> bool {
        self.undo.enabled
    }

    /// A lane over every domain — the serial dispatch view.
    pub(crate) fn lane<'a>(&'a mut self, sends: &'a mut Vec<(Cycle, Event)>) -> Lane<'a> {
        let mesh = self.mesh();
        let undo_lat = if self.undo.enabled {
            self.undo.frames.last_mut().map(|f| &mut f.lat_records)
        } else {
            None
        };
        Lane {
            cfg: &self.cfg,
            mesh,
            l1s: DomainVec::full(&mut self.l1s),
            banks: DomainVec::full(&mut self.banks),
            stats: &mut self.stats,
            completions: &mut self.completions,
            sends,
            finish_scratch: &mut self.finish_scratch,
            tracer: &mut self.tracer,
            jitter: self.jitter.as_mut(),
            undo_lat,
        }
    }

    /// Dispatches one event through a full lane, then drains its deferred
    /// sends into the queue — in emission order, which assigns exactly the
    /// sequence numbers the pre-lane code assigned by scheduling inline.
    fn dispatch(&mut self, now: Cycle, ev: Event) -> PResult {
        let mut sends = std::mem::take(&mut self.sends_scratch);
        let result = self.lane(&mut sends).dispatch(now, ev);
        // Drain even on error: a failing handler's earlier sends were
        // already on the wire when the pre-lane code hit the same error.
        for (at, ev) in sends.drain(..) {
            self.queue.schedule(at, ev);
        }
        self.sends_scratch = sends;
        result
    }
}

impl Lane<'_> {
    /// Defers an event schedule to the caller: serial dispatch drains the
    /// buffer into the queue after each event; the parallel round runner
    /// merges all lanes' buffers in batch order. Either way the queue sees
    /// schedules in exactly the serial emission order.
    #[inline]
    fn sched(&mut self, at: Cycle, ev: Event) {
        self.sends.push((at, ev));
    }

    /// Per-bank array geometry (set-stall keys are bank-local indices).
    #[inline]
    fn bank_geom(&self) -> CacheGeometry {
        self.cfg.bank_geometry()
    }

    /// The per-block event history from the tracer ring (empty when no
    /// ring is attached); diagnostic payload for protocol errors.
    fn history_for(&self, addr: PhysAddr) -> Vec<String> {
        self.tracer
            .ring()
            .map(|ring| {
                ring.iter()
                    .filter(|(_, e)| e.addr == addr.0)
                    .map(|(_, e)| e.to_json().to_string())
                    .collect()
            })
            .unwrap_or_default()
    }

    // -- plumbing ----------------------------------------------------------

    fn protocol_error(
        &self,
        at: Cycle,
        addr: PhysAddr,
        core: Option<usize>,
        detail: String,
    ) -> Box<ProtocolError> {
        Box::new(ProtocolError {
            at,
            addr,
            core,
            detail,
            history: self.history_for(addr),
        })
    }

    fn count(&mut self, e: CoherenceEvent) {
        self.stats.events.bump(e);
    }

    fn lat(&self) -> crate::config::LatencyConfig {
        self.cfg.latency
    }

    /// Records an L1 state change in the transition matrix and the trace.
    #[inline]
    fn l1_transition(
        &mut self,
        now: Cycle,
        core: usize,
        addr: PhysAddr,
        from: L1State,
        to: L1State,
    ) {
        self.stats.protocol.record_l1(from, to);
        self.tracer.emit(|| TraceEvent {
            at: now,
            core: Some(core),
            addr: addr.0,
            req: None,
            kind: TraceKind::Transition {
                unit: Unit::L1,
                from: from.name(),
                to: to.name(),
            },
        });
    }

    /// Records an LLC directory state change.
    #[inline]
    fn llc_transition(&mut self, now: Cycle, addr: PhysAddr, from: LlcState, to: LlcState) {
        self.stats.protocol.record_llc(from, to);
        self.tracer.emit(|| TraceEvent {
            at: now,
            core: None,
            addr: addr.0,
            req: None,
            kind: TraceKind::Transition {
                unit: Unit::Llc,
                from: from.name(),
                to: to.name(),
            },
        });
    }

    /// Delivery time over the `src → dst` mesh route: the nominal
    /// point-to-point latency, plus the route's hop latency (zero on the
    /// default crossbar configuration), plus jitter with a FIFO clamp
    /// when enabled. Jitter channels are per (src, dst) endpoint pair;
    /// [`MeshTopology::link_code`] keeps single-bank channel keys
    /// bit-compatible with the pre-sharded hierarchy.
    fn link_deliver(
        &mut self,
        now: Cycle,
        src: MeshEndpoint,
        dst: MeshEndpoint,
        delay: u64,
    ) -> Cycle {
        let base = delay + self.mesh.route_extra(src, dst);
        match &mut self.jitter {
            Some(j) => j.delay(
                (MeshTopology::link_code(src), MeshTopology::link_code(dst)),
                now,
                base,
            ),
            None => now + Cycle(base),
        }
    }

    /// Sends `msg` to its block's directory bank. The sender is the core
    /// the message names (every L1→LLC message carries one).
    fn send_to_llc(&mut self, now: Cycle, delay: u64, msg: Msg) {
        self.count(msg.event());
        self.tracer.emit(|| TraceEvent {
            at: now,
            core: msg.core(),
            addr: msg.addr().0,
            req: msg.req(),
            kind: TraceKind::MsgSend {
                msg: msg.event().name(),
                from: Unit::L1,
                to: Unit::Llc,
            },
        });
        let bank = MeshEndpoint::Bank(self.cfg.bank_of(msg.addr().0));
        let src = msg.core().map_or(bank, MeshEndpoint::Core);
        let at = self.link_deliver(now, src, bank, delay);
        self.sched(at, Event::ToLlc(msg));
    }

    /// Sends `msg` to `core`'s L1 from `src` (`None` = the block's
    /// directory bank; `Some(owner)` for L1→L1 `DataFromOwner` hops).
    fn send_to_l1(&mut self, now: Cycle, delay: u64, src: Option<usize>, core: usize, msg: Msg) {
        self.count(msg.event());
        self.tracer.emit(|| TraceEvent {
            at: now,
            core: Some(core),
            addr: msg.addr().0,
            req: msg.req(),
            kind: TraceKind::MsgSend {
                msg: msg.event().name(),
                from: if matches!(msg, Msg::DataFromOwner { .. }) {
                    Unit::L1
                } else {
                    Unit::Llc
                },
                to: Unit::L1,
            },
        });
        let from = src.map_or(
            MeshEndpoint::Bank(self.cfg.bank_of(msg.addr().0)),
            MeshEndpoint::Core,
        );
        let at = self.link_deliver(now, from, MeshEndpoint::Core(core), delay);
        self.sched(at, Event::ToL1 { core, src, msg });
    }

    pub(crate) fn dispatch(&mut self, now: Cycle, ev: Event) -> PResult {
        self.stats.dispatched += 1;
        match ev {
            Event::CoreReq { core, req } => self.l1_access(now, core, req),
            Event::ToLlc(msg) => {
                self.tracer.emit(|| TraceEvent {
                    at: now,
                    core: msg.core(),
                    addr: msg.addr().0,
                    req: msg.req(),
                    kind: TraceKind::MsgRecv {
                        msg: msg.event().name(),
                        unit: Unit::Llc,
                    },
                });
                // Directory state changes are scattered across the handler
                // and its continuations; diffing the line's state around the
                // event captures each exactly once (victim evictions of
                // *other* addresses are recorded at their eviction sites).
                let addr = msg.addr();
                let prev = self.banks[self.cfg.bank_of(addr.0)]
                    .array
                    .peek(addr.0)
                    .map(|l| l.state);
                self.llc_handle(now, msg)?;
                if let Some(prev) = prev {
                    let new = self.banks[self.cfg.bank_of(addr.0)]
                        .array
                        .peek(addr.0)
                        .map_or(LlcState::I, |l| l.state);
                    self.llc_transition(now, addr, prev, new);
                }
                Ok(())
            }
            Event::ToL1 { core, msg, .. } => {
                self.tracer.emit(|| TraceEvent {
                    at: now,
                    core: Some(core),
                    addr: msg.addr().0,
                    req: msg.req(),
                    kind: TraceKind::MsgRecv {
                        msg: msg.event().name(),
                        unit: Unit::L1,
                    },
                });
                self.l1_handle(now, core, msg)
            }
            Event::MemDone { addr } => self.llc_mem_done(now, addr),
            Event::L1InsertRetry {
                core,
                block,
                attempt,
            } => self.l1_install_line(now, core, block, attempt),
        }
    }

    fn complete(
        &mut self,
        now: Cycle,
        core: usize,
        req: &PendingReq,
        llc_before: Option<LlcState>,
        served_from: ServedFrom,
    ) {
        // Apply the access to the modelled data image at its serialization
        // point (this event): stores write their unique value, loads read
        // the block's current contents. A grant whose install is still
        // waiting for a way lives in the installing buffer.
        let block = req.block.0;
        let value = match req.kind {
            AccessKind::Store => {
                let v = store_value(req.id);
                if let Some(ins) = self.l1s[core].installing.get_mut(block) {
                    ins.data = v;
                } else if let Some(line) = self.l1s[core].array.get_mut(block) {
                    line.data = v;
                }
                v
            }
            AccessKind::Load => self.l1s[core]
                .installing
                .get(block)
                .map(|ins| ins.data)
                .or_else(|| self.l1s[core].array.peek(block).map(|l| l.data))
                .unwrap_or(0),
        };
        let latency = now.saturating_since(req.issued_at);
        let class = RequestClass::classify(
            req.kind,
            req.l1_before,
            req.wp,
            self.cfg.protocol == ProtocolKind::SwiftDir,
            served_from,
        );
        if let Some(log) = self.undo_lat.as_mut() {
            // Journal the record so the undo frame can reverse it LIFO —
            // copying whole histograms per frame would dwarf every other
            // undo cost.
            let mark = self.stats.protocol.latency_mark(class);
            log.push((class, latency.get(), mark));
        }
        self.stats.protocol.record_latency(class, latency.get());
        self.tracer.emit(|| TraceEvent {
            at: now,
            core: Some(core),
            addr: req.block.0,
            req: Some(req.id),
            kind: TraceKind::Complete {
                class: class.name(),
                served_from: served_from.name(),
                latency: latency.get(),
            },
        });
        self.completions.push(Completion {
            req: req.id,
            core,
            block: req.block,
            issued_at: req.issued_at,
            done_at: now,
            class: AccessClass {
                kind: req.kind,
                l1_before: req.l1_before,
                llc_before,
                write_protected: req.wp,
            },
            served_from,
            value,
        });
    }

    // -----------------------------------------------------------------------
    // L1 controller
    // -----------------------------------------------------------------------

    /// True (and the request rescheduled) when `core` has no free MSHR
    /// for a new transaction. Both misses and S/E→M upgrades occupy an
    /// MSHR entry; requests merging into an existing entry never stall.
    fn l1_mshr_full(&mut self, now: Cycle, core: usize, block: u64, req: PendingReq) -> bool {
        if !self.l1s[core].pending.is_full() {
            return false;
        }
        self.tracer.emit(|| TraceEvent {
            at: now,
            core: Some(core),
            addr: block,
            req: Some(req.id),
            kind: TraceKind::MshrStall,
        });
        self.sched(now + Cycle(4), Event::CoreReq { core, req });
        true
    }

    fn l1_access(&mut self, now: Cycle, core: usize, mut req: PendingReq) -> PResult {
        let block = req.block.0;
        let lat = self.lat();

        // Merge into an outstanding transaction on the same block.
        if let Some(waiters) = self.l1s[core].pending.get_mut(block) {
            waiters.push(req);
            self.stats.mshr_merges += 1;
            self.tracer.emit(|| TraceEvent {
                at: now,
                core: Some(core),
                addr: block,
                req: Some(req.id),
                kind: TraceKind::MshrMerge,
            });
            return Ok(());
        }

        // A granted line still waiting for a way serves accesses from the
        // installing buffer: it holds valid data in its granted state.
        if let Some(ins) = self.l1s[core].installing.get_mut(block) {
            let hit = match (req.kind, ins.state) {
                (AccessKind::Load, s) if s.load_hits() => true,
                (AccessKind::Store, L1State::M) => true,
                (AccessKind::Store, L1State::E) if self.cfg.protocol.silent_upgrade() => {
                    ins.state = L1State::M;
                    self.stats.silent_upgrades += 1;
                    self.l1_transition(now, core, req.block, L1State::E, L1State::M);
                    true
                }
                _ => false,
            };
            if hit {
                req.l1_before = self.l1s[core]
                    .installing
                    .get(block)
                    .expect("installing entry")
                    .state;
                self.stats.l1_hits += 1;
                let done = now + Cycle(lat.l1_lookup);
                self.complete(done, core, &req, None, ServedFrom::L1);
                return Ok(());
            }
            // A store against an installing S/E line falls through to the
            // miss path: with no array line there is no SM_A to park it in,
            // so it re-requests with data (GETX).
        }

        let state = self.l1s[core]
            .array
            .get(block)
            .map_or(L1State::I, |l| l.state);
        req.l1_before = if state.is_stable() { state } else { L1State::I };

        match (req.kind, state) {
            // ---- hits ----
            (AccessKind::Load, s) if s.load_hits() => {
                self.stats.l1_hits += 1;
                let done = now + Cycle(lat.l1_lookup);
                self.complete(done, core, &req, None, ServedFrom::L1);
            }
            (AccessKind::Store, L1State::M) => {
                self.stats.l1_hits += 1;
                let done = now + Cycle(lat.l1_lookup);
                self.complete(done, core, &req, None, ServedFrom::L1);
            }
            (AccessKind::Store, L1State::E) => {
                if self.cfg.protocol.silent_upgrade() {
                    // MESI / SwiftDir: silent E→M in the L1 (paper Fig. 3a /
                    // Fig. 4d). No coherence traffic at all.
                    self.stats.l1_hits += 1;
                    self.stats.silent_upgrades += 1;
                    self.l1s[core]
                        .array
                        .get_mut(block)
                        .expect("line present")
                        .state = L1State::M;
                    self.l1_transition(now, core, req.block, L1State::E, L1State::M);
                    let done = now + Cycle(lat.l1_lookup);
                    self.complete(done, core, &req, None, ServedFrom::L1);
                } else {
                    // S-MESI: explicit Upgrade/ACK round trip (paper Fig. 2,
                    // Fig. 3b). The store waits in EM_A. Upgrades occupy an
                    // MSHR just like misses do.
                    if self.l1_mshr_full(now, core, block, req) {
                        return Ok(());
                    }
                    self.l1s[core]
                        .array
                        .get_mut(block)
                        .expect("line present")
                        .state = L1State::EmA;
                    self.l1_transition(now, core, req.block, L1State::E, L1State::EmA);
                    self.l1s[core].pending.insert(block, req);
                    self.send_to_llc(
                        now,
                        lat.l1_lookup + lat.l1_to_llc,
                        Msg::Upgrade {
                            core,
                            addr: req.block,
                            req: req.id,
                        },
                    );
                }
            }
            (AccessKind::Store, L1State::S) => {
                if self.l1_mshr_full(now, core, block, req) {
                    return Ok(());
                }
                self.l1s[core]
                    .array
                    .get_mut(block)
                    .expect("line present")
                    .state = L1State::SmA;
                self.l1_transition(now, core, req.block, L1State::S, L1State::SmA);
                self.l1s[core].pending.insert(block, req);
                self.send_to_llc(
                    now,
                    lat.l1_lookup + lat.l1_to_llc,
                    Msg::Upgrade {
                        core,
                        addr: req.block,
                        req: req.id,
                    },
                );
            }
            // ---- misses ----
            (_, L1State::I) => {
                if self.l1_mshr_full(now, core, block, req) {
                    return Ok(());
                }
                self.stats.l1_misses += 1;
                // The MSHR holds the miss transient (Table I's IS^D/IM^D);
                // the array only learns the line at install.
                let transient = match req.kind {
                    AccessKind::Load => L1State::IsD,
                    AccessKind::Store => L1State::ImD,
                };
                self.l1_transition(now, core, req.block, L1State::I, transient);
                self.l1s[core].pending.insert(block, req);
                let msg = match req.kind {
                    AccessKind::Load => {
                        if req.wp && self.cfg.protocol == ProtocolKind::SwiftDir {
                            // The WP bit rode along with the translation;
                            // SwiftDir turns the miss into GETS_WP (§IV-C1).
                            Msg::GetsWp {
                                core,
                                addr: req.block,
                                req: req.id,
                            }
                        } else {
                            Msg::Gets {
                                core,
                                addr: req.block,
                                req: req.id,
                            }
                        }
                    }
                    AccessKind::Store => Msg::Getx {
                        core,
                        addr: req.block,
                        req: req.id,
                    },
                };
                self.send_to_llc(now, lat.l1_lookup + lat.l1_to_llc, msg);
            }
            (_, other) => {
                return Err(self.protocol_error(
                    now,
                    req.block,
                    Some(core),
                    format!("L1 access reached unexpected state {other} without pending entry"),
                ));
            }
        }
        Ok(())
    }

    /// Installs a line that arrived at the L1, evicting if necessary.
    ///
    /// The granted state and data sit in the `installing` buffer until a way
    /// frees up; `attempt` counts retries when every way is mid-transaction.
    /// After [`INSTALL_RETRY_LIMIT`] failed attempts the install parks in
    /// `stalled_installs` and is re-woken when the set drains, instead of
    /// polling forever (the fixed-interval retry could livelock against a
    /// same-period writer).
    fn l1_install_line(
        &mut self,
        now: Cycle,
        core: usize,
        block: PhysAddr,
        attempt: u32,
    ) -> PResult {
        let lat = self.lat();
        let Some(ins) = self.l1s[core].installing.get(block.0).copied() else {
            // The grant was cancelled (e.g. an Inv consumed the installing
            // entry before a way freed up); nothing to do.
            return Ok(());
        };
        // A transient for this very block still in the array (e.g. IM_D after
        // a lost upgrade) is replaced in place — no way is needed.
        let have_line = self.l1s[core].array.peek(block.0).is_some();
        if !have_line && !self.l1s[core].array.set_has_free_way(block.0) {
            let victim = self.l1s[core]
                .array
                .choose_victim(block.0, |l| l.state.is_stable() && l.state != L1State::I);
            match victim {
                Some(vaddr) => {
                    let vline = self.l1s[core]
                        .array
                        .invalidate(vaddr)
                        .expect("victim exists");
                    let vaddr = PhysAddr(vaddr);
                    match vline.state {
                        L1State::S => {
                            // Fire-and-forget eviction notice.
                            self.l1_transition(now, core, vaddr, L1State::S, L1State::I);
                            self.send_to_llc(
                                now,
                                lat.l1_to_llc,
                                Msg::WbDataClean { core, addr: vaddr },
                            );
                        }
                        L1State::E => {
                            self.l1s[core].wb_buffer.insert(
                                vaddr.0,
                                WbEntry {
                                    state: L1State::EiA,
                                    data: vline.data,
                                },
                            );
                            self.l1_transition(now, core, vaddr, L1State::E, L1State::EiA);
                            self.send_to_llc(
                                now,
                                lat.l1_to_llc,
                                Msg::WbDataClean { core, addr: vaddr },
                            );
                        }
                        L1State::M => {
                            self.l1s[core].wb_buffer.insert(
                                vaddr.0,
                                WbEntry {
                                    state: L1State::MiA,
                                    data: vline.data,
                                },
                            );
                            self.l1_transition(now, core, vaddr, L1State::M, L1State::MiA);
                            self.send_to_llc(
                                now,
                                lat.l1_to_llc,
                                Msg::WbDataDirty {
                                    core,
                                    addr: vaddr,
                                    data: vline.data,
                                },
                            );
                        }
                        other => {
                            return Err(self.protocol_error(
                                now,
                                block,
                                Some(core),
                                format!("stable victim had state {other}"),
                            ));
                        }
                    }
                }
                None if attempt < INSTALL_RETRY_LIMIT => {
                    // Every way is mid-transaction; retry shortly.
                    self.stats.protocol.record_install_retry();
                    self.sched(
                        now + Cycle(INSTALL_RETRY_DELAY),
                        Event::L1InsertRetry {
                            core,
                            block,
                            attempt: attempt + 1,
                        },
                    );
                    return Ok(());
                }
                None => {
                    // Retries exhausted: park until something in this set
                    // completes or invalidates, then re-wake.
                    self.stats.protocol.record_install_stall();
                    if !self.l1s[core].stalled_installs.contains(&block.0) {
                        self.l1s[core].stalled_installs.push(block.0);
                    }
                    return Ok(());
                }
            }
        }
        // The line leaves its miss transient (or a raced transient still in
        // the array, e.g. IM_D after a lost upgrade) for its granted state.
        let from = self.l1s[core].array.peek(block.0).map_or(
            if ins.state == L1State::M {
                L1State::ImD
            } else {
                L1State::IsD
            },
            |l| l.state,
        );
        let evicted = self.l1s[core].array.insert(
            block.0,
            L1Line {
                state: ins.state,
                data: ins.data,
            },
        );
        debug_assert!(evicted.is_none(), "free way was ensured above");
        self.l1s[core].installing.remove(block.0);
        self.l1_transition(now, core, block, from, ins.state);
        // The installed line is a stable eviction candidate: any install
        // parked on this set can now make room for itself.
        self.l1_drain_stalls(now, core, block);
        Ok(())
    }

    /// Re-wakes parked installs whose set may have gained a way after
    /// `freed_addr`'s line left `core`'s array.
    fn l1_drain_stalls(&mut self, now: Cycle, core: usize, freed_addr: PhysAddr) {
        if self.l1s[core].stalled_installs.is_empty() {
            return;
        }
        let set = self.cfg.l1_geometry.index_of(freed_addr.0);
        let mut i = 0;
        while i < self.l1s[core].stalled_installs.len() {
            let block = self.l1s[core].stalled_installs[i];
            if self.cfg.l1_geometry.index_of(block) == set {
                self.l1s[core].stalled_installs.swap_remove(i);
                self.sched(
                    now,
                    Event::L1InsertRetry {
                        core,
                        block: PhysAddr(block),
                        attempt: 1,
                    },
                );
            } else {
                i += 1;
            }
        }
    }

    /// Completes the primary request on `block` and replays merged ones.
    fn l1_finish_pending(
        &mut self,
        now: Cycle,
        core: usize,
        block: PhysAddr,
        llc_before: Option<LlcState>,
        served_from: ServedFrom,
    ) {
        // Drain into the reusable scratch: closing a transaction performs
        // no allocation (the slot's vector and the scratch are recycled).
        let mut waiters = std::mem::take(&mut *self.finish_scratch);
        waiters.clear();
        if self.l1s[core].pending.take_into(block.0, &mut waiters) {
            if let Some((&primary, merged)) = waiters.split_first() {
                self.complete(now, core, &primary, llc_before, served_from);
                for &merged in merged {
                    // Replay through the L1: typically an immediate hit now;
                    // a merged store behind a load grant re-issues an
                    // upgrade.
                    self.sched(now, Event::CoreReq { core, req: merged });
                }
            }
        }
        *self.finish_scratch = waiters;
    }

    fn l1_handle(&mut self, now: Cycle, core: usize, msg: Msg) -> PResult {
        let lat = self.lat();
        let block = msg.addr();
        match msg {
            Msg::Data {
                addr,
                llc_was,
                source,
                data,
                ..
            } => {
                // Load data without exclusivity: line becomes S (this is the
                // only grant SwiftDir allows for WP data — I→S, Fig. 4a).
                self.l1s[core].installing.insert(
                    addr.0,
                    PendingInstall {
                        state: L1State::S,
                        data,
                    },
                );
                self.l1_install_line(now, core, addr, 0)?;
                self.send_to_l1_unblock(now, core, addr, false);
                self.l1_finish_pending(now, core, addr, Some(llc_was), source);
            }
            Msg::DataExclusive {
                addr,
                for_store,
                llc_was,
                source,
                data,
                ..
            } => {
                let state = if for_store { L1State::M } else { L1State::E };
                self.l1s[core]
                    .installing
                    .insert(addr.0, PendingInstall { state, data });
                self.l1_install_line(now, core, addr, 0)?;
                self.send_to_l1_unblock(now, core, addr, true);
                self.l1_finish_pending(now, core, addr, Some(llc_was), source);
            }
            Msg::DataFromOwner {
                addr,
                for_store,
                llc_was,
                data,
                ..
            } => {
                let state = if for_store { L1State::M } else { L1State::S };
                self.l1s[core]
                    .installing
                    .insert(addr.0, PendingInstall { state, data });
                self.l1_install_line(now, core, addr, 0)?;
                self.send_to_l1_unblock(now, core, addr, for_store);
                self.l1_finish_pending(now, core, addr, Some(llc_was), ServedFrom::RemoteL1);
            }
            Msg::UpgradeAck { addr, llc_was, .. } => {
                // EM_A or SM_A → M (paper Fig. 2 steps 3a/4).
                if let Some(line) = self.l1s[core].array.get_mut(addr.0) {
                    debug_assert!(
                        matches!(line.state, L1State::EmA | L1State::SmA),
                        "UpgradeAck in state {}",
                        line.state
                    );
                    let from = line.state;
                    line.state = L1State::M;
                    self.l1_transition(now, core, addr, from, L1State::M);
                    // The line is stable (and evictable) again.
                    self.l1_drain_stalls(now, core, addr);
                } else if let Some(ins) = self.l1s[core].installing.get_mut(addr.0) {
                    // The directory acked a store against a grant still
                    // parked in the installing buffer (the owner bit was set
                    // by our Exclusive_Unblock, so the LLC rightly skips the
                    // data transfer). Upgrade the parked copy in place; the
                    // completion below stamps the store's value into it.
                    let from = ins.state;
                    ins.state = L1State::M;
                    self.l1_transition(now, core, addr, from, L1State::M);
                }
                self.l1_finish_pending(now, core, addr, Some(llc_was), ServedFrom::Llc);
            }
            Msg::FwdGets {
                requester,
                addr,
                req,
                llc_was,
            } => {
                // We are the owner: supply the data (paper Fig. 1a / 4e).
                let here = self.l1s[core].array.get(addr.0).map(|l| (l.state, l.data));
                match here {
                    Some((L1State::EmA, data)) => {
                        // Our upgrade raced a remote load and lost: hand the
                        // (clean) data over, demote to S, and let the
                        // in-flight Upgrade be re-evaluated by the LLC as an
                        // upgrade-from-S.
                        self.l1s[core].array.get_mut(addr.0).expect("line").state = L1State::SmA;
                        self.l1_transition(now, core, addr, L1State::EmA, L1State::SmA);
                        self.send_to_l1(
                            now,
                            lat.owner_lookup + lat.owner_to_requester,
                            Some(core),
                            requester,
                            Msg::DataFromOwner {
                                addr,
                                req,
                                for_store: false,
                                llc_was,
                                data,
                            },
                        );
                        self.send_to_llc(
                            now,
                            lat.owner_lookup + lat.l1_to_llc,
                            Msg::WbDataClean { core, addr },
                        );
                    }
                    Some((L1State::M, data)) => {
                        self.l1s[core].array.get_mut(addr.0).expect("line").state = L1State::S;
                        self.l1_transition(now, core, addr, L1State::M, L1State::S);
                        self.send_to_l1(
                            now,
                            lat.owner_lookup + lat.owner_to_requester,
                            Some(core),
                            requester,
                            Msg::DataFromOwner {
                                addr,
                                req,
                                for_store: false,
                                llc_was,
                                data,
                            },
                        );
                        self.send_to_llc(
                            now,
                            lat.owner_lookup + lat.l1_to_llc,
                            Msg::WbDataDirty { core, addr, data },
                        );
                    }
                    Some((L1State::E, data)) => {
                        self.l1s[core].array.get_mut(addr.0).expect("line").state = L1State::S;
                        self.l1_transition(now, core, addr, L1State::E, L1State::S);
                        self.send_to_l1(
                            now,
                            lat.owner_lookup + lat.owner_to_requester,
                            Some(core),
                            requester,
                            Msg::DataFromOwner {
                                addr,
                                req,
                                for_store: false,
                                llc_was,
                                data,
                            },
                        );
                        self.send_to_llc(
                            now,
                            lat.owner_lookup + lat.l1_to_llc,
                            Msg::WbDataClean { core, addr },
                        );
                    }
                    _ => {
                        if let Some(ins) = self.l1s[core].installing.get(addr.0).copied() {
                            // The granted line is still in the installing
                            // buffer (no way freed yet); it is the owner copy
                            // all the same. Demote it in place.
                            let was_m = ins.state == L1State::M;
                            self.l1s[core]
                                .installing
                                .get_mut(addr.0)
                                .expect("entry")
                                .state = L1State::S;
                            self.l1_transition(now, core, addr, ins.state, L1State::S);
                            self.send_to_l1(
                                now,
                                lat.owner_lookup + lat.owner_to_requester,
                                Some(core),
                                requester,
                                Msg::DataFromOwner {
                                    addr,
                                    req,
                                    for_store: false,
                                    llc_was,
                                    data: ins.data,
                                },
                            );
                            if was_m {
                                self.send_to_llc(
                                    now,
                                    lat.owner_lookup + lat.l1_to_llc,
                                    Msg::WbDataDirty {
                                        core,
                                        addr,
                                        data: ins.data,
                                    },
                                );
                            } else {
                                self.send_to_llc(
                                    now,
                                    lat.owner_lookup + lat.l1_to_llc,
                                    Msg::WbDataClean { core, addr },
                                );
                            }
                        } else if let Some(entry) = self.l1s[core].wb_buffer.get(addr.0).copied() {
                            // Owner is mid-eviction: the wb_buffer still has
                            // the data; the eviction WB doubles as the LLC's
                            // signal.
                            self.send_to_l1(
                                now,
                                lat.owner_lookup + lat.owner_to_requester,
                                Some(core),
                                requester,
                                Msg::DataFromOwner {
                                    addr,
                                    req,
                                    for_store: false,
                                    llc_was,
                                    data: entry.data,
                                },
                            );
                        } else {
                            // The blocking directory never forwards to a core
                            // with no trace of the line.
                            return Err(self.protocol_error(
                                now,
                                addr,
                                Some(core),
                                format!("Fwd_GETS reached core {core} which holds no copy"),
                            ));
                        }
                    }
                }
            }
            Msg::FwdGetx {
                requester,
                addr,
                req,
                llc_was,
            } => {
                let here = self.l1s[core].array.get(addr.0).map(|l| (l.state, l.data));
                match here {
                    Some((from @ (L1State::EmA | L1State::SmA), data)) => {
                        // Our upgrade raced a remote store and lost: give the
                        // line away and fall back to needing data — the LLC
                        // will answer our in-flight Upgrade with
                        // Data_Exclusive once the winner is done.
                        self.l1s[core].array.get_mut(addr.0).expect("line").state = L1State::ImD;
                        self.l1_transition(now, core, addr, from, L1State::ImD);
                        self.send_to_l1(
                            now,
                            lat.owner_lookup + lat.owner_to_requester,
                            Some(core),
                            requester,
                            Msg::DataFromOwner {
                                addr,
                                req,
                                for_store: true,
                                llc_was,
                                data,
                            },
                        );
                        self.send_to_llc(
                            now,
                            lat.owner_lookup + lat.l1_to_llc,
                            Msg::InvAck {
                                core,
                                addr,
                                dirty: false,
                                data: 0,
                            },
                        );
                    }
                    Some((from @ (L1State::M | L1State::E), data)) => {
                        let dirty = from == L1State::M;
                        self.l1s[core].array.invalidate(addr.0);
                        self.l1_transition(now, core, addr, from, L1State::I);
                        self.l1_drain_stalls(now, core, addr);
                        self.send_to_l1(
                            now,
                            lat.owner_lookup + lat.owner_to_requester,
                            Some(core),
                            requester,
                            Msg::DataFromOwner {
                                addr,
                                req,
                                for_store: true,
                                llc_was,
                                data,
                            },
                        );
                        self.send_to_llc(
                            now,
                            lat.owner_lookup + lat.l1_to_llc,
                            Msg::InvAck {
                                core,
                                addr,
                                dirty,
                                data: if dirty { data } else { 0 },
                            },
                        );
                    }
                    _ => {
                        if let Some(ins) = self.l1s[core].installing.remove(addr.0) {
                            // The granted line never reached the array; hand
                            // it straight to the winner and drop the grant.
                            self.l1s[core].stalled_installs.retain(|&b| b != addr.0);
                            let dirty = ins.state == L1State::M;
                            self.l1_transition(now, core, addr, ins.state, L1State::I);
                            self.send_to_l1(
                                now,
                                lat.owner_lookup + lat.owner_to_requester,
                                Some(core),
                                requester,
                                Msg::DataFromOwner {
                                    addr,
                                    req,
                                    for_store: true,
                                    llc_was,
                                    data: ins.data,
                                },
                            );
                            self.send_to_llc(
                                now,
                                lat.owner_lookup + lat.l1_to_llc,
                                Msg::InvAck {
                                    core,
                                    addr,
                                    dirty,
                                    data: if dirty { ins.data } else { 0 },
                                },
                            );
                        } else if let Some(entry) = self.l1s[core].wb_buffer.get(addr.0).copied() {
                            self.send_to_l1(
                                now,
                                lat.owner_lookup + lat.owner_to_requester,
                                Some(core),
                                requester,
                                Msg::DataFromOwner {
                                    addr,
                                    req,
                                    for_store: true,
                                    llc_was,
                                    data: entry.data,
                                },
                            );
                        } else {
                            return Err(self.protocol_error(
                                now,
                                addr,
                                Some(core),
                                format!("Fwd_GETX reached core {core} which holds no copy"),
                            ));
                        }
                    }
                }
            }
            Msg::Inv { addr } => {
                // Invalidate whatever we have; ack regardless (conservative
                // sharer lists make Inv-to-non-holder normal).
                let prev = self.l1s[core].array.peek(addr.0).map(|l| (l.state, l.data));
                match prev {
                    Some((from @ (L1State::SmA | L1State::EmA), _)) => {
                        // Upgrade race lost: our Upgrade will be treated as a
                        // GETX by the LLC; we now need data, not just an ack.
                        self.l1s[core].array.invalidate(addr.0);
                        self.l1_transition(now, core, addr, from, L1State::I);
                        self.l1_drain_stalls(now, core, addr);
                        self.send_to_llc(
                            now,
                            lat.l1_to_llc,
                            Msg::InvAck {
                                core,
                                addr,
                                dirty: false,
                                data: 0,
                            },
                        );
                    }
                    Some((from, data)) => {
                        let dirty = from == L1State::M;
                        self.l1s[core].array.invalidate(addr.0);
                        self.l1_transition(now, core, addr, from, L1State::I);
                        self.l1_drain_stalls(now, core, addr);
                        self.send_to_llc(
                            now,
                            lat.l1_to_llc,
                            Msg::InvAck {
                                core,
                                addr,
                                dirty,
                                data: if dirty { data } else { 0 },
                            },
                        );
                    }
                    None => {
                        if let Some(ins) = self.l1s[core].installing.remove(addr.0) {
                            // The invalidation raced the install: cancel the
                            // buffered grant and surrender its data.
                            self.l1s[core].stalled_installs.retain(|&b| b != addr.0);
                            let dirty = ins.state == L1State::M;
                            self.l1_transition(now, core, addr, ins.state, L1State::I);
                            self.send_to_llc(
                                now,
                                lat.l1_to_llc,
                                Msg::InvAck {
                                    core,
                                    addr,
                                    dirty,
                                    data: if dirty { ins.data } else { 0 },
                                },
                            );
                        } else if let Some(entry) = self.l1s[core].wb_buffer.remove(addr.0) {
                            // The Inv crossed our eviction: the WbData is
                            // already ahead of this ack on the L1→LLC link,
                            // so fold the eviction into the invalidation —
                            // close the handshake locally and let the LLC
                            // treat the writeback as the ack.
                            self.l1_transition(now, core, addr, entry.state, L1State::I);
                            self.send_to_llc(
                                now,
                                lat.l1_to_llc,
                                Msg::InvAck {
                                    core,
                                    addr,
                                    dirty: false,
                                    data: 0,
                                },
                            );
                        } else {
                            self.send_to_llc(
                                now,
                                lat.l1_to_llc,
                                Msg::InvAck {
                                    core,
                                    addr,
                                    dirty: false,
                                    data: 0,
                                },
                            );
                        }
                    }
                }
            }
            Msg::WbAck { addr } => {
                if let Some(entry) = self.l1s[core].wb_buffer.remove(addr.0) {
                    // The eviction handshake closes: EI_A/MI_A → I.
                    self.l1_transition(now, core, addr, entry.state, L1State::I);
                }
            }
            other => {
                return Err(self.protocol_error(
                    now,
                    block,
                    Some(core),
                    format!("L1 received unexpected message {other:?}"),
                ));
            }
        }
        Ok(())
    }

    /// Acknowledges a writeback. The delay matches every other LLC→L1
    /// message (`llc_lookup + llc_to_l1`) so that messages to one core are
    /// delivered in LLC processing order — a WbAck must never overtake a
    /// forward sent earlier, or the owner would drop its wb_buffer entry
    /// before answering the forward.
    fn send_wb_ack(&mut self, now: Cycle, core: usize, addr: PhysAddr) {
        let lat = self.lat();
        self.send_to_l1(
            now,
            lat.llc_lookup + lat.llc_to_l1,
            None,
            core,
            Msg::WbAck { addr },
        );
    }

    fn send_to_l1_unblock(&mut self, now: Cycle, core: usize, addr: PhysAddr, exclusive: bool) {
        let lat = self.lat();
        let msg = if exclusive {
            Msg::ExclusiveUnblock { core, addr }
        } else {
            Msg::Unblock { core, addr }
        };
        self.send_to_llc(now, lat.l1_to_llc, msg);
    }

    // -----------------------------------------------------------------------
    // LLC / directory controller
    // -----------------------------------------------------------------------

    fn llc_handle(&mut self, now: Cycle, msg: Msg) -> PResult {
        match msg {
            Msg::Gets { .. } | Msg::GetsWp { .. } | Msg::Getx { .. } | Msg::Upgrade { .. } => {
                self.llc_request(now, msg)
            }
            Msg::WbDataClean { core, addr } => {
                self.llc_writeback(now, core, addr, false, 0);
                Ok(())
            }
            Msg::WbDataDirty { core, addr, data } => {
                self.llc_writeback(now, core, addr, true, data);
                Ok(())
            }
            Msg::InvAck {
                core,
                addr,
                dirty,
                data,
            } => {
                self.llc_inv_ack(now, core, addr, dirty, data);
                Ok(())
            }
            Msg::Unblock { core, addr } => self.llc_unblock(now, core, addr, false),
            Msg::ExclusiveUnblock { core, addr } => self.llc_unblock(now, core, addr, true),
            other => Err(self.protocol_error(
                now,
                other.addr(),
                None,
                format!("LLC received unexpected message {other:?}"),
            )),
        }
    }

    /// Handles the four request messages; may stall them on blocked lines
    /// or full sets.
    fn llc_request(&mut self, now: Cycle, msg: Msg) -> PResult {
        let addr = msg.addr();
        let lat = self.lat();

        // Stall on a blocked line.
        if let Some(line) = self.banks[self.cfg.bank_of(addr.0)].array.get_mut(addr.0) {
            if line.txn.is_some() {
                line.waiters.push_back(msg);
                return Ok(());
            }
        }

        let (core, req, is_store, is_upgrade, wp) = match msg {
            Msg::Gets { core, addr: _, req } => (core, req, false, false, false),
            Msg::GetsWp { core, addr: _, req } => (core, req, false, false, true),
            Msg::Getx { core, addr: _, req } => (core, req, true, false, false),
            Msg::Upgrade { core, addr: _, req } => (core, req, true, true, false),
            other => {
                return Err(self.protocol_error(
                    now,
                    addr,
                    None,
                    format!("non-request message {other:?} routed to llc_request"),
                ));
            }
        };

        let present = self.banks[self.cfg.bank_of(addr.0)]
            .array
            .get(addr.0)
            .is_some();
        if !present {
            // Allocate (possibly evicting/recalling) and fetch from memory.
            if !self.llc_make_room(now, addr, msg) {
                return Ok(()); // stalled on the set; will be replayed
            }
            let grant_shared = match self.cfg.protocol.initial_load_grant(wp) {
                InitialGrant::Shared => true,
                InitialGrant::Exclusive => false,
            } && !is_store;
            let mut line = LlcLine::fresh();
            line.txn = Some(LlcTxn::Fetch {
                requester: core,
                req,
                for_store: is_store,
                grant_shared,
            });
            let inserted = self.banks[self.cfg.bank_of(addr.0)]
                .array
                .insert(addr.0, line);
            debug_assert!(inserted.is_none(), "room was made above");
            self.count(CoherenceEvent::Fetch);
            let done = self.banks[self.cfg.bank_of(addr.0)].mem.access(
                now + Cycle(lat.llc_lookup),
                addr,
                false,
            );
            self.sched(done, Event::MemDone { addr });
            return Ok(());
        }

        let line = self.banks[self.cfg.bank_of(addr.0)]
            .array
            .get_mut(addr.0)
            .expect("present");
        let llc_was = line.state;
        let data = line.data;
        match (line.state, is_store) {
            // ---------------- loads ----------------
            (LlcState::S, false) => {
                // When no core caches the block, this is an "initial load"
                // in the paper's sense: the MESI family grants exclusivity
                // (the line re-enters E), except SwiftDir for WP data and
                // MSI, which grant S. With copies outstanding the LLC
                // serves it shared directly (paper Fig. 1b / 4b).
                let exclusive = !line.has_copies()
                    && self.cfg.protocol.initial_load_grant(wp) == InitialGrant::Exclusive;
                if exclusive {
                    line.txn = Some(LlcTxn::AwaitUnblockE {
                        requester: core,
                        final_m: false,
                    });
                    self.send_to_l1(
                        now,
                        lat.llc_lookup + lat.llc_to_l1,
                        None,
                        core,
                        Msg::DataExclusive {
                            addr,
                            req,
                            for_store: false,
                            llc_was,
                            source: ServedFrom::Llc,
                            data,
                        },
                    );
                } else {
                    line.txn = Some(LlcTxn::AwaitUnblockS { requester: core });
                    self.send_to_l1(
                        now,
                        lat.llc_lookup + lat.llc_to_l1,
                        None,
                        core,
                        Msg::Data {
                            addr,
                            req,
                            llc_was,
                            source: ServedFrom::Llc,
                            data,
                        },
                    );
                }
            }
            (LlcState::E, false) if self.cfg.protocol.llc_serves_e_directly() => {
                // S-MESI: E-state LLC data are guaranteed current; serve
                // directly and degrade to S (paper §II-C).
                line.txn = Some(LlcTxn::AwaitUnblockS { requester: core });
                self.send_to_l1(
                    now,
                    lat.llc_lookup + lat.llc_to_l1,
                    None,
                    core,
                    Msg::Data {
                        addr,
                        req,
                        llc_was,
                        source: ServedFrom::Llc,
                        data,
                    },
                );
            }
            (LlcState::E, false) | (LlcState::M, false) => {
                // Forward to the owner (paper Fig. 1a).
                let Some(owner) = line.owner else {
                    return Err(self.protocol_error(
                        now,
                        addr,
                        None,
                        format!("{llc_was} line has no owner to forward a load to"),
                    ));
                };
                let line = self.banks[self.cfg.bank_of(addr.0)]
                    .array
                    .get_mut(addr.0)
                    .expect("present");
                line.txn = Some(LlcTxn::FwdLoad {
                    requester: core,
                    wb_done: false,
                    unblock_done: false,
                });
                self.send_to_l1(
                    now,
                    lat.llc_lookup + lat.fwd_to_owner,
                    None,
                    owner,
                    Msg::FwdGets {
                        requester: core,
                        addr,
                        req,
                        llc_was,
                    },
                );
            }
            // ---------------- stores ----------------
            (LlcState::S, true) => {
                let mut pending = line.sharers & !(1u64 << core);
                if let Some(o) = line.owner {
                    if o != core {
                        pending |= 1 << o;
                    }
                }
                // An Upgrade from a core that lost its copy to a racing
                // invalidation degenerates to a GETX: it needs data again.
                let needs_data = !is_upgrade || line.sharers & (1 << core) == 0;
                if pending == 0 {
                    self.llc_grant_ownership(now, addr, core, req, needs_data, llc_was);
                } else {
                    let line = self.banks[self.cfg.bank_of(addr.0)]
                        .array
                        .get_mut(addr.0)
                        .expect("present");
                    line.txn = Some(LlcTxn::Invalidating {
                        requester: core,
                        req,
                        pending,
                        with_data: needs_data,
                        llc_was,
                    });
                    for c in bits(pending) {
                        self.send_to_l1(
                            now,
                            lat.llc_lookup + lat.llc_to_l1,
                            None,
                            c,
                            Msg::Inv { addr },
                        );
                    }
                }
            }
            (LlcState::E, true) | (LlcState::M, true) => {
                let Some(owner) = line.owner else {
                    return Err(self.protocol_error(
                        now,
                        addr,
                        None,
                        format!("{llc_was} line has no owner to forward a store to"),
                    ));
                };
                let line = self.banks[self.cfg.bank_of(addr.0)]
                    .array
                    .get_mut(addr.0)
                    .expect("present");
                if owner == core {
                    // S-MESI E→M upgrade by the owner itself (paper Fig. 2):
                    // flip the directory state and ack — no invalidations.
                    line.state = LlcState::M;
                    self.send_to_l1(
                        now,
                        lat.llc_lookup + lat.llc_to_l1,
                        None,
                        core,
                        Msg::UpgradeAck { addr, req, llc_was },
                    );
                } else {
                    line.txn = Some(LlcTxn::FwdStore {
                        requester: core,
                        wb_done: false,
                        unblock_done: false,
                    });
                    self.send_to_l1(
                        now,
                        lat.llc_lookup + lat.fwd_to_owner,
                        None,
                        owner,
                        Msg::FwdGetx {
                            requester: core,
                            addr,
                            req,
                            llc_was,
                        },
                    );
                }
            }
            (LlcState::I, _) => {
                return Err(self.protocol_error(
                    now,
                    addr,
                    None,
                    "present LLC line cannot be I".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Grants M to `core`, with data (GETX) or a bare ack (Upgrade).
    fn llc_grant_ownership(
        &mut self,
        now: Cycle,
        addr: PhysAddr,
        core: usize,
        req: RequestId,
        with_data: bool,
        llc_was: LlcState,
    ) {
        let lat = self.lat();
        let line = self.banks[self.cfg.bank_of(addr.0)]
            .array
            .get_mut(addr.0)
            .expect("present");
        if with_data {
            let data = line.data;
            line.txn = Some(LlcTxn::AwaitUnblockE {
                requester: core,
                final_m: true,
            });
            self.send_to_l1(
                now,
                lat.llc_lookup + lat.llc_to_l1,
                None,
                core,
                Msg::DataExclusive {
                    addr,
                    req,
                    for_store: true,
                    llc_was,
                    source: ServedFrom::Llc,
                    data,
                },
            );
        } else {
            line.state = LlcState::M;
            line.owner = Some(core);
            line.sharers = 0;
            line.txn = None;
            self.send_to_l1(
                now,
                lat.llc_lookup + lat.llc_to_l1,
                None,
                core,
                Msg::UpgradeAck { addr, req, llc_was },
            );
            self.llc_replay_waiters(now, addr);
        }
    }

    /// Ensures a free way exists in `addr`'s LLC set, possibly starting a
    /// recall. Returns false if `msg` was stalled.
    fn llc_make_room(&mut self, now: Cycle, addr: PhysAddr, msg: Msg) -> bool {
        if self.banks[self.cfg.bank_of(addr.0)]
            .array
            .set_has_free_way(addr.0)
        {
            return true;
        }
        let lat = self.lat();
        // Prefer victims with no private copies.
        if let Some(vaddr) = self.banks[self.cfg.bank_of(addr.0)]
            .array
            .choose_victim(addr.0, |l| l.txn.is_none() && !l.has_copies())
        {
            let vline = self.banks[self.cfg.bank_of(addr.0)]
                .array
                .invalidate(vaddr)
                .expect("victim exists");
            self.llc_transition(now, PhysAddr(vaddr), vline.state, LlcState::I);
            if vline.dirty {
                // Writeback to memory, fire-and-forget.
                self.banks[self.cfg.bank_of(addr.0)]
                    .mem_image
                    .insert(vaddr, vline.data);
                self.banks[self.cfg.bank_of(addr.0)]
                    .mem
                    .access(now, PhysAddr(vaddr), true);
            }
            self.llc_replay_set_stalls(now, PhysAddr(vaddr));
            return true;
        }
        // Recall a line with copies.
        if let Some(vaddr) = self.banks[self.cfg.bank_of(addr.0)]
            .array
            .choose_victim(addr.0, |l| l.txn.is_none())
        {
            self.stats.recalls += 1;
            let vline = self.banks[self.cfg.bank_of(addr.0)]
                .array
                .get_mut(vaddr)
                .expect("victim exists");
            let mut pending = vline.sharers;
            if let Some(o) = vline.owner {
                pending |= 1 << o;
            }
            debug_assert!(pending != 0, "recall victim has copies");
            vline.txn = Some(LlcTxn::Recall { pending });
            for c in bits(pending) {
                self.send_to_l1(
                    now,
                    lat.llc_lookup + lat.llc_to_l1,
                    None,
                    c,
                    Msg::Inv {
                        addr: PhysAddr(vaddr),
                    },
                );
            }
        }
        // Stall the request on the set either way.
        let set = self.bank_geom().index_of(addr.0);
        self.banks[self.cfg.bank_of(addr.0)]
            .set_stalls
            .entry(set)
            .or_default()
            .push_back(msg);
        false
    }

    /// DRAM returned data for `addr`: respond per the pending fetch.
    fn llc_mem_done(&mut self, now: Cycle, addr: PhysAddr) -> PResult {
        self.count(CoherenceEvent::MemData);
        let lat = self.lat();
        let data = self.banks[self.cfg.bank_of(addr.0)]
            .mem_image
            .get(&addr.0)
            .copied()
            .unwrap_or(0);
        let Some(line) = self.banks[self.cfg.bank_of(addr.0)].array.get_mut(addr.0) else {
            return Err(self.protocol_error(
                now,
                addr,
                None,
                "MemDone for a line absent from the LLC".to_string(),
            ));
        };
        let Some(LlcTxn::Fetch {
            requester,
            req,
            for_store,
            grant_shared,
        }) = line.txn
        else {
            let txn = line.txn;
            return Err(self.protocol_error(
                now,
                addr,
                None,
                format!("MemDone without Fetch txn (found {txn:?})"),
            ));
        };
        line.data = data;
        if grant_shared {
            line.txn = Some(LlcTxn::AwaitUnblockS { requester });
            self.send_to_l1(
                now,
                lat.llc_to_l1,
                None,
                requester,
                Msg::Data {
                    addr,
                    req,
                    llc_was: LlcState::I,
                    source: ServedFrom::Memory,
                    data,
                },
            );
        } else {
            line.txn = Some(LlcTxn::AwaitUnblockE {
                requester,
                final_m: for_store,
            });
            self.send_to_l1(
                now,
                lat.llc_to_l1,
                None,
                requester,
                Msg::DataExclusive {
                    addr,
                    req,
                    for_store,
                    llc_was: LlcState::I,
                    source: ServedFrom::Memory,
                    data,
                },
            );
        }
        Ok(())
    }

    /// A writeback (clean or dirty) arrived from `core`.
    fn llc_writeback(&mut self, now: Cycle, core: usize, addr: PhysAddr, dirty: bool, data: u64) {
        self.tracer.emit(|| TraceEvent {
            at: now,
            core: Some(core),
            addr: addr.0,
            req: None,
            kind: TraceKind::Writeback { dirty },
        });
        let Some(line) = self.banks[self.cfg.bank_of(addr.0)].array.get_mut(addr.0) else {
            // Line already evicted from the LLC (recall completed on acks
            // while this WB crossed): just ack so the L1 can drop it.
            if dirty {
                self.banks[self.cfg.bank_of(addr.0)]
                    .mem_image
                    .insert(addr.0, data);
                self.banks[self.cfg.bank_of(addr.0)]
                    .mem
                    .access(now, addr, true);
            }
            self.send_wb_ack(now, core, addr);
            return;
        };

        let is_owner = line.owner == Some(core);
        if dirty {
            line.dirty = true;
            line.data = data;
        }

        match line.txn {
            Some(LlcTxn::FwdLoad {
                requester,
                unblock_done,
                ..
            }) if is_owner => {
                // The owner's WB (fwd-triggered demotion, or a crossing
                // eviction) satisfies the transaction's WB requirement.
                // Conservatively keep the owner listed as a sharer. Ack
                // clean WBs too: a crossing eviction parked an EI_A entry
                // that only this ack can release.
                line.sharers |= 1 << core;
                line.owner = None;
                if unblock_done {
                    line.state = LlcState::S;
                    line.sharers |= 1 << requester;
                    line.txn = None;
                    self.send_wb_ack(now, core, addr);
                    self.llc_replay_waiters(now, addr);
                } else {
                    line.txn = Some(LlcTxn::FwdLoad {
                        requester,
                        wb_done: true,
                        unblock_done: false,
                    });
                    self.send_wb_ack(now, core, addr);
                }
                return;
            }
            Some(LlcTxn::FwdStore {
                requester,
                unblock_done,
                ..
            }) if is_owner => {
                line.owner = None;
                if unblock_done {
                    line.state = LlcState::M;
                    line.owner = Some(requester);
                    line.sharers = 0;
                    line.txn = None;
                    self.send_wb_ack(now, core, addr);
                    self.llc_replay_waiters(now, addr);
                } else {
                    line.txn = Some(LlcTxn::FwdStore {
                        requester,
                        wb_done: true,
                        unblock_done: false,
                    });
                    self.send_wb_ack(now, core, addr);
                }
                return;
            }
            Some(LlcTxn::Recall { pending }) if pending & (1 << core) != 0 => {
                // Eviction WB doubles as the recall ack.
                line.sharers &= !(1 << core);
                if line.owner == Some(core) {
                    line.owner = None;
                }
                self.send_wb_ack(now, core, addr);
                self.llc_recall_ack(now, addr, core);
                return;
            }
            Some(LlcTxn::Invalidating { .. }) => {
                // A sharer evicted while we were invalidating: treat the WB
                // as its ack (handled by llc_inv_ack's shared logic).
                if dirty {
                    self.send_wb_ack(now, core, addr);
                }
                self.llc_inv_ack(now, core, addr, dirty, data);
                return;
            }
            _ => {}
        }

        // Plain eviction handling on an unblocked (or unrelated-txn) line.
        line.sharers &= !(1 << core);
        if is_owner {
            line.owner = None;
            // E/M line returns to shared-clean (dirty flag remembers data).
            line.state = LlcState::S;
            self.send_wb_ack(now, core, addr);
        } else if dirty {
            // A dirty WB whose owner bit was already cleared (e.g. by a
            // crossing invalidation): the data was absorbed above; close
            // the evictor's handshake so its MI_A entry does not leak.
            self.send_wb_ack(now, core, addr);
        }
        // S evictions are fire-and-forget: no ack.
    }

    /// An invalidation ack (explicit, or synthesized from a crossing WB).
    fn llc_inv_ack(&mut self, now: Cycle, core: usize, addr: PhysAddr, dirty: bool, data: u64) {
        let Some(line) = self.banks[self.cfg.bank_of(addr.0)].array.get_mut(addr.0) else {
            return; // late ack for an already-recalled line
        };
        if dirty {
            line.dirty = true;
            line.data = data;
        }
        line.sharers &= !(1 << core);
        if line.owner == Some(core) {
            line.owner = None;
        }
        match line.txn {
            Some(LlcTxn::Invalidating {
                requester,
                req,
                pending,
                with_data,
                llc_was,
            }) => {
                let pending = pending & !(1 << core);
                if pending == 0 {
                    line.txn = None;
                    self.llc_grant_ownership(now, addr, requester, req, with_data, llc_was);
                } else {
                    line.txn = Some(LlcTxn::Invalidating {
                        requester,
                        req,
                        pending,
                        with_data,
                        llc_was,
                    });
                }
            }
            Some(LlcTxn::Recall { .. }) => self.llc_recall_ack(now, addr, core),
            Some(LlcTxn::FwdStore {
                requester,
                unblock_done,
                ..
            }) if line.owner.is_none() => {
                // Owner's InvAck for a forwarded store.
                if unblock_done {
                    line.state = LlcState::M;
                    line.owner = Some(requester);
                    line.sharers = 0;
                    line.txn = None;
                    self.llc_replay_waiters(now, addr);
                } else {
                    line.txn = Some(LlcTxn::FwdStore {
                        requester,
                        wb_done: true,
                        unblock_done: false,
                    });
                }
            }
            _ => {
                // Ack with no matching txn: a stale ack from a conservative
                // sharer listing. The sharer-bit clearing above suffices.
            }
        }
    }

    fn llc_recall_ack(&mut self, now: Cycle, addr: PhysAddr, core: usize) {
        let line = self.banks[self.cfg.bank_of(addr.0)]
            .array
            .get_mut(addr.0)
            .expect("recalling line present");
        let Some(LlcTxn::Recall { pending }) = line.txn else {
            return;
        };
        let pending = pending & !(1 << core);
        if pending != 0 {
            line.txn = Some(LlcTxn::Recall { pending });
            return;
        }
        // All copies invalidated: evict the line.
        let dirty = line.dirty;
        let data = line.data;
        let waiters: Vec<Msg> = line.waiters.drain(..).collect();
        self.banks[self.cfg.bank_of(addr.0)]
            .array
            .invalidate(addr.0);
        if dirty {
            self.banks[self.cfg.bank_of(addr.0)]
                .mem_image
                .insert(addr.0, data);
            self.banks[self.cfg.bank_of(addr.0)]
                .mem
                .access(now, addr, true);
        }
        for w in waiters {
            self.sched(now, Event::ToLlc(w));
        }
        self.llc_replay_set_stalls(now, addr);
    }

    /// An `Unblock` / `Exclusive_Unblock` from the requester.
    fn llc_unblock(&mut self, now: Cycle, core: usize, addr: PhysAddr, exclusive: bool) -> PResult {
        let Some(line) = self.banks[self.cfg.bank_of(addr.0)].array.get_mut(addr.0) else {
            return Err(self.protocol_error(
                now,
                addr,
                Some(core),
                "Unblock for a line absent from the LLC".to_string(),
            ));
        };
        match line.txn {
            Some(LlcTxn::AwaitUnblockS { requester }) => {
                debug_assert_eq!(core, requester);
                debug_assert!(!exclusive);
                line.state = LlcState::S;
                line.sharers |= 1 << core;
                line.txn = None;
            }
            Some(LlcTxn::AwaitUnblockE { requester, final_m }) => {
                debug_assert_eq!(core, requester);
                line.state = if final_m { LlcState::M } else { LlcState::E };
                line.owner = Some(core);
                line.sharers = 0;
                line.txn = None;
            }
            Some(LlcTxn::FwdLoad {
                requester, wb_done, ..
            }) => {
                debug_assert_eq!(core, requester);
                if wb_done {
                    line.state = LlcState::S;
                    line.sharers |= 1 << requester;
                    line.txn = None;
                } else {
                    line.txn = Some(LlcTxn::FwdLoad {
                        requester,
                        wb_done: false,
                        unblock_done: true,
                    });
                    return Ok(());
                }
            }
            Some(LlcTxn::FwdStore {
                requester, wb_done, ..
            }) => {
                debug_assert_eq!(core, requester);
                if wb_done {
                    line.state = LlcState::M;
                    line.owner = Some(requester);
                    line.sharers = 0;
                    line.txn = None;
                } else {
                    line.txn = Some(LlcTxn::FwdStore {
                        requester,
                        wb_done: false,
                        unblock_done: true,
                    });
                    return Ok(());
                }
            }
            other => {
                return Err(self.protocol_error(
                    now,
                    addr,
                    Some(core),
                    format!("Unblock with txn {other:?}"),
                ));
            }
        }
        self.llc_replay_waiters(now, addr);
        Ok(())
    }

    /// Replays requests stalled on `addr`'s (now unblocked) line, plus any
    /// requests stalled on the set (they may have been waiting for *any*
    /// transaction in the set to finish so a victim becomes eligible).
    fn llc_replay_waiters(&mut self, now: Cycle, addr: PhysAddr) {
        if let Some(line) = self.banks[self.cfg.bank_of(addr.0)].array.get_mut(addr.0) {
            let waiters: Vec<Msg> = line.waiters.drain(..).collect();
            for w in waiters {
                self.sched(now, Event::ToLlc(w));
            }
        }
        self.llc_replay_set_stalls(now, addr);
    }

    /// Replays requests stalled on `addr`'s set (a way was freed).
    fn llc_replay_set_stalls(&mut self, now: Cycle, addr: PhysAddr) {
        let set = self.bank_geom().index_of(addr.0);
        if let Some(stalls) = self.banks[self.cfg.bank_of(addr.0)].set_stalls.remove(&set) {
            for msg in stalls {
                self.sched(now, Event::ToLlc(msg));
            }
        }
    }
}

/// Iterates over the set bit indices of a mask.
fn bits(mask: u64) -> impl Iterator<Item = usize> {
    (0..64).filter(move |i| mask & (1u64 << i) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier(protocol: ProtocolKind, cores: usize) -> Hierarchy {
        Hierarchy::new(HierarchyConfig::table_v(cores, protocol))
    }

    fn one(completions: Vec<Completion>) -> Completion {
        assert_eq!(completions.len(), 1, "expected one completion");
        completions[0]
    }

    const A: PhysAddr = PhysAddr(0x10_0040);

    #[test]
    fn cold_load_comes_from_memory() {
        let mut h = hier(ProtocolKind::Mesi, 1);
        h.issue(Cycle(0), 0, CoreRequest::load(A));
        let c = one(h.run_until_idle());
        assert_eq!(c.served_from, ServedFrom::Memory);
        assert_eq!(c.class.l1_before, L1State::I);
        assert_eq!(c.class.llc_before, Some(LlcState::I));
        assert!(c.latency() > Cycle(50), "DRAM latency dominates: {c:?}");
        assert_eq!(h.l1_state(0, A), L1State::E, "MESI initial load is E");
        assert_eq!(h.llc_state(A), LlcState::E);
    }

    #[test]
    fn swiftdir_wp_load_is_shared_everywhere() {
        let mut h = hier(ProtocolKind::SwiftDir, 2);
        h.issue(Cycle(0), 0, CoreRequest::load(A).write_protected());
        one(h.run_until_idle());
        assert_eq!(h.l1_state(0, A), L1State::S, "SwiftDir I→S for WP data");
        assert_eq!(h.llc_state(A), LlcState::S);
        assert_eq!(h.stats().event(CoherenceEvent::GetsWp), 1);
        assert_eq!(h.stats().event(CoherenceEvent::Gets), 0);
    }

    #[test]
    fn swiftdir_non_wp_load_still_exclusive() {
        let mut h = hier(ProtocolKind::SwiftDir, 2);
        h.issue(Cycle(0), 0, CoreRequest::load(A));
        one(h.run_until_idle());
        assert_eq!(h.l1_state(0, A), L1State::E);
        assert_eq!(h.stats().event(CoherenceEvent::Gets), 1);
    }

    #[test]
    fn msi_never_grants_exclusive() {
        let mut h = hier(ProtocolKind::Msi, 1);
        h.issue(Cycle(0), 0, CoreRequest::load(A));
        one(h.run_until_idle());
        assert_eq!(h.l1_state(0, A), L1State::S);
    }

    #[test]
    fn l1_hit_is_one_cycle() {
        let mut h = hier(ProtocolKind::Mesi, 1);
        h.issue(Cycle(0), 0, CoreRequest::load(A));
        h.run_until_idle();
        h.issue(Cycle(1000), 0, CoreRequest::load(A));
        let c = one(h.run_until_idle());
        assert_eq!(c.served_from, ServedFrom::L1);
        assert_eq!(c.latency(), Cycle(1));
    }

    #[test]
    fn remote_load_of_s_data_served_from_llc_at_17_cycles() {
        let mut h = hier(ProtocolKind::SwiftDir, 2);
        h.issue(Cycle(0), 0, CoreRequest::load(A).write_protected());
        h.run_until_idle();
        // Core 1 reads the same (now S) block: LLC serves directly.
        h.issue(Cycle(1000), 1, CoreRequest::load(A).write_protected());
        let c = one(h.run_until_idle());
        assert_eq!(c.served_from, ServedFrom::Llc);
        assert_eq!(c.class.llc_before, Some(LlcState::S));
        assert_eq!(c.latency(), Cycle(17), "the Figure 6 anchor");
    }

    #[test]
    fn remote_load_of_e_data_forwarded_with_26_cycle_gap() {
        let mut h = hier(ProtocolKind::Mesi, 2);
        h.issue(Cycle(0), 0, CoreRequest::load(A));
        h.run_until_idle();
        assert_eq!(h.l1_state(0, A), L1State::E);
        h.issue(Cycle(1000), 1, CoreRequest::load(A));
        let c = one(h.run_until_idle());
        assert_eq!(c.served_from, ServedFrom::RemoteL1);
        assert_eq!(c.class.llc_before, Some(LlcState::E));
        assert_eq!(c.latency(), Cycle(17 + 26), "S latency + the E/S gap");
        // Both copies end shared; LLC is S.
        assert_eq!(h.l1_state(0, A), L1State::S);
        assert_eq!(h.l1_state(1, A), L1State::S);
        assert_eq!(h.llc_state(A), LlcState::S);
    }

    #[test]
    fn smesi_serves_e_data_from_llc() {
        let mut h = hier(ProtocolKind::SMesi, 2);
        h.issue(Cycle(0), 0, CoreRequest::load(A));
        h.run_until_idle();
        assert_eq!(h.l1_state(0, A), L1State::E);
        h.issue(Cycle(1000), 1, CoreRequest::load(A));
        let c = one(h.run_until_idle());
        assert_eq!(c.served_from, ServedFrom::Llc, "S-MESI: E served from LLC");
        assert_eq!(c.latency(), Cycle(17));
    }

    #[test]
    fn silent_upgrade_in_mesi_and_swiftdir() {
        for p in [ProtocolKind::Mesi, ProtocolKind::SwiftDir] {
            let mut h = hier(p, 1);
            h.issue(Cycle(0), 0, CoreRequest::load(A));
            h.run_until_idle();
            let upgrades_before = h.stats().event(CoherenceEvent::Upgrade);
            h.issue(Cycle(1000), 0, CoreRequest::store(A));
            let c = one(h.run_until_idle());
            assert_eq!(c.latency(), Cycle(1), "{p}: silent upgrade is an L1 hit");
            assert_eq!(h.l1_state(0, A), L1State::M);
            assert_eq!(h.llc_state(A), LlcState::E, "{p}: LLC not notified");
            assert_eq!(h.stats().event(CoherenceEvent::Upgrade), upgrades_before);
            assert_eq!(h.stats().silent_upgrades, 1);
        }
    }

    #[test]
    fn smesi_upgrade_round_trip() {
        let mut h = hier(ProtocolKind::SMesi, 1);
        h.issue(Cycle(0), 0, CoreRequest::load(A));
        h.run_until_idle();
        h.issue(Cycle(1000), 0, CoreRequest::store(A));
        let c = one(h.run_until_idle());
        // Upgrade/ACK round trip: 1 (L1) + 7 + 2 + 7 = 17 cycles.
        assert_eq!(c.latency(), Cycle(17), "S-MESI store pays the round trip");
        assert_eq!(h.l1_state(0, A), L1State::M);
        assert_eq!(h.llc_state(A), LlcState::M, "LLC tracks M explicitly");
        assert_eq!(h.stats().event(CoherenceEvent::Upgrade), 1);
        assert_eq!(h.stats().silent_upgrades, 0);
    }

    #[test]
    fn store_to_shared_invalidates_other_sharers() {
        let mut h = hier(ProtocolKind::Mesi, 2);
        h.issue(Cycle(0), 0, CoreRequest::load(A));
        h.run_until_idle();
        h.issue(Cycle(1000), 1, CoreRequest::load(A));
        h.run_until_idle();
        assert_eq!(h.l1_state(0, A), L1State::S);
        assert_eq!(h.l1_state(1, A), L1State::S);
        // Core 0 stores: core 1 must be invalidated.
        h.issue(Cycle(2000), 0, CoreRequest::store(A));
        one(h.run_until_idle());
        assert_eq!(h.l1_state(0, A), L1State::M);
        assert_eq!(h.l1_state(1, A), L1State::I);
        assert_eq!(h.llc_state(A), LlcState::M);
        assert!(h.stats().event(CoherenceEvent::Inv) >= 1);
    }

    #[test]
    fn store_miss_to_modified_line_transfers_ownership() {
        let mut h = hier(ProtocolKind::Mesi, 2);
        h.issue(Cycle(0), 0, CoreRequest::store(A));
        h.run_until_idle();
        assert_eq!(h.l1_state(0, A), L1State::M);
        h.issue(Cycle(1000), 1, CoreRequest::store(A));
        let c = one(h.run_until_idle());
        assert_eq!(c.served_from, ServedFrom::RemoteL1);
        assert_eq!(h.l1_state(0, A), L1State::I);
        assert_eq!(h.l1_state(1, A), L1State::M);
        assert_eq!(h.llc_state(A), LlcState::M);
    }

    #[test]
    fn load_from_modified_line_gets_dirty_data() {
        let mut h = hier(ProtocolKind::Mesi, 2);
        h.issue(Cycle(0), 0, CoreRequest::store(A));
        h.run_until_idle();
        h.issue(Cycle(1000), 1, CoreRequest::load(A));
        let c = one(h.run_until_idle());
        assert_eq!(c.served_from, ServedFrom::RemoteL1);
        assert_eq!(c.class.llc_before, Some(LlcState::M));
        assert_eq!(h.l1_state(0, A), L1State::S);
        assert_eq!(h.l1_state(1, A), L1State::S);
        assert_eq!(h.llc_state(A), LlcState::S);
    }

    #[test]
    fn mshr_merging_same_block() {
        let mut h = hier(ProtocolKind::Mesi, 1);
        h.issue(Cycle(0), 0, CoreRequest::load(A));
        h.issue(Cycle(1), 0, CoreRequest::load(PhysAddr(A.0 + 8)));
        let done = h.run_until_idle();
        assert_eq!(done.len(), 2);
        assert_eq!(h.stats().l1_misses, 1, "second load merged");
        assert_eq!(h.stats().mshr_merges, 1);
    }

    #[test]
    fn store_merged_behind_load_upgrades_afterwards() {
        let mut h = hier(ProtocolKind::Mesi, 1);
        h.issue(Cycle(0), 0, CoreRequest::load(A));
        h.issue(Cycle(1), 0, CoreRequest::store(A));
        let done = h.run_until_idle();
        assert_eq!(done.len(), 2);
        assert_eq!(h.l1_state(0, A), L1State::M, "store completed after load");
    }

    #[test]
    fn l1_eviction_writes_back_dirty_data() {
        let mut h = hier(ProtocolKind::Mesi, 1);
        h.issue(Cycle(0), 0, CoreRequest::store(A));
        h.run_until_idle();
        // Fill the set: L1 is 4-way; 5 conflicting blocks evict A.
        let set_stride = 128 * 64; // sets * block
        for i in 1..=4u64 {
            h.issue(
                Cycle(1000 * i),
                0,
                CoreRequest::load(PhysAddr(A.0 + i * set_stride)),
            );
            h.run_until_idle();
        }
        assert_eq!(h.l1_state(0, A), L1State::I, "A was evicted");
        assert!(h.stats().event(CoherenceEvent::WbDataDirty) >= 1);
        // After the dirty WB the LLC serves the block directly.
        h.issue(Cycle(100_000), 0, CoreRequest::load(A));
        let c = one(h.run_until_idle());
        assert_eq!(c.served_from, ServedFrom::Llc);
        assert_eq!(c.class.llc_before, Some(LlcState::S));
    }

    #[test]
    fn concurrent_cross_core_traffic_quiesces() {
        // Stress determinism/forward-progress: many cores hammer few blocks.
        let mut h = hier(ProtocolKind::Mesi, 4);
        let mut t = Cycle(0);
        let mut n = 0;
        for round in 0..50u64 {
            for core in 0..4usize {
                let addr = PhysAddr(0x4_0000 + (round % 8) * 64);
                let req = if (round + core as u64).is_multiple_of(3) {
                    CoreRequest::store(addr)
                } else {
                    CoreRequest::load(addr)
                };
                h.issue(t, core, req);
                n += 1;
                t += Cycle(3);
            }
        }
        let done = h.run_until_idle();
        assert_eq!(done.len(), n);
    }

    #[test]
    fn all_protocols_quiesce_under_stress() {
        for p in ProtocolKind::ALL {
            let mut h = hier(p, 4);
            let mut t = Cycle(0);
            let mut n = 0;
            for round in 0..120u64 {
                for core in 0..4usize {
                    let addr = PhysAddr(0x8_0000 + (round % 16) * 64);
                    let req = match (round + core as u64) % 4 {
                        0 => CoreRequest::store(addr),
                        1 => CoreRequest::load(addr).write_protected(),
                        _ => CoreRequest::load(addr),
                    };
                    h.issue(t, core, req);
                    n += 1;
                    t += Cycle(7);
                }
            }
            let done = h.run_until_idle();
            assert_eq!(done.len(), n, "{p}: all requests must complete");
        }
    }

    /// Drives a cross-core mix of loads/stores/WP-loads and returns the
    /// quiesced hierarchy plus the number of issued requests.
    fn stress(protocol: ProtocolKind, rounds: u64) -> (Hierarchy, usize) {
        let mut h = hier(protocol, 4);
        let mut t = Cycle(0);
        let mut n = 0;
        for round in 0..rounds {
            for core in 0..4usize {
                let addr = PhysAddr(0x8_0000 + (round % 16) * 64);
                let req = match (round + core as u64) % 4 {
                    0 => CoreRequest::store(addr),
                    1 => CoreRequest::load(addr).write_protected(),
                    _ => CoreRequest::load(addr),
                };
                h.issue(t, core, req);
                n += 1;
                t += Cycle(7);
            }
        }
        let done = h.run_until_idle();
        assert_eq!(done.len(), n);
        (h, n)
    }

    #[test]
    fn transition_matrix_reconciles_with_event_counts() {
        for p in ProtocolKind::ALL {
            let (h, n) = stress(p, 120);
            let s = h.stats();
            // Every data grant installs a line out of a miss transient.
            let data_msgs = s.event(CoherenceEvent::Data)
                + s.event(CoherenceEvent::DataExclusive)
                + s.event(CoherenceEvent::DataFromOwner);
            assert_eq!(
                s.protocol.l1_installs(),
                data_msgs,
                "{p}: installs = data grants"
            );
            // Silent upgrades are exactly the L1 E→M edge.
            assert_eq!(
                s.protocol.l1_transitions(L1State::E, L1State::M),
                s.silent_upgrades,
                "{p}: E→M = silent upgrades"
            );
            // Every completion lands in exactly one latency histogram.
            let latency_total: u64 = crate::metrics::RequestClass::ALL
                .into_iter()
                .map(|c| s.protocol.latency(c).count())
                .sum();
            assert_eq!(
                latency_total, n as u64,
                "{p}: one latency sample per request"
            );
            // The upgrade round trips of S-MESI land in the Upgrade class.
            if p == ProtocolKind::SMesi {
                assert!(
                    s.protocol
                        .latency(crate::metrics::RequestClass::Upgrade)
                        .count()
                        > 0,
                    "S-MESI stress must exercise upgrades"
                );
            }
            assert!(s.dispatched > n as u64, "{p}: misses multiply events");
        }
    }

    #[test]
    fn swiftdir_wp_loads_populate_the_gets_wp_histogram() {
        let (h, _) = stress(ProtocolKind::SwiftDir, 120);
        let wp = h
            .stats()
            .protocol
            .latency(crate::metrics::RequestClass::GetsWp);
        assert!(wp.count() > 0);
        assert_eq!(
            wp.count(),
            h.stats().event(CoherenceEvent::GetsWp),
            "one GETS_WP completion per GETS_WP request"
        );
    }

    #[test]
    fn tracing_does_not_change_stats_and_fills_the_ring() {
        let (plain, _) = stress(ProtocolKind::SwiftDir, 60);
        let mut traced = hier(ProtocolKind::SwiftDir, 4);
        traced.set_tracer(Tracer::enabled().with_ring(256));
        let mut t = Cycle(0);
        for round in 0..60u64 {
            for core in 0..4usize {
                let addr = PhysAddr(0x8_0000 + (round % 16) * 64);
                let req = match (round + core as u64) % 4 {
                    0 => CoreRequest::store(addr),
                    1 => CoreRequest::load(addr).write_protected(),
                    _ => CoreRequest::load(addr),
                };
                traced.issue(t, core, req);
                t += Cycle(7);
            }
        }
        traced.run_until_idle();
        assert_eq!(
            plain.stats(),
            traced.stats(),
            "tracing must not perturb the simulation"
        );
        assert!(traced.tracer().emitted() > 0);
        let ring = traced.tracer().ring().expect("ring attached");
        assert!(!ring.is_empty());
        assert_eq!(ring.len(), 256, "long run saturates the bounded ring");
    }

    /// A contended multi-core setup with requests issued but not yet run,
    /// for step-level exploration tests.
    fn primed(protocol: ProtocolKind, cores: usize) -> Hierarchy {
        let mut h = hier(protocol, cores);
        for i in 0..6u64 {
            let core = (i % cores as u64) as usize;
            let addr = PhysAddr(0xA_0000 + (i % 2) * 64);
            let req = match i % 3 {
                0 => CoreRequest::store(addr),
                1 => CoreRequest::load(addr).write_protected(),
                _ => CoreRequest::load(addr),
            };
            h.issue(Cycle(i), core, req);
        }
        h
    }

    /// DFS over the first few frontier choices, asserting at every node
    /// that stepping + undoing restores digest, stats, and completions
    /// bit-exactly, and that the cached digest tracks the rescan.
    fn walk_and_unwind(h: &mut Hierarchy, depth: usize) {
        if depth == 0 {
            return;
        }
        let choices = h.frontier_choices(Cycle(8));
        for c in choices.into_iter().take(3) {
            let digest = h.state_digest();
            assert_eq!(h.state_digest_cached(), digest, "cached == rescan");
            let stats = h.stats().clone();
            let completions = h.completions_len();
            let mark = h.undo_mark();
            let snap = h.fork();
            if h.try_step_choice(c.seq).expect("legal step").is_none() {
                continue;
            }
            assert!(h.undo_frame_bytes() > 0, "step recorded a frame");
            walk_and_unwind(h, depth - 1);
            h.undo_to(mark);
            let div = h.debug_divergence(&snap);
            assert!(div.is_empty(), "undo diverged after {c:?}:\n{div}");
            assert_eq!(h.state_digest(), digest, "undo restores the digest");
            assert_eq!(h.state_digest_cached(), digest, "cache tracks rollback");
            assert_eq!(*h.stats(), stats, "undo restores stats + histograms");
            assert_eq!(h.completions_len(), completions);
        }
    }

    #[test]
    fn undo_restores_state_digest_and_stats_exactly() {
        for p in ProtocolKind::ALL {
            let mut h = primed(p, 2);
            h.enable_undo();
            walk_and_unwind(&mut h, 4);
        }
    }

    #[test]
    fn undo_unwinds_a_full_run_to_the_root() {
        let mut h = primed(ProtocolKind::SwiftDir, 2);
        h.enable_undo();
        let reference = h.fork();
        let root_digest = h.state_digest();
        let root = h.undo_mark();
        let mut steps = 0u32;
        loop {
            let choices = h.frontier_choices(Cycle(8));
            let Some(c) = choices.first() else { break };
            h.try_step_choice(c.seq).expect("legal step");
            steps += 1;
            assert!(steps < 10_000, "runaway run");
        }
        assert!(steps > 20, "setup must produce a real run ({steps} steps)");
        assert!(h.completions_len() > 0, "the run completed requests");
        h.undo_to(root);
        assert_eq!(h.state_digest(), root_digest);
        assert_eq!(h.stats(), reference.stats());
        assert_eq!(h.completions_len(), 0);
    }

    #[test]
    fn single_writer_invariant_probe() {
        // After any store completes with the system idle, no other core may
        // hold the block in a readable state.
        let mut h = hier(ProtocolKind::SwiftDir, 4);
        for i in 0..20u64 {
            let addr = PhysAddr(0x9_0000 + (i % 4) * 64);
            let core = (i % 4) as usize;
            h.issue(Cycle(i * 500), core, CoreRequest::store(addr));
            h.run_until_idle();
            let holders: Vec<usize> = (0..4)
                .filter(|&c| h.l1_state(c, addr).load_hits())
                .collect();
            assert_eq!(holders, vec![core], "store {i}: single writer");
            assert_eq!(h.l1_state(core, addr), L1State::M);
        }
    }
}
