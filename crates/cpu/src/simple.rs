//! The in-order blocking core (`TimingSimpleCPU`).

use sim_engine::Cycle;

use crate::inst::{Instr, InstrStream};
use crate::port::{MemOp, MemPort};
use crate::{Core, CoreStats, CoreStatus};

/// An in-order core that executes one instruction at a time and blocks on
/// every memory access — gem5's `TimingSimpleCPU`, used by the paper's
/// Figure 10(a) to expose raw protocol latencies.
pub struct InOrderCore {
    stream: Box<dyn InstrStream>,
    now: Cycle,
    waiting: Option<u64>,
    stats: CoreStats,
    finished: bool,
}

impl std::fmt::Debug for InOrderCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InOrderCore")
            .field("now", &self.now)
            .field("waiting", &self.waiting)
            .field("stats", &self.stats)
            .field("finished", &self.finished)
            .finish()
    }
}

impl InOrderCore {
    /// A core that starts executing `stream` at `start`.
    pub fn new(stream: impl InstrStream + 'static, start: Cycle) -> Self {
        InOrderCore {
            stream: Box::new(stream),
            now: start,
            waiting: None,
            stats: CoreStats {
                started_at: start,
                finished_at: start,
                ..CoreStats::default()
            },
            finished: false,
        }
    }
}

impl Core for InOrderCore {
    fn run(&mut self, port: &mut dyn MemPort) -> CoreStatus {
        if self.waiting.is_some() {
            return CoreStatus::WaitingMem;
        }
        loop {
            match self.stream.next_instr() {
                None => {
                    self.finished = true;
                    self.stats.finished_at = self.now;
                    return CoreStatus::Done;
                }
                Some(Instr::Compute(n)) => {
                    self.now += Cycle(n.max(1) as u64);
                    self.stats.instructions += 1;
                }
                Some(Instr::Load(va)) => {
                    let token = port.issue(self.now, va, MemOp::Load);
                    self.stats.mem_ops += 1;
                    self.waiting = Some(token);
                    return CoreStatus::WaitingMem;
                }
                Some(Instr::Store(va)) => {
                    let token = port.issue(self.now, va, MemOp::Store);
                    self.stats.mem_ops += 1;
                    self.waiting = Some(token);
                    return CoreStatus::WaitingMem;
                }
            }
        }
    }

    fn on_mem_complete(&mut self, token: u64, at: Cycle) {
        assert_eq!(
            self.waiting,
            Some(token),
            "completion for a token the core is not waiting on"
        );
        self.waiting = None;
        self.now = self.now.max(at);
        self.stats.instructions += 1; // the blocked load/store retires now
        self.stats.finished_at = self.now;
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn done(&self) -> bool {
        self.finished && self.waiting.is_none()
    }

    fn stats(&self) -> CoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Program;
    use crate::port::FixedLatencyPort;
    use crate::run_single;
    use swiftdir_mmu::VirtAddr;

    #[test]
    fn pure_compute_runs_without_port_interaction() {
        let prog = Program::from_instrs(vec![Instr::compute(5), Instr::compute(3)]);
        let mut core = InOrderCore::new(prog.into_stream(), Cycle(0));
        let mut port = FixedLatencyPort::new(1);
        run_single(&mut core, &mut port);
        assert!(core.done());
        assert_eq!(core.stats().instructions, 2);
        assert_eq!(core.stats().cycles(), 8);
        assert!(port.issued.is_empty());
    }

    #[test]
    fn blocks_on_each_memory_access() {
        let prog = Program::from_instrs(vec![
            Instr::load(VirtAddr(0x0)),
            Instr::load(VirtAddr(0x40)),
        ]);
        let mut core = InOrderCore::new(prog.into_stream(), Cycle(0));
        let mut port = FixedLatencyPort::new(20);
        run_single(&mut core, &mut port);
        // Strictly serial: 20 + 20.
        assert_eq!(core.stats().cycles(), 40);
        assert_eq!(core.stats().mem_ops, 2);
        assert_eq!(port.issued[1].0, Cycle(20), "second load waits for first");
    }

    #[test]
    fn mixed_stream_latency_adds_up() {
        let prog = Program::from_instrs(vec![
            Instr::compute(10),
            Instr::store(VirtAddr(0x80)),
            Instr::compute(5),
        ]);
        let mut core = InOrderCore::new(prog.into_stream(), Cycle(100));
        let mut port = FixedLatencyPort::new(7);
        run_single(&mut core, &mut port);
        assert_eq!(core.stats().started_at, Cycle(100));
        assert_eq!(core.stats().cycles(), 10 + 7 + 5);
        assert_eq!(core.stats().instructions, 3);
    }

    #[test]
    fn starts_at_given_cycle() {
        let prog = Program::from_instrs(vec![Instr::load(VirtAddr(0))]);
        let mut core = InOrderCore::new(prog.into_stream(), Cycle(500));
        let mut port = FixedLatencyPort::new(3);
        run_single(&mut core, &mut port);
        assert_eq!(port.issued[0].0, Cycle(500));
        assert_eq!(core.now(), Cycle(503));
    }

    #[test]
    #[should_panic(expected = "not waiting on")]
    fn unexpected_completion_panics() {
        let prog = Program::from_instrs(vec![Instr::compute(1)]);
        let mut core = InOrderCore::new(prog.into_stream(), Cycle(0));
        core.on_mem_complete(99, Cycle(1));
    }
}
