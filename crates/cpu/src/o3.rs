//! The out-of-order core (`DerivO3CPU`-like).

use sim_engine::FxHashSet;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use sim_engine::Cycle;

use crate::inst::{Instr, InstrStream};
use crate::port::{MemOp, MemPort};
use crate::{Core, CoreStats, CoreStatus};

/// Out-of-order engine parameters (paper Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct O3Config {
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Load-queue entries (outstanding loads).
    pub lq: usize,
    /// Store-queue entries (outstanding stores).
    pub sq: usize,
    /// Superscalar issue width (instructions per cycle).
    pub width: u32,
    /// Store-drain width: how many store coherence transactions may be
    /// outstanding at once. Stores commit from the store queue in order
    /// (TSO), with ownership prefetched at most this deep — the knob that
    /// makes slow store transactions (S-MESI's Upgrade/ACK) hard to hide.
    pub sq_drain: usize,
}

impl O3Config {
    /// Table V: 192-entry ROB, 32-entry LQ, 32-entry SQ, width 8.
    pub fn table_v() -> Self {
        O3Config {
            rob: 192,
            lq: 32,
            sq: 32,
            width: 8,
            sq_drain: 8,
        }
    }
}

impl Default for O3Config {
    fn default() -> Self {
        Self::table_v()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Completes (is retirable) at the given cycle.
    Ready(Cycle),
    /// A load waiting on the memory system.
    WaitLoad(u64),
}

/// An out-of-order core: in-order issue into a ROB at up to `width` per
/// cycle, out-of-order completion, in-order retirement.
///
/// The performance-critical modelling choice (it drives the paper's
/// Figure 10(b)): a **store occupies its store-queue entry from issue until
/// its coherence transaction completes**. A 1-cycle silent E→M upgrade
/// releases the entry immediately; S-MESI's 17-cycle Upgrade/ACK round trip
/// holds it 17× longer, so write-after-read-intensive streams saturate the
/// 32-entry SQ and throughput collapses by Little's law.
pub struct OutOfOrderCore {
    cfg: O3Config,
    stream: Box<dyn InstrStream>,
    stashed: Option<Instr>,
    rob: VecDeque<Slot>,
    /// Loads issued whose completion has not yet been reported.
    loads_in_flight: usize,
    /// Completion times of loads already reported but still in the future
    /// (their LQ slot frees at that time, not at the report).
    lq_release: Vec<Cycle>,
    /// Stores issued to memory whose completion has not yet been reported.
    stores_in_flight: FxHashSet<u64>,
    /// Stores occupying SQ entries but waiting for a drain slot before
    /// their coherence transaction can start.
    stores_waiting: VecDeque<swiftdir_mmu::VirtAddr>,
    /// Future SQ-slot release times.
    sq_release: Vec<Cycle>,
    /// Min-heap over every `Slot::Ready` completion time ever pushed to
    /// the ROB, drained lazily past `now`. Keeps the next-time-step
    /// choice O(log ROB) instead of a full ROB scan: a retired slot's
    /// time was ≤ `now` at retirement and `now` is monotonic, so stale
    /// heap entries are exactly the ones the lazy drain discards.
    ready_times: BinaryHeap<Reverse<Cycle>>,
    now: Cycle,
    issued_this_cycle: u32,
    stats: CoreStats,
    stream_done: bool,
}

impl std::fmt::Debug for OutOfOrderCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutOfOrderCore")
            .field("now", &self.now)
            .field("rob_len", &self.rob.len())
            .field("loads_in_flight", &self.loads_in_flight)
            .field("stores_in_flight", &self.stores_in_flight.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl OutOfOrderCore {
    /// A core with Table V parameters starting `stream` at `start`.
    pub fn new(stream: impl InstrStream + 'static, start: Cycle) -> Self {
        Self::with_config(stream, start, O3Config::table_v())
    }

    /// A core with explicit parameters.
    pub fn with_config(stream: impl InstrStream + 'static, start: Cycle, cfg: O3Config) -> Self {
        assert!(cfg.rob > 0 && cfg.lq > 0 && cfg.sq > 0 && cfg.width > 0 && cfg.sq_drain > 0);
        OutOfOrderCore {
            cfg,
            stream: Box::new(stream),
            stashed: None,
            rob: VecDeque::with_capacity(cfg.rob),
            loads_in_flight: 0,
            lq_release: Vec::new(),
            stores_in_flight: FxHashSet::default(),
            stores_waiting: VecDeque::new(),
            sq_release: Vec::new(),
            ready_times: BinaryHeap::new(),
            now: start,
            issued_this_cycle: 0,
            stats: CoreStats {
                started_at: start,
                finished_at: start,
                ..CoreStats::default()
            },
            stream_done: false,
        }
    }

    fn peek_instr(&mut self) -> Option<Instr> {
        if self.stashed.is_none() && !self.stream_done {
            self.stashed = self.stream.next_instr();
            if self.stashed.is_none() {
                self.stream_done = true;
            }
        }
        self.stashed
    }

    fn retire_ready(&mut self) {
        while let Some(&Slot::Ready(t)) = self.rob.front() {
            if t > self.now {
                break;
            }
            self.rob.pop_front();
            self.stats.instructions += 1;
            self.stats.finished_at = self.now;
        }
    }

    /// Slots of `queue` still busy at the current cycle: unreported
    /// completions plus reported ones whose release time is in the future.
    fn busy_slots(&self, in_flight: usize, release: &[Cycle]) -> usize {
        in_flight + release.iter().filter(|&&t| t > self.now).count()
    }

    fn next_release(&self, release: &[Cycle]) -> Option<Cycle> {
        release.iter().copied().filter(|&t| t > self.now).min()
    }

    /// Records a newly retirable slot's completion time.
    fn push_ready(&mut self, t: Cycle) {
        self.ready_times.push(Reverse(t));
    }

    /// Earliest known future completion in the ROB.
    fn earliest_known(&mut self) -> Option<Cycle> {
        while let Some(&Reverse(t)) = self.ready_times.peek() {
            if t > self.now {
                return Some(t);
            }
            self.ready_times.pop();
        }
        None
    }
}

impl Core for OutOfOrderCore {
    fn run(&mut self, port: &mut dyn MemPort) -> CoreStatus {
        loop {
            self.retire_ready();

            // Drain the store queue: start transactions for waiting stores
            // as drain slots free up (in order).
            while self.stores_in_flight.len() < self.cfg.sq_drain {
                let Some(va) = self.stores_waiting.pop_front() else {
                    break;
                };
                let token = port.issue(self.now, va, MemOp::Store);
                self.stores_in_flight.insert(token);
            }

            // Issue stage.
            let mut structurally_stalled = false;
            let mut stall_release: Option<Cycle> = None;
            while self.issued_this_cycle < self.cfg.width && self.rob.len() < self.cfg.rob {
                let Some(instr) = self.peek_instr() else {
                    break;
                };
                match instr {
                    Instr::Compute(n) => {
                        let t = self.now + Cycle(n.max(1) as u64);
                        self.rob.push_back(Slot::Ready(t));
                        self.push_ready(t);
                    }
                    Instr::Load(va) => {
                        if self.busy_slots(self.loads_in_flight, &self.lq_release) >= self.cfg.lq {
                            structurally_stalled = true;
                            stall_release = self.next_release(&self.lq_release);
                            break;
                        }
                        let token = port.issue(self.now, va, MemOp::Load);
                        self.rob.push_back(Slot::WaitLoad(token));
                        self.loads_in_flight += 1;
                        self.stats.mem_ops += 1;
                    }
                    Instr::Store(va) => {
                        let sq_busy = self.stores_in_flight.len() + self.stores_waiting.len();
                        if self.busy_slots(sq_busy, &self.sq_release) >= self.cfg.sq {
                            structurally_stalled = true;
                            stall_release = self.next_release(&self.sq_release);
                            break;
                        }
                        // The store retires quickly (data waits in the SQ),
                        // but the SQ entry is held until the coherence
                        // transaction completes; the transaction itself may
                        // have to wait for a drain slot.
                        if self.stores_in_flight.len() < self.cfg.sq_drain {
                            let token = port.issue(self.now, va, MemOp::Store);
                            self.stores_in_flight.insert(token);
                        } else {
                            self.stores_waiting.push_back(va);
                        }
                        let t = self.now + Cycle(1);
                        self.rob.push_back(Slot::Ready(t));
                        self.push_ready(t);
                        self.stats.mem_ops += 1;
                    }
                }
                self.stashed = None;
                self.issued_this_cycle += 1;
            }

            self.retire_ready();

            // Completely drained?
            if self.rob.is_empty() && self.peek_instr().is_none() {
                self.stats.finished_at = self.now;
                return CoreStatus::Done;
            }

            // Choose the next local time step, if any exists.
            let mut next: Option<Cycle> = self.earliest_known();
            if let Some(t) = stall_release {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
            let more_work = self.stashed.is_some() || !self.stream_done;
            let width_limited = self.issued_this_cycle >= self.cfg.width
                && more_work
                && self.rob.len() < self.cfg.rob
                && !structurally_stalled;
            if width_limited {
                let step = self.now + Cycle(1);
                next = Some(next.map_or(step, |t| t.min(step)));
            }
            match next {
                Some(t) => {
                    self.now = t;
                    self.issued_this_cycle = 0;
                    // Bound the release lists: past entries no longer matter.
                    let now = self.now;
                    self.lq_release.retain(|&r| r > now);
                    self.sq_release.retain(|&r| r > now);
                }
                None => return CoreStatus::WaitingMem,
            }
        }
    }

    fn on_mem_complete(&mut self, token: u64, at: Cycle) {
        if self.stores_in_flight.remove(&token) {
            // The SQ entry stays busy until the coherence transaction's
            // completion time, which may be in the core's future.
            if at > self.now {
                self.sq_release.push(at);
            }
            return;
        }
        let slot = self
            .rob
            .iter_mut()
            .find(|s| matches!(s, Slot::WaitLoad(t) if *t == token))
            .expect("completion for an unknown load token");
        let ready_at = at.max(self.now);
        *slot = Slot::Ready(ready_at);
        self.ready_times.push(Reverse(ready_at));
        self.loads_in_flight -= 1;
        if at > self.now {
            self.lq_release.push(at);
        }
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn done(&self) -> bool {
        self.rob.is_empty() && self.stream_done && self.stashed.is_none()
    }

    fn stats(&self) -> CoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Program;
    use crate::port::FixedLatencyPort;
    use crate::run_single;
    use crate::simple::InOrderCore;
    use swiftdir_mmu::VirtAddr;

    fn loads(n: usize) -> Program {
        (0..n)
            .map(|i| Instr::load(VirtAddr(i as u64 * 64)))
            .collect()
    }

    fn stores(n: usize) -> Program {
        (0..n)
            .map(|i| Instr::store(VirtAddr(i as u64 * 64)))
            .collect()
    }

    #[test]
    fn width_limits_compute_throughput() {
        let prog: Program = (0..800).map(|_| Instr::compute(1)).collect();
        let mut core = OutOfOrderCore::new(prog.into_stream(), Cycle(0));
        let mut port = FixedLatencyPort::new(1);
        run_single(&mut core, &mut port);
        assert_eq!(core.stats().instructions, 800);
        // Width 8: at least 100 cycles, but near it.
        let cycles = core.stats().cycles();
        assert!((100..=110).contains(&cycles), "cycles = {cycles}");
        assert!(core.stats().ipc() > 7.0);
    }

    #[test]
    fn loads_overlap_up_to_lq() {
        let mut o3 = OutOfOrderCore::new(loads(128).into_stream(), Cycle(0));
        let mut port = FixedLatencyPort::new(100);
        run_single(&mut o3, &mut port);
        let o3_cycles = o3.stats().cycles();

        let mut inorder = InOrderCore::new(loads(128).into_stream(), Cycle(0));
        let mut port2 = FixedLatencyPort::new(100);
        run_single(&mut inorder, &mut port2);
        let inorder_cycles = inorder.stats().cycles();

        // 128 loads × 100 cycles serial vs ~4 waves of 32.
        assert_eq!(inorder_cycles, 12_800);
        assert!(
            o3_cycles < inorder_cycles / 20,
            "OoO must overlap loads: {o3_cycles} vs {inorder_cycles}"
        );
    }

    #[test]
    fn store_queue_occupancy_gates_throughput() {
        // The S-MESI mechanism: slow store completions hold SQ entries.
        let fast = {
            let mut core = OutOfOrderCore::new(stores(1024).into_stream(), Cycle(0));
            let mut port = FixedLatencyPort::new(1);
            run_single(&mut core, &mut port);
            core.stats().cycles()
        };
        let slow = {
            let mut core = OutOfOrderCore::new(stores(1024).into_stream(), Cycle(0));
            let mut port = FixedLatencyPort::new(17);
            run_single(&mut core, &mut port);
            core.stats().cycles()
        };
        // Fast: width-bound ≈ 1024/8 = 128 cycles.
        // Slow: SQ-bound ≈ 1024 × 17 / 32 ≈ 544 cycles.
        assert!(fast < 160, "fast stores should be width-bound: {fast}");
        assert!(
            slow > fast * 3,
            "slow store completion must gate throughput: {slow} vs {fast}"
        );
    }

    #[test]
    fn rob_capacity_bounds_run_ahead() {
        // One very slow load at the head, then compute: the ROB fills and
        // issue stalls until the load returns.
        let mut instrs = vec![Instr::load(VirtAddr(0))];
        instrs.extend((0..400).map(|_| Instr::compute(1)));
        let mut core = OutOfOrderCore::new(Program::from_instrs(instrs).into_stream(), Cycle(0));
        let mut port = FixedLatencyPort::new(1000);
        run_single(&mut core, &mut port);
        // All 401 instructions retire; the run takes ≥ the load latency but
        // not much more (compute overlapped under the load).
        assert_eq!(core.stats().instructions, 401);
        let cycles = core.stats().cycles();
        assert!((1000..1100).contains(&cycles), "cycles = {cycles}");
    }

    #[test]
    fn in_order_retirement_counts_all() {
        let prog = Program::from_instrs(vec![
            Instr::compute(50),
            Instr::load(VirtAddr(0)),
            Instr::compute(1),
        ]);
        let mut core = OutOfOrderCore::new(prog.into_stream(), Cycle(0));
        let mut port = FixedLatencyPort::new(5);
        run_single(&mut core, &mut port);
        assert_eq!(core.stats().instructions, 3);
        assert!(core.done());
    }

    #[test]
    fn empty_stream_is_immediately_done() {
        let mut core = OutOfOrderCore::new(Program::new().into_stream(), Cycle(7));
        let mut port = FixedLatencyPort::new(1);
        assert_eq!(core.run(&mut port), CoreStatus::Done);
        assert!(core.done());
        assert_eq!(core.stats().instructions, 0);
    }

    #[test]
    #[should_panic(expected = "unknown load token")]
    fn unknown_completion_panics() {
        let mut core = OutOfOrderCore::new(Program::new().into_stream(), Cycle(0));
        core.on_mem_complete(42, Cycle(1));
    }
}
