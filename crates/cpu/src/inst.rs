//! Abstract instructions and instruction streams.

use swiftdir_mmu::VirtAddr;

/// One abstract instruction.
///
/// Workload generators model real benchmarks as mixes of these three:
/// memory operations carry virtual addresses (translation happens at the
/// memory port, where the write-protection bit joins the request), and
/// `Compute` lumps together the non-memory work between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// A data load from a virtual address.
    Load(VirtAddr),
    /// A data store to a virtual address.
    Store(VirtAddr),
    /// `n` cycles of non-memory work (counts as one instruction).
    Compute(u32),
}

impl Instr {
    /// A load.
    pub fn load(va: VirtAddr) -> Instr {
        Instr::Load(va)
    }

    /// A store.
    pub fn store(va: VirtAddr) -> Instr {
        Instr::Store(va)
    }

    /// `n` cycles of compute.
    pub fn compute(n: u32) -> Instr {
        Instr::Compute(n)
    }

    /// Whether this is a memory operation.
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Load(_) | Instr::Store(_))
    }
}

/// A pull-based instruction source.
///
/// Implemented by [`ProgramStream`] for in-memory programs and by the
/// workload generators for procedurally generated billion-scale streams
/// that never materialize in memory.
pub trait InstrStream {
    /// The next instruction, or `None` at end of stream.
    fn next_instr(&mut self) -> Option<Instr>;

    /// A hint of how many instructions remain (`None` if unknown).
    fn remaining_hint(&self) -> Option<u64> {
        None
    }
}

/// An in-memory program: a concrete `Vec` of instructions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Wraps an instruction vector.
    pub fn from_instrs(instrs: Vec<Instr>) -> Self {
        Program { instrs }
    }

    /// Appends an instruction (builder style).
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Converts into a stream for a core.
    pub fn into_stream(self) -> ProgramStream {
        ProgramStream {
            instrs: self.instrs,
            pos: 0,
        }
    }
}

impl FromIterator<Instr> for Program {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        Program {
            instrs: iter.into_iter().collect(),
        }
    }
}

impl Extend<Instr> for Program {
    fn extend<T: IntoIterator<Item = Instr>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

/// The stream over an in-memory [`Program`].
#[derive(Debug, Clone)]
pub struct ProgramStream {
    instrs: Vec<Instr>,
    pos: usize,
}

impl InstrStream for ProgramStream {
    fn next_instr(&mut self) -> Option<Instr> {
        let i = self.instrs.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some((self.instrs.len() - self.pos) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_builder_and_stream() {
        let mut p = Program::new();
        p.push(Instr::compute(2)).push(Instr::load(VirtAddr(0x40)));
        assert_eq!(p.len(), 2);
        let mut s = p.into_stream();
        assert_eq!(s.remaining_hint(), Some(2));
        assert_eq!(s.next_instr(), Some(Instr::Compute(2)));
        assert_eq!(s.next_instr(), Some(Instr::Load(VirtAddr(0x40))));
        assert_eq!(s.next_instr(), None);
        assert_eq!(s.next_instr(), None, "stream stays exhausted");
    }

    #[test]
    fn collect_and_extend() {
        let mut p: Program = (0..3).map(|_| Instr::compute(1)).collect();
        p.extend([Instr::store(VirtAddr(8))]);
        assert_eq!(p.len(), 4);
        assert!(p.instrs()[3].is_mem());
        assert!(!p.instrs()[0].is_mem());
    }
}
