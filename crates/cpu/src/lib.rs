//! Core (CPU) models for the SwiftDir simulator.
//!
//! Two models reproduce the paper's two gem5 configurations (§V-E):
//!
//! * [`InOrderCore`] — `TimingSimpleCPU`: one instruction at a time,
//!   blocking on every memory access. Used by Figure 10(a) to isolate the
//!   protocol-level cost of write-after-read handling.
//! * [`OutOfOrderCore`] — `DerivO3CPU`-like: 192-entry ROB, 32-entry load
//!   queue, 32-entry store queue, issue width 8 (Table V). Stores occupy a
//!   store-queue entry until the coherence transaction completes, which is
//!   precisely the mechanism that makes S-MESI's revoked silent upgrade so
//!   expensive out-of-order (Figure 10(b)): each store holds its SQ slot
//!   for the whole Upgrade/ACK round trip, and a write-after-read-intensive
//!   stream fills the queue.
//!
//! Cores execute abstract [`Instr`] streams and talk to the memory system
//! through the [`MemPort`] trait, which the system-assembly crate
//! implements on top of the coherent hierarchy (performing address
//! translation, which is where the write-protection bit joins the request).
//!
//! # Example
//!
//! ```
//! use sim_engine::Cycle;
//! use swiftdir_cpu::{Core, FixedLatencyPort, InOrderCore, Instr, Program};
//! use swiftdir_mmu::VirtAddr;
//!
//! let prog = Program::from_instrs(vec![
//!     Instr::compute(3),
//!     Instr::load(VirtAddr(0x1000)),
//!     Instr::compute(1),
//! ]);
//! let mut core = InOrderCore::new(prog.into_stream(), Cycle(0));
//! let mut port = FixedLatencyPort::new(17);
//! swiftdir_cpu::run_single(&mut core, &mut port);
//! assert_eq!(core.stats().instructions, 3);
//! ```

pub mod inst;
pub mod o3;
pub mod port;
pub mod simple;

pub use inst::{Instr, InstrStream, Program, ProgramStream};
pub use o3::{O3Config, OutOfOrderCore};
pub use port::{FixedLatencyPort, MemOp, MemPort};
pub use simple::InOrderCore;

use sim_engine::Cycle;

/// Which CPU model to instantiate (the gem5 names from the paper).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuModel {
    /// In-order, blocking (`TimingSimpleCPU`).
    TimingSimple,
    /// Out-of-order (`DerivO3CPU`), Table V parameters.
    #[default]
    DerivO3,
}

/// Progress report from [`Core::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStatus {
    /// The instruction stream is exhausted and all in-flight work retired.
    Done,
    /// Blocked until at least one outstanding memory access completes.
    WaitingMem,
}

/// Retired-instruction statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycle the core started at.
    pub started_at: Cycle,
    /// Cycle the last instruction retired.
    pub finished_at: Cycle,
    /// Memory operations issued.
    pub mem_ops: u64,
}

impl CoreStats {
    /// Total execution cycles.
    pub fn cycles(&self) -> u64 {
        self.finished_at.saturating_since(self.started_at).get()
    }

    /// Instructions per cycle (0 when no cycles elapsed).
    pub fn ipc(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.instructions as f64 / c as f64
        }
    }
}

/// The co-simulation interface every core model implements.
pub trait Core {
    /// Makes as much progress as possible; returns why it stopped.
    fn run(&mut self, port: &mut dyn MemPort) -> CoreStatus;

    /// Delivers a memory completion for a token returned by the port.
    fn on_mem_complete(&mut self, token: u64, at: Cycle);

    /// The core's local clock.
    fn now(&self) -> Cycle;

    /// Whether the stream is exhausted and all work retired.
    fn done(&self) -> bool;

    /// Statistics so far.
    fn stats(&self) -> CoreStats;
}

/// Drives a single core against a self-contained port (one with its own
/// notion of completion time, like [`FixedLatencyPort`]) until done.
/// Multi-core co-simulation against the coherent hierarchy lives in the
/// system-assembly crate.
pub fn run_single<C: Core, P: MemPort + PortDrain>(core: &mut C, port: &mut P) {
    loop {
        match core.run(port) {
            CoreStatus::Done => return,
            CoreStatus::WaitingMem => {
                for (token, at) in port.drain_completions() {
                    core.on_mem_complete(token, at);
                }
            }
        }
    }
}

/// Ports that buffer completions for [`run_single`].
pub trait PortDrain {
    /// Takes all buffered `(token, completion_time)` pairs.
    fn drain_completions(&mut self) -> Vec<(u64, Cycle)>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_stats_ipc() {
        let s = CoreStats {
            instructions: 100,
            started_at: Cycle(0),
            finished_at: Cycle(50),
            mem_ops: 0,
        };
        assert_eq!(s.cycles(), 50);
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        let empty = CoreStats::default();
        assert_eq!(empty.ipc(), 0.0);
    }
}
