//! The core ↔ memory-system interface.

use sim_engine::Cycle;
use swiftdir_mmu::VirtAddr;

/// Load or store, as seen by the memory port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Data load.
    Load,
    /// Data store.
    Store,
}

/// A core-bound memory port.
///
/// The system-assembly crate implements this on top of the MMU + coherent
/// hierarchy: `issue` translates the virtual address (attaching the
/// write-protection bit) and injects the request; completions flow back to
/// the core via [`crate::Core::on_mem_complete`].
pub trait MemPort {
    /// Issues a memory operation at time `at`; returns an opaque token the
    /// completion will carry.
    fn issue(&mut self, at: Cycle, vaddr: VirtAddr, op: MemOp) -> u64;
}

/// A self-contained test port: every access completes after a fixed
/// latency. Useful for unit-testing core models without a hierarchy.
#[derive(Debug, Clone)]
pub struct FixedLatencyPort {
    latency: u64,
    next_token: u64,
    completions: Vec<(u64, Cycle)>,
    /// Every issue recorded as `(time, vaddr, op)`.
    pub issued: Vec<(Cycle, VirtAddr, MemOp)>,
}

impl FixedLatencyPort {
    /// A port whose accesses all take `latency` cycles.
    pub fn new(latency: u64) -> Self {
        FixedLatencyPort {
            latency,
            next_token: 0,
            completions: Vec::new(),
            issued: Vec::new(),
        }
    }
}

impl MemPort for FixedLatencyPort {
    fn issue(&mut self, at: Cycle, vaddr: VirtAddr, op: MemOp) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.completions.push((token, at + Cycle(self.latency)));
        self.issued.push((at, vaddr, op));
        token
    }
}

impl crate::PortDrain for FixedLatencyPort {
    fn drain_completions(&mut self) -> Vec<(u64, Cycle)> {
        // Deliver in completion-time order, like a real memory system.
        let mut out = std::mem::take(&mut self.completions);
        out.sort_by_key(|&(token, at)| (at, token));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortDrain;

    #[test]
    fn fixed_latency_completes_in_order() {
        let mut p = FixedLatencyPort::new(10);
        let t0 = p.issue(Cycle(0), VirtAddr(0x0), MemOp::Load);
        let t1 = p.issue(Cycle(5), VirtAddr(0x40), MemOp::Store);
        let done = p.drain_completions();
        assert_eq!(done, vec![(t0, Cycle(10)), (t1, Cycle(15))]);
        assert!(p.drain_completions().is_empty());
        assert_eq!(p.issued.len(), 2);
    }
}
