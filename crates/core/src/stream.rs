//! Concrete, protocol-independent access streams.
//!
//! An [`AccessOp`] is one timed core access — the common currency of the
//! schedule explorer ([`crate::explore`]), the differential checker
//! ([`crate::diff`]), and the fuzz minimizer's replayable repros
//! ([`crate::fuzz`]). A [`StreamFile`] bundles a stream with the
//! hierarchy parameters needed to replay it bit-for-bit, and round-trips
//! through a line-oriented text format:
//!
//! ```text
//! # swiftdir-stream v1
//! # protocol=SwiftDir cores=4 jitter=6
//! 12 0 S 0x80
//! 19 2 L 0x40
//! 23 1 LW 0x80
//! ```
//!
//! Each line is `<issue-cycle> <core> <L|LW|S> <block-address>`, where
//! `LW` is a write-protected load (a SwiftDir `GETS_WP` candidate).

use sim_engine::Cycle;
use swiftdir_coherence::{AccessKind, CoreRequest, Hierarchy, ProtocolKind};
use swiftdir_mmu::PhysAddr;

/// One timed access in a concrete stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOp {
    /// Issue cycle.
    pub at: u64,
    /// Issuing core.
    pub core: usize,
    /// Block address (block-aligned).
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Write-protected load (only meaningful for loads).
    pub wp: bool,
}

impl AccessOp {
    /// A plain load.
    pub fn load(at: u64, core: usize, addr: u64) -> Self {
        AccessOp {
            at,
            core,
            addr,
            kind: AccessKind::Load,
            wp: false,
        }
    }

    /// A write-protected load.
    pub fn wp_load(at: u64, core: usize, addr: u64) -> Self {
        AccessOp {
            at,
            core,
            addr,
            kind: AccessKind::Load,
            wp: true,
        }
    }

    /// A store.
    pub fn store(at: u64, core: usize, addr: u64) -> Self {
        AccessOp {
            at,
            core,
            addr,
            kind: AccessKind::Store,
            wp: false,
        }
    }

    /// The [`CoreRequest`] this op issues.
    pub fn request(&self) -> CoreRequest {
        match self.kind {
            AccessKind::Store => CoreRequest::store(PhysAddr(self.addr)),
            AccessKind::Load => {
                let req = CoreRequest::load(PhysAddr(self.addr));
                if self.wp {
                    req.write_protected()
                } else {
                    req
                }
            }
        }
    }
}

/// Issues every op of `stream` into `h` (the event queue serializes them
/// against protocol traffic).
pub fn issue_stream(h: &mut Hierarchy, stream: &[AccessOp]) {
    for op in stream {
        h.issue(Cycle(op.at), op.core, op.request());
    }
}

/// A stream plus the scenario parameters needed to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamFile {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Core count of the hierarchy.
    pub cores: usize,
    /// Link-jitter bound (0 = no jitter); the seed is `jitter_seed`.
    pub jitter_max: u64,
    /// Seed for the link jitter when `jitter_max > 0`.
    pub jitter_seed: u64,
    /// The accesses, in issue order.
    pub ops: Vec<AccessOp>,
}

impl StreamFile {
    /// Serializes to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# swiftdir-stream v1\n");
        out.push_str(&format!(
            "# protocol={:?} cores={} jitter={} jitter_seed={}\n",
            self.protocol, self.cores, self.jitter_max, self.jitter_seed
        ));
        for op in &self.ops {
            let kind = match (op.kind, op.wp) {
                (AccessKind::Load, false) => "L",
                (AccessKind::Load, true) => "LW",
                (AccessKind::Store, _) => "S",
            };
            out.push_str(&format!("{} {} {} {:#x}\n", op.at, op.core, kind, op.addr));
        }
        out
    }

    /// Parses the text format back into a stream.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed line.
    pub fn parse(text: &str) -> Result<StreamFile, String> {
        let mut file = StreamFile {
            protocol: ProtocolKind::SwiftDir,
            cores: 1,
            jitter_max: 0,
            jitter_seed: 0,
            ops: Vec::new(),
        };
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                for field in rest.split_whitespace() {
                    let Some((key, value)) = field.split_once('=') else {
                        continue;
                    };
                    match key {
                        "protocol" => {
                            file.protocol = ProtocolKind::ALL
                                .into_iter()
                                .find(|p| format!("{p:?}") == value)
                                .ok_or_else(|| {
                                    format!("line {}: unknown protocol {value}", lineno + 1)
                                })?;
                        }
                        "cores" => {
                            file.cores = value
                                .parse()
                                .map_err(|e| format!("line {}: cores: {e}", lineno + 1))?;
                        }
                        "jitter" => {
                            file.jitter_max = value
                                .parse()
                                .map_err(|e| format!("line {}: jitter: {e}", lineno + 1))?;
                        }
                        "jitter_seed" => {
                            file.jitter_seed = value
                                .parse()
                                .map_err(|e| format!("line {}: jitter_seed: {e}", lineno + 1))?;
                        }
                        _ => {}
                    }
                }
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(at), Some(core), Some(kind), Some(addr)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "line {}: expected `<at> <core> <L|LW|S> <addr>`, got {line:?}",
                    lineno + 1
                ));
            };
            let at: u64 = at
                .parse()
                .map_err(|e| format!("line {}: issue cycle: {e}", lineno + 1))?;
            let core: usize = core
                .parse()
                .map_err(|e| format!("line {}: core: {e}", lineno + 1))?;
            let addr = addr.strip_prefix("0x").or_else(|| addr.strip_prefix("0X"));
            let addr: u64 = match addr {
                Some(hex) => u64::from_str_radix(hex, 16)
                    .map_err(|e| format!("line {}: address: {e}", lineno + 1))?,
                None => {
                    return Err(format!(
                        "line {}: address must be hex with 0x prefix",
                        lineno + 1
                    ))
                }
            };
            let (kind, wp) = match kind {
                "L" => (AccessKind::Load, false),
                "LW" => (AccessKind::Load, true),
                "S" => (AccessKind::Store, false),
                other => {
                    return Err(format!(
                        "line {}: access kind must be L, LW, or S, got {other:?}",
                        lineno + 1
                    ))
                }
            };
            file.ops.push(AccessOp {
                at,
                core,
                addr,
                kind,
                wp,
            });
        }
        Ok(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trips() {
        let file = StreamFile {
            protocol: ProtocolKind::SMesi,
            cores: 3,
            jitter_max: 6,
            jitter_seed: 99,
            ops: vec![
                AccessOp::store(12, 0, 0x80),
                AccessOp::load(19, 2, 0x40),
                AccessOp::wp_load(23, 1, 0x80),
            ],
        };
        let text = file.to_text();
        assert_eq!(StreamFile::parse(&text).expect("parses"), file);
    }

    #[test]
    fn malformed_lines_are_reported_with_numbers() {
        let err = StreamFile::parse("# swiftdir-stream v1\n12 0 X 0x80\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = StreamFile::parse("12 0 L 128\n").unwrap_err();
        assert!(err.contains("hex"), "{err}");
    }

    #[test]
    fn unknown_protocol_is_rejected() {
        let err = StreamFile::parse("# protocol=Dragon\n").unwrap_err();
        assert!(err.contains("unknown protocol"), "{err}");
    }
}
