//! Differential cross-protocol checking.
//!
//! The four protocols differ in *when* data moves (E grants, silent
//! upgrades, forwarded loads) but must agree on *what* every access
//! observes. This module checks that agreement at two strengths:
//!
//! * [`architectural_diff`] — the same access stream run under every
//!   protocol yields identical per-access values and identical final
//!   memory images. Streams come from [`well_separated_stream`], which
//!   spaces same-block conflicts far enough apart that their
//!   serialization order is protocol-independent (racy conflicts have
//!   protocol-dependent winners, which is legal nondeterminism, not a
//!   bug — the schedule explorer covers that regime instead).
//! * [`swiftdir_mesi_cycle_identity`] — on streams with no
//!   write-protected loads, SwiftDir *is* MESI: `GETS_WP` is the only
//!   behavioral delta the paper adds (§IV-C), so completions must match
//!   cycle-for-cycle and the full statistics (event counts, transition
//!   matrices, latency histograms) must be bit-identical.
//! * [`explored_equivalence`] — the same exactness, quantified over
//!   every schedule: bounded-exhaustive exploration of a WP-free stream
//!   under SwiftDir and MESI must walk isomorphic trees (same schedule
//!   count, same outcome set, same timing set).

use swiftdir_cache::CacheGeometry;
use swiftdir_coherence::{
    Checker, Completion, Hierarchy, HierarchyConfig, HierarchyStats, ProtocolKind,
};

use crate::explore::{explore, ExploreConfig, ExploreReport};
use crate::stream::{issue_stream, AccessOp};

/// Issue-time gap that makes same-block conflicts protocol-independent:
/// generously above the worst transaction latency on the tiny test
/// hierarchy (a recall chain plus a row-conflict DRAM fetch).
const CONFLICT_GAP: u64 = 600;

/// The shrunken hierarchy differential runs use: eviction and recall
/// pressure like the fuzzer's, but with enough MSHRs that well-separated
/// accesses never queue behind structural hazards in protocol-dependent
/// ways.
pub fn tiny_config(cores: usize, protocol: ProtocolKind) -> HierarchyConfig {
    let mut cfg = HierarchyConfig::table_v(cores, protocol);
    cfg.l1_geometry = CacheGeometry::new(256, 1, 64);
    cfg.llc_bank_geometry = CacheGeometry::new(256, 2, 64);
    cfg.l1_mshrs = 8;
    cfg
}

/// A seeded random stream whose same-block conflicts are serialized by
/// construction: any two accesses to the same block where at least one
/// is a store sit `CONFLICT_GAP` cycles apart, so every protocol
/// resolves them in the same order. Non-conflicting accesses still
/// overlap freely.
pub fn well_separated_stream(
    seed: u64,
    cores: usize,
    blocks: usize,
    ops: usize,
    wp_fraction: f64,
) -> Vec<AccessOp> {
    let mut rng = sim_engine::DetRng::new(seed);
    let mut at = 0u64;
    // A store must trail *every* prior access to its block by the gap,
    // and every access must trail the block's last store by the gap;
    // only load/load pairs may overlap.
    let mut last_any: Vec<u64> = vec![0; blocks];
    let mut last_store: Vec<u64> = vec![0; blocks];
    let mut stream = Vec::with_capacity(ops);
    for _ in 0..ops {
        at += rng.below(30);
        let core = rng.below(cores as u64) as usize;
        let block = rng.below(blocks as u64) as usize;
        let is_store = rng.chance(0.4);
        let wp = !is_store && rng.chance(wp_fraction);
        let when = if is_store {
            at.max(last_any[block] + CONFLICT_GAP)
        } else {
            at.max(last_store[block] + CONFLICT_GAP)
        };
        if is_store {
            last_store[block] = when;
        }
        last_any[block] = last_any[block].max(when);
        let op = if is_store {
            AccessOp::store(when, core, (block * 64) as u64)
        } else if wp {
            AccessOp::wp_load(when, core, (block * 64) as u64)
        } else {
            AccessOp::load(when, core, (block * 64) as u64)
        };
        stream.push(op);
    }
    stream
}

/// A short, tightly-timed contended stream for the schedule explorer.
pub fn contended_stream(
    seed: u64,
    cores: usize,
    blocks: usize,
    ops: usize,
    wp_fraction: f64,
) -> Vec<AccessOp> {
    let mut rng = sim_engine::DetRng::new(seed);
    let mut at = 0u64;
    let mut stream = Vec::with_capacity(ops);
    for _ in 0..ops {
        at += rng.below(8);
        let core = rng.below(cores as u64) as usize;
        let block = rng.below(blocks as u64) * 64;
        let op = if rng.chance(0.45) {
            AccessOp::store(at, core, block)
        } else if rng.chance(wp_fraction) {
            AccessOp::wp_load(at, core, block)
        } else {
            AccessOp::load(at, core, block)
        };
        stream.push(op);
    }
    stream
}

/// One deterministic (FIFO-scheduled) run of a stream to quiescence,
/// with the [`Checker`] auditing every event.
#[derive(Debug, Clone)]
pub struct StreamRun {
    /// Completions sorted by request id.
    pub completions: Vec<Completion>,
    /// Final golden memory image as sorted `(block, value)` pairs.
    pub image: Vec<(u64, u64)>,
    /// The run's full statistics.
    pub stats: HierarchyStats,
}

/// Runs `stream` under `cfg` with the trivial FIFO chooser.
///
/// # Errors
///
/// A description of the first protocol error, invariant violation, or
/// missing completion.
pub fn run_stream(cfg: &HierarchyConfig, stream: &[AccessOp]) -> Result<StreamRun, String> {
    let mut h = Hierarchy::new(*cfg);
    issue_stream(&mut h, stream);
    let mut checker = Checker::new();
    let mut completions = Vec::with_capacity(stream.len());
    loop {
        match h.try_step() {
            Err(e) => return Err(format!("protocol error: {e}")),
            Ok(None) => break,
            Ok(Some(_)) => {}
        }
        let done = h.drain_completions();
        checker
            .after_event(&h, &done)
            .map_err(|v| format!("invariant violation: {v}"))?;
        completions.extend(done);
    }
    checker
        .check_quiescent(&h)
        .map_err(|v| format!("quiescence violation: {v}"))?;
    if completions.len() != stream.len() {
        return Err(format!(
            "issued {} accesses but saw {} completions",
            stream.len(),
            completions.len()
        ));
    }
    completions.sort_unstable_by_key(|c| c.req);
    let mut blocks: Vec<u64> = stream.iter().map(|op| op.addr).collect();
    blocks.sort_unstable();
    blocks.dedup();
    let image = blocks.into_iter().map(|b| (b, checker.golden(b))).collect();
    Ok(StreamRun {
        completions,
        image,
        stats: h.stats().clone(),
    })
}

/// Runs `stream` under every protocol in `protocols` on `cores` cores
/// and requires identical per-access values and final memory images.
///
/// # Errors
///
/// The first divergence, naming the protocols and the access.
pub fn architectural_diff(
    stream: &[AccessOp],
    cores: usize,
    protocols: &[ProtocolKind],
) -> Result<(), String> {
    let mut baseline: Option<(ProtocolKind, StreamRun)> = None;
    for &p in protocols {
        let run = run_stream(&tiny_config(cores, p), stream).map_err(|e| format!("{p:?}: {e}"))?;
        let Some((p0, base)) = &baseline else {
            baseline = Some((p, run));
            continue;
        };
        for (a, b) in base.completions.iter().zip(&run.completions) {
            if a.req != b.req || a.value != b.value {
                return Err(format!(
                    "per-access divergence on req {} (core {}, block {:#x}, {:?}): \
                     {p0:?} observed {:#x}, {p:?} observed {:#x}",
                    a.req, a.core, a.block.0, a.class.kind, a.value, b.value
                ));
            }
        }
        if base.image != run.image {
            return Err(format!(
                "final memory image divergence between {p0:?} and {p:?}: {:?} vs {:?}",
                base.image, run.image
            ));
        }
    }
    Ok(())
}

/// Strips write-protection from every load in `stream`.
pub fn strip_wp(stream: &[AccessOp]) -> Vec<AccessOp> {
    stream
        .iter()
        .map(|op| AccessOp { wp: false, ..*op })
        .collect()
}

/// On a WP-free stream, SwiftDir and MESI must be the same machine:
/// completions identical in every field (values, cycles, serving
/// states) and statistics bit-identical.
///
/// # Errors
///
/// The first field-level difference found.
pub fn swiftdir_mesi_cycle_identity(stream: &[AccessOp], cores: usize) -> Result<(), String> {
    let stream = strip_wp(stream);
    let mesi = run_stream(&tiny_config(cores, ProtocolKind::Mesi), &stream)?;
    let swift = run_stream(&tiny_config(cores, ProtocolKind::SwiftDir), &stream)?;
    for (a, b) in mesi.completions.iter().zip(&swift.completions) {
        if a != b {
            return Err(format!(
                "cycle-identity divergence on req {}: MESI {a:?} vs SwiftDir {b:?}",
                a.req
            ));
        }
    }
    if mesi.stats != swift.stats {
        return Err("cycle-identity divergence in statistics".to_string());
    }
    Ok(())
}

/// Explores a WP-free stream under SwiftDir and MESI and requires
/// isomorphic schedule trees: same schedule count, same architectural
/// outcome set, same timing set. Returns the two reports on success.
///
/// # Errors
///
/// The first asymmetry between the two explorations.
pub fn explored_equivalence(
    stream: &[AccessOp],
    cores: usize,
    ecfg: &ExploreConfig,
) -> Result<(ExploreReport, ExploreReport), String> {
    let stream = strip_wp(stream);
    let mesi = explore(&tiny_config(cores, ProtocolKind::Mesi), &stream, ecfg);
    let swift = explore(&tiny_config(cores, ProtocolKind::SwiftDir), &stream, ecfg);
    if let Some(e) = &mesi.error {
        return Err(format!("Mesi exploration failed: {e}"));
    }
    if let Some(e) = &swift.error {
        return Err(format!("SwiftDir exploration failed: {e}"));
    }
    if mesi.truncated || swift.truncated {
        return Err("exploration truncated; raise the budgets".to_string());
    }
    if mesi.schedules != swift.schedules {
        return Err(format!(
            "schedule-tree divergence: MESI walked {} schedules, SwiftDir {}",
            mesi.schedules, swift.schedules
        ));
    }
    if mesi.outcomes != swift.outcomes {
        return Err("outcome-set divergence between MESI and SwiftDir".to_string());
    }
    if mesi.timings != swift.timings {
        return Err("timing-set divergence between MESI and SwiftDir".to_string());
    }
    Ok((mesi, swift))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architectural_equivalence_on_separated_streams() {
        for seed in 0..8 {
            let stream = well_separated_stream(seed, 4, 6, 60, 0.3);
            architectural_diff(&stream, 4, &ProtocolKind::ALL).expect("protocols agree");
        }
    }

    #[test]
    fn cycle_identity_on_wp_free_streams() {
        for seed in 0..8 {
            let stream = well_separated_stream(seed, 4, 6, 60, 0.0);
            swiftdir_mesi_cycle_identity(&stream, 4).expect("SwiftDir == MESI");
        }
    }

    #[test]
    fn cycle_identity_even_on_contended_streams() {
        // FIFO scheduling is deterministic, so identity holds under
        // contention too — the machines are the same machine.
        for seed in 0..6 {
            let stream = contended_stream(seed, 3, 3, 24, 0.0);
            swiftdir_mesi_cycle_identity(&stream, 3).expect("SwiftDir == MESI");
        }
    }

    #[test]
    fn explored_trees_are_isomorphic() {
        let stream = contended_stream(11, 2, 2, 5, 0.0);
        let (mesi, _) =
            explored_equivalence(&stream, 2, &ExploreConfig::default()).expect("isomorphic");
        assert!(mesi.schedules > 1, "exploration found no interleavings");
    }

    #[test]
    fn wp_load_is_the_only_behavioral_delta() {
        // With WP loads present the machines may differ (that is the
        // point of SwiftDir); stripped, they must not.
        let stream = well_separated_stream(3, 2, 4, 40, 1.0);
        let wp_free = strip_wp(&stream);
        assert!(stream.iter().any(|op| op.wp));
        assert!(wp_free.iter().all(|op| !op.wp));
        swiftdir_mesi_cycle_identity(&stream, 2).expect("stripped identity");
    }
}
