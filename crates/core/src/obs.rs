//! Observability wiring: trace environment knobs, trace-file
//! construction, and the machine-readable run snapshot.
//!
//! Tracing is opt-in via two environment variables, read once per
//! [`System`](crate::System) at construction:
//!
//! * **`SWIFTDIR_TRACE=<path>`** — enables tracing and names the output
//!   base. A traced run writes three sibling files:
//!   `<path>.jsonl` (one JSON trace event per line),
//!   `<path>.chrome.json` (Chrome `about:tracing` / Perfetto format), and
//!   `<path>.metrics.json` (the [`RunStats`](crate::RunStats) snapshot,
//!   consumed by the `swiftdir-report` binary).
//! * **`SWIFTDIR_TRACE_LIMIT=<n>`** — caps the number of events written
//!   to the sinks; tracing self-disables after `n` events so a long run
//!   cannot fill the disk. `0` disables tracing outright.
//!
//! Multiple traced systems in one process (e.g. an
//! [`ExperimentSet`](crate::ExperimentSet) sweep with the knob set) get
//! distinct files: every traced `System` claims a process-wide sequence
//! number that is appended to the base path (`trace`, `trace-1`,
//! `trace-2`, …), so parallel workers never clobber each other.
//!
//! Campaign telemetry (the `swiftdir.progress.v1` heartbeat stream, see
//! [`sim_engine::progress`]) has its own pair of knobs:
//!
//! * **`SWIFTDIR_PROGRESS=<path>`** — streams heartbeat records (JSONL)
//!   to `<path>`; the special value `-` streams to stdout.
//! * **`SWIFTDIR_PROGRESS_INTERVAL_MS=<n>`** — minimum milliseconds
//!   between heartbeats (default 500; `0` emits on every tick).
//!
//! All knob *parsing* is pure ([`TraceConfig::from_values`],
//! [`ProgressConfig::parse_values`]) so it can be tested without
//! touching the process environment. Invalid values are never silent:
//! the `from_env` constructors warn once on stderr and fall back to the
//! documented defaults.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

use sim_engine::{
    CampaignCounters, ChromeTraceSink, Json, JsonlSink, Metric, MetricsRegistry, ProgressSampler,
    Tracer,
};
use swiftdir_coherence::CoherenceEvent;

use crate::system::RunStats;

/// Environment variable naming the trace-output base path.
pub const TRACE_ENV: &str = "SWIFTDIR_TRACE";

/// Environment variable capping the number of traced events.
pub const TRACE_LIMIT_ENV: &str = "SWIFTDIR_TRACE_LIMIT";

/// Capacity of the in-memory ring every traced run keeps for
/// invariant-failure dumps (the most recent events, always available
/// even when a file sink lags).
pub const TRACE_RING: usize = 4096;

/// Process-wide sequence distinguishing the files of concurrently (or
/// repeatedly) traced systems.
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Parsed trace knobs (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Output base path; `None` disables tracing.
    pub path: Option<PathBuf>,
    /// Event cap; `None` means unlimited.
    pub limit: Option<u64>,
}

impl TraceConfig {
    /// Reads `SWIFTDIR_TRACE` / `SWIFTDIR_TRACE_LIMIT` from the process
    /// environment. Invalid values (an unparsable limit, a non-unicode
    /// variable) warn once on stderr and fall back to the defaults.
    pub fn from_env() -> Self {
        let (path, mut warnings) = env_value(TRACE_ENV);
        let (limit, limit_warnings) = env_value(TRACE_LIMIT_ENV);
        warnings.extend(limit_warnings);
        let (cfg, parse_warnings) = Self::parse_values(path.as_deref(), limit.as_deref());
        warnings.extend(parse_warnings);
        static WARNED: Once = Once::new();
        if !warnings.is_empty() {
            // Once: a sweep constructs many `System`s; one report is enough.
            WARNED.call_once(|| {
                for w in &warnings {
                    eprintln!("swiftdir: {w}");
                }
            });
        }
        cfg
    }

    /// Pure knob parsing: `path` and `limit` as the environment would
    /// supply them. Empty or whitespace-only `path` disables tracing;
    /// an unparsable `limit` is ignored; `limit == 0` disables tracing.
    pub fn from_values(path: Option<&str>, limit: Option<&str>) -> Self {
        Self::parse_values(path, limit).0
    }

    /// [`TraceConfig::from_values`] that also returns the human-readable
    /// warnings for values that were ignored, so callers reading the
    /// real environment can be loud about bad knobs.
    pub fn parse_values(path: Option<&str>, limit: Option<&str>) -> (Self, Vec<String>) {
        let mut warnings = Vec::new();
        let path = path
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(PathBuf::from);
        let limit = limit.and_then(|v| match v.trim().parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                warnings.push(format!(
                    "invalid {TRACE_LIMIT_ENV}={v:?} (want a non-negative integer); \
                     tracing without an event cap"
                ));
                None
            }
        });
        let path = if limit == Some(0) { None } else { path };
        (TraceConfig { path, limit }, warnings)
    }

    /// A config tracing to `path` with no event cap (programmatic
    /// equivalent of setting `SWIFTDIR_TRACE`).
    pub fn to_path(path: impl Into<PathBuf>) -> Self {
        TraceConfig {
            path: Some(path.into()),
            limit: None,
        }
    }

    /// Whether this config enables tracing.
    pub fn is_enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Builds the tracer and its output files, claiming a fresh sequence
    /// number. Returns `Ok(None)` when tracing is disabled.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures for either sink.
    pub fn build(&self) -> io::Result<Option<(Tracer, TraceFiles)>> {
        let Some(base) = &self.path else {
            return Ok(None);
        };
        let files = TraceFiles::claim(base);
        let jsonl = BufWriter::new(File::create(&files.events)?);
        let chrome = BufWriter::new(File::create(&files.chrome)?);
        let mut tracer = Tracer::enabled()
            .with_ring(TRACE_RING)
            .with_sink(Box::new(JsonlSink::new(jsonl)))
            .with_sink(Box::new(ChromeTraceSink::new(chrome)));
        if let Some(limit) = self.limit {
            tracer = tracer.with_limit(limit);
        }
        Ok(Some((tracer, files)))
    }
}

/// The three output paths of one traced run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFiles {
    /// JSONL event stream (`<base>.jsonl`).
    pub events: PathBuf,
    /// Chrome `trace_event` export (`<base>.chrome.json`).
    pub chrome: PathBuf,
    /// Metrics snapshot (`<base>.metrics.json`).
    pub metrics: PathBuf,
}

impl TraceFiles {
    /// Claims the next sequence number and derives the three paths. The
    /// first claimant gets the bare base; later ones get `-<n>` suffixes.
    fn claim(base: &Path) -> TraceFiles {
        let n = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
        let base = if n == 0 {
            base.to_path_buf()
        } else {
            let mut s = base.as_os_str().to_os_string();
            s.push(format!("-{n}"));
            PathBuf::from(s)
        };
        TraceFiles::at(&base)
    }

    /// The three paths derived from `base` with no sequencing (what a
    /// single traced run named `base` produces).
    pub fn at(base: &Path) -> TraceFiles {
        let with_ext = |ext: &str| {
            let mut s = base.as_os_str().to_os_string();
            s.push(ext);
            PathBuf::from(s)
        };
        TraceFiles {
            events: with_ext(".jsonl"),
            chrome: with_ext(".chrome.json"),
            metrics: with_ext(".metrics.json"),
        }
    }
}

/// Reads one environment variable, reporting (rather than swallowing) a
/// non-unicode value.
fn env_value(name: &str) -> (Option<String>, Vec<String>) {
    match std::env::var(name) {
        Ok(v) => (Some(v), Vec::new()),
        Err(std::env::VarError::NotPresent) => (None, Vec::new()),
        Err(std::env::VarError::NotUnicode(v)) => (
            None,
            vec![format!("invalid {name}={v:?} (not unicode); ignoring it")],
        ),
    }
}

/// Environment variable naming the campaign-heartbeat sink
/// (a path, or `-` for stdout).
pub const PROGRESS_ENV: &str = "SWIFTDIR_PROGRESS";

/// Environment variable setting the minimum milliseconds between
/// heartbeats.
pub const PROGRESS_INTERVAL_ENV: &str = "SWIFTDIR_PROGRESS_INTERVAL_MS";

/// Default heartbeat interval when [`PROGRESS_INTERVAL_ENV`] is unset.
pub const PROGRESS_DEFAULT_INTERVAL: Duration = Duration::from_millis(500);

/// Where the heartbeat stream goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressSink {
    /// Stream to stdout (the `-` knob value).
    Stdout,
    /// Stream to a file, truncating it first.
    File(PathBuf),
}

/// Parsed campaign-telemetry knobs (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressConfig {
    /// Heartbeat sink; `None` disables telemetry.
    pub sink: Option<ProgressSink>,
    /// Minimum time between heartbeats (zero emits on every tick).
    pub interval: Duration,
}

impl Default for ProgressConfig {
    fn default() -> Self {
        ProgressConfig {
            sink: None,
            interval: PROGRESS_DEFAULT_INTERVAL,
        }
    }
}

impl ProgressConfig {
    /// Reads `SWIFTDIR_PROGRESS` / `SWIFTDIR_PROGRESS_INTERVAL_MS` from
    /// the process environment. Invalid values warn on stderr and fall
    /// back to the defaults.
    pub fn from_env() -> Self {
        let (sink, mut warnings) = env_value(PROGRESS_ENV);
        let (interval, interval_warnings) = env_value(PROGRESS_INTERVAL_ENV);
        warnings.extend(interval_warnings);
        let (cfg, parse_warnings) = Self::parse_values(sink.as_deref(), interval.as_deref());
        warnings.extend(parse_warnings);
        for w in &warnings {
            eprintln!("swiftdir: {w}");
        }
        cfg
    }

    /// Pure knob parsing: `sink` and `interval` as the environment would
    /// supply them, plus warnings for values that were ignored.
    pub fn parse_values(sink: Option<&str>, interval: Option<&str>) -> (Self, Vec<String>) {
        let mut warnings = Vec::new();
        let sink = sink.and_then(Self::parse_sink);
        let interval = match interval.map(|v| (v, v.trim().parse::<u64>())) {
            None => PROGRESS_DEFAULT_INTERVAL,
            Some((_, Ok(ms))) => Duration::from_millis(ms),
            Some((v, Err(_))) => {
                warnings.push(format!(
                    "invalid {PROGRESS_INTERVAL_ENV}={v:?} (want milliseconds as a \
                     non-negative integer); using the default of {}ms",
                    PROGRESS_DEFAULT_INTERVAL.as_millis()
                ));
                PROGRESS_DEFAULT_INTERVAL
            }
        };
        (ProgressConfig { sink, interval }, warnings)
    }

    /// Parses one sink value: empty or whitespace-only disables, `-`
    /// means stdout, anything else is a file path. Shared between the
    /// environment knob and the bins' `--progress` flag.
    pub fn parse_sink(v: &str) -> Option<ProgressSink> {
        let v = v.trim();
        match v {
            "" => None,
            "-" => Some(ProgressSink::Stdout),
            path => Some(ProgressSink::File(PathBuf::from(path))),
        }
    }

    /// A config streaming to `sink` (a path or `-`) at the default
    /// interval — what the bins build from their `--progress` flag.
    pub fn to_sink(v: &str) -> Self {
        ProgressConfig {
            sink: Self::parse_sink(v),
            ..Self::default()
        }
    }

    /// Whether this config enables telemetry.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Builds the sampler around `counters`. Returns `Ok(None)` when
    /// telemetry is disabled.
    ///
    /// # Errors
    ///
    /// Propagates creation failure of a file sink.
    pub fn build(&self, counters: CampaignCounters) -> io::Result<Option<Arc<ProgressSampler>>> {
        let Some(sink) = &self.sink else {
            return Ok(None);
        };
        let out: Box<dyn Write + Send> = match sink {
            ProgressSink::Stdout => Box::new(io::stdout()),
            ProgressSink::File(p) => {
                if let Some(dir) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(dir)?;
                }
                Box::new(File::create(p)?)
            }
        };
        Ok(Some(Arc::new(ProgressSampler::new(
            counters,
            out,
            self.interval,
        ))))
    }

    /// Builds a sampler that *continues* an interrupted heartbeat
    /// stream instead of truncating it: a file sink is repaired (any
    /// torn final line from the kill is dropped) and opened in append
    /// mode, and sequence numbers pick up one past the last durable
    /// record. The first record emitted carries `"resumed": true`.
    /// Returns `Ok(None)` when telemetry is disabled.
    ///
    /// # Errors
    ///
    /// Propagates repair/open failure of a file sink.
    pub fn build_resumed(
        &self,
        counters: CampaignCounters,
    ) -> io::Result<Option<Arc<ProgressSampler>>> {
        let Some(sink) = &self.sink else {
            return Ok(None);
        };
        let (out, start_seq): (Box<dyn Write + Send>, u64) = match sink {
            // Stdout was never durable; just keep streaming from seq 0.
            ProgressSink::Stdout => (Box::new(io::stdout()), 0),
            ProgressSink::File(p) => {
                if let Some(dir) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(dir)?;
                }
                let next_seq = repair_progress_tail(p)?;
                let f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)?;
                (Box::new(f), next_seq)
            }
        };
        Ok(Some(Arc::new(ProgressSampler::resumed(
            counters,
            out,
            self.interval,
            start_seq,
        ))))
    }
}

/// Repairs the tail of an interrupted heartbeat file and returns the
/// next sequence number to emit. A `kill -9` can leave a torn
/// (unterminated) final line; only `'\n'`-terminated lines are durable,
/// so the file is truncated back to the last terminator. Lines are then
/// scanned tolerantly (unparsable ones are skipped — the stream checker
/// reports them later, repair just needs a seq cursor) for the maximum
/// `seq`; the result is that plus one, or 0 for a missing/empty file.
///
/// # Errors
///
/// Propagates read/truncate failures. A missing file is not an error.
pub fn repair_progress_tail(path: &Path) -> io::Result<u64> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let durable = match text.rfind('\n') {
        Some(i) => i + 1,
        None => 0,
    };
    if durable < text.len() {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(durable as u64)?;
    }
    let next = text[..durable]
        .lines()
        .filter_map(|l| sim_engine::ProgressRecord::parse_line(l).ok())
        .map(|r| r.seq + 1)
        .max()
        .unwrap_or(0);
    Ok(next)
}

/// Schema tag stamped into every snapshot, so `swiftdir-report` can
/// reject files it does not understand.
pub const SNAPSHOT_SCHEMA: &str = "swiftdir.run.v1";

impl RunStats {
    /// The machine-readable snapshot of this run: every typed statistic
    /// — per-thread CPU counters, Table III event counts, hierarchy and
    /// DRAM counters, and the protocol metrics (per-request-class
    /// latency histograms and the L1/LLC transition matrices) exported
    /// through a [`MetricsRegistry`].
    ///
    /// The result is deterministic: object keys are emitted in a fixed
    /// order and the registry section is sorted by metric name.
    pub fn snapshot(&self) -> Json {
        let threads = Json::array(self.threads.iter().map(|t| {
            Json::object([
                ("core", Json::Uint(t.core as u64)),
                ("instructions", Json::Uint(t.cpu.instructions)),
                ("mem_ops", Json::Uint(t.cpu.mem_ops)),
                ("started_at", Json::Uint(t.cpu.started_at.get())),
                ("finished_at", Json::Uint(t.cpu.finished_at.get())),
                ("cycles", Json::Uint(t.cpu.cycles())),
                ("ipc", Json::Float(t.cpu.ipc())),
            ])
        }));

        let events = Json::object(
            CoherenceEvent::ALL
                .iter()
                .map(|&e| (e.name(), Json::Uint(self.hierarchy.event(e)))),
        );

        let hierarchy = Json::object([
            ("l1_hits", Json::Uint(self.hierarchy.l1_hits)),
            ("l1_misses", Json::Uint(self.hierarchy.l1_misses)),
            ("mshr_merges", Json::Uint(self.hierarchy.mshr_merges)),
            ("recalls", Json::Uint(self.hierarchy.recalls)),
            (
                "silent_upgrades",
                Json::Uint(self.hierarchy.silent_upgrades),
            ),
            ("dispatched", Json::Uint(self.hierarchy.dispatched)),
        ]);

        let memory = Json::object([
            ("reads", Json::Uint(self.memory.reads)),
            ("writes", Json::Uint(self.memory.writes)),
            ("row_hits", Json::Uint(self.memory.row_hits)),
            ("row_closed", Json::Uint(self.memory.row_closed)),
            ("row_conflicts", Json::Uint(self.memory.row_conflicts)),
            ("row_hit_rate", Json::Float(self.memory.row_hit_rate())),
        ]);

        let mut reg = MetricsRegistry::new();
        self.hierarchy.protocol.export_into(&mut reg, "protocol.");
        reg.insert(
            "run.instructions",
            Metric::Counter(self.instructions().into()),
        );
        reg.insert("run.roi_cycles", Metric::Counter(self.roi_cycles().into()));

        Json::object([
            ("schema", Json::from(SNAPSHOT_SCHEMA)),
            ("threads", threads),
            ("roi_cycles", Json::Uint(self.roi_cycles())),
            ("instructions", Json::Uint(self.instructions())),
            ("ipc", Json::Float(self.ipc())),
            ("events", events),
            ("hierarchy", hierarchy),
            ("memory", memory),
            ("metrics", reg.snapshot()),
        ])
    }

    /// [`RunStats::snapshot`] rendered as pretty-printed JSON text.
    pub fn snapshot_pretty(&self) -> String {
        self.snapshot().to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_parses_knobs() {
        assert_eq!(TraceConfig::from_values(None, None), TraceConfig::default());
        let c = TraceConfig::from_values(Some("out/trace"), None);
        assert_eq!(c.path.as_deref(), Some(Path::new("out/trace")));
        assert_eq!(c.limit, None);
        assert!(c.is_enabled());

        let c = TraceConfig::from_values(Some(" t "), Some("500"));
        assert_eq!(c.path.as_deref(), Some(Path::new("t")));
        assert_eq!(c.limit, Some(500));
    }

    #[test]
    fn empty_path_or_zero_limit_disables() {
        assert!(!TraceConfig::from_values(Some(""), None).is_enabled());
        assert!(!TraceConfig::from_values(Some("  "), None).is_enabled());
        assert!(!TraceConfig::from_values(Some("t"), Some("0")).is_enabled());
        // An unparsable limit is ignored, not an error.
        let c = TraceConfig::from_values(Some("t"), Some("lots"));
        assert!(c.is_enabled());
        assert_eq!(c.limit, None);
    }

    #[test]
    fn trace_files_derive_the_three_siblings() {
        let f = TraceFiles::at(Path::new("/tmp/run7"));
        assert_eq!(f.events, Path::new("/tmp/run7.jsonl"));
        assert_eq!(f.chrome, Path::new("/tmp/run7.chrome.json"));
        assert_eq!(f.metrics, Path::new("/tmp/run7.metrics.json"));
    }

    #[test]
    fn claimed_bases_are_distinct() {
        let a = TraceFiles::claim(Path::new("/tmp/seq"));
        let b = TraceFiles::claim(Path::new("/tmp/seq"));
        assert_ne!(a.events, b.events, "sequence numbers must disambiguate");
        assert_ne!(a.metrics, b.metrics);
    }

    #[test]
    fn disabled_config_builds_nothing() {
        assert!(TraceConfig::default().build().unwrap().is_none());
    }

    #[test]
    fn unparsable_trace_limit_warns() {
        let (c, warnings) = TraceConfig::parse_values(Some("t"), Some("lots"));
        assert!(c.is_enabled());
        assert_eq!(c.limit, None);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains(TRACE_LIMIT_ENV), "{warnings:?}");
        // Valid knobs warn about nothing.
        let (_, warnings) = TraceConfig::parse_values(Some("t"), Some("10"));
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn progress_sink_values_parse() {
        assert_eq!(ProgressConfig::parse_sink(""), None);
        assert_eq!(ProgressConfig::parse_sink("  "), None);
        assert_eq!(ProgressConfig::parse_sink("-"), Some(ProgressSink::Stdout));
        assert_eq!(
            ProgressConfig::parse_sink("out/hb.jsonl"),
            Some(ProgressSink::File(PathBuf::from("out/hb.jsonl")))
        );
    }

    #[test]
    fn progress_values_parse_with_defaults() {
        let (c, warnings) = ProgressConfig::parse_values(None, None);
        assert_eq!(c, ProgressConfig::default());
        assert!(!c.is_enabled());
        assert!(warnings.is_empty());

        let (c, warnings) = ProgressConfig::parse_values(Some("hb.jsonl"), Some("25"));
        assert!(c.is_enabled());
        assert_eq!(c.interval, Duration::from_millis(25));
        assert!(warnings.is_empty());
    }

    #[test]
    fn invalid_progress_interval_warns_and_falls_back() {
        let (c, warnings) = ProgressConfig::parse_values(Some("-"), Some("fast"));
        assert_eq!(c.sink, Some(ProgressSink::Stdout));
        assert_eq!(c.interval, PROGRESS_DEFAULT_INTERVAL);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains(PROGRESS_INTERVAL_ENV), "{warnings:?}");
    }

    #[test]
    fn disabled_progress_builds_nothing() {
        use sim_engine::CampaignCounters;
        let counters = CampaignCounters::new("t", 1, &[]);
        assert!(ProgressConfig::default().build(counters).unwrap().is_none());
        assert!(ProgressConfig::default()
            .build_resumed(CampaignCounters::new("t", 1, &[]))
            .unwrap()
            .is_none());
    }

    #[test]
    fn repair_progress_tail_drops_torn_lines_and_finds_the_seq_cursor() {
        let dir = std::env::temp_dir().join(format!("swiftdir-obs-repair-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("hb.jsonl");

        // Missing file: fresh stream.
        assert_eq!(repair_progress_tail(&p).unwrap(), 0);

        let line = |seq: u64| {
            format!("{{\"schema\": \"swiftdir.progress.v1\", \"seq\": {seq}, \"done\": 1}}\n")
        };
        let mut text = line(4);
        text.push_str(&line(7));
        text.push_str("{\"schema\": \"swiftdir.progress.v1\", \"seq\": 9"); // torn by the kill
        std::fs::write(&p, &text).unwrap();

        assert_eq!(repair_progress_tail(&p).unwrap(), 8);
        let repaired = std::fs::read_to_string(&p).unwrap();
        assert!(repaired.ends_with('\n'), "torn tail must be truncated");
        assert_eq!(repaired.lines().count(), 2);
        // Repair is a fixpoint.
        assert_eq!(repair_progress_tail(&p).unwrap(), 8);

        std::fs::remove_dir_all(&dir).ok();
    }
}
