//! Deterministic protocol stress fuzzer.
//!
//! [`run_fuzz`] drives a deliberately hostile configuration of the
//! coherence hierarchy — many cores hammering a handful of blocks
//! through an undersized L1 (forced evictions), an undersized LLC
//! (forced recalls), tiny MSHRs (retry pressure), and randomized
//! per-link latency jitter (message-race reordering) — while the
//! [`Checker`] audits the global invariants after **every** simulated
//! event and a golden memory model cross-checks every load's value.
//!
//! Everything is seeded: the same [`FuzzConfig`] always produces the
//! same access stream, the same event interleaving, and the same
//! [`FuzzReport::digest`], so any failure is replayable from its seed
//! alone and [`minimize`] can shrink a failing configuration while
//! preserving the failure.

use sim_engine::{Cycle, DetRng, Tracer};
use swiftdir_cache::CacheGeometry;
use swiftdir_coherence::{
    AccessKind, Checker, Completion, CoreRequest, Hierarchy, HierarchyConfig, ProtocolKind,
};
use swiftdir_mmu::PhysAddr;

/// Events without a single completion before the watchdog declares the
/// protocol deadlocked. The worst honest case (a recall chain across
/// every block) resolves in a few hundred events.
const WATCHDOG_EVENTS: u64 = 200_000;

/// Absolute event budget per run, against runaway livelock.
const MAX_EVENTS: u64 = 5_000_000;

/// One fuzz scenario: everything needed to reproduce a run bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzConfig {
    /// Seed for the access stream and the link jitter.
    pub seed: u64,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Cores hammering the block set.
    pub cores: usize,
    /// Distinct blocks contended over (block `i` lives at `i * 64`).
    pub blocks: usize,
    /// Total accesses issued across all cores.
    pub ops: usize,
    /// Maximum extra per-hop latency injected by [`sim_engine::LinkJitter`]
    /// (0 disables jitter).
    pub jitter_max: u64,
    /// Probability an access is a store.
    pub store_fraction: f64,
    /// Probability a non-store access is a write-protected load.
    pub wp_fraction: f64,
}

impl FuzzConfig {
    /// The default adversarial scenario for `seed`: 4 cores, 8 blocks,
    /// 400 operations, jitter up to 6 cycles, 45% stores, 30% of loads
    /// write-protected.
    pub fn new(seed: u64, protocol: ProtocolKind) -> Self {
        FuzzConfig {
            seed,
            protocol,
            cores: 4,
            blocks: 8,
            ops: 400,
            jitter_max: 6,
            store_fraction: 0.45,
            wp_fraction: 0.3,
        }
    }

    /// The shrunken hierarchy this scenario runs on: a 4-line 2-way L1
    /// (constant eviction pressure), a 4-line 2-way LLC bank (constant
    /// recall pressure once `blocks` exceeds its ways), and 4 MSHRs.
    pub fn hierarchy_config(&self) -> HierarchyConfig {
        let mut cfg = HierarchyConfig::table_v(self.cores, self.protocol);
        cfg.l1_geometry = CacheGeometry::new(256, 1, 64);
        cfg.llc_bank_geometry = CacheGeometry::new(256, 2, 64);
        cfg.l1_mshrs = 4;
        cfg
    }
}

/// How a fuzz run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzFailureKind {
    /// The hierarchy itself detected an illegal transition
    /// (a structured [`swiftdir_coherence::ProtocolError`]).
    Protocol,
    /// The external [`Checker`] caught an invariant or data-value
    /// violation the protocol machinery did not.
    Invariant,
    /// The no-progress watchdog tripped, or transient state survived
    /// quiescence.
    Deadlock,
}

impl std::fmt::Display for FuzzFailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FuzzFailureKind::Protocol => "protocol error",
            FuzzFailureKind::Invariant => "invariant violation",
            FuzzFailureKind::Deadlock => "deadlock",
        })
    }
}

/// A failed run's diagnosis, including the offending block's recent
/// protocol history when available.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Failure classification.
    pub kind: FuzzFailureKind,
    /// Human-readable detail (violation message plus traced history).
    pub detail: String,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// The outcome of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The scenario that produced this report.
    pub config: FuzzConfig,
    /// Completions observed (equals `config.ops` on a clean run).
    pub completions: usize,
    /// Simulator events processed.
    pub events: u64,
    /// FNV-1a digest over the completion stream; bit-identical across
    /// repeated runs of the same config.
    pub digest: u64,
    /// Install retries the run provoked (grant waiting on a way held by
    /// in-flight transients).
    pub install_retries: u64,
    /// Installs that exhausted their retries and parked until the set
    /// drained.
    pub install_stalls: u64,
    /// `None` on a clean run.
    pub failure: Option<FuzzFailure>,
}

impl FuzzReport {
    /// Whether the run completed with no violation of any kind.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs one seeded fuzz scenario to quiescence, auditing invariants
/// after every event.
///
/// # Example
///
/// ```
/// use swiftdir_coherence::ProtocolKind;
/// use swiftdir_core::fuzz::{run_fuzz, FuzzConfig};
///
/// let mut cfg = FuzzConfig::new(7, ProtocolKind::SwiftDir);
/// cfg.ops = 60;
/// let report = run_fuzz(&cfg);
/// assert!(report.ok(), "{}", report.failure.unwrap());
/// assert_eq!(report.completions, 60);
/// ```
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut h = Hierarchy::new(cfg.hierarchy_config());
    h.set_tracer(Tracer::enabled().with_ring(512));
    if cfg.jitter_max > 0 {
        h.set_jitter(cfg.seed ^ 0x9e37_79b9_7f4a_7c15, cfg.jitter_max);
    }

    // Issue the whole access stream up front at randomized times; the
    // event queue serializes it against the protocol traffic.
    let mut rng = DetRng::new(cfg.seed);
    let mut at = 0u64;
    for _ in 0..cfg.ops {
        at += rng.below(24);
        let core = rng.below(cfg.cores as u64) as usize;
        let addr = PhysAddr(rng.below(cfg.blocks as u64) * 64);
        let req = if rng.chance(cfg.store_fraction) {
            CoreRequest::store(addr)
        } else if rng.chance(cfg.wp_fraction) {
            CoreRequest::load(addr).write_protected()
        } else {
            CoreRequest::load(addr)
        };
        h.issue(Cycle(at), core, req);
    }

    let mut checker = Checker::new();
    let mut log: Vec<Completion> = Vec::with_capacity(cfg.ops);
    let mut events = 0u64;
    let mut last_progress = 0u64;
    let mut failure = loop {
        match h.try_step() {
            Err(e) => {
                break Some(FuzzFailure {
                    kind: FuzzFailureKind::Protocol,
                    detail: e.to_string(),
                });
            }
            Ok(None) => break None,
            Ok(Some(_)) => {}
        }
        events += 1;
        let done = h.drain_completions();
        if !done.is_empty() {
            last_progress = events;
        }
        let audit = checker.after_event(&h, &done);
        log.extend(done);
        if let Err(v) = audit {
            break Some(FuzzFailure {
                kind: FuzzFailureKind::Invariant,
                detail: v.to_string(),
            });
        }
        if events - last_progress > WATCHDOG_EVENTS || events > MAX_EVENTS {
            break Some(FuzzFailure {
                kind: FuzzFailureKind::Deadlock,
                detail: format!(
                    "no completion in {} events at cycle {}\n{}",
                    events - last_progress,
                    h.now().get(),
                    h.debug_stuck()
                ),
            });
        }
    };

    if failure.is_none() {
        if let Err(v) = checker.check_quiescent(&h) {
            failure = Some(FuzzFailure {
                kind: FuzzFailureKind::Deadlock,
                detail: v.to_string(),
            });
        } else if log.len() != cfg.ops {
            failure = Some(FuzzFailure {
                kind: FuzzFailureKind::Deadlock,
                detail: format!(
                    "issued {} requests but saw {} completions",
                    cfg.ops,
                    log.len()
                ),
            });
        }
    }

    FuzzReport {
        config: *cfg,
        completions: log.len(),
        events,
        digest: digest(&log),
        install_retries: h.stats().protocol.install_retries(),
        install_stalls: h.stats().protocol.install_stalls(),
        failure,
    }
}

/// FNV-1a over the completion stream in serialization order.
fn digest(log: &[Completion]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for c in log {
        mix(c.req);
        mix(c.core as u64);
        mix(c.block.0);
        mix(match c.class.kind {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
        });
        mix(c.value);
        mix(c.done_at.get());
    }
    hash
}

/// Shrinks a failing scenario while it keeps failing: first the
/// operation count, then the block set, then the core count. Returns
/// the input unchanged if it does not fail.
///
/// Shrinking re-derives the access stream from the seed, so a smaller
/// scenario exercises a different (shorter) schedule — the reduction is
/// greedy and heuristic, not a strict subsequence, which is the usual
/// trade for seed-replayable fuzzing.
pub fn minimize(cfg: &FuzzConfig) -> FuzzConfig {
    let mut best = *cfg;
    if run_fuzz(&best).ok() {
        return best;
    }
    loop {
        let mut improved = false;
        while best.ops > 4 {
            let cand = FuzzConfig {
                ops: best.ops / 2,
                ..best
            };
            if run_fuzz(&cand).ok() {
                break;
            }
            best = cand;
            improved = true;
        }
        while best.blocks > 1 {
            let cand = FuzzConfig {
                blocks: best.blocks - 1,
                ..best
            };
            if run_fuzz(&cand).ok() {
                break;
            }
            best = cand;
            improved = true;
        }
        while best.cores > 2 {
            let cand = FuzzConfig {
                cores: best.cores - 1,
                ..best
            };
            if run_fuzz(&cand).ok() {
                break;
            }
            best = cand;
            improved = true;
        }
        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_all_protocols() {
        for protocol in [
            ProtocolKind::Msi,
            ProtocolKind::Mesi,
            ProtocolKind::SMesi,
            ProtocolKind::SwiftDir,
        ] {
            let mut cfg = FuzzConfig::new(42, protocol);
            cfg.ops = 120;
            let report = run_fuzz(&cfg);
            assert!(
                report.ok(),
                "{protocol:?} seed 42 failed: {}",
                report.failure.unwrap()
            );
            assert_eq!(report.completions, 120);
        }
    }

    #[test]
    fn repeated_seed_is_bit_identical() {
        let mut cfg = FuzzConfig::new(1234, ProtocolKind::SwiftDir);
        cfg.ops = 150;
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert!(a.ok() && b.ok());
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn distinct_seeds_explore_distinct_schedules() {
        let a = run_fuzz(&FuzzConfig::new(1, ProtocolKind::Mesi));
        let b = run_fuzz(&FuzzConfig::new(2, ProtocolKind::Mesi));
        assert!(a.ok() && b.ok());
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn minimize_returns_clean_config_unchanged() {
        let mut cfg = FuzzConfig::new(5, ProtocolKind::Mesi);
        cfg.ops = 40;
        assert_eq!(minimize(&cfg), cfg);
    }
}
