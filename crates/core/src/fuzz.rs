//! Deterministic protocol stress fuzzer.
//!
//! [`run_fuzz`] drives a deliberately hostile configuration of the
//! coherence hierarchy — many cores hammering a handful of blocks
//! through an undersized L1 (forced evictions), an undersized LLC
//! (forced recalls), tiny MSHRs (retry pressure), and randomized
//! per-link latency jitter (message-race reordering) — while the
//! [`Checker`] audits the global invariants after **every** simulated
//! event and a golden memory model cross-checks every load's value.
//!
//! Everything is seeded: the same [`FuzzConfig`] always produces the
//! same access stream, the same event interleaving, and the same
//! [`FuzzReport::digest`], so any failure is replayable from its seed
//! alone. Failures shrink at two levels: [`minimize`] reduces the
//! scenario knobs (ops/blocks/cores), and [`minimize_stream`]
//! delta-debugs the concrete access stream itself, emitting a
//! [`StreamFile`] that [`replay`] reproduces op-for-op — the repro
//! survives changes to the stream *generator*, which a bare seed does
//! not.

use std::sync::Arc;

use sim_engine::{DetRng, MemGauge, ProgressSampler, Tracer};
use swiftdir_cache::CacheGeometry;
use swiftdir_coherence::{
    AccessKind, Checker, Completion, Hierarchy, HierarchyConfig, L1State, ProtocolKind,
};
use swiftdir_mmu::PhysAddr;

use crate::driver::ExperimentSet;
use crate::stream::{issue_stream, AccessOp, StreamFile};

/// Events without a single completion before the watchdog declares the
/// protocol deadlocked. The worst honest case (a recall chain across
/// every block) resolves in a few hundred events.
const WATCHDOG_EVENTS: u64 = 200_000;

/// Absolute event budget per run, against runaway livelock.
const MAX_EVENTS: u64 = 5_000_000;

/// Phase names a fuzz campaign's telemetry attributes wall time to:
/// `generate` (stream derivation, hierarchy construction, issue), `run`
/// (the event loop, including the per-event invariant audit — see
/// DESIGN.md §12 for why the audit is not timed separately), and
/// `check` (the final quiescence audit).
pub const FUZZ_PHASES: [&str; 3] = ["generate", "run", "check"];

/// Events between telemetry flushes inside a fuzz run: the campaign
/// event counter, slab/trace-ring gauges, and a sampler tick. Rare
/// enough (one per 4096 events) that the enabled path stays well under
/// the ≤2% sampler-overhead gate.
const FUZZ_TELEMETRY_EVERY: u64 = 4096;

/// One fuzz scenario: everything needed to reproduce a run bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzConfig {
    /// Seed for the access stream and the link jitter.
    pub seed: u64,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Cores hammering the block set.
    pub cores: usize,
    /// Distinct blocks contended over (block `i` lives at `i * 64`).
    pub blocks: usize,
    /// Total accesses issued across all cores.
    pub ops: usize,
    /// Maximum extra per-hop latency injected by [`sim_engine::LinkJitter`]
    /// (0 disables jitter).
    pub jitter_max: u64,
    /// Probability an access is a store.
    pub store_fraction: f64,
    /// Probability a non-store access is a write-protected load.
    pub wp_fraction: f64,
    /// Address-sharded directory banks (power of two). The shrunken LLC
    /// scales with the bank count so every bank keeps the full recall
    /// pressure of the classic single-bank scenario.
    pub banks: usize,
}

impl FuzzConfig {
    /// The default adversarial scenario for `seed`: 4 cores, 8 blocks,
    /// 400 operations, jitter up to 6 cycles, 45% stores, 30% of loads
    /// write-protected.
    pub fn new(seed: u64, protocol: ProtocolKind) -> Self {
        FuzzConfig {
            seed,
            protocol,
            cores: 4,
            blocks: 8,
            ops: 400,
            jitter_max: 6,
            store_fraction: 0.45,
            wp_fraction: 0.3,
            banks: 1,
        }
    }

    /// The shrunken hierarchy this scenario runs on: a 4-line 2-way L1
    /// (constant eviction pressure), a 4-line 2-way LLC bank (constant
    /// recall pressure once `blocks` exceeds its ways), and 4 MSHRs.
    pub fn hierarchy_config(&self) -> HierarchyConfig {
        let mut cfg = HierarchyConfig::table_v(self.cores, self.protocol);
        cfg.l1_geometry = CacheGeometry::new(256, 1, 64);
        // One classic 256-byte 2-way shrunken bank *per* directory bank,
        // so sharding multiplies the contention domains instead of
        // diluting per-bank recall pressure.
        cfg.llc_bank_geometry = CacheGeometry::new(256 * self.banks as u64, 2, 64);
        cfg.l1_mshrs = 4;
        cfg.with_banks(self.banks)
    }

    /// The concrete access stream this scenario's seed generates.
    pub fn stream(&self) -> Vec<AccessOp> {
        let mut rng = DetRng::new(self.seed);
        let mut at = 0u64;
        let mut ops = Vec::with_capacity(self.ops);
        for _ in 0..self.ops {
            at += rng.below(24);
            let core = rng.below(self.cores as u64) as usize;
            let addr = rng.below(self.blocks as u64) * 64;
            let op = if rng.chance(self.store_fraction) {
                AccessOp::store(at, core, addr)
            } else if rng.chance(self.wp_fraction) {
                AccessOp::wp_load(at, core, addr)
            } else {
                AccessOp::load(at, core, addr)
            };
            ops.push(op);
        }
        ops
    }

    /// This scenario as a self-contained replayable [`StreamFile`].
    pub fn stream_file(&self) -> StreamFile {
        StreamFile {
            protocol: self.protocol,
            cores: self.cores,
            jitter_max: self.jitter_max,
            jitter_seed: self.seed ^ 0x9e37_79b9_7f4a_7c15,
            ops: self.stream(),
        }
    }
}

/// A deliberate mid-run corruption, for validating that the audit stack
/// (structured protocol errors, the [`Checker`]'s invariants, the golden
/// data model) actually catches bugs — and that [`minimize_stream`]
/// preserves them while shrinking.
///
/// After `after_completions` requests have completed, the target core's
/// L1 line for `addr` is forced to Modified with `value` — a rogue
/// write the protocol never sanctioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantedFault {
    /// Completions to wait for before corrupting.
    pub after_completions: usize,
    /// Core whose L1 is corrupted.
    pub core: usize,
    /// Block address to corrupt.
    pub addr: u64,
    /// The bogus data value planted.
    pub value: u64,
}

/// How a fuzz run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzFailureKind {
    /// The hierarchy itself detected an illegal transition
    /// (a structured [`swiftdir_coherence::ProtocolError`]).
    Protocol,
    /// The external [`Checker`] caught an invariant or data-value
    /// violation the protocol machinery did not.
    Invariant,
    /// The no-progress watchdog tripped, or transient state survived
    /// quiescence.
    Deadlock,
}

impl std::fmt::Display for FuzzFailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FuzzFailureKind::Protocol => "protocol error",
            FuzzFailureKind::Invariant => "invariant violation",
            FuzzFailureKind::Deadlock => "deadlock",
        })
    }
}

/// A failed run's diagnosis, including the offending block's recent
/// protocol history when available.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Failure classification.
    pub kind: FuzzFailureKind,
    /// Human-readable detail (violation message plus traced history).
    pub detail: String,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// The outcome of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The scenario that produced this report.
    pub config: FuzzConfig,
    /// Completions observed (equals `config.ops` on a clean run).
    pub completions: usize,
    /// Simulator events processed.
    pub events: u64,
    /// FNV-1a digest over the completion stream; bit-identical across
    /// repeated runs of the same config.
    pub digest: u64,
    /// Install retries the run provoked (grant waiting on a way held by
    /// in-flight transients).
    pub install_retries: u64,
    /// Installs that exhausted their retries and parked until the set
    /// drained.
    pub install_stalls: u64,
    /// The hierarchy's full statistics (transition matrices, event
    /// counts) — the coverage gate unions these across seeds.
    pub stats: swiftdir_coherence::HierarchyStats,
    /// `None` on a clean run.
    pub failure: Option<FuzzFailure>,
}

impl FuzzReport {
    /// Whether the run completed with no violation of any kind.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs one seeded fuzz scenario to quiescence, auditing invariants
/// after every event.
///
/// # Example
///
/// ```
/// use swiftdir_coherence::ProtocolKind;
/// use swiftdir_core::fuzz::{run_fuzz, FuzzConfig};
///
/// let mut cfg = FuzzConfig::new(7, ProtocolKind::SwiftDir);
/// cfg.ops = 60;
/// let report = run_fuzz(&cfg);
/// assert!(report.ok(), "{}", report.failure.unwrap());
/// assert_eq!(report.completions, 60);
/// ```
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    run_fuzz_observed(cfg, None)
}

/// [`run_fuzz`] with optional campaign telemetry: phase spans, event
/// deltas, occupancy gauges, and heartbeat ticks land in the sampler as
/// the run progresses. Strictly passive — the report is bit-identical
/// with or without a sampler.
pub(crate) fn run_fuzz_observed(
    cfg: &FuzzConfig,
    progress: Option<&ProgressSampler>,
) -> FuzzReport {
    let file = {
        let _generate = progress.map(|p| p.counters().span("generate"));
        cfg.stream_file()
    };
    run_ops(cfg, &file, None, progress)
}

/// Runs every scenario in `configs` fanned over the experiment driver's
/// worker threads (`SWIFTDIR_THREADS`, else the host parallelism).
///
/// Each scenario is self-contained and seeded, so the fan-out cannot
/// perturb it; results come back **in input order**, making the returned
/// reports (digests, event counts, statistics) bit-identical to calling
/// [`run_fuzz`] serially over the slice, whatever the thread count.
pub fn run_fuzz_many(configs: &[FuzzConfig]) -> Vec<FuzzReport> {
    run_fuzz_campaign(configs, None, None)
}

/// [`run_fuzz_many`] with a pinned worker count (`threads == 1` runs
/// strictly serially on the calling thread). Used by the bench harness
/// and the determinism tests to compare thread counts explicitly.
pub fn run_fuzz_many_threads(configs: &[FuzzConfig], threads: usize) -> Vec<FuzzReport> {
    run_fuzz_campaign(configs, Some(threads), None)
}

/// The fuzz campaign driver every `run_fuzz_many*` entry point funnels
/// through: fans `configs` over the experiment driver, optionally with
/// a pinned thread count and a campaign telemetry sampler.
///
/// With a sampler attached the campaign announces `configs.len()` units
/// up front, each worker publishes per-seed progress (done counts,
/// event deltas, [`FUZZ_PHASES`] spans, slab/trace-ring gauges) and the
/// sampler emits `"swiftdir.progress.v1"` heartbeats at its interval.
/// Telemetry is strictly passive: the returned reports are
/// bit-identical to a samplerless run at every thread count.
pub fn run_fuzz_campaign(
    configs: &[FuzzConfig],
    threads: Option<usize>,
    progress: Option<&Arc<ProgressSampler>>,
) -> Vec<FuzzReport> {
    if let Some(p) = progress {
        p.counters().add_total(configs.len() as u64);
    }
    let mut set = ExperimentSet::new(configs.to_vec());
    if let Some(t) = threads {
        set = set.threads(t);
    }
    if let Some(p) = progress {
        set = set.progress(Arc::clone(p));
    }
    let progress = progress.map(Arc::as_ref);
    set.run(move |cfg| {
        let report = run_fuzz_observed(cfg, progress);
        if let Some(p) = progress {
            p.counters().add_done(1);
        }
        report
    })
}

/// Replays a [`StreamFile`] op-for-op on the standard shrunken fuzz
/// hierarchy, with the same full auditing as [`run_fuzz`].
pub fn replay(file: &StreamFile) -> FuzzReport {
    replay_with_fault(file, None)
}

/// Flushes a fuzz run's periodic telemetry: the campaign event delta
/// plus slab and trace-ring occupancy gauges, then a sampler tick.
fn flush_fuzz_telemetry(p: &ProgressSampler, h: &Hierarchy, event_delta: u64) {
    let c = p.counters();
    c.add_events(event_delta);
    c.gauge(MemGauge::SlabBytes).set(h.transient_bytes());
    if let Some(ring) = h.tracer().ring() {
        c.gauge(MemGauge::TraceRing).set(ring.len() as u64);
    }
    p.tick();
}

/// [`replay`], optionally corrupting the hierarchy mid-run per `fault`.
pub fn replay_with_fault(file: &StreamFile, fault: Option<&PlantedFault>) -> FuzzReport {
    let cfg = FuzzConfig {
        seed: file.jitter_seed ^ 0x9e37_79b9_7f4a_7c15,
        protocol: file.protocol,
        cores: file.cores,
        blocks: 0,
        ops: file.ops.len(),
        jitter_max: file.jitter_max,
        store_fraction: 0.0,
        wp_fraction: 0.0,
        banks: 1,
    };
    run_ops(&cfg, file, fault, None)
}

/// The shared fuzz/replay core: issue the stream up front, step to
/// quiescence with the [`Checker`] auditing every event. With a
/// sampler, `generate`/`run`/`check` phase spans and periodic telemetry
/// flushes are recorded around the existing control flow; nothing the
/// simulation computes depends on them.
fn run_ops(
    cfg: &FuzzConfig,
    file: &StreamFile,
    fault: Option<&PlantedFault>,
    progress: Option<&ProgressSampler>,
) -> FuzzReport {
    let generate_span = progress.map(|p| p.counters().span("generate"));
    let mut h = Hierarchy::new(cfg.hierarchy_config());
    h.set_tracer(Tracer::enabled().with_ring(512));
    if file.jitter_max > 0 {
        h.set_jitter(file.jitter_seed, file.jitter_max);
    }

    // Issue the whole access stream up front at randomized times; the
    // event queue serializes it against the protocol traffic.
    issue_stream(&mut h, &file.ops);
    drop(generate_span);

    let run_span = progress.map(|p| p.counters().span("run"));
    let mut fault = fault.copied();
    let mut checker = Checker::new();
    let mut log: Vec<Completion> = Vec::with_capacity(cfg.ops);
    let mut events = 0u64;
    let mut last_progress = 0u64;
    let mut failure = loop {
        match h.try_step() {
            Err(e) => {
                break Some(FuzzFailure {
                    kind: FuzzFailureKind::Protocol,
                    detail: e.to_string(),
                });
            }
            Ok(None) => break None,
            Ok(Some(_)) => {}
        }
        events += 1;
        if let Some(p) = progress {
            if events.is_multiple_of(FUZZ_TELEMETRY_EVERY) {
                flush_fuzz_telemetry(p, &h, FUZZ_TELEMETRY_EVERY);
            }
        }
        let done = h.drain_completions();
        if !done.is_empty() {
            last_progress = events;
        }
        let audit = checker.after_event(&h, &done);
        log.extend(done);
        if let Err(v) = audit {
            break Some(FuzzFailure {
                kind: FuzzFailureKind::Invariant,
                detail: v.to_string(),
            });
        }
        if let Some(f) = fault {
            if log.len() >= f.after_completions {
                h.test_force_l1_state(f.core, PhysAddr(f.addr), L1State::M, f.value);
                fault = None;
            }
        }
        if events - last_progress > WATCHDOG_EVENTS || events > MAX_EVENTS {
            break Some(FuzzFailure {
                kind: FuzzFailureKind::Deadlock,
                detail: format!(
                    "no completion in {} events at cycle {}\n{}",
                    events - last_progress,
                    h.now().get(),
                    h.debug_stuck()
                ),
            });
        }
    };
    drop(run_span);

    let check_span = progress.map(|p| p.counters().span("check"));
    if failure.is_none() {
        if let Err(v) = checker.check_quiescent(&h) {
            failure = Some(FuzzFailure {
                kind: FuzzFailureKind::Deadlock,
                detail: v.to_string(),
            });
        } else if log.len() != file.ops.len() {
            failure = Some(FuzzFailure {
                kind: FuzzFailureKind::Deadlock,
                detail: format!(
                    "issued {} requests but saw {} completions",
                    file.ops.len(),
                    log.len()
                ),
            });
        }
    }
    drop(check_span);
    if let Some(p) = progress {
        flush_fuzz_telemetry(p, &h, events % FUZZ_TELEMETRY_EVERY);
    }

    FuzzReport {
        config: *cfg,
        completions: log.len(),
        events,
        digest: digest(&log),
        install_retries: h.stats().protocol.install_retries(),
        install_stalls: h.stats().protocol.install_stalls(),
        stats: h.stats().clone(),
        failure,
    }
}

/// FNV-1a over the completion stream in serialization order.
fn digest(log: &[Completion]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for c in log {
        mix(c.req);
        mix(c.core as u64);
        mix(c.block.0);
        mix(match c.class.kind {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
        });
        mix(c.value);
        mix(c.done_at.get());
    }
    hash
}

/// The result of shrinking a failing scenario with [`minimize_outcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum MinimizeOutcome {
    /// The input config does not fail; nothing to shrink.
    Clean(FuzzConfig),
    /// Shrinking finished; `config` still fails with `kind`.
    Minimized {
        config: FuzzConfig,
        kind: FuzzFailureKind,
    },
    /// The failure the caller asked for (`expected`) no longer
    /// reproduces on a fresh run — either the config is clean or it
    /// now fails with a *different* kind. Callers that previously
    /// unwrapped a failure out of the shrunk config would panic here;
    /// report this outcome instead.
    StoppedReproducing {
        config: FuzzConfig,
        expected: FuzzFailureKind,
        observed: Option<FuzzFailureKind>,
    },
}

impl MinimizeOutcome {
    /// The best config found, whatever the outcome.
    pub fn config(&self) -> FuzzConfig {
        match self {
            MinimizeOutcome::Clean(c) => *c,
            MinimizeOutcome::Minimized { config, .. } => *config,
            MinimizeOutcome::StoppedReproducing { config, .. } => *config,
        }
    }
}

/// Shrinks a failing scenario while it keeps failing **with the same
/// failure kind**: first the operation count, then the block set, then
/// the core count.
///
/// `expected` is the failure kind the caller observed earlier (e.g. in
/// a campaign report or a checkpoint record). If the fresh baseline run
/// does not reproduce that kind — possible under jitter configs, where
/// a shrunk stream reshuffles delivery timing — the function returns
/// [`MinimizeOutcome::StoppedReproducing`] instead of shrinking toward
/// an unrelated bug (or toward nothing, which is what used to panic
/// workers that unwrapped the failure out of the result).
///
/// Shrinking re-derives the access stream from the seed, so a smaller
/// scenario exercises a different (shorter) schedule — the reduction is
/// greedy and heuristic, not a strict subsequence, which is the usual
/// trade for seed-replayable fuzzing. Candidates that fail with a
/// *different* kind are rejected, mirroring `minimize_stream`.
pub fn minimize_outcome(cfg: &FuzzConfig, expected: Option<FuzzFailureKind>) -> MinimizeOutcome {
    let baseline = run_fuzz(cfg).failure;
    let kind = match (baseline.map(|f| f.kind), expected) {
        (None, None) => return MinimizeOutcome::Clean(*cfg),
        (None, Some(expected)) => {
            return MinimizeOutcome::StoppedReproducing {
                config: *cfg,
                expected,
                observed: None,
            }
        }
        (Some(observed), Some(expected)) if observed != expected => {
            return MinimizeOutcome::StoppedReproducing {
                config: *cfg,
                expected,
                observed: Some(observed),
            }
        }
        (Some(kind), _) => kind,
    };

    let still_fails = |cand: &FuzzConfig| run_fuzz(cand).failure.is_some_and(|f| f.kind == kind);
    let mut best = *cfg;
    loop {
        let mut improved = false;
        while best.ops > 4 {
            let cand = FuzzConfig {
                ops: best.ops / 2,
                ..best
            };
            if !still_fails(&cand) {
                break;
            }
            best = cand;
            improved = true;
        }
        while best.blocks > 1 {
            let cand = FuzzConfig {
                blocks: best.blocks - 1,
                ..best
            };
            if !still_fails(&cand) {
                break;
            }
            best = cand;
            improved = true;
        }
        while best.cores > 2 {
            let cand = FuzzConfig {
                cores: best.cores - 1,
                ..best
            };
            if !still_fails(&cand) {
                break;
            }
            best = cand;
            improved = true;
        }
        if !improved {
            return MinimizeOutcome::Minimized { config: best, kind };
        }
    }
}

/// Compatibility wrapper over [`minimize_outcome`]: shrinks against
/// whatever failure kind the baseline run exhibits (no expectation),
/// returning the input unchanged if it does not fail.
pub fn minimize(cfg: &FuzzConfig) -> FuzzConfig {
    minimize_outcome(cfg, None).config()
}

/// Delta-debugs a failing stream down to a (locally) minimal repro.
///
/// Unlike [`minimize`], which re-derives ever-shorter streams from the
/// seed, this shrinks the **concrete op list**: the result is a strict
/// subsequence of the input that [`replay`] (with the same `fault`, if
/// any) still drives to a failure of the same kind. Removal proceeds by
/// halving chunk sizes down to single ops, repeating until a fixpoint;
/// finally jitter is dropped if the failure survives without it.
///
/// Returns the input unchanged if it does not fail.
pub fn minimize_stream(file: &StreamFile, fault: Option<&PlantedFault>) -> StreamFile {
    let Some(baseline) = replay_with_fault(file, fault).failure else {
        return file.clone();
    };
    let still_fails = |cand: &StreamFile| {
        replay_with_fault(cand, fault)
            .failure
            .is_some_and(|f| f.kind == baseline.kind)
    };

    let mut best = file.clone();
    let mut chunk = (best.ops.len() / 2).max(1);
    loop {
        let mut improved = false;
        let mut start = 0;
        while start < best.ops.len() {
            let end = (start + chunk).min(best.ops.len());
            let mut cand = best.clone();
            cand.ops.drain(start..end);
            if still_fails(&cand) {
                best = cand;
                improved = true;
                // The ops after `start` shifted down; retry in place.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !improved {
            break;
        }
        if !improved {
            chunk = (chunk / 2).max(1);
        }
    }

    if best.jitter_max > 0 {
        let mut cand = best.clone();
        cand.jitter_max = 0;
        if still_fails(&cand) {
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_all_protocols() {
        for protocol in [
            ProtocolKind::Msi,
            ProtocolKind::Mesi,
            ProtocolKind::SMesi,
            ProtocolKind::SwiftDir,
        ] {
            let mut cfg = FuzzConfig::new(42, protocol);
            cfg.ops = 120;
            let report = run_fuzz(&cfg);
            assert!(
                report.ok(),
                "{protocol:?} seed 42 failed: {}",
                report.failure.unwrap()
            );
            assert_eq!(report.completions, 120);
        }
    }

    #[test]
    fn sharded_fuzz_is_clean_and_deterministic() {
        // The full audit stack (SWMR, directory superset, golden values)
        // holds with the directory sharded over four banks, under jitter,
        // with eight cores hammering blocks that span every bank.
        for protocol in [ProtocolKind::Mesi, ProtocolKind::SwiftDir] {
            let mut cfg = FuzzConfig::new(11, protocol);
            cfg.cores = 8;
            cfg.blocks = 16;
            cfg.ops = 200;
            cfg.banks = 4;
            let a = run_fuzz(&cfg);
            assert!(a.ok(), "{protocol:?}: {}", a.failure.unwrap());
            assert_eq!(a.completions, 200);
            let b = run_fuzz(&cfg);
            assert_eq!(a.digest, b.digest, "{protocol:?}");
            assert_eq!(a.events, b.events, "{protocol:?}");
        }
    }

    #[test]
    fn repeated_seed_is_bit_identical() {
        let mut cfg = FuzzConfig::new(1234, ProtocolKind::SwiftDir);
        cfg.ops = 150;
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert!(a.ok() && b.ok());
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn distinct_seeds_explore_distinct_schedules() {
        let a = run_fuzz(&FuzzConfig::new(1, ProtocolKind::Mesi));
        let b = run_fuzz(&FuzzConfig::new(2, ProtocolKind::Mesi));
        assert!(a.ok() && b.ok());
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn fuzz_fan_out_is_thread_count_invariant() {
        let configs: Vec<FuzzConfig> = ProtocolKind::ALL
            .into_iter()
            .flat_map(|p| {
                (0..3u64).map(move |seed| {
                    let mut c = FuzzConfig::new(seed, p);
                    c.ops = 60;
                    c
                })
            })
            .collect();
        let one = run_fuzz_many_threads(&configs, 1);
        let four = run_fuzz_many_threads(&configs, 4);
        assert_eq!(one.len(), configs.len());
        for (a, b) in one.iter().zip(&four) {
            assert!(a.ok(), "{:?}: {}", a.config, a.failure.as_ref().unwrap());
            assert_eq!(a.digest, b.digest, "{:?}", a.config);
            assert_eq!(a.events, b.events, "{:?}", a.config);
            assert_eq!(a.stats, b.stats, "{:?}", a.config);
        }
    }

    #[test]
    fn minimize_returns_clean_config_unchanged() {
        let mut cfg = FuzzConfig::new(5, ProtocolKind::Mesi);
        cfg.ops = 40;
        assert_eq!(minimize(&cfg), cfg);
    }

    #[test]
    fn stream_file_replay_is_bit_identical_to_run_fuzz() {
        for protocol in ProtocolKind::ALL {
            let mut cfg = FuzzConfig::new(77, protocol);
            cfg.ops = 120;
            let direct = run_fuzz(&cfg);
            let replayed = replay(&cfg.stream_file());
            assert!(direct.ok(), "{}", direct.failure.unwrap());
            assert!(replayed.ok(), "{}", replayed.failure.unwrap());
            assert_eq!(direct.digest, replayed.digest, "{protocol:?}");
            assert_eq!(direct.events, replayed.events, "{protocol:?}");
        }
    }

    #[test]
    fn planted_fault_is_caught_by_the_audit_stack() {
        let mut cfg = FuzzConfig::new(9, ProtocolKind::SwiftDir);
        cfg.ops = 120;
        let fault = PlantedFault {
            after_completions: 30,
            core: 1,
            addr: 0x40,
            value: 0xdead_beef,
        };
        let report = replay_with_fault(&cfg.stream_file(), Some(&fault));
        let failure = report
            .failure
            .expect("a rogue Modified line must be caught");
        assert_eq!(failure.kind, FuzzFailureKind::Invariant, "{failure}");
    }

    #[test]
    fn minimized_stream_replays_to_the_same_failure() {
        let mut cfg = FuzzConfig::new(9, ProtocolKind::SwiftDir);
        cfg.ops = 120;
        let fault = PlantedFault {
            after_completions: 30,
            core: 1,
            addr: 0x40,
            value: 0xdead_beef,
        };
        let file = cfg.stream_file();
        let original = replay_with_fault(&file, Some(&fault))
            .failure
            .expect("fails");

        let small = minimize_stream(&file, Some(&fault));
        assert!(
            small.ops.len() < file.ops.len(),
            "minimizer failed to shrink {} ops",
            file.ops.len()
        );
        // The emitted repro must survive a text round-trip and still
        // reproduce the same failure, deterministically.
        let text = small.to_text();
        let parsed = StreamFile::parse(&text).expect("repro parses");
        assert_eq!(parsed, small);
        let a = replay_with_fault(&parsed, Some(&fault))
            .failure
            .expect("still fails");
        let b = replay_with_fault(&parsed, Some(&fault))
            .failure
            .expect("still fails");
        assert_eq!(a.kind, original.kind);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.detail, b.detail, "repro must be deterministic");
    }

    #[test]
    fn minimize_stream_returns_clean_stream_unchanged() {
        let mut cfg = FuzzConfig::new(5, ProtocolKind::Mesi);
        cfg.ops = 30;
        let file = cfg.stream_file();
        assert_eq!(minimize_stream(&file, None), file);
    }
}
