//! Latency probes: per-access-class histograms.

use sim_engine::FxHashMap;

use sim_engine::Histogram;
use swiftdir_coherence::{AccessKind, Completion, L1State, LlcState};

/// The classification key a probe buckets completions under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassKey {
    /// Load or store.
    pub kind: AccessKind,
    /// L1 state when the request arrived.
    pub l1_before: L1State,
    /// LLC directory state when the request reached it (`None` = L1 hit).
    pub llc_before: Option<LlcState>,
    /// Whether the request carried the write-protection bit.
    pub write_protected: bool,
}

/// Collects latency histograms keyed by access class.
///
/// The paper's Figure 6 plots the CDF of `Load(L1I&L2S)` under MESI
/// against `Load_WP(L1I&L2S)` under SwiftDir; both are single
/// [`ClassKey`]s here, extracted with [`LatencyProbe::load_l1i_l2s`].
///
/// # Example
///
/// ```
/// use swiftdir_core::LatencyProbe;
/// let probe = LatencyProbe::new();
/// assert_eq!(probe.total_samples(), 0);
/// ```
#[derive(Debug, Default)]
pub struct LatencyProbe {
    hists: FxHashMap<ClassKey, Histogram>,
    cap: usize,
}

impl LatencyProbe {
    /// A probe with an exact-bucket range of 4096 cycles (larger latencies
    /// land in the overflow bucket).
    pub fn new() -> Self {
        LatencyProbe {
            hists: FxHashMap::default(),
            cap: 4096,
        }
    }

    /// Records one completion.
    pub fn record(&mut self, c: &Completion) {
        let key = ClassKey {
            kind: c.class.kind,
            l1_before: c.class.l1_before,
            llc_before: c.class.llc_before,
            write_protected: c.class.write_protected,
        };
        self.hists
            .entry(key)
            .or_insert_with(|| Histogram::new(self.cap))
            .record(c.latency().get());
    }

    /// The histogram for one exact class, if any samples were recorded.
    pub fn class(&self, key: &ClassKey) -> Option<&Histogram> {
        self.hists.get(key)
    }

    /// Merges every class matching `filter` into one histogram.
    pub fn merged<F: Fn(&ClassKey) -> bool>(&self, filter: F) -> Histogram {
        let mut out = Histogram::new(self.cap);
        for (k, h) in &self.hists {
            if filter(k) {
                out.merge(h);
            }
        }
        out
    }

    /// Figure 6's series: loads that found L1 Invalid and the LLC Shared.
    /// `write_protected` selects `Load_WP` (true) or plain `Load` (false).
    pub fn load_l1i_l2s(&self, write_protected: bool) -> Histogram {
        self.merged(|k| {
            k.kind == AccessKind::Load
                && k.l1_before == L1State::I
                && k.llc_before == Some(LlcState::S)
                && k.write_protected == write_protected
        })
    }

    /// All loads that missed the L1 (any LLC state).
    pub fn l1_miss_loads(&self) -> Histogram {
        self.merged(|k| k.kind == AccessKind::Load && k.llc_before.is_some())
    }

    /// Total samples across all classes.
    pub fn total_samples(&self) -> u64 {
        self.hists.values().map(Histogram::count).sum()
    }

    /// Iterates over `(class, histogram)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&ClassKey, &Histogram)> {
        self.hists.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::Cycle;
    use swiftdir_coherence::{AccessClass, ServedFrom};

    fn completion(kind: AccessKind, llc: Option<LlcState>, wp: bool, lat: u64) -> Completion {
        Completion {
            req: 0,
            core: 0,
            block: swiftdir_mmu::PhysAddr(0),
            issued_at: Cycle(100),
            done_at: Cycle(100 + lat),
            class: AccessClass {
                kind,
                l1_before: L1State::I,
                llc_before: llc,
                write_protected: wp,
            },
            served_from: ServedFrom::Llc,
            value: 0,
        }
    }

    #[test]
    fn records_and_classifies() {
        let mut p = LatencyProbe::new();
        p.record(&completion(AccessKind::Load, Some(LlcState::S), true, 17));
        p.record(&completion(AccessKind::Load, Some(LlcState::S), true, 17));
        p.record(&completion(AccessKind::Load, Some(LlcState::S), false, 17));
        p.record(&completion(AccessKind::Load, Some(LlcState::E), false, 43));
        assert_eq!(p.total_samples(), 4);
        let wp = p.load_l1i_l2s(true);
        assert_eq!(wp.count(), 2);
        assert_eq!(wp.median(), Some(17));
        let plain = p.load_l1i_l2s(false);
        assert_eq!(plain.count(), 1);
        let misses = p.l1_miss_loads();
        assert_eq!(misses.count(), 4);
        assert_eq!(misses.max(), Some(43));
    }

    #[test]
    fn merged_filter() {
        let mut p = LatencyProbe::new();
        p.record(&completion(
            AccessKind::Store,
            Some(LlcState::I),
            false,
            100,
        ));
        let stores = p.merged(|k| k.kind == AccessKind::Store);
        assert_eq!(stores.count(), 1);
        let loads = p.merged(|k| k.kind == AccessKind::Load);
        assert_eq!(loads.count(), 0);
    }
}
