//! SwiftDir system assembly: the full simulated machine.
//!
//! This crate wires the substrates together into the system of paper
//! Table V: per-core CPU models ([`swiftdir_cpu`]), per-core TLBs and the
//! shared memory manager ([`swiftdir_mmu`]), and the coherent two-level
//! cache hierarchy with DRAM ([`swiftdir_coherence`], [`swiftdir_mem`]).
//!
//! The memory port between a core and its L1 performs **address
//! translation**, which is where SwiftDir's write-protection bit joins the
//! physical address (paper §IV-B) — per the configured L1 architecture
//! (PIPT / VIPT / VIVT), translation latency lands on the hit path, is
//! overlapped, or is paid only on misses.
//!
//! * [`config`] — [`SystemConfig`] and its builder (Table V defaults).
//! * [`system`] — [`System`]: processes, thread programs, co-simulation.
//! * [`probe`] — [`LatencyProbe`]: per-access-class latency histograms
//!   (regenerates Figure 6).
//! * [`attack`] — the E/S covert- and side-channel attacks of §II-B, used
//!   to demonstrate that MESI leaks and SwiftDir does not.
//! * [`driver`] — [`ExperimentSet`]: fans independent experiment
//!   configurations over worker threads, results in input order.
//! * [`fuzz`] — the protocol stress fuzzer: seeded adversarial access
//!   streams over a shrunken hierarchy, audited by
//!   [`swiftdir_coherence::Checker`] after every event.
//! * [`obs`] — observability: the `SWIFTDIR_TRACE` /
//!   `SWIFTDIR_TRACE_LIMIT` knobs, trace-file construction, and
//!   [`RunStats::snapshot`]'s machine-readable JSON.
//!
//! # Example
//!
//! ```
//! use swiftdir_core::{System, SystemConfig};
//! use swiftdir_coherence::ProtocolKind;
//! use swiftdir_cpu::Instr;
//! use swiftdir_mmu::{MapFlags, Prot};
//!
//! let mut sys = System::new(
//!     SystemConfig::builder()
//!         .cores(2)
//!         .protocol(ProtocolKind::SwiftDir)
//!         .build(),
//! );
//! let pid = sys.spawn_process();
//! let va = sys.process_mut(pid).mmap(4096, Prot::READ, MapFlags::PRIVATE)?;
//! sys.run_thread_program(pid, 0, vec![Instr::load(va)]);
//! let stats = sys.run_to_completion();
//! assert_eq!(stats.loads(), 1);
//! # Ok::<(), swiftdir_mmu::MapError>(())
//! ```

pub mod attack;
pub mod campaign;
pub mod ckpt;
pub mod config;
pub mod diff;
pub mod driver;
pub mod explore;
pub mod fuzz;
pub mod obs;
pub mod probe;
pub mod stream;
pub mod system;

pub use attack::{CovertChannel, CovertOutcome, SideChannel, SideOutcome};
pub use campaign::{
    explore_grid_digest, run_explore_campaign_resumable, run_fuzz_campaign_resumable,
    CampaignOutcome, CancelToken, ExploreUnit,
};
pub use ckpt::{
    digest_set_fnv, fuzz_grid_digest, Checkpoint, CheckpointWriter, CkptHeader, UnitRecord,
    CKPT_SCHEMA,
};
pub use config::{SystemConfig, SystemConfigBuilder};
pub use diff::{
    architectural_diff, contended_stream, explored_equivalence, run_stream,
    swiftdir_mesi_cycle_identity, well_separated_stream, StreamRun,
};
pub use driver::{default_banks, default_threads, DriverReport, ExperimentSet, PointTiming};
pub use explore::{
    adaptive_split_depth, explore, explore_campaign, explore_parallel, explore_parallel_profiled,
    explore_parallel_threads, DepthProfile, DepthStats, ExploreConfig, ExploreError, ExploreMode,
    ExploreReport, EXPLORE_PHASES,
};
pub use fuzz::{
    minimize, minimize_outcome, minimize_stream, replay, replay_with_fault, run_fuzz,
    run_fuzz_campaign, run_fuzz_many, run_fuzz_many_threads, FuzzConfig, FuzzFailure,
    FuzzFailureKind, FuzzReport, MinimizeOutcome, PlantedFault, FUZZ_PHASES,
};
pub use obs::{repair_progress_tail, ProgressConfig, ProgressSink, TraceConfig, TraceFiles};
pub use probe::{ClassKey, LatencyProbe};
pub use stream::{issue_stream, AccessOp, StreamFile};
pub use system::{Process, ProcessId, RunStats, System, ThreadStats};

// The access taxonomy lives in the coherence crate; re-export the pieces a
// system user needs.
pub use swiftdir_coherence::{AccessClass, AccessKind, Completion, ServedFrom};
