//! Whole-system configuration (paper Table V).

use swiftdir_cache::L1Architecture;
use swiftdir_coherence::{HierarchyConfig, ProtocolKind};
use swiftdir_cpu::CpuModel;

/// Configuration of a simulated machine.
///
/// Defaults reproduce the paper's Table V: a 3 GHz out-of-order processor
/// (192-entry ROB, 32-entry LQ/SQ, width 8), 32 KB 4-way L1s with 1-cycle
/// round trip, a shared 2 MB-per-core 16-way L2 with 16-cycle round trip,
/// 64-entry fully-associative TLBs, and DDR3-1600 memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (Table V: 1–4).
    pub cores: usize,
    /// Coherence protocol.
    pub protocol: ProtocolKind,
    /// CPU model (`TimingSimpleCPU` or `DerivO3CPU`).
    pub cpu_model: CpuModel,
    /// L1 addressing architecture (paper §IV-B; default VIPT, the common
    /// modern choice).
    pub l1_architecture: L1Architecture,
    /// Data-TLB entries (Table V: 64, fully associative).
    pub tlb_entries: usize,
    /// Cycles per page-table level on a TLB miss (each level is roughly an
    /// LLC-latency access to the page-walk cache / LLC).
    pub walk_cycles_per_level: u64,
    /// OS cost of a demand-paging fault, in cycles.
    pub demand_fault_cycles: u64,
    /// OS cost of a copy-on-write fault, in cycles.
    pub cow_fault_cycles: u64,
    /// Address-sharded LLC/directory banks (power of two; see
    /// [`HierarchyConfig::banks`]).
    pub banks: usize,
    /// Per-hop mesh NoC latency in cycles (see
    /// [`HierarchyConfig::mesh_hop_latency`]).
    pub mesh_hop_latency: u64,
}

impl SystemConfig {
    /// A builder seeded with Table V defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// The hierarchy configuration implied by this system configuration.
    pub fn hierarchy(&self) -> HierarchyConfig {
        HierarchyConfig::table_v(self.cores, self.protocol)
            .with_banks(self.banks)
            .with_mesh_hop_latency(self.mesh_hop_latency)
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::builder().build()
    }
}

/// Builder for [`SystemConfig`].
#[derive(Debug, Clone, Copy)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        SystemConfigBuilder {
            cfg: SystemConfig {
                cores: 4,
                protocol: ProtocolKind::Mesi,
                cpu_model: CpuModel::DerivO3,
                l1_architecture: L1Architecture::Vipt,
                tlb_entries: 64,
                walk_cycles_per_level: 16,
                demand_fault_cycles: 1500,
                cow_fault_cycles: 2000,
                banks: crate::driver::default_banks(),
                mesh_hop_latency: 0,
            },
        }
    }
}

impl SystemConfigBuilder {
    /// Sets the core count.
    ///
    /// # Panics
    ///
    /// Panics at [`build`](Self::build) time if zero.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cfg.cores = cores;
        self
    }

    /// Sets the coherence protocol.
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.cfg.protocol = protocol;
        self
    }

    /// Sets the CPU model.
    pub fn cpu_model(mut self, model: CpuModel) -> Self {
        self.cfg.cpu_model = model;
        self
    }

    /// Sets the L1 addressing architecture.
    pub fn l1_architecture(mut self, arch: L1Architecture) -> Self {
        self.cfg.l1_architecture = arch;
        self
    }

    /// Sets the data-TLB capacity.
    pub fn tlb_entries(mut self, entries: usize) -> Self {
        self.cfg.tlb_entries = entries;
        self
    }

    /// Sets the per-level page-walk cost.
    pub fn walk_cycles_per_level(mut self, cycles: u64) -> Self {
        self.cfg.walk_cycles_per_level = cycles;
        self
    }

    /// Sets the demand-fault OS cost.
    pub fn demand_fault_cycles(mut self, cycles: u64) -> Self {
        self.cfg.demand_fault_cycles = cycles;
        self
    }

    /// Sets the copy-on-write OS cost.
    pub fn cow_fault_cycles(mut self, cycles: u64) -> Self {
        self.cfg.cow_fault_cycles = cycles;
        self
    }

    /// Shards the LLC/directory into `banks` address-interleaved banks.
    /// When not called, the builder starts from the `SWIFTDIR_BANKS`
    /// environment variable ([`driver::default_banks`](crate::driver))
    /// and falls back to a single monolithic bank.
    ///
    /// # Panics
    ///
    /// Panics at [`build`](Self::build) time unless a power of two.
    pub fn banks(mut self, banks: usize) -> Self {
        self.cfg.banks = banks;
        self
    }

    /// Sets the per-hop mesh NoC latency.
    pub fn mesh_hop_latency(mut self, cycles: u64) -> Self {
        self.cfg.mesh_hop_latency = cycles;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `tlb_entries` is zero.
    pub fn build(self) -> SystemConfig {
        assert!(self.cfg.cores >= 1, "at least one core");
        assert!(self.cfg.tlb_entries >= 1, "at least one TLB entry");
        assert!(
            self.cfg.banks.is_power_of_two(),
            "banks must be a power of two, got {}",
            self.cfg.banks
        );
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_defaults() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.protocol, ProtocolKind::Mesi);
        assert_eq!(cfg.cpu_model, CpuModel::DerivO3);
        assert_eq!(cfg.l1_architecture, L1Architecture::Vipt);
        assert_eq!(cfg.tlb_entries, 64);
    }

    #[test]
    fn builder_round_trip() {
        let cfg = SystemConfig::builder()
            .cores(2)
            .protocol(ProtocolKind::SwiftDir)
            .cpu_model(CpuModel::TimingSimple)
            .l1_architecture(L1Architecture::Vivt)
            .tlb_entries(8)
            .walk_cycles_per_level(10)
            .demand_fault_cycles(100)
            .cow_fault_cycles(200)
            .build();
        assert_eq!(cfg.cores, 2);
        assert_eq!(cfg.protocol, ProtocolKind::SwiftDir);
        assert_eq!(cfg.cpu_model, CpuModel::TimingSimple);
        assert_eq!(cfg.l1_architecture, L1Architecture::Vivt);
        assert_eq!(cfg.hierarchy().cores, 2);
    }

    #[test]
    fn banks_flow_into_the_hierarchy() {
        let cfg = SystemConfig::builder()
            .cores(64)
            .banks(8)
            .mesh_hop_latency(1)
            .build();
        let h = cfg.hierarchy();
        assert_eq!(h.banks, 8);
        assert_eq!(h.mesh_hop_latency, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_banks_rejected() {
        SystemConfig::builder().banks(6).build();
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        SystemConfig::builder().cores(0).build();
    }
}
