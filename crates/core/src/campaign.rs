//! Resumable, cancellable campaign execution over work-unit grids.
//!
//! [`run_fuzz_campaign_resumable`] and [`run_explore_campaign_resumable`]
//! lift the batch fan-outs (`run_fuzz_many`, `explore_parallel`) into
//! **streaming** work-unit runners: workers claim grid indices by atomic
//! counter exactly as [`ExperimentSet`](crate::ExperimentSet) does, but
//! finished results flow back over a *bounded* channel to a collector on
//! the calling thread, which journals each one to a
//! [`CheckpointWriter`] before acknowledging it. The bound is the
//! backpressure policy: when the journal (disk) is slower than the
//! workers, senders block on the channel instead of buffering unbounded
//! reports in memory.
//!
//! Determinism under resume: every work unit is self-contained and
//! seeded, so *which process* runs it — and at what thread count, in
//! what order, before or after a `kill -9` — cannot change its digest.
//! The campaign's final digest set ([`digest_set_fnv`]) folds `(index,
//! digest)` pairs in index order, so any partition of the grid into
//! resumed-from-journal and freshly-run units reproduces the
//! uninterrupted value bit for bit.
//!
//! Cancellation ([`CancelToken`]) is cooperative and unit-granular:
//! workers re-check the token before each claim, so a cancelled
//! campaign finishes (and journals) the units already in flight and
//! stops claiming new ones — exactly the state a resume picks up from.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use sim_engine::{FxHashSet, ProgressSampler};
use swiftdir_coherence::HierarchyConfig;

use crate::ckpt::{digest_set_fnv, CheckpointWriter, Fnv, UnitRecord};
use crate::driver::{self, observed};
use crate::explore::{explore_campaign, ExploreConfig};
use crate::fuzz::{run_fuzz_observed, FuzzConfig, FuzzReport};
use crate::stream::AccessOp;

/// A shared, clonable cancellation flag. Tripping it stops campaign
/// workers from claiming further units; in-flight units finish and are
/// journaled (the state a resume continues from).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag; idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The result of a (possibly resumed, possibly cancelled) campaign.
#[derive(Debug)]
pub struct CampaignOutcome<R> {
    /// Freshly computed reports in grid order; `None` for units skipped
    /// via the checkpoint or never claimed before cancellation. The
    /// fuzz runner additionally drops *clean* fresh reports (a
    /// [`FuzzReport`] retains full hierarchy statistics, ~100 KB — a
    /// million-seed soak must not hold them all), so a fuzz entry is
    /// `Some` exactly for fresh **failing** units; everything a clean
    /// unit contributes survives in its [`UnitRecord`]. The explore
    /// runner keeps every fresh report (grids are small and the
    /// coverage gate unions their transition matrices).
    pub reports: Vec<Option<R>>,
    /// Every *completed* unit — resumed and fresh — sorted by index.
    pub units: Vec<UnitRecord>,
    /// Units replayed from the checkpoint journal.
    pub resumed: usize,
    /// Units run in this invocation.
    pub fresh: usize,
    /// Whether the cancel token was tripped.
    pub cancelled: bool,
}

impl<R> CampaignOutcome<R> {
    /// True when every grid unit has a completed record.
    pub fn complete(&self) -> bool {
        self.units.len() == self.reports.len()
    }

    /// Completed units whose record carries a failure.
    pub fn failures(&self) -> usize {
        self.units.iter().filter(|u| u.failure.is_some()).count()
    }

    /// The campaign's final digest set (see [`digest_set_fnv`]); only
    /// meaningful once [`CampaignOutcome::complete`].
    pub fn digest_set_fnv(&self) -> u64 {
        digest_set_fnv(&self.units)
    }
}

/// [`run_fuzz_campaign`](crate::run_fuzz_campaign) with durability:
/// units already present in `resumed_units` (loaded from a
/// [`Checkpoint`](crate::ckpt::Checkpoint)) are skipped, every freshly
/// finished unit is journaled through `writer` before the campaign
/// acknowledges it, and `cancel` stops the claim loop between units.
///
/// Telemetry: the sampler (if any) is pre-seeded with the resumed
/// units' done/event counts, so a resumed heartbeat stream continues
/// monotonically from where the killed run stopped.
pub fn run_fuzz_campaign_resumable(
    grid: &[FuzzConfig],
    threads: Option<usize>,
    progress: Option<&Arc<ProgressSampler>>,
    writer: Option<&mut CheckpointWriter>,
    resumed_units: Vec<UnitRecord>,
    cancel: Option<&CancelToken>,
) -> io::Result<CampaignOutcome<FuzzReport>> {
    // Units outside the grid would mean a mismatched journal; the
    // config-digest check upstream prevents that, but stay defensive.
    let resumed: Vec<UnitRecord> = resumed_units
        .into_iter()
        .filter(|u| (u.index as usize) < grid.len())
        .collect();
    if let Some(p) = progress {
        let c = p.counters();
        c.add_total(grid.len() as u64);
        c.add_done(resumed.len() as u64);
        c.add_events(resumed.iter().map(|u| u.events).sum());
    }
    let pending = pending_indices(grid.len(), &resumed);
    let workers = threads
        .unwrap_or_else(driver::default_threads)
        .min(pending.len().max(1));

    let mut reports: Vec<Option<FuzzReport>> = Vec::with_capacity(grid.len());
    reports.resize_with(grid.len(), || None);
    let resumed_count = resumed.len();
    let mut units = resumed;
    let mut fresh = 0usize;
    let mut writer = writer;

    let pr = progress.map(Arc::as_ref);
    let run = |w: usize, idx: usize| {
        let report = observed(pr, w, || run_fuzz_observed(&grid[idx], pr));
        if let Some(p) = pr {
            p.counters().add_done(1);
        }
        report
    };
    let collect = |idx: usize, report: FuzzReport| -> io::Result<()> {
        let unit = UnitRecord {
            index: idx as u64,
            digest: report.digest,
            events: report.events,
            completions: report.completions as u64,
            failure: report.failure.as_ref().map(|f| {
                format!(
                    "{}: {}",
                    f.kind,
                    f.detail.lines().next().unwrap_or_default()
                )
            }),
            ..UnitRecord::default()
        };
        if let Some(w) = writer.as_deref_mut() {
            w.record(&unit)?;
        }
        units.push(unit);
        // Bounded memory over million-seed soaks: the ~100 KB of
        // hierarchy statistics in a clean report is never read again
        // (its digest/events/completions live on in the unit record),
        // so only failing reports are kept for the minimizer.
        if report.failure.is_some() {
            reports[idx] = Some(report);
        }
        fresh += 1;
        Ok(())
    };
    let cancelled = stream_pending(&pending, workers, cancel, run, collect)?;

    units.sort_by_key(|u| u.index);
    Ok(CampaignOutcome {
        reports,
        units,
        resumed: resumed_count,
        fresh,
        cancelled,
    })
}

/// One explore work unit: a hierarchy configuration plus the concrete
/// access stream whose schedule tree gets walked exhaustively.
#[derive(Debug, Clone)]
pub struct ExploreUnit {
    pub cfg: HierarchyConfig,
    pub stream: Vec<AccessOp>,
}

/// FNV fingerprint of an explore grid: the exploration budgets plus
/// every unit's protocol, core count, and concrete op list.
pub fn explore_grid_digest(units: &[ExploreUnit], ecfg: &ExploreConfig) -> u64 {
    let mut f = Fnv::new();
    f.mix(units.len() as u64);
    f.mix(ecfg.window);
    f.mix(ecfg.max_depth as u64);
    f.mix(ecfg.max_schedules);
    f.mix(ecfg.max_states as u64);
    f.mix(ecfg.sleep_sets as u64);
    f.mix(ecfg.check_invariants as u64);
    f.mix(ecfg.split_depth.map_or(u64::MAX, |d| d as u64));
    f.mix(ecfg.max_tasks as u64);
    for u in units {
        f.mix(u.cfg.protocol as u64);
        f.mix(u.cfg.cores as u64);
        f.mix(u.stream.len() as u64);
        for op in &u.stream {
            f.mix(op.at);
            f.mix(op.core as u64);
            f.mix(op.addr);
            f.mix(matches!(op.kind, swiftdir_coherence::AccessKind::Store) as u64);
            f.mix(op.wp as u64);
        }
    }
    f.0
}

/// The explore analogue of [`run_fuzz_campaign_resumable`]: each unit's
/// schedule tree is walked with the unit-internal decomposition at one
/// thread (the report is thread-count invariant by construction, so
/// this loses nothing), and units fan over the worker pool. Completed
/// trees are journaled with their [`ExploreReport::digest`]
/// (`crate::ExploreReport::digest`), schedule/step counters, and
/// boundary-task ledger.
///
/// Resume granularity is the *tree*: a unit killed mid-walk is re-run
/// from scratch on resume (its walk is deterministic, so the re-run
/// journals the identical record).
pub fn run_explore_campaign_resumable(
    grid: &[ExploreUnit],
    ecfg: &ExploreConfig,
    threads: Option<usize>,
    progress: Option<&Arc<ProgressSampler>>,
    writer: Option<&mut CheckpointWriter>,
    resumed_units: Vec<UnitRecord>,
    cancel: Option<&CancelToken>,
) -> io::Result<CampaignOutcome<crate::ExploreReport>> {
    let resumed: Vec<UnitRecord> = resumed_units
        .into_iter()
        .filter(|u| (u.index as usize) < grid.len())
        .collect();
    if let Some(p) = progress {
        let c = p.counters();
        c.add_total(grid.len() as u64);
        c.add_done(resumed.len() as u64);
        c.add_schedules(resumed.iter().map(|u| u.schedules).sum());
        c.add_steps(resumed.iter().map(|u| u.steps).sum());
    }
    let pending = pending_indices(grid.len(), &resumed);
    let workers = threads
        .unwrap_or_else(driver::default_threads)
        .min(pending.len().max(1));

    let mut reports: Vec<Option<crate::ExploreReport>> = Vec::with_capacity(grid.len());
    reports.resize_with(grid.len(), || None);
    let resumed_count = resumed.len();
    let mut units = resumed;
    let mut fresh = 0usize;
    let mut writer = writer;

    let pr = progress.map(Arc::as_ref);
    let run = |w: usize, idx: usize| {
        let u = &grid[idx];
        let report = observed(pr, w, || {
            explore_campaign(&u.cfg, &u.stream, ecfg, 1, progress).0
        });
        if let Some(p) = pr {
            p.counters().add_done(1);
        }
        report
    };
    let collect = |idx: usize, report: crate::ExploreReport| -> io::Result<()> {
        let unit = UnitRecord {
            index: idx as u64,
            digest: report.digest(),
            schedules: report.schedules,
            steps: report.steps,
            tasks: report.tasks,
            failure: report
                .error
                .as_ref()
                .map(|e| e.detail.lines().next().unwrap_or_default().to_string()),
            ..UnitRecord::default()
        };
        if let Some(w) = writer.as_deref_mut() {
            w.record(&unit)?;
        }
        units.push(unit);
        reports[idx] = Some(report);
        fresh += 1;
        Ok(())
    };
    let cancelled = stream_pending(&pending, workers, cancel, run, collect)?;

    units.sort_by_key(|u| u.index);
    Ok(CampaignOutcome {
        reports,
        units,
        resumed: resumed_count,
        fresh,
        cancelled,
    })
}

/// Grid indices without a completed record, in grid order.
fn pending_indices(total: usize, resumed: &[UnitRecord]) -> Vec<usize> {
    let done: FxHashSet<u64> = resumed.iter().map(|u| u.index).collect();
    (0..total)
        .filter(|i| !done.contains(&(*i as u64)))
        .collect()
}

/// The streaming work-unit pool: workers claim `pending` entries by
/// atomic index (re-checking `cancel` before every claim) and send
/// `(index, result)` over a channel bounded at `2 × workers`; `collect`
/// consumes them on the calling thread in completion order. A full
/// channel blocks the senders — that is the backpressure policy: at
/// most `2 × workers` un-journaled results exist at any instant.
///
/// Returns whether the token was tripped. A `collect` error (journal
/// write failure) aborts the workers and surfaces after the in-flight
/// results drain.
fn stream_pending<R, F, G>(
    pending: &[usize],
    workers: usize,
    cancel: Option<&CancelToken>,
    run: F,
    mut collect: G,
) -> io::Result<bool>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
    G: FnMut(usize, R) -> io::Result<()>,
{
    let is_cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    if workers <= 1 {
        for &idx in pending {
            if is_cancelled() {
                return Ok(true);
            }
            collect(idx, run(0, idx))?;
        }
        return Ok(is_cancelled());
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::sync_channel::<(usize, R)>(workers * 2);
    let mut first_err: Option<io::Error> = None;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let (next, abort, run) = (&next, &abort, &run);
            scope.spawn(move || loop {
                if abort.load(Ordering::Relaxed) || cancel.is_some_and(CancelToken::is_cancelled) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&idx) = pending.get(i) else {
                    break;
                };
                let r = run(w, idx);
                if tx.send((idx, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (idx, r) in rx {
            if first_err.is_some() {
                // Keep draining so blocked senders can exit; nothing
                // more is journaled after the first failure.
                continue;
            }
            if let Err(e) = collect(idx, r) {
                abort.store(true, Ordering::Relaxed);
                first_err = Some(e);
            }
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(is_cancelled()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftdir_coherence::ProtocolKind;

    fn grid(n: u64) -> Vec<FuzzConfig> {
        (0..n)
            .map(|seed| {
                let mut cfg = FuzzConfig::new(seed, ProtocolKind::SwiftDir);
                cfg.ops = 40;
                cfg
            })
            .collect()
    }

    #[test]
    fn uninterrupted_campaign_completes_and_digests() {
        let g = grid(6);
        let out = run_fuzz_campaign_resumable(&g, Some(2), None, None, Vec::new(), None).unwrap();
        assert!(out.complete() && !out.cancelled);
        assert_eq!((out.fresh, out.resumed), (6, 0));
        let serial =
            run_fuzz_campaign_resumable(&g, Some(1), None, None, Vec::new(), None).unwrap();
        assert_eq!(out.digest_set_fnv(), serial.digest_set_fnv());
    }

    #[test]
    fn resume_of_complete_campaign_runs_nothing() {
        let g = grid(4);
        let first = run_fuzz_campaign_resumable(&g, Some(1), None, None, Vec::new(), None).unwrap();
        let again = run_fuzz_campaign_resumable(&g, Some(4), None, None, first.units.clone(), None)
            .unwrap();
        assert_eq!(again.fresh, 0, "resume of a complete journal re-ran work");
        assert_eq!(again.resumed, 4);
        assert!(again.reports.iter().all(Option::is_none));
        assert_eq!(again.digest_set_fnv(), first.digest_set_fnv());
    }

    #[test]
    fn pre_cancelled_campaign_claims_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let g = grid(4);
        let out =
            run_fuzz_campaign_resumable(&g, Some(2), None, None, Vec::new(), Some(&token)).unwrap();
        assert!(out.cancelled && !out.complete());
        assert_eq!(out.fresh, 0);
    }

    #[test]
    fn partial_resume_matches_uninterrupted_digest_set() {
        let g = grid(8);
        let full = run_fuzz_campaign_resumable(&g, Some(1), None, None, Vec::new(), None).unwrap();
        // Pretend a kill preserved an arbitrary subset of the journal.
        for keep in [0usize, 1, 3, 7] {
            let partial: Vec<UnitRecord> = full.units.iter().take(keep).cloned().collect();
            for threads in [1, 4] {
                let resumed = run_fuzz_campaign_resumable(
                    &g,
                    Some(threads),
                    None,
                    None,
                    partial.clone(),
                    None,
                )
                .unwrap();
                assert!(resumed.complete());
                assert_eq!(resumed.fresh, 8 - keep);
                assert_eq!(
                    resumed.digest_set_fnv(),
                    full.digest_set_fnv(),
                    "keep={keep} threads={threads}"
                );
            }
        }
    }
}
