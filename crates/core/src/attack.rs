//! The E/S coherence timing-channel attacks (paper §II-B), reproduced as
//! executable experiments.
//!
//! Both attacks build shared memory through a shared library (two
//! processes mapping the same file pages), then modulate/observe per-line
//! coherence states:
//!
//! * [`CovertChannel`] — sender and receiver collude: bit 1 is encoded by
//!   leaving a line Exclusive (one sender thread touches it), bit 0 by
//!   making it Shared (two sender threads touch it). The receiver times a
//!   load: a directory-forwarded E-line is ~26 cycles slower than an
//!   LLC-served S-line.
//! * [`SideChannel`] — an attacker primes a victim-adjacent line to E and
//!   later probes it; if the victim accessed the line in between, it
//!   degraded to S and the probe is fast.
//!
//! Under SwiftDir both collapse: write-protected data loads I→S, every
//! probe is served from the LLC at the same latency, and decoding drops to
//! chance.

use sim_engine::{Cycle, DetRng};
use swiftdir_coherence::ProtocolKind;
use swiftdir_cpu::{CpuModel, MemOp};
use swiftdir_mmu::{LibraryImage, SegmentKind, VirtAddr, PAGE_SIZE};

use crate::config::SystemConfig;
use crate::system::{ProcessId, System};

/// Cache lines per page (64-byte lines, 4 KiB pages).
const LINES_PER_PAGE: u64 = PAGE_SIZE / 64;
/// Line 0 of each page is reserved for TLB/page-table warm-up probes.
const USABLE_LINES_PER_PAGE: u64 = LINES_PER_PAGE - 1;

/// The decode threshold: midway between the LLC-served latency (17) and
/// the owner-forwarded latency (43).
const THRESHOLD: u64 = 30;

/// Result of a covert-channel transmission.
#[derive(Debug, Clone)]
pub struct CovertOutcome {
    /// The bits the sender encoded.
    pub sent: Vec<bool>,
    /// The bits the receiver decoded.
    pub decoded: Vec<bool>,
    /// The receiver's measured latency per bit, in cycles.
    pub latencies: Vec<Cycle>,
}

impl CovertOutcome {
    /// Fraction of bits decoded correctly.
    pub fn accuracy(&self) -> f64 {
        if self.sent.is_empty() {
            return 0.0;
        }
        let correct = self
            .sent
            .iter()
            .zip(&self.decoded)
            .filter(|(a, b)| a == b)
            .count();
        correct as f64 / self.sent.len() as f64
    }

    /// Whether the channel leaked (accuracy well above coin-flipping).
    pub fn leaks(&self) -> bool {
        self.accuracy() > 0.75
    }
}

/// The E/S covert channel of paper §II-B.
///
/// # Example
///
/// ```
/// use swiftdir_core::CovertChannel;
/// use swiftdir_coherence::ProtocolKind;
///
/// let outcome = CovertChannel::new(ProtocolKind::Mesi).transmit_random(16, 7);
/// assert!(outcome.leaks(), "MESI leaks");
/// let outcome = CovertChannel::new(ProtocolKind::SwiftDir).transmit_random(16, 7);
/// assert!(!outcome.leaks(), "SwiftDir does not");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CovertChannel {
    protocol: ProtocolKind,
}

impl CovertChannel {
    /// A channel over a machine running `protocol`.
    pub fn new(protocol: ProtocolKind) -> Self {
        CovertChannel { protocol }
    }

    /// Transmits `bits` from the sender pair (cores 0 and 1) to the
    /// receiver (core 2) over shared-library memory.
    pub fn transmit(&self, bits: &[bool]) -> CovertOutcome {
        let mut sys = attack_system(self.protocol);
        let (sender, receiver) = colluding_processes(&mut sys, bits.len() as u64);

        let mut decoded = Vec::with_capacity(bits.len());
        let mut latencies = Vec::with_capacity(bits.len());
        for (i, &bit) in bits.iter().enumerate() {
            let (s_va, r_va) = (line_va(sender.base, i), line_va(receiver.base, i));
            warmup(&mut sys, &sender, &receiver, i);
            // Sender encodes.
            sys.timed_access(0, sender.pid, s_va, MemOp::Load);
            if !bit {
                // Bit 0: a second sender thread shares the line → S.
                sys.timed_access(1, sender.pid, s_va, MemOp::Load);
            }
            // Receiver decodes by timing.
            let lat = sys.timed_access(2, receiver.pid, r_va, MemOp::Load);
            latencies.push(lat);
            decoded.push(lat.get() >= THRESHOLD);
        }
        CovertOutcome {
            sent: bits.to_vec(),
            decoded,
            latencies,
        }
    }

    /// Transmits `n` deterministic pseudo-random bits from `seed`.
    pub fn transmit_random(&self, n: usize, seed: u64) -> CovertOutcome {
        let mut rng = DetRng::new(seed);
        let bits: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        self.transmit(&bits)
    }
}

/// Result of a side-channel run.
#[derive(Debug, Clone)]
pub struct SideOutcome {
    /// Whether the victim actually accessed the probed line, per trial.
    pub ground_truth: Vec<bool>,
    /// The attacker's inference, per trial.
    pub inferred: Vec<bool>,
    /// Probe latencies.
    pub latencies: Vec<Cycle>,
}

impl SideOutcome {
    /// Fraction of trials where the attacker inferred correctly.
    pub fn accuracy(&self) -> f64 {
        if self.ground_truth.is_empty() {
            return 0.0;
        }
        let correct = self
            .ground_truth
            .iter()
            .zip(&self.inferred)
            .filter(|(a, b)| a == b)
            .count();
        correct as f64 / self.ground_truth.len() as f64
    }

    /// Whether the attacker learned the victim's accesses.
    pub fn leaks(&self) -> bool {
        self.accuracy() > 0.75
    }
}

/// The access-detection side channel of paper §II-B: two colluding attack
/// processes infer whether a victim touched shared data.
#[derive(Debug, Clone, Copy)]
pub struct SideChannel {
    protocol: ProtocolKind,
}

impl SideChannel {
    /// A side channel on a machine running `protocol`.
    pub fn new(protocol: ProtocolKind) -> Self {
        SideChannel { protocol }
    }

    /// Runs one trial per entry of `victim_accesses`: the attacker primes
    /// line *i* (core 0), the victim (core 1) accesses it iff
    /// `victim_accesses[i]`, and the attacker probes it (core 2).
    pub fn run(&self, victim_accesses: &[bool]) -> SideOutcome {
        let mut sys = attack_system(self.protocol);
        let (attacker, victim) = colluding_processes(&mut sys, victim_accesses.len() as u64);

        let mut inferred = Vec::with_capacity(victim_accesses.len());
        let mut latencies = Vec::with_capacity(victim_accesses.len());
        for (i, &accessed) in victim_accesses.iter().enumerate() {
            let (a_va, v_va) = (line_va(attacker.base, i), line_va(victim.base, i));
            warmup(&mut sys, &attacker, &victim, i);
            // Prime: attacker's first thread makes the line E (MESI) or S
            // (SwiftDir WP data).
            sys.timed_access(0, attacker.pid, a_va, MemOp::Load);
            // Victim may access within the window.
            if accessed {
                sys.timed_access(1, victim.pid, v_va, MemOp::Load);
            }
            // Probe: fast ⇒ S ⇒ the victim shared the line.
            let lat = sys.timed_access(2, attacker.pid, a_va, MemOp::Load);
            latencies.push(lat);
            inferred.push(lat.get() < THRESHOLD);
        }
        SideOutcome {
            ground_truth: victim_accesses.to_vec(),
            inferred,
            latencies,
        }
    }

    /// Runs `n` trials with a deterministic pseudo-random victim pattern.
    pub fn run_random(&self, n: usize, seed: u64) -> SideOutcome {
        let mut rng = DetRng::new(seed);
        let pattern: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        self.run(&pattern)
    }
}

// ---------------------------------------------------------------------------

struct Mapping {
    pid: ProcessId,
    base: VirtAddr,
}

fn attack_system(protocol: ProtocolKind) -> System {
    System::new(
        SystemConfig::builder()
            .cores(4)
            .protocol(protocol)
            .cpu_model(CpuModel::TimingSimple)
            .build(),
    )
}

/// Two processes mapping the same shared library, with enough read-only
/// pages for `bits` one-line-per-bit slots.
fn colluding_processes(sys: &mut System, bits: u64) -> (Mapping, Mapping) {
    let pages = bits.div_ceil(USABLE_LINES_PER_PAGE).max(1);
    let lib = LibraryImage::synthetic("libchannel.so", 0, pages, 0);
    let p1 = sys.spawn_process();
    let p2 = sys.spawn_process();
    let (l1, file) = sys
        .process_mut(p1)
        .load_library(&lib, None)
        .expect("library mapping");
    let (l2, _) = sys
        .process_mut(p2)
        .load_library(&lib, Some(file))
        .expect("library mapping");
    let base1 = l1.base_of(SegmentKind::Rodata).expect("rodata present");
    let base2 = l2.base_of(SegmentKind::Rodata).expect("rodata present");
    (
        Mapping {
            pid: p1,
            base: base1,
        },
        Mapping {
            pid: p2,
            base: base2,
        },
    )
}

/// The virtual address of bit-slot `i`: line `1 + i % 63` of page
/// `i / 63` (line 0 of each page is the warm-up line).
fn line_va(base: VirtAddr, i: usize) -> VirtAddr {
    let page = i as u64 / USABLE_LINES_PER_PAGE;
    let line = 1 + (i as u64 % USABLE_LINES_PER_PAGE);
    VirtAddr(base.0 + page * PAGE_SIZE + line * 64)
}

/// Touches the warm-up line of bit-slot `i`'s page on every participating
/// core so page tables and TLBs are hot before any timed access — the
/// simulator analogue of the attacker's untimed warm-up loop.
fn warmup(sys: &mut System, a: &Mapping, b: &Mapping, i: usize) {
    let page = i as u64 / USABLE_LINES_PER_PAGE;
    let wa = VirtAddr(a.base.0 + page * PAGE_SIZE);
    let wb = VirtAddr(b.base.0 + page * PAGE_SIZE);
    sys.timed_access(0, a.pid, wa, MemOp::Load);
    sys.timed_access(1, a.pid, wa, MemOp::Load);
    sys.timed_access(1, b.pid, wb, MemOp::Load);
    sys.timed_access(2, b.pid, wb, MemOp::Load);
    sys.timed_access(2, a.pid, wa, MemOp::Load);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covert_channel_leaks_under_mesi() {
        let outcome = CovertChannel::new(ProtocolKind::Mesi).transmit_random(32, 1);
        assert!(
            outcome.accuracy() > 0.95,
            "MESI covert channel should be near-perfect: {}",
            outcome.accuracy()
        );
    }

    #[test]
    fn covert_channel_closed_under_swiftdir() {
        let outcome = CovertChannel::new(ProtocolKind::SwiftDir).transmit_random(32, 1);
        // Every probe sees the same LLC latency; the receiver decodes
        // everything as 0, which is chance-level on a balanced bitstream.
        assert!(
            outcome.accuracy() < 0.75,
            "SwiftDir must close the channel: {}",
            outcome.accuracy()
        );
        let distinct: std::collections::HashSet<u64> =
            outcome.latencies.iter().map(|c| c.get()).collect();
        assert_eq!(distinct.len(), 1, "all probes identical: {distinct:?}");
    }

    #[test]
    fn covert_channel_closed_under_smesi() {
        let outcome = CovertChannel::new(ProtocolKind::SMesi).transmit_random(32, 1);
        assert!(
            !outcome.leaks(),
            "S-MESI also protects: {}",
            outcome.accuracy()
        );
    }

    #[test]
    fn side_channel_leaks_under_mesi_only() {
        let mesi = SideChannel::new(ProtocolKind::Mesi).run_random(24, 3);
        assert!(mesi.accuracy() > 0.95, "MESI: {}", mesi.accuracy());
        let swift = SideChannel::new(ProtocolKind::SwiftDir).run_random(24, 3);
        assert!(!swift.leaks(), "SwiftDir: {}", swift.accuracy());
    }

    #[test]
    fn empty_transmission() {
        let outcome = CovertChannel::new(ProtocolKind::Mesi).transmit(&[]);
        assert_eq!(outcome.accuracy(), 0.0);
        assert!(!outcome.leaks());
    }
}
