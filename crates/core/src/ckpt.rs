//! Durable campaign checkpoints: the `swiftdir.ckpt.v1` journal.
//!
//! A checkpoint is an **append-only JSONL journal**: one header line
//! identifying the campaign (kind, grid digest, unit total), then one
//! line per *completed work unit* — its grid index, its completion
//! digest, and the counters the unit contributed. Units land in
//! completion order (arbitrary under work stealing); resume identifies
//! finished work by index, so order never matters.
//!
//! The format is built to survive `kill -9`:
//!
//! * every record is written and flushed as a single `line + '\n'`;
//! * only lines terminated by `'\n'` count — a torn trailing fragment
//!   (the write the kill interrupted) is detected and dropped;
//! * [`CheckpointWriter::resume`] truncates the file back to the last
//!   durable record before appending, so a journal repaired once stays
//!   parseable forever;
//! * the header's `config_digest` fingerprints the work-unit grid, so a
//!   checkpoint can never silently resume a *different* campaign.
//!
//! Digests are serialized as plain JSON integers — the in-tree parser
//! round-trips `u64` exactly (no float path), so checkpoints preserve
//! them bit for bit.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, Write};
use std::path::Path;

use sim_engine::Json;

use crate::fuzz::FuzzConfig;

/// Schema tag on the journal header line.
pub const CKPT_SCHEMA: &str = "swiftdir.ckpt.v1";

/// The journal header: what campaign this checkpoint belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptHeader {
    /// Work-unit kind: `"fuzz"` or `"explore"`.
    pub kind: String,
    /// Campaign name (matches the heartbeat stream's `campaign`).
    pub campaign: String,
    /// FNV fingerprint of the work-unit grid. Resume refuses a journal
    /// whose digest does not match the grid it is asked to resume.
    pub config_digest: u64,
    /// Total units in the grid.
    pub total: u64,
}

impl CkptHeader {
    fn to_json(&self) -> Json {
        Json::object([
            ("schema", Json::Str(CKPT_SCHEMA.to_string())),
            ("kind", Json::Str(self.kind.clone())),
            ("campaign", Json::Str(self.campaign.clone())),
            ("config_digest", Json::Uint(self.config_digest)),
            ("total", Json::Uint(self.total)),
        ])
    }

    fn parse(j: &Json) -> Result<CkptHeader, String> {
        let schema = j
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("header missing schema")?;
        if !schema.starts_with("swiftdir.ckpt.") {
            return Err(format!("not a checkpoint journal (schema {schema:?})"));
        }
        Ok(CkptHeader {
            kind: j
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            campaign: j
                .get("campaign")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            config_digest: j
                .get("config_digest")
                .and_then(Json::as_u64)
                .ok_or("header missing config_digest")?,
            total: j.get("total").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

/// One completed work unit: the durable record resume skips by.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitRecord {
    /// Index into the campaign's work-unit grid.
    pub index: u64,
    /// The unit's completion digest (fuzz report digest or explore
    /// report digest) — the value the final digest set is built from.
    pub digest: u64,
    /// Events the unit dispatched.
    pub events: u64,
    /// Completions the unit observed (fuzz) — zero for explore units.
    pub completions: u64,
    /// Schedules the unit walked (explore) — zero for fuzz units.
    pub schedules: u64,
    /// Steps the unit dispatched (explore) — zero for fuzz units.
    pub steps: u64,
    /// Boundary tasks the unit emitted (the explorer's boundary-task
    /// ledger) — zero for fuzz units.
    pub tasks: u64,
    /// The failure rendering, if the unit failed (failures are results
    /// too: a resumed campaign must not re-run them).
    pub failure: Option<String>,
}

impl UnitRecord {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("unit".to_string(), Json::Uint(self.index)),
            ("digest".to_string(), Json::Uint(self.digest)),
            ("events".to_string(), Json::Uint(self.events)),
            ("completions".to_string(), Json::Uint(self.completions)),
            ("schedules".to_string(), Json::Uint(self.schedules)),
            ("steps".to_string(), Json::Uint(self.steps)),
            ("tasks".to_string(), Json::Uint(self.tasks)),
        ];
        if let Some(f) = &self.failure {
            members.push(("failure".to_string(), Json::Str(f.clone())));
        }
        Json::Object(members)
    }

    fn parse(j: &Json) -> Result<UnitRecord, String> {
        Ok(UnitRecord {
            index: j
                .get("unit")
                .and_then(Json::as_u64)
                .ok_or("unit record missing index")?,
            digest: j
                .get("digest")
                .and_then(Json::as_u64)
                .ok_or("unit record missing digest")?,
            events: j.get("events").and_then(Json::as_u64).unwrap_or(0),
            completions: j.get("completions").and_then(Json::as_u64).unwrap_or(0),
            schedules: j.get("schedules").and_then(Json::as_u64).unwrap_or(0),
            steps: j.get("steps").and_then(Json::as_u64).unwrap_or(0),
            tasks: j.get("tasks").and_then(Json::as_u64).unwrap_or(0),
            failure: j.get("failure").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// A parsed journal: the header, the completed units (deduplicated by
/// index, last record wins), and how much of the file was durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    pub header: CkptHeader,
    /// Completed units sorted by index.
    pub units: Vec<UnitRecord>,
    /// Bytes of the journal text covered by durable records. Anything
    /// past this offset is a torn tail to truncate before appending.
    pub durable_bytes: usize,
    /// Whether a torn trailing fragment was dropped.
    pub torn: bool,
}

impl Checkpoint {
    /// Parses a journal, tolerating a torn trailing line (the record a
    /// `kill -9` interrupted mid-write). Returns an error only when the
    /// header itself is missing or malformed.
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        let mut durable = 0usize;
        let mut lines = JournalLines::new(text);
        let (header_line, header_end) = lines.next().ok_or("empty checkpoint journal")?;
        let header = Json::parse(header_line)
            .map_err(|e| format!("checkpoint header: {e}"))
            .and_then(|j| CkptHeader::parse(&j))?;
        durable = durable.max(header_end);

        let mut units: Vec<UnitRecord> = Vec::new();
        let mut torn = false;
        for (line, end) in lines {
            // `end == 0` marks an unterminated final fragment: even if
            // it parses, the trailing newline never hit the disk, so it
            // may be a partial write — drop it.
            let parsed = if end == 0 {
                None
            } else {
                Json::parse(line)
                    .ok()
                    .and_then(|j| UnitRecord::parse(&j).ok())
            };
            match parsed {
                Some(u) => {
                    units.push(u);
                    durable = end;
                }
                None => {
                    // First bad line: everything after it is not
                    // trustworthy. Stop and report the tail as torn.
                    torn = true;
                    break;
                }
            }
        }
        units.sort_by_key(|u| u.index);
        units.dedup_by_key(|u| u.index);
        Ok(Checkpoint {
            header,
            units,
            durable_bytes: durable,
            torn,
        })
    }

    /// Loads and parses `path`; `Ok(None)` when the file does not exist.
    pub fn load(path: &Path) -> io::Result<Option<Checkpoint>> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => f.read_to_string(&mut text).map(|_| ())?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        Checkpoint::parse(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// The campaign's digest set folded to one FNV value: `(index,
    /// digest)` pairs in index order. Bit-identical for any interleaving
    /// of resumes that completes the same grid.
    pub fn digest_set_fnv(&self) -> u64 {
        digest_set_fnv(&self.units)
    }
}

/// FNV-1a over `(index, digest)` of `units` in index order — the "final
/// digest set" a resumed campaign must reproduce bit for bit.
pub fn digest_set_fnv(units: &[UnitRecord]) -> u64 {
    let mut sorted: Vec<(u64, u64)> = units.iter().map(|u| (u.index, u.digest)).collect();
    sorted.sort_unstable();
    let mut f = Fnv::new();
    for (i, d) in sorted {
        f.mix(i);
        f.mix(d);
    }
    f.0
}

/// FNV fingerprint of a fuzz grid: every field of every config, in grid
/// order. Two grids resume-compatible iff their digests match.
pub fn fuzz_grid_digest(grid: &[FuzzConfig]) -> u64 {
    let mut f = Fnv::new();
    f.mix(grid.len() as u64);
    for cfg in grid {
        f.mix(cfg.seed);
        f.mix(cfg.protocol as u64);
        f.mix(cfg.cores as u64);
        f.mix(cfg.blocks as u64);
        f.mix(cfg.ops as u64);
        f.mix(cfg.jitter_max);
        f.mix(cfg.store_fraction.to_bits());
        f.mix(cfg.wp_fraction.to_bits());
        f.mix(cfg.banks as u64);
    }
    f.0
}

/// Appends durable [`UnitRecord`]s to a journal, one flushed line each.
#[derive(Debug)]
pub struct CheckpointWriter {
    out: BufWriter<File>,
    line: String,
}

impl CheckpointWriter {
    /// Starts a fresh journal at `path` (truncating any previous one)
    /// and writes the header.
    pub fn create(path: &Path, header: &CkptHeader) -> io::Result<CheckpointWriter> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let mut w = CheckpointWriter {
            out: BufWriter::new(File::create(path)?),
            line: String::new(),
        };
        w.write_json(&header.to_json())?;
        Ok(w)
    }

    /// Resumes the journal at `path`: parses it, verifies it belongs to
    /// the same campaign (`config_digest`), repairs a torn tail by
    /// truncating to the last durable record, and opens for append.
    /// Returns the writer plus the units already completed.
    ///
    /// A missing file degrades to [`CheckpointWriter::create`] with no
    /// completed units — "resume from nothing" is a fresh start.
    pub fn resume(
        path: &Path,
        header: &CkptHeader,
    ) -> io::Result<(CheckpointWriter, Vec<UnitRecord>)> {
        let Some(ckpt) = Checkpoint::load(path)? else {
            return Ok((CheckpointWriter::create(path, header)?, Vec::new()));
        };
        if ckpt.header.config_digest != header.config_digest {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint {} belongs to a different campaign \
                     (journal config_digest {:#x}, grid {:#x})",
                    path.display(),
                    ckpt.header.config_digest,
                    header.config_digest
                ),
            ));
        }
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(ckpt.durable_bytes as u64)?;
        let mut out = BufWriter::new(file);
        out.get_mut().seek(io::SeekFrom::End(0))?;
        Ok((
            CheckpointWriter {
                out,
                line: String::new(),
            },
            ckpt.units,
        ))
    }

    /// Journals one completed unit: a single line, written and flushed
    /// atomically enough that a kill leaves at most one torn tail.
    pub fn record(&mut self, unit: &UnitRecord) -> io::Result<()> {
        self.write_json(&unit.to_json())
    }

    fn write_json(&mut self, j: &Json) -> io::Result<()> {
        self.line.clear();
        j.write(&mut self.line);
        self.line.push('\n');
        self.out.write_all(self.line.as_bytes())?;
        self.out.flush()
    }
}

/// Iterates `(line, end_offset)` pairs; `end_offset` is the byte offset
/// just past the line's `'\n'`, or **0** for a final unterminated
/// fragment (which is never durable).
struct JournalLines<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> JournalLines<'a> {
    fn new(text: &'a str) -> Self {
        JournalLines { text, pos: 0 }
    }
}

impl<'a> Iterator for JournalLines<'a> {
    type Item = (&'a str, usize);

    fn next(&mut self) -> Option<(&'a str, usize)> {
        if self.pos >= self.text.len() {
            return None;
        }
        let rest = &self.text[self.pos..];
        match rest.find('\n') {
            Some(nl) => {
                let line = &rest[..nl];
                self.pos += nl + 1;
                Some((line, self.pos))
            }
            None => {
                self.pos = self.text.len();
                Some((rest, 0))
            }
        }
    }
}

pub(crate) struct Fnv(pub u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn mix(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftdir_coherence::ProtocolKind;

    fn header() -> CkptHeader {
        CkptHeader {
            kind: "fuzz".to_string(),
            campaign: "fuzz".to_string(),
            config_digest: 0xdead_beef_0bad_cafe,
            total: 3,
        }
    }

    fn unit(i: u64) -> UnitRecord {
        UnitRecord {
            index: i,
            digest: 0x1000 + i,
            events: 10 * i,
            completions: i,
            failure: (i == 2).then(|| "Invariant: planted".to_string()),
            ..UnitRecord::default()
        }
    }

    fn journal_text(units: &[UnitRecord]) -> String {
        let dir = std::env::temp_dir().join(format!("swiftdir-ckpt-test-{}", std::process::id()));
        let path = dir.join("j.ckpt");
        let mut w = CheckpointWriter::create(&path, &header()).unwrap();
        for u in units {
            w.record(u).unwrap();
        }
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        text
    }

    #[test]
    fn journal_round_trips() {
        let units: Vec<UnitRecord> = (0..3).map(unit).collect();
        let text = journal_text(&units);
        let ckpt = Checkpoint::parse(&text).unwrap();
        assert_eq!(ckpt.header, header());
        assert_eq!(ckpt.units, units);
        assert!(!ckpt.torn);
        assert_eq!(ckpt.durable_bytes, text.len());
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut_point() {
        // Truncating the journal at any byte must still parse to a
        // prefix of the completed units — never an error, never a
        // record the full journal does not contain.
        let units: Vec<UnitRecord> = (0..3).map(unit).collect();
        let text = journal_text(&units);
        let header_end = text.find('\n').unwrap() + 1;
        for cut in header_end..=text.len() {
            let ckpt =
                Checkpoint::parse(&text[..cut]).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert!(
                ckpt.units.iter().all(|u| units.contains(u)),
                "cut at {cut} invented a record"
            );
            assert!(ckpt.durable_bytes <= cut);
            // Re-parsing only the durable prefix is a fixpoint.
            let repaired = Checkpoint::parse(&text[..ckpt.durable_bytes]).unwrap();
            assert_eq!(repaired.units, ckpt.units);
            assert!(!repaired.torn, "repaired journal still torn at {cut}");
        }
    }

    #[test]
    fn resume_repairs_torn_tail_and_appends() {
        let dir = std::env::temp_dir().join(format!("swiftdir-ckpt-resume-{}", std::process::id()));
        let path = dir.join("j.ckpt");
        let mut w = CheckpointWriter::create(&path, &header()).unwrap();
        w.record(&unit(0)).unwrap();
        w.record(&unit(1)).unwrap();
        drop(w);
        // Simulate a kill mid-write: append half a record.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("{full}{{\"unit\":2,\"dig")).unwrap();

        let (mut w, done) = CheckpointWriter::resume(&path, &header()).unwrap();
        assert_eq!(done, vec![unit(0), unit(1)]);
        w.record(&unit(2)).unwrap();
        drop(w);

        let ckpt = Checkpoint::load(&path).unwrap().unwrap();
        assert_eq!(ckpt.units, vec![unit(0), unit(1), unit(2)]);
        assert!(!ckpt.torn);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_refuses_a_different_campaign() {
        let dir = std::env::temp_dir().join(format!("swiftdir-ckpt-refuse-{}", std::process::id()));
        let path = dir.join("j.ckpt");
        drop(CheckpointWriter::create(&path, &header()).unwrap());
        let other = CkptHeader {
            config_digest: 1,
            ..header()
        };
        let err = CheckpointWriter::resume(&path, &other).unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_set_is_order_invariant() {
        let a = vec![unit(0), unit(1), unit(2)];
        let b = vec![unit(2), unit(0), unit(1)];
        assert_eq!(digest_set_fnv(&a), digest_set_fnv(&b));
        assert_ne!(digest_set_fnv(&a), digest_set_fnv(&a[..2]));
    }

    #[test]
    fn grid_digest_separates_grids() {
        let mut grid: Vec<FuzzConfig> = (0..4)
            .map(|s| FuzzConfig::new(s, ProtocolKind::SwiftDir))
            .collect();
        let d = fuzz_grid_digest(&grid);
        assert_eq!(d, fuzz_grid_digest(&grid.clone()));
        grid[3].seed = 99;
        assert_ne!(d, fuzz_grid_digest(&grid));
        assert_ne!(d, fuzz_grid_digest(&grid[..3]));
    }
}
