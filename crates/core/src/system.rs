//! The simulated machine: processes, threads, and co-simulation.

use sim_engine::Cycle;
use swiftdir_cache::L1Architecture;
use swiftdir_coherence::{CoreRequest, Hierarchy, HierarchyStats, RequestId};
use swiftdir_cpu::{
    Core, CoreStats, CoreStatus, CpuModel, InOrderCore, Instr, InstrStream, MemOp, MemPort,
    OutOfOrderCore, Program,
};
use swiftdir_mem::MemStats;
use swiftdir_mmu::{
    Access, Ksm, KsmStats, LibraryImage, LoadedLibrary, MapError, MapFlags, MemoryManager, Prot,
    SpaceId, Tlb, TlbEntry, TlbStats, VirtAddr,
};

use crate::config::SystemConfig;
use crate::obs::{TraceConfig, TraceFiles};
use crate::probe::LatencyProbe;

/// Handle to a simulated process (one address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(pub u32);

/// Per-thread execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadStats {
    /// The core the thread ran on.
    pub core: usize,
    /// Retired-instruction statistics.
    pub cpu: CoreStats,
}

/// Statistics of one [`System::run_to_completion`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Per-thread statistics, in core order.
    pub threads: Vec<ThreadStats>,
    /// Coherence statistics accumulated so far (cumulative over the
    /// system's lifetime).
    pub hierarchy: HierarchyStats,
    /// DRAM statistics (cumulative).
    pub memory: MemStats,
}

impl RunStats {
    /// Total loads issued by cores (cumulative).
    pub fn loads(&self) -> u64 {
        self.hierarchy
            .event(swiftdir_coherence::CoherenceEvent::Load)
    }

    /// Total stores issued by cores (cumulative).
    pub fn stores(&self) -> u64 {
        self.hierarchy
            .event(swiftdir_coherence::CoherenceEvent::Store)
    }

    /// Wall-clock cycles of this run's region of interest: from the
    /// earliest thread start to the latest thread finish.
    pub fn roi_cycles(&self) -> u64 {
        let start = self
            .threads
            .iter()
            .map(|t| t.cpu.started_at)
            .min()
            .unwrap_or(Cycle::ZERO);
        let end = self
            .threads
            .iter()
            .map(|t| t.cpu.finished_at)
            .max()
            .unwrap_or(Cycle::ZERO);
        end.saturating_since(start).get()
    }

    /// Total instructions retired across threads.
    pub fn instructions(&self) -> u64 {
        self.threads.iter().map(|t| t.cpu.instructions).sum()
    }

    /// Aggregate IPC over the ROI (all threads' instructions / ROI cycles).
    pub fn ipc(&self) -> f64 {
        let cycles = self.roi_cycles();
        if cycles == 0 {
            0.0
        } else {
            self.instructions() as f64 / cycles as f64
        }
    }
}

struct CoreSlot {
    cpu: Option<Box<dyn Core>>,
    space: Option<SpaceId>,
    dtlb: Tlb,
}

/// The simulated machine (paper Table V).
///
/// Owns the memory manager (page tables, page cache, KSM), per-core TLBs,
/// the coherent cache hierarchy, and the CPU models, and co-simulates them
/// deterministically.
pub struct System {
    cfg: SystemConfig,
    mm: MemoryManager,
    hier: Hierarchy,
    slots: Vec<CoreSlot>,
    processes: Vec<SpaceId>,
    probe: LatencyProbe,
    trace: Option<TraceFiles>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cfg", &self.cfg)
            .field("processes", &self.processes.len())
            .field("now", &self.hier.now())
            .finish()
    }
}

impl System {
    /// Builds an idle machine. Honors the `SWIFTDIR_TRACE` /
    /// `SWIFTDIR_TRACE_LIMIT` environment knobs (see [`crate::obs`]):
    /// when set, the machine traces into the configured files until
    /// [`System::run_to_completion`] or [`System::finish_trace`] closes
    /// them.
    pub fn new(cfg: SystemConfig) -> Self {
        Self::with_trace(cfg, TraceConfig::from_env())
    }

    /// Builds an idle machine with an explicit trace configuration
    /// (bypassing the environment knobs).
    ///
    /// # Panics
    ///
    /// Panics if the trace-output files cannot be created.
    pub fn with_trace(cfg: SystemConfig, trace: TraceConfig) -> Self {
        let slots = (0..cfg.cores)
            .map(|_| CoreSlot {
                cpu: None,
                space: None,
                dtlb: Tlb::new(cfg.tlb_entries),
            })
            .collect();
        let mut hier = Hierarchy::new(cfg.hierarchy());
        let trace = match trace.build() {
            Ok(Some((tracer, files))) => {
                hier.set_tracer(tracer);
                Some(files)
            }
            Ok(None) => None,
            Err(e) => panic!("cannot create trace files: {e}"),
        };
        System {
            hier,
            mm: MemoryManager::new(),
            slots,
            processes: Vec::new(),
            probe: LatencyProbe::new(),
            trace,
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Creates a process (a fresh address space).
    pub fn spawn_process(&mut self) -> ProcessId {
        let space = self.mm.create_space();
        self.processes.push(space);
        ProcessId(self.processes.len() as u32 - 1)
    }

    /// A handle for manipulating `pid`'s address space.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not returned by [`System::spawn_process`].
    pub fn process_mut(&mut self, pid: ProcessId) -> Process<'_> {
        let space = self.processes[pid.0 as usize];
        Process { sys: self, space }
    }

    /// Starts a thread of `pid` on `core`, executing `program` (anything
    /// convertible into an instruction stream).
    ///
    /// # Panics
    ///
    /// Panics if the core is out of range or already running a thread.
    pub fn run_thread_program(&mut self, pid: ProcessId, core: usize, program: Vec<Instr>) {
        self.run_thread_stream(pid, core, Program::from_instrs(program).into_stream());
    }

    /// Starts a thread from an arbitrary [`InstrStream`] (for generated
    /// workloads that never materialize in memory).
    ///
    /// # Panics
    ///
    /// Panics if the core is out of range or already running a thread.
    pub fn run_thread_stream(
        &mut self,
        pid: ProcessId,
        core: usize,
        stream: impl InstrStream + 'static,
    ) {
        assert!(core < self.cfg.cores, "core {core} out of range");
        assert!(
            self.slots[core].cpu.is_none(),
            "core {core} already has a thread"
        );
        let start = self.hier.now();
        let cpu: Box<dyn Core> = match self.cfg.cpu_model {
            CpuModel::TimingSimple => Box::new(InOrderCore::new(stream, start)),
            CpuModel::DerivO3 => Box::new(OutOfOrderCore::new(stream, start)),
        };
        self.slots[core].cpu = Some(cpu);
        self.slots[core].space = Some(self.processes[pid.0 as usize]);
    }

    /// Runs every started thread to completion and drains the hierarchy.
    /// Returns per-thread and system statistics; finished threads are
    /// cleared so new ones can be started afterwards.
    ///
    /// # Panics
    ///
    /// Panics on deadlock (a thread waits on memory while no events are
    /// pending), which would indicate a protocol bug.
    pub fn run_to_completion(&mut self) -> RunStats {
        // Completion buffer reused across batches; `tick_into` appends
        // instead of returning a fresh vector per event time.
        let mut completions = Vec::new();
        loop {
            // 1. Let every runnable CPU make progress. Split the slot's
            // fields so the core, its TLB, and the shared hierarchy can
            // be borrowed side by side without moving anything out.
            for (i, slot) in self.slots.iter_mut().enumerate() {
                let CoreSlot { cpu, space, dtlb } = slot;
                let Some(cpu) = cpu.as_mut() else {
                    continue;
                };
                if !cpu.done() {
                    let space = space.expect("running thread has a space");
                    let mut port = SysPort {
                        core: i,
                        space,
                        cfg: &self.cfg,
                        mm: &mut self.mm,
                        hier: &mut self.hier,
                        dtlb,
                    };
                    let _status: CoreStatus = cpu.run(&mut port);
                }
            }

            // 2. Advance the hierarchy to its next event batch.
            match self.hier.next_event_time() {
                Some(t) => {
                    self.hier.tick_into(t, &mut completions);
                    for c in completions.drain(..) {
                        self.probe.record(&c);
                        if let Some(cpu) = self.slots[c.core].cpu.as_mut() {
                            cpu.on_mem_complete(c.req, c.done_at);
                        }
                    }
                }
                None => {
                    let all_done = self
                        .slots
                        .iter()
                        .all(|s| s.cpu.as_ref().is_none_or(|c| c.done()));
                    if all_done {
                        break;
                    }
                    unreachable!("deadlock: threads waiting with no pending events");
                }
            }
        }

        // Collect and clear finished threads.
        let mut threads = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(cpu) = slot.cpu.take() {
                threads.push(ThreadStats {
                    core: i,
                    cpu: cpu.stats(),
                });
                slot.space = None;
            }
        }
        let stats = RunStats {
            threads,
            hierarchy: self.hier.stats().clone(),
            memory: self.hier.mem_stats(),
        };
        if self.trace.is_some() {
            self.write_snapshot(&stats);
            self.finish_trace();
        }
        stats
    }

    /// Writes `stats`' snapshot to the trace's `.metrics.json` file (a
    /// no-op when tracing is off).
    fn write_snapshot(&self, stats: &RunStats) {
        if let Some(files) = &self.trace {
            std::fs::write(&files.metrics, stats.snapshot_pretty())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", files.metrics.display()));
        }
    }

    /// Flushes and closes the trace files, disabling further tracing.
    /// Idempotent; called automatically at the end of
    /// [`System::run_to_completion`]. Call it directly after
    /// [`System::timed_access`]-style experiments that never run a
    /// thread to completion.
    pub fn finish_trace(&mut self) {
        if let Err(e) = self.hier.finish_trace() {
            panic!("cannot finalize trace files: {e}");
        }
    }

    /// The output files of this system's trace, when tracing is on.
    pub fn trace_files(&self) -> Option<&TraceFiles> {
        self.trace.as_ref()
    }

    /// Performs one timed access from `core` on behalf of `pid` and runs
    /// the hierarchy to quiescence; returns the access latency in cycles.
    ///
    /// This is the measurement primitive the attack harness uses — the
    /// simulated equivalent of an `rdtsc`-fenced load.
    pub fn timed_access(&mut self, core: usize, pid: ProcessId, va: VirtAddr, op: MemOp) -> Cycle {
        let space = self.processes[pid.0 as usize];
        let mut dtlb = std::mem::replace(&mut self.slots[core].dtlb, Tlb::new(1));
        let at = self.hier.now();
        let token = {
            let mut port = SysPort {
                core,
                space,
                cfg: &self.cfg,
                mm: &mut self.mm,
                hier: &mut self.hier,
                dtlb: &mut dtlb,
            };
            port.issue(at, va, op)
        };
        self.slots[core].dtlb = dtlb;
        let completions = self.hier.run_until_idle();
        let mut latency = Cycle::ZERO;
        for c in &completions {
            self.probe.record(c);
            if c.req == token {
                latency = c.latency();
            }
        }
        latency
    }

    /// Runs a KSM merge pass over all processes (paper §IV-A1's second
    /// shared-memory producer) and flushes every TLB so the new
    /// write-protection bits take effect.
    pub fn run_ksm(&mut self) -> KsmStats {
        let stats = Ksm::new().run(&mut self.mm);
        for slot in &mut self.slots {
            slot.dtlb.flush();
        }
        stats
    }

    /// The latency probe accumulated over all runs.
    pub fn probe(&self) -> &LatencyProbe {
        &self.probe
    }

    /// Clears the latency probe (e.g. after a warm-up phase).
    pub fn reset_probe(&mut self) {
        self.probe = LatencyProbe::new();
    }

    /// The coherent hierarchy (for state probes in tests and experiments).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// The memory manager (for functional inspection).
    pub fn memory_manager(&mut self) -> &mut MemoryManager {
        &mut self.mm
    }

    /// Data-TLB statistics for `core`.
    pub fn tlb_stats(&self, core: usize) -> TlbStats {
        self.slots[core].dtlb.stats()
    }
}

/// Mutable handle to one process's address space (returned by
/// [`System::process_mut`]).
#[derive(Debug)]
pub struct Process<'a> {
    sys: &'a mut System,
    space: SpaceId,
}

impl Process<'_> {
    /// Anonymous `mmap` of `len` bytes.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the allocator.
    pub fn mmap(&mut self, len: u64, prot: Prot, flags: MapFlags) -> Result<VirtAddr, MapError> {
        self.sys.mm.mmap(self.space, len, prot, flags)
    }

    /// File-backed `mmap`.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the allocator.
    pub fn mmap_file(
        &mut self,
        file: u32,
        offset_pages: u64,
        len: u64,
        prot: Prot,
        flags: MapFlags,
    ) -> Result<VirtAddr, MapError> {
        self.sys
            .mm
            .mmap_file(self.space, file, offset_pages, len, prot, flags)
    }

    /// Loads a shared library into this process (paper §IV-A1's first
    /// shared-memory producer). Pass the file handle from a previous load
    /// to share page-cache frames with another process.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the allocator.
    pub fn load_library(
        &mut self,
        image: &LibraryImage,
        file_handle: Option<u32>,
    ) -> Result<(LoadedLibrary, u32), MapError> {
        swiftdir_mmu::load_library(&mut self.sys.mm, self.space, image, file_handle)
    }

    /// Functional (untimed) write; triggers CoW exactly like a store.
    ///
    /// # Errors
    ///
    /// Fails on protection violations or unmapped addresses.
    pub fn write(&mut self, va: VirtAddr, data: &[u8]) -> Result<(), swiftdir_mmu::TranslateError> {
        self.sys.mm.write(self.space, va, data)
    }

    /// Functional (untimed) read.
    ///
    /// # Errors
    ///
    /// Fails on protection violations or unmapped addresses.
    pub fn read(
        &mut self,
        va: VirtAddr,
        len: usize,
    ) -> Result<Vec<u8>, swiftdir_mmu::TranslateError> {
        self.sys.mm.read(self.space, va, len)
    }

    /// Whether `va` currently translates as write-protected.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn is_write_protected(
        &mut self,
        va: VirtAddr,
    ) -> Result<bool, swiftdir_mmu::TranslateError> {
        Ok(self
            .sys
            .mm
            .translate(self.space, va, Access::Read)?
            .write_protected)
    }
}

/// The per-core memory port: translation (where the WP bit joins the
/// request, per the configured L1 architecture) followed by injection into
/// the coherent hierarchy.
struct SysPort<'a> {
    core: usize,
    space: SpaceId,
    cfg: &'a SystemConfig,
    mm: &'a mut MemoryManager,
    hier: &'a mut Hierarchy,
    dtlb: &'a mut Tlb,
}

impl SysPort<'_> {
    /// Translates `va`, returning `(paddr, wp, extra_cycles)` where
    /// `extra_cycles` is the translation latency exposed to this access
    /// under the configured L1 architecture.
    fn translate(&mut self, va: VirtAddr, op: MemOp) -> (swiftdir_mmu::PhysAddr, bool, u64) {
        let arch: L1Architecture = self.cfg.l1_architecture;
        let vpn = va.vpn();

        // TLB lookup first; a store through a cached non-writable entry
        // must take the slow path (possible CoW).
        if let Some(entry) = self.dtlb.lookup(vpn) {
            let usable = op == MemOp::Load || entry.writable;
            if usable {
                let paddr = entry.pfn.at_offset(va.page_offset());
                return (paddr, entry.write_protected, arch.hit_translation_cycles(1));
            }
        }

        // TLB miss (or permission upgrade): full translation with fault
        // handling.
        let access = match op {
            MemOp::Load => Access::Read,
            MemOp::Store => Access::Write,
        };
        let t = self
            .mm
            .translate(self.space, va, access)
            .unwrap_or_else(|e| panic!("segfault on core {}: {e}", self.core));
        if t.faults > 0 {
            // The PTE changed (demand page or CoW): drop any stale entry.
            self.dtlb.shootdown(vpn);
        }
        let pte = self
            .mm
            .space(self.space)
            .page_table()
            .get(vpn)
            .expect("translate installed a PTE");
        self.dtlb.fill(TlbEntry {
            vpn,
            pfn: pte.pfn,
            writable: pte.writable,
            write_protected: t.write_protected,
        });

        let mut extra = t.walk_levels as u64 * self.cfg.walk_cycles_per_level;
        extra += t.faults as u64
            * if access == Access::Write && !t.write_protected && t.faults > 0 {
                // Heuristic: a write fault that ended writable was CoW-ish;
                // demand faults and CoW costs differ.
                self.cfg.cow_fault_cycles
            } else {
                self.cfg.demand_fault_cycles
            };

        // VIVT pays translation only on the L1-miss path; PIPT/VIPT pay
        // the walk before/alongside the L1 access (paper Figure 5).
        if arch == L1Architecture::Vivt {
            let l1_hit = self.hier.l1_state(self.core, t.paddr).load_hits();
            if l1_hit {
                extra = 0;
            }
        }
        (t.paddr, t.write_protected, extra)
    }
}

impl MemPort for SysPort<'_> {
    fn issue(&mut self, at: Cycle, vaddr: VirtAddr, op: MemOp) -> u64 {
        let (paddr, wp, extra) = self.translate(vaddr, op);
        let mut req = match op {
            MemOp::Load => CoreRequest::load(paddr),
            MemOp::Store => CoreRequest::store(paddr),
        };
        if wp {
            req = req.write_protected();
        }
        let id: RequestId = self.hier.issue_translated(at, extra, self.core, req);
        id
    }
}

// Re-exported so experiment code can name the access kinds without
// importing the cpu crate directly.
pub use swiftdir_cpu::MemOp as PortOp;

#[cfg(test)]
mod tests {
    use super::*;
    use swiftdir_coherence::{L1State, LlcState, ProtocolKind};

    fn small_system(protocol: ProtocolKind) -> System {
        System::new(
            SystemConfig::builder()
                .cores(4)
                .protocol(protocol)
                .cpu_model(CpuModel::TimingSimple)
                .build(),
        )
    }

    #[test]
    fn end_to_end_wp_bit_reaches_coherence() {
        // mmap read-only → PTE R/W=0 → translation WP → GETS_WP → S state.
        let mut sys = small_system(ProtocolKind::SwiftDir);
        let pid = sys.spawn_process();
        let va = sys
            .process_mut(pid)
            .mmap(4096, Prot::READ, MapFlags::PRIVATE)
            .unwrap();
        sys.run_thread_program(pid, 0, vec![Instr::load(va)]);
        let stats = sys.run_to_completion();
        assert_eq!(stats.loads(), 1);
        assert_eq!(
            stats
                .hierarchy
                .event(swiftdir_coherence::CoherenceEvent::GetsWp),
            1,
            "the WP bit must turn the miss into GETS_WP"
        );
        // The L1 line is S, not E.
        let paddr = sys
            .memory_manager()
            .translate(SpaceId(0), va, Access::Read)
            .unwrap()
            .paddr;
        assert_eq!(sys.hierarchy().l1_state(0, paddr), L1State::S);
        assert_eq!(sys.hierarchy().llc_state(paddr), LlcState::S);
    }

    #[test]
    fn heap_data_stays_exclusive_under_swiftdir() {
        let mut sys = small_system(ProtocolKind::SwiftDir);
        let pid = sys.spawn_process();
        let va = sys
            .process_mut(pid)
            .mmap(4096, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .unwrap();
        sys.run_thread_program(pid, 0, vec![Instr::load(va)]);
        let stats = sys.run_to_completion();
        assert_eq!(
            stats
                .hierarchy
                .event(swiftdir_coherence::CoherenceEvent::Gets),
            1,
            "heap loads use plain GETS"
        );
        let paddr = sys
            .memory_manager()
            .translate(SpaceId(0), va, Access::Read)
            .unwrap()
            .paddr;
        assert_eq!(sys.hierarchy().l1_state(0, paddr), L1State::E);
    }

    #[test]
    fn two_threads_roi_and_ipc() {
        let mut sys = small_system(ProtocolKind::Mesi);
        let pid = sys.spawn_process();
        let va = sys
            .process_mut(pid)
            .mmap(64 * 1024, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .unwrap();
        let prog0: Vec<Instr> = (0..64)
            .map(|i| Instr::load(VirtAddr(va.0 + i * 64)))
            .collect();
        let prog1: Vec<Instr> = (0..64).map(|_| Instr::compute(2)).collect();
        sys.run_thread_program(pid, 0, prog0);
        sys.run_thread_program(pid, 1, prog1);
        let stats = sys.run_to_completion();
        assert_eq!(stats.threads.len(), 2);
        assert_eq!(stats.instructions(), 128);
        assert!(stats.roi_cycles() > 0);
        assert!(stats.ipc() > 0.0);
        // The memory-bound thread dominates the ROI.
        let mem_thread = &stats.threads[0];
        assert!(mem_thread.cpu.cycles() >= 64, "64 loads take time");
    }

    #[test]
    fn cores_are_reusable_after_completion() {
        let mut sys = small_system(ProtocolKind::Mesi);
        let pid = sys.spawn_process();
        let va = sys
            .process_mut(pid)
            .mmap(4096, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .unwrap();
        sys.run_thread_program(pid, 0, vec![Instr::load(va)]);
        sys.run_to_completion();
        // Second phase on the same core.
        sys.run_thread_program(pid, 0, vec![Instr::store(va)]);
        let stats = sys.run_to_completion();
        assert_eq!(stats.threads.len(), 1);
        assert_eq!(stats.stores(), 1);
    }

    #[test]
    fn timed_access_measures_coherence_latency() {
        let mut sys = small_system(ProtocolKind::SwiftDir);
        let pid = sys.spawn_process();
        let va = sys
            .process_mut(pid)
            .mmap(4096, Prot::READ, MapFlags::PRIVATE)
            .unwrap();
        // Cold access (demand fault + page walk + DRAM).
        let cold = sys.timed_access(0, pid, va, MemOp::Load);
        // Warm L1 hit.
        let hit = sys.timed_access(0, pid, va, MemOp::Load);
        // Cross-core: warm core 1's TLB on a different line first, then
        // measure the coherence latency of the S-state line: 17 cycles.
        sys.timed_access(1, pid, VirtAddr(va.0 + 128), MemOp::Load);
        let remote = sys.timed_access(1, pid, va, MemOp::Load);
        assert!(
            cold > remote,
            "cold miss slower than LLC hit: {cold} vs {remote}"
        );
        assert_eq!(hit, Cycle(1));
        assert_eq!(remote, Cycle(17));
    }

    #[test]
    fn tlb_caches_translations() {
        let mut sys = small_system(ProtocolKind::Mesi);
        let pid = sys.spawn_process();
        let va = sys
            .process_mut(pid)
            .mmap(4096, Prot::READ, MapFlags::PRIVATE)
            .unwrap();
        sys.timed_access(0, pid, va, MemOp::Load);
        sys.timed_access(0, pid, va, MemOp::Load);
        let tlb = sys.tlb_stats(0);
        assert_eq!(tlb.misses, 1);
        assert_eq!(tlb.hits, 1);
    }

    #[test]
    fn ksm_merge_makes_loads_wp() {
        let mut sys = small_system(ProtocolKind::SwiftDir);
        let p1 = sys.spawn_process();
        let p2 = sys.spawn_process();
        let va1 = sys
            .process_mut(p1)
            .mmap(4096, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .unwrap();
        let va2 = sys
            .process_mut(p2)
            .mmap(4096, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .unwrap();
        sys.process_mut(p1).write(va1, b"identical page").unwrap();
        sys.process_mut(p2).write(va2, b"identical page").unwrap();
        let merged = sys.run_ksm();
        assert_eq!(merged.merged, 1);
        // Loads of the merged page now carry the WP bit → GETS_WP → S.
        sys.timed_access(0, p1, va1, MemOp::Load);
        assert_eq!(
            sys.hierarchy()
                .stats()
                .event(swiftdir_coherence::CoherenceEvent::GetsWp),
            1
        );
    }

    #[test]
    fn shared_library_cross_process_llc_service() {
        // Two processes, same library; under SwiftDir the second process's
        // read of a page the first already cached is served from the LLC in
        // 17 cycles (no forwarding).
        let mut sys = small_system(ProtocolKind::SwiftDir);
        let p1 = sys.spawn_process();
        let p2 = sys.spawn_process();
        let lib = LibraryImage::synthetic("libshared.so", 2, 2, 0);
        let (l1, file) = sys.process_mut(p1).load_library(&lib, None).unwrap();
        let (l2, _) = sys.process_mut(p2).load_library(&lib, Some(file)).unwrap();
        let ro1 = l1.base_of(swiftdir_mmu::SegmentKind::Rodata).unwrap();
        let ro2 = l2.base_of(swiftdir_mmu::SegmentKind::Rodata).unwrap();
        sys.timed_access(0, p1, ro1, MemOp::Load);
        // Warm core 1's translation on a neighbouring line, then measure.
        sys.timed_access(1, p2, VirtAddr(ro2.0 + 128), MemOp::Load);
        let remote = sys.timed_access(1, p2, ro2, MemOp::Load);
        assert_eq!(remote, Cycle(17), "LLC-served shared-library read");
    }

    #[test]
    fn mesi_shared_library_is_forwarded_and_slow() {
        // Same scenario as above under MESI: the first toucher holds E, so
        // the cross-process read is owner-forwarded (the exploitable path).
        let mut sys = small_system(ProtocolKind::Mesi);
        let p1 = sys.spawn_process();
        let p2 = sys.spawn_process();
        let lib = LibraryImage::synthetic("libshared.so", 1, 1, 0);
        let (l1, file) = sys.process_mut(p1).load_library(&lib, None).unwrap();
        let (l2, _) = sys.process_mut(p2).load_library(&lib, Some(file)).unwrap();
        let ro1 = l1.base_of(swiftdir_mmu::SegmentKind::Rodata).unwrap();
        let ro2 = l2.base_of(swiftdir_mmu::SegmentKind::Rodata).unwrap();
        sys.timed_access(0, p1, ro1, MemOp::Load);
        sys.timed_access(1, p2, VirtAddr(ro2.0 + 128), MemOp::Load);
        let remote = sys.timed_access(1, p2, ro2, MemOp::Load);
        assert_eq!(remote, Cycle(17 + 26), "the exploitable E-state path");
    }

    #[test]
    #[should_panic(expected = "segfault")]
    fn unmapped_access_panics() {
        let mut sys = small_system(ProtocolKind::Mesi);
        let pid = sys.spawn_process();
        sys.timed_access(0, pid, VirtAddr(0xdead_0000), MemOp::Load);
    }

    #[test]
    #[should_panic(expected = "already has a thread")]
    fn double_thread_on_core_panics() {
        let mut sys = small_system(ProtocolKind::Mesi);
        let pid = sys.spawn_process();
        sys.run_thread_program(pid, 0, vec![Instr::compute(1)]);
        sys.run_thread_program(pid, 0, vec![Instr::compute(1)]);
    }
}
