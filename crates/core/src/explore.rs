//! Bounded-exhaustive schedule exploration with invariant checking.
//!
//! [`explore`] walks the tree of event schedules a concrete access
//! stream can produce: at every step the hierarchy exposes its frontier
//! of deliverable messages ([`Hierarchy::frontier_choices`], per-link
//! FIFO heads within a time window), the explorer dispatches one choice,
//! runs the [`Checker`], and recurses. Two reductions keep the walk
//! tractable:
//!
//! * **state-hash pruning** — [`Hierarchy::state_digest`] is a
//!   time-shift-invariant digest of the architectural *and* timing
//!   future of the machine; a revisited digest means every schedule
//!   suffix from here was already walked, so the subtree is cut. The
//!   walker reads the incrementally maintained digest
//!   ([`Hierarchy::state_digest_cached`]), which is bit-identical to a
//!   full rescan but only rehashes cache sets the last step dirtied.
//! * **sleep sets** — after exploring choice `a` at a node, sibling
//!   subtrees need not re-deliver `a` first unless an intervening
//!   dispatch is dependent on it (same block, same core, shared DRAM
//!   timing, or an LLC set collision). This is the classic partial-order
//!   sleep-set reduction keyed on per-block independence; it is
//!   conservative but heuristic (independence is judged from static
//!   event attributes), so it can be disabled per run — the
//!   `sleep_set_reduction_preserves_outcomes` test cross-checks the two
//!   modes against each other.
//!
//! # Backtracking, not snapshotting
//!
//! The default walker ([`ExploreMode::Undo`]) owns **one** hierarchy for
//! the whole walk: each step records a compact undo frame
//! ([`Hierarchy::enable_undo`]) and the walker rewinds it in place
//! ([`Hierarchy::undo_to`]) when the subtree is done, so interior nodes
//! never pay for a full-machine [`Hierarchy::fork`]. The clone-and-
//! descend walker survives as [`ExploreMode::Fork`] — a differential
//! oracle: both modes must produce bit-identical reports, and the
//! `undo_and_fork_walkers_agree_bitwise` test (plus the
//! `--smoke` oracle run in CI) holds them to it.
//!
//! # Decomposition and parallelism
//!
//! The walk is decomposed at a frontier depth
//! ([`ExploreConfig::split_depth`]) — by default derived from the
//! root's measured branching factor ([`adaptive_split_depth`]), so wide
//! frontiers split shallow and narrow ones split deep instead of
//! serializing behind a fixed boundary: a *spine* walker explores every
//! node above the boundary, and each boundary node roots an independent
//! *task* with a private digest table, private budgets, and the exact
//! sleep set the serial walk would hand it. Tasks are fanned over
//! worker threads by work stealing ([`ExperimentSet::run_owned`]) with
//! one bounded fork per task, or run inline on the spine's own
//! hierarchy when `threads == 1` (zero forks end to end in undo mode).
//! Task reports merge **in spine emission order**, so the report is
//! bit-identical for every thread count — [`explore`] *is*
//! [`explore_parallel_threads`] with one thread. Cross-task revisits
//! are only pruned within a task, never across tasks; the pure serial
//! single-table walk remains available via
//! `split_depth: Some(usize::MAX)` (it prunes more, so its `timings`
//! set can be a subset).
//!
//! Every leaf (drained queue) contributes its architectural outcome
//! (completion values + final golden memory), its timing outcome, its
//! per-request latency, and its transition-coverage matrices to the
//! [`ExploreReport`].

use std::collections::BTreeMap;
use std::sync::Arc;

use sim_engine::{
    Cycle, FxHashMap, FxHashSet, Json, MemGauge, Metric, MetricsRegistry, ProgressSampler,
};
use swiftdir_coherence::{
    Checker, Choice, Completion, Hierarchy, HierarchyConfig, ObservedCoverage, RequestId,
};

use crate::driver::{self, ExperimentSet};
use crate::stream::{issue_stream, AccessOp};

/// Phase names an explore campaign's telemetry attributes wall time to:
/// `spine` (the serial above-boundary walk — which includes inline
/// boundary tasks on a single thread, see DESIGN.md §12), `tasks`
/// (deferred boundary subtrees on the worker pool), and `merge`
/// (folding per-walker reports and profiles).
pub const EXPLORE_PHASES: [&str; 3] = ["spine", "tasks", "merge"];

/// Nodes between a walker's telemetry flushes (step/schedule deltas,
/// seen-table / undo-log / slab gauges, one sampler tick).
const EXPLORE_TELEMETRY_EVERY: u64 = 1024;

/// How the walker restores a parent node's state after a subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// Mutate one hierarchy in place and rewind each step through the
    /// undo log ([`Hierarchy::undo_to`]). The default: no per-step
    /// forks, no per-leaf full-state rescans.
    Undo,
    /// Fork the hierarchy at every step and discard the child
    /// afterwards. Kept as a differential oracle for the undo walker —
    /// both modes must produce bit-identical reports.
    Fork,
}

/// Budgets and feature toggles for one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Frontier time window: only events within `window` cycles of the
    /// earliest deliverable one are offered as choices. Larger windows
    /// model laggier networks (more reorderings) at exponential cost.
    pub window: u64,
    /// Maximum schedule length before the path is abandoned as
    /// runaway (a livelock guard, not a correctness bound).
    pub max_depth: usize,
    /// Stop after this many complete schedules (per task).
    pub max_schedules: u64,
    /// Stop when a state-digest table reaches this size (per task).
    pub max_states: usize,
    /// Enable the sleep-set partial-order reduction.
    pub sleep_sets: bool,
    /// Run the [`Checker`] after every dispatched event.
    pub check_invariants: bool,
    /// Parent-state restoration strategy (see [`ExploreMode`]).
    pub mode: ExploreMode,
    /// Frontier depth at which subtrees become independent tasks (the
    /// work-stealing grain). `None` (the default) derives the depth
    /// from the root's measured branching factor — see
    /// [`adaptive_split_depth`]. `Some(usize::MAX)` disables
    /// decomposition: one walker, one digest table — the pure serial
    /// semantics.
    pub split_depth: Option<usize>,
    /// Spine nodes become at most this many parallel tasks; boundary
    /// nodes past the cap are explored inline by the spine
    /// (deterministically — the cutoff depends only on spine DFS
    /// order), bounding outstanding hierarchy forks regardless of
    /// frontier breadth. Cap hits are counted in
    /// [`ExploreReport::task_cap_hits`] and warned about — never
    /// silent.
    pub max_tasks: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            window: 48,
            max_depth: 4096,
            max_schedules: 250_000,
            max_states: 1 << 21,
            sleep_sets: true,
            check_invariants: true,
            mode: ExploreMode::Undo,
            split_depth: None,
            max_tasks: 4096,
        }
    }
}

/// Picks the decomposition depth from the root node's branching factor:
/// the shallowest frontier depth whose expected boundary-node count
/// (`branching^depth`) reaches [`SPLIT_TARGET_TASKS`], clamped to
/// [`MAX_ADAPTIVE_SPLIT_DEPTH`]. Wide frontiers split shallow (depth 1
/// already yields enough tasks); narrow frontiers split deeper instead
/// of silently serializing behind a fixed depth-2 boundary. A root with
/// at most one choice keeps the historical depth of 2 — deeper
/// frontiers usually widen once the first events deliver.
///
/// The depth depends only on the root state (never on the thread
/// count), so the decomposition — and therefore the merged report — is
/// identical for every worker count.
pub fn adaptive_split_depth(branching: usize) -> usize {
    const SPLIT_TARGET_TASKS: u64 = 64;
    const MAX_ADAPTIVE_SPLIT_DEPTH: usize = 6;
    if branching <= 1 {
        return 2;
    }
    let mut width = 1u64;
    for depth in 1..=MAX_ADAPTIVE_SPLIT_DEPTH {
        width = width.saturating_mul(branching as u64);
        if width >= SPLIT_TARGET_TASKS {
            return depth;
        }
    }
    MAX_ADAPTIVE_SPLIT_DEPTH
}

/// A violation (protocol error, invariant breach, or stuck leaf) found
/// on one explored schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreError {
    /// Human-readable description.
    pub detail: String,
    /// The schedule that produced it, as the event-seq choices taken
    /// from the root (replayable via [`Hierarchy::try_step_choice`]).
    pub schedule: Vec<u64>,
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on schedule {:?}", self.detail, self.schedule)
    }
}

/// The result of one bounded-exhaustive exploration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExploreReport {
    /// Complete schedules walked to quiescence.
    pub schedules: u64,
    /// Events dispatched across all schedules (tree edges).
    pub steps: u64,
    /// Subtrees cut because their state digest was already visited.
    pub pruned: u64,
    /// Choices skipped by the sleep-set reduction.
    pub sleep_skipped: u64,
    /// Boundary subtrees handed off as decomposition tasks (the
    /// explorer's boundary-task ledger; identical at every thread
    /// count).
    pub tasks: u64,
    /// Boundary subtrees past [`ExploreConfig::max_tasks`] that ran
    /// inline on the spine instead of fanning out. Non-zero means the
    /// tail of the walk was serialized — reported loudly, never silent.
    pub task_cap_hits: u64,
    /// Longest schedule seen.
    pub deepest: usize,
    /// Whether any budget (`max_depth`, `max_schedules`, `max_states`)
    /// truncated the walk — a truncated report is not exhaustive.
    pub truncated: bool,
    /// Sorted distinct architectural outcomes (completion values and
    /// final memory image, timing excluded).
    pub outcomes: Vec<u64>,
    /// Sorted distinct full outcomes (architectural outcome plus every
    /// completion's issue/finish cycles).
    pub timings: Vec<u64>,
    /// Union of Tables I–III transition coverage over all schedules.
    pub coverage: ObservedCoverage,
    /// Per-request completion-latency multisets across schedules
    /// (latency → number of schedules finishing the request in it).
    pub latencies: FxHashMap<RequestId, BTreeMap<u64, u64>>,
    /// The first violation found in canonical (spine, then task
    /// emission) order, if any.
    pub error: Option<ExploreError>,
}

impl ExploreReport {
    /// True when the walk finished every schedule without violation or
    /// budget truncation.
    pub fn exhaustive_and_clean(&self) -> bool {
        self.error.is_none() && !self.truncated
    }

    /// The latency multiset of `req` flattened to a sorted list of
    /// `(latency, count)` pairs (empty if the request never completed).
    pub fn latency_multiset(&self, req: RequestId) -> Vec<(u64, u64)> {
        self.latencies
            .get(&req)
            .map(|m| m.iter().map(|(&l, &n)| (l, n)).collect())
            .unwrap_or_default()
    }

    /// FNV-1a digest of the report's deterministic content: counters,
    /// outcome and timing sets, the latency multisets in request order,
    /// and the error rendering. Two walks of the same tree (any thread
    /// count, any process) produce the same digest — the unit identity
    /// checkpointed campaigns compare across kills and resumes.
    pub fn digest(&self) -> u64 {
        let mut f = crate::ckpt::Fnv::new();
        for v in [
            self.schedules,
            self.steps,
            self.pruned,
            self.sleep_skipped,
            self.tasks,
            self.task_cap_hits,
            self.deepest as u64,
            self.truncated as u64,
        ] {
            f.mix(v);
        }
        for o in &self.outcomes {
            f.mix(*o);
        }
        for t in &self.timings {
            f.mix(*t);
        }
        let mut reqs: Vec<RequestId> = self.latencies.keys().copied().collect();
        reqs.sort_unstable();
        for req in reqs {
            f.mix(req);
            for (&lat, &n) in &self.latencies[&req] {
                f.mix(lat);
                f.mix(n);
            }
        }
        if let Some(e) = &self.error {
            for b in e.detail.bytes() {
                f.mix(u64::from(b));
            }
            for s in &e.schedule {
                f.mix(*s);
            }
        }
        f.0
    }
}

/// Per-depth walk counters (tree shape and undo cost), summed over the
/// spine and every task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepthStats {
    /// Nodes entered at this depth (leaves included).
    pub nodes: u64,
    /// Subtrees rewound (undo mode) or discarded (fork mode) back to a
    /// parent at this depth's step.
    pub backtracks: u64,
    /// Total approximate bytes the rewound undo frames pinned.
    pub undo_bytes: u64,
}

/// Depth-indexed [`DepthStats`] for one exploration; index = schedule
/// depth from the root.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepthProfile {
    /// One entry per depth reached, root first.
    pub depths: Vec<DepthStats>,
}

impl DepthProfile {
    fn at(&mut self, depth: usize) -> &mut DepthStats {
        if self.depths.len() <= depth {
            self.depths.resize(depth + 1, DepthStats::default());
        }
        &mut self.depths[depth]
    }

    /// Element-wise sum of `other` into `self`.
    pub fn merge(&mut self, other: &DepthProfile) {
        for (d, s) in other.depths.iter().enumerate() {
            let slot = self.at(d);
            slot.nodes += s.nodes;
            slot.backtracks += s.backtracks;
            slot.undo_bytes += s.undo_bytes;
        }
    }

    /// The profile as a JSON array (one `{depth, nodes, backtracks,
    /// undo_bytes}` object per depth) — the form campaign drivers fold
    /// into the final progress heartbeat via
    /// [`ProgressSampler::finish_with_extra`].
    pub fn to_json(&self) -> Json {
        Json::array(self.depths.iter().enumerate().map(|(d, s)| {
            Json::object([
                ("depth", Json::Uint(d as u64)),
                ("nodes", Json::Uint(s.nodes)),
                ("backtracks", Json::Uint(s.backtracks)),
                ("undo_bytes", Json::Uint(s.undo_bytes)),
            ])
        }))
    }

    /// Registers every per-depth counter under `prefix` (e.g.
    /// `explore.depth.004.nodes`), for metric snapshots.
    pub fn export_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        for (d, s) in self.depths.iter().enumerate() {
            reg.insert(
                &format!("{prefix}depth.{d:03}.nodes"),
                Metric::Counter(s.nodes.into()),
            );
            reg.insert(
                &format!("{prefix}depth.{d:03}.backtracks"),
                Metric::Counter(s.backtracks.into()),
            );
            reg.insert(
                &format!("{prefix}depth.{d:03}.undo_bytes"),
                Metric::Counter(s.undo_bytes.into()),
            );
        }
    }
}

/// Explores every schedule of `stream` on a fresh hierarchy built from
/// `cfg`, within `ecfg`'s budgets. Link jitter must be disabled (the
/// explorer *is* the network nondeterminism).
///
/// This *is* [`explore_parallel_threads`] with one worker: the walk is
/// decomposed identically, so the report is bit-identical at every
/// thread count.
pub fn explore(cfg: &HierarchyConfig, stream: &[AccessOp], ecfg: &ExploreConfig) -> ExploreReport {
    explore_parallel_threads(cfg, stream, ecfg, 1)
}

/// [`explore`] with the boundary tasks fanned over the experiment
/// driver's worker threads (`SWIFTDIR_THREADS`, else the host
/// parallelism).
pub fn explore_parallel(
    cfg: &HierarchyConfig,
    stream: &[AccessOp],
    ecfg: &ExploreConfig,
) -> ExploreReport {
    explore_parallel_threads(cfg, stream, ecfg, driver::default_threads())
}

/// [`explore_parallel`] with a pinned worker count.
pub fn explore_parallel_threads(
    cfg: &HierarchyConfig,
    stream: &[AccessOp],
    ecfg: &ExploreConfig,
    threads: usize,
) -> ExploreReport {
    explore_parallel_profiled(cfg, stream, ecfg, threads).0
}

/// [`explore_parallel_threads`] that also returns the merged per-depth
/// walk profile (node counts, backtracks, undo bytes).
pub fn explore_parallel_profiled(
    cfg: &HierarchyConfig,
    stream: &[AccessOp],
    ecfg: &ExploreConfig,
    threads: usize,
) -> (ExploreReport, DepthProfile) {
    explore_campaign(cfg, stream, ecfg, threads, None)
}

/// The explore driver every `explore*` entry point funnels through:
/// [`explore_parallel_profiled`] with an optional campaign telemetry
/// sampler.
///
/// With a sampler attached, the walkers publish step/schedule deltas
/// and memory gauges (seen-table entries/bytes, undo-log bytes,
/// transient-slab bytes) every [`EXPLORE_TELEMETRY_EVERY`] nodes, wall
/// time is attributed to the [`EXPLORE_PHASES`] spans, the worker pool
/// reports per-slot attribution, and heartbeats stream at the
/// sampler's interval. Strictly passive: the report and profile are
/// bit-identical to a samplerless run at every thread count.
pub fn explore_campaign(
    cfg: &HierarchyConfig,
    stream: &[AccessOp],
    ecfg: &ExploreConfig,
    threads: usize,
    progress: Option<&Arc<ProgressSampler>>,
) -> (ExploreReport, DepthProfile) {
    let expected = stream.len();
    let mut root = Hierarchy::new(*cfg);
    issue_stream(&mut root, stream);
    if ecfg.mode == ExploreMode::Undo {
        root.enable_undo();
    }

    // Resolve the decomposition depth before the walk: fixed if the
    // config pins one, else derived from the root's branching factor.
    // Both depend only on the root state, never on `threads`.
    let split_depth = ecfg
        .split_depth
        .unwrap_or_else(|| adaptive_split_depth(root.frontier_choices(Cycle(ecfg.window)).len()));

    let mut spine = Walker::new(*ecfg, expected);
    spine.split_depth = split_depth;
    spine.progress = progress.map(Arc::clone);
    if split_depth != usize::MAX {
        spine.boundary = if threads > 1 {
            Boundary::Defer(Vec::new())
        } else {
            Boundary::Inline(Vec::new())
        };
    }
    {
        let _spine_span = progress.map(|p| p.counters().span("spine"));
        spine.dfs(&mut root, &[], 0);
        // Final gauge sample while the hierarchy is still in scope, so
        // short walks (< EXPLORE_TELEMETRY_EVERY nodes) still publish
        // their memory footprint.
        spine.flush_telemetry(&root);
    }

    let boundary = std::mem::replace(&mut spine.boundary, Boundary::Off);
    let (spine_report, spine_profile) = spine.finish();
    let task_results: Vec<(ExploreReport, DepthProfile)> = match boundary {
        Boundary::Off => Vec::new(),
        Boundary::Inline(results) => results,
        Boundary::Defer(tasks) => {
            let mut set = ExperimentSet::new(tasks).threads(threads);
            if let Some(p) = progress {
                set = set.progress(Arc::clone(p));
            }
            set.run_owned(|t| run_task(t, ecfg, expected))
        }
    };

    let _merge_span = progress.map(|p| p.counters().span("merge"));
    let mut profile = spine_profile;
    let mut reports = vec![spine_report];
    for (r, p) in task_results {
        profile.merge(&p);
        reports.push(r);
    }
    let merged = merge_reports(reports);
    if merged.task_cap_hits > 0 {
        // No silent caps: the tail of this walk was serialized onto the
        // spine. Surface it on stderr here and in the report; campaign
        // drivers fold `task_cap_hits` into the final heartbeat.
        eprintln!(
            "swiftdir explore: warning: task emission truncated at the {}-task cap \
             ({} boundary subtrees ran inline on the spine; split depth {split_depth})",
            ecfg.max_tasks, merged.task_cap_hits
        );
    }
    (merged, profile)
}

/// An independent subtree rooted at a decomposition-boundary node,
/// ready to run on any worker thread.
struct Task {
    h: Hierarchy,
    checker: Checker,
    sleep: Vec<Choice>,
    trace: Vec<u64>,
    depth: usize,
    progress: Option<Arc<ProgressSampler>>,
}

/// Walks one deferred [`Task`] to completion on the calling thread.
fn run_task(mut t: Task, ecfg: &ExploreConfig, expected: usize) -> (ExploreReport, DepthProfile) {
    // Worker threads hold no other span, so the whole task is `tasks`
    // time (inline tasks, by contrast, stay inside the spine's span).
    let progress = t.progress.take();
    let _task_span = progress.as_ref().map(|p| p.counters().span("tasks"));
    if ecfg.mode == ExploreMode::Undo {
        // The fork dropped the spine's undo log; re-arm on the task copy.
        t.h.enable_undo();
    }
    let mut w = Walker::task(*ecfg, expected, t.trace, &t.checker, t.depth);
    w.progress = progress.clone();
    w.dfs(&mut t.h, &t.sleep, t.depth);
    w.flush_telemetry(&t.h);
    w.finish()
}

/// Folds per-walker reports (spine first, then tasks in canonical
/// emission order) into one.
fn merge_reports(reports: Vec<ExploreReport>) -> ExploreReport {
    let mut merged = ExploreReport::default();
    let mut outcomes: Vec<u64> = Vec::new();
    let mut timings: Vec<u64> = Vec::new();
    for r in reports {
        merged.schedules += r.schedules;
        merged.steps += r.steps;
        merged.pruned += r.pruned;
        merged.sleep_skipped += r.sleep_skipped;
        merged.tasks += r.tasks;
        merged.task_cap_hits += r.task_cap_hits;
        merged.deepest = merged.deepest.max(r.deepest);
        merged.truncated |= r.truncated;
        outcomes.extend(r.outcomes);
        timings.extend(r.timings);
        merged.coverage.merge(&r.coverage);
        for (req, m) in r.latencies {
            let slot = merged.latencies.entry(req).or_default();
            for (lat, n) in m {
                *slot.entry(lat).or_insert(0) += n;
            }
        }
        if merged.error.is_none() {
            merged.error = r.error;
        }
    }
    outcomes.sort_unstable();
    outcomes.dedup();
    timings.sort_unstable();
    timings.dedup();
    merged.outcomes = outcomes;
    merged.timings = timings;
    merged
}

/// What the spine does when the walk reaches `split_depth`.
enum Boundary {
    /// No decomposition: keep walking (task walkers, and
    /// `split_depth: usize::MAX`).
    Off,
    /// Run the boundary subtree immediately on this thread (with private
    /// walker state) and bank its result.
    Inline(Vec<(ExploreReport, DepthProfile)>),
    /// Fork the hierarchy and queue the subtree for the worker pool.
    Defer(Vec<Task>),
}

struct Walker {
    ecfg: ExploreConfig,
    expected: usize,
    seen: FxHashMap<u64, bool>,
    outcomes: FxHashSet<u64>,
    timings: FxHashSet<u64>,
    report: ExploreReport,
    profile: DepthProfile,
    trace: Vec<u64>,
    /// Depth-indexed checker states: `checkers[d]` audits the node at
    /// depth `d`. Stepping copies parent into child with
    /// [`Checker::assign_from`] (no per-step allocation once warm), so
    /// the undo walker never needs to rewind a checker.
    checkers: Vec<Checker>,
    boundary: Boundary,
    /// The resolved decomposition depth this walker splits at (only
    /// meaningful while `boundary` is active; task walkers never
    /// split). Set by [`explore_campaign`] — fixed or adaptive.
    split_depth: usize,
    tasks_emitted: usize,
    /// Recycled per-depth frontier buffers: [`Walker::dfs`] pops one,
    /// fills it via [`Hierarchy::frontier_choices_into`], and returns it
    /// after the subtree — steady-state walking allocates nothing.
    choice_pool: Vec<Vec<Choice>>,
    /// Link-key scratch for [`Hierarchy::frontier_choices_into`].
    choice_keys: Vec<(u8, u64, u64)>,
    /// Campaign telemetry sink; strictly passive (never influences the
    /// walk). `None` keeps the whole telemetry path to one branch.
    progress: Option<Arc<ProgressSampler>>,
    /// Nodes visited since the last telemetry flush.
    nodes_since_flush: u64,
    /// Step/schedule totals already published to the sampler, so each
    /// flush only reports the delta.
    flushed_steps: u64,
    flushed_schedules: u64,
}

impl Walker {
    fn new(ecfg: ExploreConfig, expected: usize) -> Self {
        Walker {
            ecfg,
            expected,
            seen: FxHashMap::default(),
            outcomes: FxHashSet::default(),
            timings: FxHashSet::default(),
            report: ExploreReport::default(),
            profile: DepthProfile::default(),
            trace: Vec::new(),
            checkers: vec![Checker::new()],
            boundary: Boundary::Off,
            split_depth: ecfg.split_depth.unwrap_or(usize::MAX),
            tasks_emitted: 0,
            choice_pool: Vec::new(),
            choice_keys: Vec::new(),
            progress: None,
            nodes_since_flush: 0,
            flushed_steps: 0,
            flushed_schedules: 0,
        }
    }

    /// A walker for one boundary subtree: path prefix `trace`, checker
    /// state `checker` at `depth`, fresh digest table and budgets.
    fn task(
        ecfg: ExploreConfig,
        expected: usize,
        trace: Vec<u64>,
        checker: &Checker,
        depth: usize,
    ) -> Self {
        let mut w = Walker::new(ecfg, expected);
        w.trace = trace;
        while w.checkers.len() <= depth {
            w.checkers.push(Checker::new());
        }
        w.checkers[depth].assign_from(checker);
        w
    }

    /// Sorts the accumulated outcome sets into the final report.
    fn finish(mut self) -> (ExploreReport, DepthProfile) {
        if let Some(p) = self.progress.take() {
            // Residual step/schedule deltas since the last in-walk flush.
            let counters = p.counters();
            counters.add_steps(self.report.steps - self.flushed_steps);
            counters.add_schedules(self.report.schedules - self.flushed_schedules);
            p.tick();
        }
        self.report.outcomes = self.outcomes.into_iter().collect();
        self.report.outcomes.sort_unstable();
        self.report.timings = self.timings.into_iter().collect();
        self.report.timings.sort_unstable();
        (self.report, self.profile)
    }

    /// Publishes step/schedule deltas and memory gauges to the campaign
    /// sampler. Called every [`EXPLORE_TELEMETRY_EVERY`] nodes from
    /// [`Walker::dfs`]; reads walker and hierarchy state only.
    fn flush_telemetry(&mut self, h: &Hierarchy) {
        let Some(p) = self.progress.as_ref() else {
            return;
        };
        let counters = p.counters();
        counters.add_steps(self.report.steps - self.flushed_steps);
        counters.add_schedules(self.report.schedules - self.flushed_schedules);
        self.flushed_steps = self.report.steps;
        self.flushed_schedules = self.report.schedules;
        counters
            .gauge(MemGauge::SeenEntries)
            .set(self.seen.len() as u64);
        // The swiss-table footprint: allocated buckets (usable capacity
        // is only 7/8 of them) plus per-bucket control bytes — not the
        // bare `capacity * entry` figure, which undercounts.
        let seen_bytes =
            sim_engine::map_heap_bytes(self.seen.capacity(), std::mem::size_of::<(u64, bool)>());
        counters.gauge(MemGauge::SeenBytes).set(seen_bytes);
        counters.gauge(MemGauge::UndoBytes).set(h.undo_log_bytes());
        counters.gauge(MemGauge::SlabBytes).set(h.transient_bytes());
        p.tick();
    }

    /// Walks the subtree under `h`; returns false to abort this
    /// walker's exploration (violation found or hard budget hit). `h`
    /// is returned to its entry state either way (undo mode) or left
    /// untouched (fork mode), so the spine survives task failures.
    fn dfs(&mut self, h: &mut Hierarchy, sleep: &[Choice], depth: usize) -> bool {
        self.report.deepest = self.report.deepest.max(depth);
        self.profile.at(depth).nodes += 1;
        if self.progress.is_some() {
            self.nodes_since_flush += 1;
            if self.nodes_since_flush >= EXPLORE_TELEMETRY_EVERY {
                self.nodes_since_flush = 0;
                self.flush_telemetry(h);
            }
        }

        let mut choices = self.choice_pool.pop().unwrap_or_default();
        h.frontier_choices_into(Cycle(self.ecfg.window), &mut self.choice_keys, &mut choices);
        let ok = if choices.is_empty() {
            self.leaf(h, depth)
        } else {
            self.visit(h, sleep, depth, &choices)
        };
        choices.clear();
        self.choice_pool.push(choices);
        ok
    }

    /// Explores a non-leaf node whose frontier is `choices`.
    fn visit(
        &mut self,
        h: &mut Hierarchy,
        sleep: &[Choice],
        depth: usize,
        choices: &[Choice],
    ) -> bool {
        if depth >= self.ecfg.max_depth {
            self.report.truncated = true;
            return true;
        }
        // State-hash pruning. A visit is "full" when its sleep set is
        // empty: every schedule suffix from the state gets walked. Only
        // full visits may prune later ones — a node first reached with a
        // non-empty sleep set explored fewer behaviors than a revisit
        // with a smaller one might need.
        let digest = h.state_digest_cached();
        let full = sleep.is_empty() || !self.ecfg.sleep_sets;
        match self.seen.get(&digest) {
            Some(&true) => {
                self.report.pruned += 1;
                self.report.coverage.add(h.stats());
                return true;
            }
            Some(&false) if full => {
                self.seen.insert(digest, true);
            }
            Some(&false) => {}
            None => {
                self.seen.insert(digest, full);
            }
        }
        if self.seen.len() >= self.ecfg.max_states {
            self.report.truncated = true;
            return false;
        }

        // Decomposition boundary: this node roots an independent task
        // (private digest table and budgets). The spine always carries
        // on afterwards — a failing task cannot abort it, exactly as a
        // deferred task's failure is invisible until the merge. Nodes
        // past the task cap fall through to the inline walk below, and
        // every such hit is counted — the cap is never silent.
        if depth == self.split_depth && !matches!(self.boundary, Boundary::Off) {
            if self.tasks_emitted < self.ecfg.max_tasks {
                self.tasks_emitted += 1;
                self.report.tasks += 1;
                self.hand_off(h, sleep, depth);
                return true;
            }
            self.report.task_cap_hits += 1;
        }

        // `barred` grows as siblings are explored: after walking the
        // subtree that delivers `a` first, later siblings only need to
        // consider `a` after some dependent event (sleep-set reduction).
        let mut barred: Vec<Choice> = sleep.to_vec();
        for choice in choices {
            if self.ecfg.sleep_sets && barred.iter().any(|s| s.seq == choice.seq) {
                self.report.sleep_skipped += 1;
                continue;
            }
            let child_sleep: Vec<Choice> = if self.ecfg.sleep_sets {
                barred
                    .iter()
                    .filter(|s| independent(s, choice))
                    .copied()
                    .collect()
            } else {
                Vec::new()
            };

            if !self.step_into(h, choice, &child_sleep, depth) {
                return false;
            }
            if self.report.schedules >= self.ecfg.max_schedules {
                self.report.truncated = true;
                return false;
            }
            barred.push(*choice);
        }
        true
    }

    /// Packages the node under `h` as a task: deferred to the worker
    /// pool (one hierarchy fork) or run inline right here (no fork —
    /// the sub-walker borrows `h` and restores it).
    fn hand_off(&mut self, h: &mut Hierarchy, sleep: &[Choice], depth: usize) {
        match &mut self.boundary {
            Boundary::Off => unreachable!("hand_off gated on an active boundary"),
            Boundary::Defer(tasks) => {
                tasks.push(Task {
                    h: h.fork(),
                    checker: self.checkers[depth].clone(),
                    sleep: sleep.to_vec(),
                    trace: self.trace.clone(),
                    depth,
                    progress: self.progress.clone(),
                });
            }
            Boundary::Inline(results) => {
                let mut w = Walker::task(
                    self.ecfg,
                    self.expected,
                    self.trace.clone(),
                    &self.checkers[depth],
                    depth,
                );
                w.progress = self.progress.clone();
                w.dfs(h, sleep, depth);
                results.push(w.finish());
            }
        }
    }

    /// Dispatches `choice` under `h`, audits the event, walks the child
    /// subtree (at `depth + 1`) with `child_sleep`, and restores the
    /// parent state: by rewinding the undo log in place (undo mode) or
    /// by having stepped a discardable fork (fork mode). Returns false
    /// to abort this walker.
    fn step_into(
        &mut self,
        h: &mut Hierarchy,
        choice: &Choice,
        child_sleep: &[Choice],
        depth: usize,
    ) -> bool {
        self.trace.push(choice.seq);
        let ok = match self.ecfg.mode {
            ExploreMode::Undo => {
                let umark = h.undo_mark();
                let ok = self.dispatch_and_descend(h, choice, child_sleep, depth);
                if h.undo_mark() > umark {
                    let p = self.profile.at(depth + 1);
                    p.backtracks += 1;
                    p.undo_bytes += h.undo_frame_bytes();
                    // Rewind even failed dispatches: the frame was
                    // recorded before the handler ran, so a partially
                    // applied erroring step unwinds cleanly and the
                    // spine can keep using `h`.
                    h.undo_to(umark);
                }
                ok
            }
            ExploreMode::Fork => {
                let mut child = h.fork();
                let ok = self.dispatch_and_descend(&mut child, choice, child_sleep, depth);
                self.profile.at(depth + 1).backtracks += 1;
                ok
            }
        };
        self.trace.pop();
        ok
    }

    /// The mode-independent step body: deliver, audit, recurse.
    fn dispatch_and_descend(
        &mut self,
        h: &mut Hierarchy,
        choice: &Choice,
        child_sleep: &[Choice],
        depth: usize,
    ) -> bool {
        let cmark = h.completions_len();
        match h.try_step_choice(choice.seq) {
            Err(e) => {
                self.fail(format!("protocol error: {e}"));
                false
            }
            Ok(None) => {
                self.fail(format!("frontier choice seq {} vanished", choice.seq));
                false
            }
            Ok(Some(_)) => {
                self.report.steps += 1;
                while self.checkers.len() <= depth + 1 {
                    self.checkers.push(Checker::new());
                }
                let (parents, children) = self.checkers.split_at_mut(depth + 1);
                let checker = &mut children[0];
                checker.assign_from(&parents[depth]);
                let audit = if self.ecfg.check_invariants {
                    checker.after_event(h, h.completions_since(cmark)).err()
                } else {
                    None
                };
                match audit {
                    Some(v) => {
                        self.fail(format!("invariant violation: {v}"));
                        false
                    }
                    None => self.dfs(h, child_sleep, depth + 1),
                }
            }
        }
    }

    /// Handles a drained-queue leaf: audits quiescence, records the
    /// outcome digests, latencies, and coverage. The hierarchy's own
    /// (never drained) completion list is the schedule's full history.
    fn leaf(&mut self, h: &Hierarchy, depth: usize) -> bool {
        let completions = h.completions_since(0);
        if completions.len() != self.expected {
            self.fail(format!(
                "schedule quiesced with {} of {} completions",
                completions.len(),
                self.expected
            ));
            return false;
        }
        let checker = &self.checkers[depth];
        if self.ecfg.check_invariants {
            if let Err(v) = checker.check_quiescent(h) {
                self.fail(format!("quiescence violation: {v}"));
                return false;
            }
        }
        self.report.schedules += 1;
        self.report.coverage.add(h.stats());

        let mut ordered: Vec<&Completion> = completions.iter().collect();
        ordered.sort_unstable_by_key(|c| c.req);
        let mut arch = Fnv::new();
        for c in &ordered {
            arch.mix(c.req);
            arch.mix(c.core as u64);
            arch.mix(c.block.0);
            arch.mix(matches!(c.class.kind, swiftdir_coherence::AccessKind::Store) as u64);
            arch.mix(c.value);
        }
        let mut blocks: Vec<u64> = ordered.iter().map(|c| c.block.0).collect();
        blocks.sort_unstable();
        blocks.dedup();
        for b in blocks {
            arch.mix(b);
            arch.mix(checker.golden(b));
        }
        let mut timing = Fnv::new();
        timing.mix(arch.0);
        for c in &ordered {
            timing.mix(c.issued_at.get());
            timing.mix(c.done_at.get());
        }
        self.outcomes.insert(arch.0);
        self.timings.insert(timing.0);
        for c in &ordered {
            *self
                .report
                .latencies
                .entry(c.req)
                .or_default()
                .entry(c.latency().get())
                .or_insert(0) += 1;
        }
        true
    }

    fn fail(&mut self, detail: String) {
        if self.report.error.is_none() {
            self.report.error = Some(ExploreError {
                detail,
                schedule: self.trace.clone(),
            });
        }
    }
}

/// Static independence judgment for the sleep-set reduction.
///
/// Two deliverable events commute only when dispatching them in either
/// order provably yields the same machine state:
///
/// * different blocks — else they race on the same line;
/// * not both DRAM-touching — the controller's banks serialize FCFS,
///   and any two LLC-side dispatches (ToLlc/MemDone, which are exactly
///   the DRAM-touching kinds) may also emit responses onto the same
///   LLC→L1 FIFO link, whose send order is part of the state;
/// * different cores — same-core events share the L1 array, the MSHRs,
///   and every outgoing link of that core;
/// * **equal delivery times** — the explorer's clock semantics clamp
///   skipped events forward when a later event is chosen first, so
///   events at different effective times do not commute even when
///   their state footprints are disjoint. This also keeps sleep-set
///   entries fresh: an entry only survives past dispatches at its own
///   timestamp, so its recorded delivery time can never go stale.
fn independent(a: &Choice, b: &Choice) -> bool {
    a.block != b.block
        && !(a.touches_dram && b.touches_dram)
        && !matches!((a.core, b.core), (Some(x), Some(y)) if x == y)
        && a.at == b.at
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn mix(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::AccessOp;
    use swiftdir_cache::CacheGeometry;
    use swiftdir_coherence::ProtocolKind;

    fn tiny(protocol: ProtocolKind, cores: usize) -> HierarchyConfig {
        let mut cfg = HierarchyConfig::table_v(cores, protocol);
        cfg.l1_geometry = CacheGeometry::new(256, 1, 64);
        cfg.llc_bank_geometry = CacheGeometry::new(256, 2, 64);
        cfg.l1_mshrs = 4;
        cfg
    }

    fn contended() -> Vec<AccessOp> {
        vec![
            AccessOp::store(0, 0, 0x0),
            AccessOp::load(2, 1, 0x0),
            AccessOp::store(4, 1, 0x40),
            AccessOp::load(6, 0, 0x40),
        ]
    }

    #[test]
    fn single_schedule_without_contention() {
        // One op, one core: the tree is a path.
        let cfg = tiny(ProtocolKind::Mesi, 1);
        let stream = vec![AccessOp::load(0, 0, 0x0)];
        let report = explore(&cfg, &stream, &ExploreConfig::default());
        assert!(report.exhaustive_and_clean(), "{:?}", report.error);
        assert_eq!(report.schedules, 1);
        assert_eq!(report.outcomes.len(), 1);
    }

    #[test]
    fn contended_stream_explores_many_schedules_all_clean() {
        for protocol in ProtocolKind::ALL {
            let cfg = tiny(protocol, 2);
            let report = explore(&cfg, &contended(), &ExploreConfig::default());
            assert!(
                report.exhaustive_and_clean(),
                "{protocol:?}: {:?}",
                report.error
            );
            assert!(report.schedules > 1, "{protocol:?} found no interleavings");
            // Stores and loads race, but serialized values must always
            // come from the golden set — a handful of outcomes at most.
            assert!(report.outcomes.len() <= 4, "{protocol:?}");
        }
    }

    #[test]
    fn undo_and_fork_walkers_agree_bitwise() {
        // The differential oracle: the in-place backtracking walker and
        // the clone-and-descend walker must produce identical reports —
        // schedules, steps, prunes, outcomes, timings, coverage,
        // latencies, everything.
        for protocol in ProtocolKind::ALL {
            let cfg = tiny(protocol, 2);
            let undo = explore(
                &cfg,
                &contended(),
                &ExploreConfig {
                    mode: ExploreMode::Undo,
                    ..ExploreConfig::default()
                },
            );
            let fork = explore(
                &cfg,
                &contended(),
                &ExploreConfig {
                    mode: ExploreMode::Fork,
                    ..ExploreConfig::default()
                },
            );
            assert!(
                undo.exhaustive_and_clean(),
                "{protocol:?}: {:?}",
                undo.error
            );
            assert_eq!(undo, fork, "{protocol:?}: walkers diverged");
        }
    }

    #[test]
    fn pruning_fires_on_contended_streams() {
        let cfg = tiny(ProtocolKind::SwiftDir, 2);
        let report = explore(&cfg, &contended(), &ExploreConfig::default());
        assert!(report.pruned > 0, "state-hash pruning never fired");
    }

    #[test]
    fn sleep_set_reduction_preserves_outcomes() {
        // The reduction may only cut *redundant* schedules: outcome and
        // timing sets must match the unreduced walk exactly.
        for protocol in [ProtocolKind::SwiftDir, ProtocolKind::SMesi] {
            let cfg = tiny(protocol, 2);
            let with = explore(&cfg, &contended(), &ExploreConfig::default());
            let without = explore(
                &cfg,
                &contended(),
                &ExploreConfig {
                    sleep_sets: false,
                    ..ExploreConfig::default()
                },
            );
            assert!(with.exhaustive_and_clean() && without.exhaustive_and_clean());
            assert_eq!(with.outcomes, without.outcomes, "{protocol:?}");
            assert_eq!(with.timings, without.timings, "{protocol:?}");
            assert!(
                with.sleep_skipped > 0,
                "{protocol:?}: reduction never fired"
            );
        }
    }

    #[test]
    fn wider_window_explores_at_least_as_much() {
        let cfg = tiny(ProtocolKind::Mesi, 2);
        let narrow = explore(
            &cfg,
            &contended(),
            &ExploreConfig {
                window: 0,
                ..ExploreConfig::default()
            },
        );
        let wide = explore(&cfg, &contended(), &ExploreConfig::default());
        assert!(narrow.exhaustive_and_clean() && wide.exhaustive_and_clean());
        assert!(wide.timings.len() >= narrow.timings.len());
    }

    #[test]
    fn parallel_exploration_is_thread_count_invariant() {
        // The decomposed walk must produce a bit-identical report for
        // every worker count — the thread schedule only decides which
        // task runs where, never what any task computes.
        for protocol in [ProtocolKind::SwiftDir, ProtocolKind::Mesi] {
            let cfg = tiny(protocol, 2);
            let ecfg = ExploreConfig::default();
            let one = explore_parallel_threads(&cfg, &contended(), &ecfg, 1);
            let four = explore_parallel_threads(&cfg, &contended(), &ecfg, 4);
            assert_eq!(one, four, "{protocol:?}");
            assert!(one.exhaustive_and_clean(), "{protocol:?}: {:?}", one.error);
        }
    }

    #[test]
    fn parallel_exploration_preserves_serial_outcomes() {
        // `explore` *is* the one-thread decomposed walk, so the parallel
        // report must equal it bit for bit — the historical timing-set
        // superset divergence is gone by construction.
        for protocol in ProtocolKind::ALL {
            let cfg = tiny(protocol, 2);
            let ecfg = ExploreConfig::default();
            let serial = explore(&cfg, &contended(), &ecfg);
            let parallel = explore_parallel_threads(&cfg, &contended(), &ecfg, 4);
            assert!(serial.exhaustive_and_clean(), "{protocol:?}");
            assert_eq!(serial, parallel, "{protocol:?}");
        }
    }

    #[test]
    fn pure_serial_walk_matches_decomposed_outcomes() {
        // `split_depth: MAX` is the old single-table serial semantics:
        // it prunes across would-be task boundaries, so it may fold
        // timing variants the decomposed walk keeps — but architectural
        // outcomes must match exactly and its timings must be a subset.
        for protocol in [ProtocolKind::SwiftDir, ProtocolKind::Mesi] {
            let cfg = tiny(protocol, 2);
            let pure = explore(
                &cfg,
                &contended(),
                &ExploreConfig {
                    split_depth: Some(usize::MAX),
                    ..ExploreConfig::default()
                },
            );
            let decomposed = explore(&cfg, &contended(), &ExploreConfig::default());
            assert!(pure.exhaustive_and_clean() && decomposed.exhaustive_and_clean());
            assert_eq!(pure.outcomes, decomposed.outcomes, "{protocol:?}");
            assert!(
                pure.timings.iter().all(|t| decomposed.timings.contains(t)),
                "{protocol:?}: single-table walk found a timing the decomposed walk lost"
            );
        }
    }

    #[test]
    fn depth_profile_counts_nodes_and_backtracks() {
        let cfg = tiny(ProtocolKind::SwiftDir, 2);
        let (report, profile) =
            explore_parallel_profiled(&cfg, &contended(), &ExploreConfig::default(), 1);
        assert!(report.exhaustive_and_clean());
        assert_eq!(profile.depths[0].nodes, 1, "exactly one root");
        let nodes: u64 = profile.depths.iter().map(|d| d.nodes).sum();
        let backtracks: u64 = profile.depths.iter().map(|d| d.backtracks).sum();
        assert_eq!(
            backtracks, report.steps,
            "every dispatched step is eventually rewound"
        );
        assert!(nodes > report.steps, "prunes and leaves add extra nodes");
        assert!(
            profile.depths.iter().map(|d| d.undo_bytes).sum::<u64>() > 0,
            "undo frames never reported their cost"
        );
        // The profile survives a registry export (one counter triple per
        // depth).
        let mut reg = MetricsRegistry::new();
        profile.export_into(&mut reg, "explore.");
        let json = reg.snapshot().to_pretty();
        assert!(json.contains("explore.depth.000.nodes"), "{json}");
    }

    #[test]
    fn adaptive_split_depth_tracks_branching() {
        // Degenerate roots keep the historical fixed depth.
        assert_eq!(adaptive_split_depth(0), 2);
        assert_eq!(adaptive_split_depth(1), 2);
        // Narrow frontiers split deep (b^d >= 64, clamped to 6) …
        assert_eq!(adaptive_split_depth(2), 6);
        assert_eq!(adaptive_split_depth(3), 4);
        assert_eq!(adaptive_split_depth(4), 3);
        assert_eq!(adaptive_split_depth(8), 2);
        // … and wide frontiers split at the first level.
        assert_eq!(adaptive_split_depth(64), 1);
        assert_eq!(adaptive_split_depth(10_000), 1);
    }

    #[test]
    fn adaptive_split_preserves_fixed_depth_outcomes() {
        // The default (adaptive) decomposition explores the same
        // behaviors as the historical fixed depth-2 boundary.
        for protocol in [ProtocolKind::SwiftDir, ProtocolKind::Mesi] {
            let cfg = tiny(protocol, 2);
            let adaptive = explore(&cfg, &contended(), &ExploreConfig::default());
            let fixed = explore(
                &cfg,
                &contended(),
                &ExploreConfig {
                    split_depth: Some(2),
                    ..ExploreConfig::default()
                },
            );
            assert!(adaptive.exhaustive_and_clean(), "{protocol:?}");
            assert_eq!(adaptive.outcomes, fixed.outcomes, "{protocol:?}");
        }
    }

    #[test]
    fn task_cap_hits_are_counted_and_thread_invariant() {
        // Starve the task budget: emission past the cap must be counted
        // (no silent serialization), stay bit-identical across thread
        // counts, and still explore the same architectural outcomes.
        let cfg = tiny(ProtocolKind::SwiftDir, 2);
        let ecfg = ExploreConfig {
            split_depth: Some(2),
            max_tasks: 1,
            ..ExploreConfig::default()
        };
        let one = explore_parallel_threads(&cfg, &contended(), &ecfg, 1);
        let four = explore_parallel_threads(&cfg, &contended(), &ecfg, 4);
        assert_eq!(one, four, "capped walk diverged across thread counts");
        assert_eq!(one.tasks, 1);
        assert!(one.task_cap_hits > 0, "cap never hit — widen the stream");
        let free = explore(&cfg, &contended(), &ExploreConfig::default());
        assert_eq!(one.outcomes, free.outcomes);
        assert_eq!(free.task_cap_hits, 0, "default cap should not truncate");
        assert!(free.tasks > 1, "decomposition emitted no parallel tasks");
    }

    #[test]
    fn budget_truncation_is_reported() {
        let cfg = tiny(ProtocolKind::SwiftDir, 2);
        let report = explore(
            &cfg,
            &contended(),
            &ExploreConfig {
                max_schedules: 1,
                ..ExploreConfig::default()
            },
        );
        assert!(report.truncated);
        assert!(!report.exhaustive_and_clean());
    }
}
