//! Bounded-exhaustive schedule exploration with invariant checking.
//!
//! [`explore`] walks the tree of event schedules a concrete access
//! stream can produce: at every step the hierarchy exposes its frontier
//! of deliverable messages ([`Hierarchy::frontier_choices`], per-link
//! FIFO heads within a time window) and the explorer forks the machine
//! once per choice, depth-first, running the [`Checker`] after every
//! dispatched event. Two reductions keep the walk tractable:
//!
//! * **state-hash pruning** — [`Hierarchy::state_digest`] is a
//!   time-shift-invariant digest of the architectural *and* timing
//!   future of the machine; a revisited digest means every schedule
//!   suffix from here was already walked, so the subtree is cut.
//! * **sleep sets** — after exploring choice `a` at a node, sibling
//!   subtrees need not re-deliver `a` first unless an intervening
//!   dispatch is dependent on it (same block, same core, shared DRAM
//!   timing, or an LLC set collision). This is the classic partial-order
//!   sleep-set reduction keyed on per-block independence; it is
//!   conservative but heuristic (independence is judged from static
//!   event attributes), so it can be disabled per run — the
//!   `sleep_set_reduction_preserves_outcomes` test cross-checks the two
//!   modes against each other.
//!
//! Every leaf (drained queue) contributes its architectural outcome
//! (completion values + final golden memory), its timing outcome, its
//! per-request latency, and its transition-coverage matrices to the
//! [`ExploreReport`].

use std::collections::BTreeMap;

use sim_engine::{Cycle, FxHashMap, FxHashSet};
use swiftdir_coherence::{
    Checker, Choice, Completion, Hierarchy, HierarchyConfig, ObservedCoverage, RequestId,
};

use crate::driver::{self, ExperimentSet};
use crate::stream::{issue_stream, AccessOp};

/// Budgets and feature toggles for one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Frontier time window: only events within `window` cycles of the
    /// earliest deliverable one are offered as choices. Larger windows
    /// model laggier networks (more reorderings) at exponential cost.
    pub window: u64,
    /// Maximum schedule length before the path is abandoned as
    /// runaway (a livelock guard, not a correctness bound).
    pub max_depth: usize,
    /// Stop after this many complete schedules.
    pub max_schedules: u64,
    /// Stop when the state-digest table reaches this size.
    pub max_states: usize,
    /// Enable the sleep-set partial-order reduction.
    pub sleep_sets: bool,
    /// Run the [`Checker`] after every dispatched event.
    pub check_invariants: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            window: 48,
            max_depth: 4096,
            max_schedules: 250_000,
            max_states: 1 << 21,
            sleep_sets: true,
            check_invariants: true,
        }
    }
}

/// A violation (protocol error, invariant breach, or stuck leaf) found
/// on one explored schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreError {
    /// Human-readable description.
    pub detail: String,
    /// The schedule that produced it, as the event-seq choices taken
    /// from the root (replayable via [`Hierarchy::try_step_choice`]).
    pub schedule: Vec<u64>,
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on schedule {:?}", self.detail, self.schedule)
    }
}

/// The result of one bounded-exhaustive exploration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExploreReport {
    /// Complete schedules walked to quiescence.
    pub schedules: u64,
    /// Events dispatched across all schedules (tree edges).
    pub steps: u64,
    /// Subtrees cut because their state digest was already visited.
    pub pruned: u64,
    /// Choices skipped by the sleep-set reduction.
    pub sleep_skipped: u64,
    /// Longest schedule seen.
    pub deepest: usize,
    /// Whether any budget (`max_depth`, `max_schedules`, `max_states`)
    /// truncated the walk — a truncated report is not exhaustive.
    pub truncated: bool,
    /// Sorted distinct architectural outcomes (completion values and
    /// final memory image, timing excluded).
    pub outcomes: Vec<u64>,
    /// Sorted distinct full outcomes (architectural outcome plus every
    /// completion's issue/finish cycles).
    pub timings: Vec<u64>,
    /// Union of Tables I–III transition coverage over all schedules.
    pub coverage: ObservedCoverage,
    /// Per-request completion-latency multisets across schedules
    /// (latency → number of schedules finishing the request in it).
    pub latencies: FxHashMap<RequestId, BTreeMap<u64, u64>>,
    /// The first violation found, if any (exploration stops on it).
    pub error: Option<ExploreError>,
}

impl ExploreReport {
    /// True when the walk finished every schedule without violation or
    /// budget truncation.
    pub fn exhaustive_and_clean(&self) -> bool {
        self.error.is_none() && !self.truncated
    }

    /// The latency multiset of `req` flattened to a sorted list of
    /// `(latency, count)` pairs (empty if the request never completed).
    pub fn latency_multiset(&self, req: RequestId) -> Vec<(u64, u64)> {
        self.latencies
            .get(&req)
            .map(|m| m.iter().map(|(&l, &n)| (l, n)).collect())
            .unwrap_or_default()
    }
}

/// Explores every schedule of `stream` on a fresh hierarchy built from
/// `cfg`, within `ecfg`'s budgets. Link jitter must be disabled (the
/// explorer *is* the network nondeterminism).
pub fn explore(cfg: &HierarchyConfig, stream: &[AccessOp], ecfg: &ExploreConfig) -> ExploreReport {
    let mut h = Hierarchy::new(*cfg);
    issue_stream(&mut h, stream);
    let mut walker = Walker::new(*ecfg, stream.len());
    let checker = Checker::new();
    walker.dfs(&h, &checker, &[], 0);
    walker.finish()
}

/// [`explore`] with the root's frontier choices fanned over the
/// experiment driver's worker threads (`SWIFTDIR_THREADS`, else the
/// host parallelism).
///
/// Each top-level branch is walked as an independent depth-first
/// exploration seeded with exactly the sleep set the serial walk would
/// hand it (the earlier root choices, filtered by [`independent`]), and
/// the per-branch reports are merged **in root-choice order**. The
/// result is therefore bit-identical for every thread count, including
/// one — the thread schedule only decides which branch runs where.
///
/// Relative to [`explore`], the architectural outcome set is preserved
/// exactly and the timing set is a superset, but the work counters
/// (`steps`, `pruned`, `schedules`) can run higher: each branch keeps a
/// private state-digest table and full budgets, so revisits are only
/// pruned within a branch, never across branches — and an unpruned
/// revisit can surface absolute timings the time-shift-invariant digest
/// would have folded away.
pub fn explore_parallel(
    cfg: &HierarchyConfig,
    stream: &[AccessOp],
    ecfg: &ExploreConfig,
) -> ExploreReport {
    explore_parallel_threads(cfg, stream, ecfg, driver::default_threads())
}

/// [`explore_parallel`] with a pinned worker count (`threads == 1` walks
/// the branches serially on the calling thread, still producing the
/// branch-decomposed report).
pub fn explore_parallel_threads(
    cfg: &HierarchyConfig,
    stream: &[AccessOp],
    ecfg: &ExploreConfig,
    threads: usize,
) -> ExploreReport {
    let mut root = Hierarchy::new(*cfg);
    issue_stream(&mut root, stream);
    let root_choices = root.frontier_choices(Cycle(ecfg.window));
    if root_choices.len() <= 1 {
        // Degenerate root: nothing to fan out.
        return explore(cfg, stream, ecfg);
    }
    let expected = stream.len();

    // Branch `k` starts with the sleep set the serial root loop would
    // pass it: every earlier sibling that is independent of this choice.
    // Each branch owns a fork of the root (`Hierarchy` is `Send` but not
    // `Sync`, so branches cannot share one), handed to its worker whole.
    let branches: Vec<(Hierarchy, Choice, Vec<Choice>)> = root_choices
        .iter()
        .enumerate()
        .map(|(k, &choice)| {
            let sleep: Vec<Choice> = if ecfg.sleep_sets {
                root_choices[..k]
                    .iter()
                    .filter(|s| independent(s, &choice))
                    .copied()
                    .collect()
            } else {
                Vec::new()
            };
            (root.fork(), choice, sleep)
        })
        .collect();

    let reports = ExperimentSet::new(branches)
        .threads(threads)
        .run_owned(|(h, choice, sleep)| {
            let mut walker = Walker::new(*ecfg, expected);
            let checker = Checker::new();
            walker.step_into(&h, &checker, &choice, &sleep, 0);
            walker.finish()
        });
    merge_reports(reports)
}

/// Folds per-branch reports (in canonical root-choice order) into one.
fn merge_reports(reports: Vec<ExploreReport>) -> ExploreReport {
    let mut merged = ExploreReport::default();
    let mut outcomes: Vec<u64> = Vec::new();
    let mut timings: Vec<u64> = Vec::new();
    for r in reports {
        merged.schedules += r.schedules;
        merged.steps += r.steps;
        merged.pruned += r.pruned;
        merged.sleep_skipped += r.sleep_skipped;
        merged.deepest = merged.deepest.max(r.deepest);
        merged.truncated |= r.truncated;
        outcomes.extend(r.outcomes);
        timings.extend(r.timings);
        merged.coverage.merge(&r.coverage);
        for (req, m) in r.latencies {
            let slot = merged.latencies.entry(req).or_default();
            for (lat, n) in m {
                *slot.entry(lat).or_insert(0) += n;
            }
        }
        if merged.error.is_none() {
            merged.error = r.error;
        }
    }
    outcomes.sort_unstable();
    outcomes.dedup();
    timings.sort_unstable();
    timings.dedup();
    merged.outcomes = outcomes;
    merged.timings = timings;
    merged
}

struct Walker {
    ecfg: ExploreConfig,
    expected: usize,
    seen: FxHashMap<u64, bool>,
    outcomes: FxHashSet<u64>,
    timings: FxHashSet<u64>,
    report: ExploreReport,
    trace: Vec<u64>,
    completions: Vec<Completion>,
    /// Recycled per-depth frontier buffers: [`Walker::dfs`] pops one,
    /// fills it via [`Hierarchy::frontier_choices_into`], and returns it
    /// after the subtree — steady-state walking allocates nothing.
    choice_pool: Vec<Vec<Choice>>,
    /// Link-key scratch for [`Hierarchy::frontier_choices_into`].
    choice_keys: Vec<(u8, u64, u64)>,
}

impl Walker {
    fn new(ecfg: ExploreConfig, expected: usize) -> Self {
        Walker {
            ecfg,
            expected,
            seen: FxHashMap::default(),
            outcomes: FxHashSet::default(),
            timings: FxHashSet::default(),
            report: ExploreReport::default(),
            trace: Vec::new(),
            completions: Vec::new(),
            choice_pool: Vec::new(),
            choice_keys: Vec::new(),
        }
    }

    /// Sorts the accumulated outcome sets into the final report.
    fn finish(mut self) -> ExploreReport {
        self.report.outcomes = self.outcomes.into_iter().collect();
        self.report.outcomes.sort_unstable();
        self.report.timings = self.timings.into_iter().collect();
        self.report.timings.sort_unstable();
        self.report
    }

    /// Walks the subtree under `h`; returns false to abort the whole
    /// exploration (violation found or hard budget hit).
    fn dfs(&mut self, h: &Hierarchy, checker: &Checker, sleep: &[Choice], depth: usize) -> bool {
        self.report.deepest = self.report.deepest.max(depth);

        let mut choices = self.choice_pool.pop().unwrap_or_default();
        h.frontier_choices_into(Cycle(self.ecfg.window), &mut self.choice_keys, &mut choices);
        let ok = if choices.is_empty() {
            self.leaf(h, checker)
        } else {
            self.visit(h, checker, sleep, depth, &choices)
        };
        choices.clear();
        self.choice_pool.push(choices);
        ok
    }

    /// Explores a non-leaf node whose frontier is `choices`.
    fn visit(
        &mut self,
        h: &Hierarchy,
        checker: &Checker,
        sleep: &[Choice],
        depth: usize,
        choices: &[Choice],
    ) -> bool {
        if depth >= self.ecfg.max_depth {
            self.report.truncated = true;
            return true;
        }
        // State-hash pruning. A visit is "full" when its sleep set is
        // empty: every schedule suffix from the state gets walked. Only
        // full visits may prune later ones — a node first reached with a
        // non-empty sleep set explored fewer behaviors than a revisit
        // with a smaller one might need.
        let digest = h.state_digest();
        let full = sleep.is_empty() || !self.ecfg.sleep_sets;
        match self.seen.get(&digest) {
            Some(&true) => {
                self.report.pruned += 1;
                self.report.coverage.add(h.stats());
                return true;
            }
            Some(&false) if full => {
                self.seen.insert(digest, true);
            }
            Some(&false) => {}
            None => {
                self.seen.insert(digest, full);
            }
        }
        if self.seen.len() >= self.ecfg.max_states {
            self.report.truncated = true;
            return false;
        }

        // `barred` grows as siblings are explored: after walking the
        // subtree that delivers `a` first, later siblings only need to
        // consider `a` after some dependent event (sleep-set reduction).
        let mut barred: Vec<Choice> = sleep.to_vec();
        for choice in choices {
            if self.ecfg.sleep_sets && barred.iter().any(|s| s.seq == choice.seq) {
                self.report.sleep_skipped += 1;
                continue;
            }
            let child_sleep: Vec<Choice> = if self.ecfg.sleep_sets {
                barred
                    .iter()
                    .filter(|s| independent(s, choice))
                    .copied()
                    .collect()
            } else {
                Vec::new()
            };

            if !self.step_into(h, checker, choice, &child_sleep, depth) {
                return false;
            }
            if self.report.schedules >= self.ecfg.max_schedules {
                self.report.truncated = true;
                return false;
            }
            barred.push(*choice);
        }
        true
    }

    /// Forks `h`, dispatches `choice`, audits the event, and walks the
    /// child subtree (at `depth + 1`) with `child_sleep`; the path state
    /// (trace, completion log) is restored afterwards. Returns false to
    /// abort the exploration.
    fn step_into(
        &mut self,
        h: &Hierarchy,
        checker: &Checker,
        choice: &Choice,
        child_sleep: &[Choice],
        depth: usize,
    ) -> bool {
        let mut child = h.fork();
        let mut child_checker = checker.clone();
        self.trace.push(choice.seq);
        let completions_mark = self.completions.len();
        let ok = match child.try_step_choice(choice.seq) {
            Err(e) => {
                self.fail(format!("protocol error: {e}"));
                false
            }
            Ok(None) => {
                self.fail(format!("frontier choice seq {} vanished", choice.seq));
                false
            }
            Ok(Some(_)) => {
                self.report.steps += 1;
                let done = child.drain_completions();
                self.completions.extend_from_slice(&done);
                let audit = if self.ecfg.check_invariants {
                    child_checker.after_event(&child, &done).err()
                } else {
                    None
                };
                match audit {
                    Some(v) => {
                        self.fail(format!("invariant violation: {v}"));
                        false
                    }
                    None => self.dfs(&child, &child_checker, child_sleep, depth + 1),
                }
            }
        };
        self.trace.pop();
        self.completions.truncate(completions_mark);
        ok
    }

    /// Handles a drained-queue leaf: audits quiescence, records the
    /// outcome digests, latencies, and coverage.
    fn leaf(&mut self, h: &Hierarchy, checker: &Checker) -> bool {
        if self.completions.len() != self.expected {
            self.fail(format!(
                "schedule quiesced with {} of {} completions",
                self.completions.len(),
                self.expected
            ));
            return false;
        }
        if self.ecfg.check_invariants {
            if let Err(v) = checker.check_quiescent(h) {
                self.fail(format!("quiescence violation: {v}"));
                return false;
            }
        }
        self.report.schedules += 1;
        self.report.coverage.add(h.stats());

        let mut ordered: Vec<&Completion> = self.completions.iter().collect();
        ordered.sort_unstable_by_key(|c| c.req);
        let mut arch = Fnv::new();
        for c in &ordered {
            arch.mix(c.req);
            arch.mix(c.core as u64);
            arch.mix(c.block.0);
            arch.mix(matches!(c.class.kind, swiftdir_coherence::AccessKind::Store) as u64);
            arch.mix(c.value);
        }
        let mut blocks: Vec<u64> = ordered.iter().map(|c| c.block.0).collect();
        blocks.sort_unstable();
        blocks.dedup();
        for b in blocks {
            arch.mix(b);
            arch.mix(checker.golden(b));
        }
        let mut timing = Fnv::new();
        timing.mix(arch.0);
        for c in &ordered {
            timing.mix(c.issued_at.get());
            timing.mix(c.done_at.get());
        }
        self.outcomes.insert(arch.0);
        self.timings.insert(timing.0);
        for c in &ordered {
            *self
                .report
                .latencies
                .entry(c.req)
                .or_default()
                .entry(c.latency().get())
                .or_insert(0) += 1;
        }
        true
    }

    fn fail(&mut self, detail: String) {
        if self.report.error.is_none() {
            self.report.error = Some(ExploreError {
                detail,
                schedule: self.trace.clone(),
            });
        }
    }
}

/// Static independence judgment for the sleep-set reduction.
///
/// Two deliverable events commute only when dispatching them in either
/// order provably yields the same machine state:
///
/// * different blocks — else they race on the same line;
/// * not both DRAM-touching — the controller's banks serialize FCFS,
///   and any two LLC-side dispatches (ToLlc/MemDone, which are exactly
///   the DRAM-touching kinds) may also emit responses onto the same
///   LLC→L1 FIFO link, whose send order is part of the state;
/// * different cores — same-core events share the L1 array, the MSHRs,
///   and every outgoing link of that core;
/// * **equal delivery times** — the explorer's clock semantics clamp
///   skipped events forward when a later event is chosen first, so
///   events at different effective times do not commute even when
///   their state footprints are disjoint. This also keeps sleep-set
///   entries fresh: an entry only survives past dispatches at its own
///   timestamp, so its recorded delivery time can never go stale.
fn independent(a: &Choice, b: &Choice) -> bool {
    a.block != b.block
        && !(a.touches_dram && b.touches_dram)
        && !matches!((a.core, b.core), (Some(x), Some(y)) if x == y)
        && a.at == b.at
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn mix(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::AccessOp;
    use swiftdir_cache::CacheGeometry;
    use swiftdir_coherence::ProtocolKind;

    fn tiny(protocol: ProtocolKind, cores: usize) -> HierarchyConfig {
        let mut cfg = HierarchyConfig::table_v(cores, protocol);
        cfg.l1_geometry = CacheGeometry::new(256, 1, 64);
        cfg.llc_bank_geometry = CacheGeometry::new(256, 2, 64);
        cfg.l1_mshrs = 4;
        cfg
    }

    fn contended() -> Vec<AccessOp> {
        vec![
            AccessOp::store(0, 0, 0x0),
            AccessOp::load(2, 1, 0x0),
            AccessOp::store(4, 1, 0x40),
            AccessOp::load(6, 0, 0x40),
        ]
    }

    #[test]
    fn single_schedule_without_contention() {
        // One op, one core: the tree is a path.
        let cfg = tiny(ProtocolKind::Mesi, 1);
        let stream = vec![AccessOp::load(0, 0, 0x0)];
        let report = explore(&cfg, &stream, &ExploreConfig::default());
        assert!(report.exhaustive_and_clean(), "{:?}", report.error);
        assert_eq!(report.schedules, 1);
        assert_eq!(report.outcomes.len(), 1);
    }

    #[test]
    fn contended_stream_explores_many_schedules_all_clean() {
        for protocol in ProtocolKind::ALL {
            let cfg = tiny(protocol, 2);
            let report = explore(&cfg, &contended(), &ExploreConfig::default());
            assert!(
                report.exhaustive_and_clean(),
                "{protocol:?}: {:?}",
                report.error
            );
            assert!(report.schedules > 1, "{protocol:?} found no interleavings");
            // Stores and loads race, but serialized values must always
            // come from the golden set — a handful of outcomes at most.
            assert!(report.outcomes.len() <= 4, "{protocol:?}");
        }
    }

    #[test]
    fn pruning_fires_on_contended_streams() {
        let cfg = tiny(ProtocolKind::SwiftDir, 2);
        let report = explore(&cfg, &contended(), &ExploreConfig::default());
        assert!(report.pruned > 0, "state-hash pruning never fired");
    }

    #[test]
    fn sleep_set_reduction_preserves_outcomes() {
        // The reduction may only cut *redundant* schedules: outcome and
        // timing sets must match the unreduced walk exactly.
        for protocol in [ProtocolKind::SwiftDir, ProtocolKind::SMesi] {
            let cfg = tiny(protocol, 2);
            let with = explore(&cfg, &contended(), &ExploreConfig::default());
            let without = explore(
                &cfg,
                &contended(),
                &ExploreConfig {
                    sleep_sets: false,
                    ..ExploreConfig::default()
                },
            );
            assert!(with.exhaustive_and_clean() && without.exhaustive_and_clean());
            assert_eq!(with.outcomes, without.outcomes, "{protocol:?}");
            assert_eq!(with.timings, without.timings, "{protocol:?}");
            assert!(
                with.sleep_skipped > 0,
                "{protocol:?}: reduction never fired"
            );
        }
    }

    #[test]
    fn wider_window_explores_at_least_as_much() {
        let cfg = tiny(ProtocolKind::Mesi, 2);
        let narrow = explore(
            &cfg,
            &contended(),
            &ExploreConfig {
                window: 0,
                ..ExploreConfig::default()
            },
        );
        let wide = explore(&cfg, &contended(), &ExploreConfig::default());
        assert!(narrow.exhaustive_and_clean() && wide.exhaustive_and_clean());
        assert!(wide.timings.len() >= narrow.timings.len());
    }

    #[test]
    fn parallel_exploration_is_thread_count_invariant() {
        // The branch-decomposed walk must produce a bit-identical report
        // for every worker count — the thread schedule only decides
        // which branch runs where, never what any branch computes.
        for protocol in [ProtocolKind::SwiftDir, ProtocolKind::Mesi] {
            let cfg = tiny(protocol, 2);
            let ecfg = ExploreConfig::default();
            let one = explore_parallel_threads(&cfg, &contended(), &ecfg, 1);
            let four = explore_parallel_threads(&cfg, &contended(), &ecfg, 4);
            assert_eq!(one, four, "{protocol:?}");
            assert!(one.exhaustive_and_clean(), "{protocol:?}: {:?}", one.error);
        }
    }

    #[test]
    fn parallel_exploration_preserves_serial_outcomes() {
        // Branch decomposition loses cross-branch pruning (counters may
        // grow) but must never change what behaviors exist.
        for protocol in ProtocolKind::ALL {
            let cfg = tiny(protocol, 2);
            let ecfg = ExploreConfig::default();
            let serial = explore(&cfg, &contended(), &ecfg);
            let parallel = explore_parallel_threads(&cfg, &contended(), &ecfg, 4);
            assert!(serial.exhaustive_and_clean() && parallel.exhaustive_and_clean());
            assert_eq!(serial.outcomes, parallel.outcomes, "{protocol:?}");
            // Timings: pruning is time-shift-invariant, so the serial
            // walk's digest table can cut revisits whose absolute times
            // differ; the less-pruned parallel walk records a superset.
            assert!(
                serial.timings.iter().all(|t| parallel.timings.contains(t)),
                "{protocol:?}: parallel walk lost a timing outcome"
            );
            assert!(
                parallel.schedules >= serial.schedules,
                "{protocol:?}: private digest tables can only walk more"
            );
        }
    }

    #[test]
    fn budget_truncation_is_reported() {
        let cfg = tiny(ProtocolKind::SwiftDir, 2);
        let report = explore(
            &cfg,
            &contended(),
            &ExploreConfig {
                max_schedules: 1,
                ..ExploreConfig::default()
            },
        );
        assert!(report.truncated);
        assert!(!report.exhaustive_and_clean());
    }
}
