//! The parallel experiment driver.
//!
//! Every figure in the paper is a sweep: the same simulation run over a
//! grid of (workload, protocol, architecture) points. The points are
//! independent — each builds its own [`System`](crate::System) — so the
//! sweep is embarrassingly parallel, and this module fans it over a
//! scoped thread pool with plain `std` primitives (no extra dependencies).
//!
//! Determinism is preserved by construction: each point's simulation is
//! seeded and self-contained, threads only pick *which* point to run next
//! (work stealing via an atomic index), and results are written into a
//! slot pre-assigned by input position. The output `Vec` is therefore in
//! input order and bit-identical to a serial run, whatever the schedule.
//!
//! The worker count comes from, in priority order: an explicit
//! [`ExperimentSet::threads`] call, the `SWIFTDIR_THREADS` environment
//! variable, then [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use swiftdir_core::ExperimentSet;
//!
//! let squares = ExperimentSet::new(vec![1u64, 2, 3, 4])
//!     .threads(2)
//!     .run(|&n| n * n);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Instant;

use sim_engine::{Json, ProgressSampler};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "SWIFTDIR_THREADS";

/// Environment variable overriding the default directory-bank count
/// picked up by [`SystemConfig`](crate::SystemConfig)'s builder.
pub const BANKS_ENV: &str = "SWIFTDIR_BANKS";

/// Wall-clock accounting of one sweep point (one configuration run by
/// [`ExperimentSet::run_with_report`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PointTiming {
    /// Input position of the point.
    pub index: usize,
    /// Wall-clock seconds the point's closure took.
    pub wall_s: f64,
}

/// Wall-clock accounting of a whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverReport {
    /// Per-point timings, in input order.
    pub points: Vec<PointTiming>,
    /// End-to-end wall-clock seconds of the sweep.
    pub total_wall_s: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl DriverReport {
    /// Sum of per-point wall seconds (CPU-side work; exceeds
    /// [`DriverReport::total_wall_s`] when workers run in parallel).
    pub fn points_wall_s(&self) -> f64 {
        self.points.iter().map(|p| p.wall_s).sum()
    }

    /// The slowest point, if any.
    pub fn slowest(&self) -> Option<&PointTiming> {
        self.points
            .iter()
            .max_by(|a, b| a.wall_s.total_cmp(&b.wall_s))
    }

    /// The report as a JSON value (for driver output files).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("threads", Json::Uint(self.threads as u64)),
            ("total_wall_s", Json::Float(self.total_wall_s)),
            ("points_wall_s", Json::Float(self.points_wall_s())),
            (
                "points",
                Json::array(self.points.iter().map(|p| {
                    Json::object([
                        ("index", Json::Uint(p.index as u64)),
                        ("wall_s", Json::Float(p.wall_s)),
                    ])
                })),
            ),
        ])
    }
}

/// A set of independent experiment configurations to fan over worker
/// threads.
#[derive(Debug)]
pub struct ExperimentSet<C> {
    configs: Vec<C>,
    threads: Option<usize>,
    progress: Option<Arc<ProgressSampler>>,
}

/// Worker count from the environment / host, used when
/// [`ExperimentSet::threads`] was not called: `SWIFTDIR_THREADS` if set
/// and a positive integer, else the host's available parallelism, else
/// one. An unusable `SWIFTDIR_THREADS` value warns to stderr (once per
/// process) and falls back to the host default rather than being
/// silently ignored.
pub fn default_threads() -> usize {
    static WARNED: Once = Once::new();
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => WARNED.call_once(|| {
                eprintln!(
                    "swiftdir: invalid {THREADS_ENV}={v:?} (want a positive integer); \
                     falling back to host parallelism"
                );
            }),
        },
        Err(std::env::VarError::NotPresent) => {}
        Err(std::env::VarError::NotUnicode(v)) => WARNED.call_once(|| {
            eprintln!(
                "swiftdir: invalid {THREADS_ENV}={v:?} (not unicode); \
                 falling back to host parallelism"
            );
        }),
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Default directory-bank count for a freshly built
/// [`SystemConfig`](crate::SystemConfig): `SWIFTDIR_BANKS` when set to
/// a positive power of two, else 1 (the monolithic pre-sharded LLC).
/// An unusable value warns to stderr (once per process) and falls back
/// rather than being silently ignored; explicit
/// [`banks`](crate::SystemConfigBuilder::banks) calls always win.
pub fn default_banks() -> usize {
    static WARNED: Once = Once::new();
    match std::env::var(BANKS_ENV) {
        Ok(v) => parse_banks(&v).unwrap_or_else(|| {
            WARNED.call_once(|| {
                eprintln!(
                    "swiftdir: invalid {BANKS_ENV}={v:?} (want a positive power of two); \
                     falling back to a single bank"
                );
            });
            1
        }),
        Err(_) => 1,
    }
}

/// `SWIFTDIR_BANKS` value parser: positive powers of two only.
fn parse_banks(v: &str) -> Option<usize> {
    match v.trim().parse::<usize>() {
        Ok(n) if n.is_power_of_two() => Some(n),
        _ => None,
    }
}

impl<C> ExperimentSet<C> {
    /// A set over `configs`, one experiment per element.
    pub fn new(configs: Vec<C>) -> Self {
        ExperimentSet {
            configs,
            threads: None,
            progress: None,
        }
    }

    /// Pins the worker count (overrides `SWIFTDIR_THREADS` and the host
    /// default). `threads(1)` forces a serial run on the calling thread.
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one worker thread is required");
        self.threads = Some(n);
        self
    }

    /// Attaches a campaign telemetry sampler: every worker updates its
    /// attribution slot (busy flag, claim/steal count, completions,
    /// busy wall time) around each work item and ticks the sampler
    /// afterwards. Purely observational — which thread runs which point
    /// and what each point computes are untouched, so results stay
    /// bit-identical with or without a sampler.
    pub fn progress(mut self, sampler: Arc<ProgressSampler>) -> Self {
        self.progress = Some(sampler);
        self
    }

    /// Number of configurations in the set.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Runs `f` once per configuration and returns the results **in input
    /// order**, regardless of which thread ran which point or in what
    /// order they finished.
    ///
    /// `f` must be safe to call from multiple threads at once; each call
    /// gets a distinct configuration. Panics in `f` propagate: a panicking
    /// worker poisons the run and this call panics rather than returning
    /// partial results.
    pub fn run<R, F>(self, f: F) -> Vec<R>
    where
        C: Sync,
        R: Send,
        F: Fn(&C) -> R + Sync,
    {
        let workers = self
            .threads
            .unwrap_or_else(default_threads)
            .min(self.configs.len().max(1));
        let configs = self.configs;
        let progress = self.progress;
        if workers <= 1 {
            return configs
                .iter()
                .map(|c| observed(progress.as_deref(), 0, || f(c)))
                .collect();
        }

        // Work stealing by atomic index; results land in the slot matching
        // their input position, so completion order never shows.
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(configs.len());
        slots.resize_with(configs.len(), || None);
        let results = Mutex::new(slots);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let (next, configs, results, f) = (&next, &configs, &results, &f);
                let progress = progress.as_deref();
                handles.push(scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(config) = configs.get(i) else {
                        break;
                    };
                    let r = observed(progress, w, || f(config));
                    results.lock().expect("a worker panicked")[i] = Some(r);
                }));
            }
            for h in handles {
                h.join().expect("experiment worker panicked");
            }
        });

        results
            .into_inner()
            .expect("a worker panicked")
            .into_iter()
            .map(|r| r.expect("every slot was filled"))
            .collect()
    }

    /// Like [`ExperimentSet::run`], but hands each worker **ownership**
    /// of its configuration instead of a shared reference — for
    /// configurations that are `Send` but not `Sync` (e.g. whole
    /// simulator instances carrying tracer sinks). Results are in input
    /// order, exactly as for [`ExperimentSet::run`].
    pub fn run_owned<R, F>(self, f: F) -> Vec<R>
    where
        C: Send,
        R: Send,
        F: Fn(C) -> R + Sync,
    {
        let workers = self
            .threads
            .unwrap_or_else(default_threads)
            .min(self.configs.len().max(1));
        let configs = self.configs;
        let progress = self.progress;
        if workers <= 1 {
            return configs
                .into_iter()
                .map(|c| observed(progress.as_deref(), 0, || f(c)))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let count = configs.len();
        // Each config sits behind its own mutex so a worker can *take*
        // it; the work-stealing index guarantees a slot is claimed once.
        let inputs: Vec<Mutex<Option<C>>> =
            configs.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
        slots.resize_with(count, || None);
        let results = Mutex::new(slots);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let (next, inputs, results, f) = (&next, &inputs, &results, &f);
                let progress = progress.as_deref();
                handles.push(scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = inputs.get(i) else {
                        break;
                    };
                    let config = slot
                        .lock()
                        .expect("a worker panicked")
                        .take()
                        .expect("each config is claimed exactly once");
                    let r = observed(progress, w, || f(config));
                    results.lock().expect("a worker panicked")[i] = Some(r);
                }));
            }
            for h in handles {
                h.join().expect("experiment worker panicked");
            }
        });

        results
            .into_inner()
            .expect("a worker panicked")
            .into_iter()
            .map(|r| r.expect("every slot was filled"))
            .collect()
    }

    /// Like [`ExperimentSet::run`], but also reports wall-clock timing:
    /// per-point seconds (in input order) plus the sweep total, for
    /// driver output and throughput accounting. The results themselves
    /// are identical to a plain `run` — timing never influences them.
    pub fn run_with_report<R, F>(self, f: F) -> (Vec<R>, DriverReport)
    where
        C: Sync,
        R: Send,
        F: Fn(&C) -> R + Sync,
    {
        let threads = self
            .threads
            .unwrap_or_else(default_threads)
            .min(self.configs.len().max(1));
        let start = Instant::now();
        let timed = self.run(|c| {
            let t0 = Instant::now();
            let r = f(c);
            (r, t0.elapsed().as_secs_f64())
        });
        let total_wall_s = start.elapsed().as_secs_f64();
        let mut results = Vec::with_capacity(timed.len());
        let mut points = Vec::with_capacity(timed.len());
        for (index, (r, wall_s)) in timed.into_iter().enumerate() {
            results.push(r);
            points.push(PointTiming { index, wall_s });
        }
        (
            results,
            DriverReport {
                points,
                total_wall_s,
                threads,
            },
        )
    }
}

/// Runs one work item under worker `w`'s attribution slot (claim,
/// busy-time accounting, completion count) and ticks the sampler
/// afterwards. With no sampler this is exactly the bare call.
pub(crate) fn observed<R>(
    progress: Option<&ProgressSampler>,
    w: usize,
    work: impl FnOnce() -> R,
) -> R {
    let Some(p) = progress else {
        return work();
    };
    let slot = p.counters().worker(w);
    slot.claim();
    let t0 = Instant::now();
    let r = work();
    slot.finish(t0.elapsed());
    p.tick();
    r
}

impl<C> FromIterator<C> for ExperimentSet<C> {
    /// Builds the set from any iterator of configurations.
    fn from_iter<I: IntoIterator<Item = C>>(configs: I) -> Self {
        Self::new(configs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_env_values_parse_as_positive_powers_of_two() {
        // Tested through the parser, not the process environment —
        // mutating env vars races with the parallel test harness.
        assert_eq!(parse_banks("1"), Some(1));
        assert_eq!(parse_banks(" 8 "), Some(8));
        assert_eq!(parse_banks("64"), Some(64));
        for bad in ["0", "6", "-2", "eight", ""] {
            assert_eq!(parse_banks(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn results_are_in_input_order() {
        let out = ExperimentSet::new((0..100u64).collect::<Vec<_>>())
            .threads(8)
            .run(|&i| i * 10);
        assert_eq!(out, (0..100).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_matches_parallel() {
        let work = |&(a, b): &(u64, u64)| -> u64 {
            // A deterministic but nontrivial function of the config.
            (0..1000).fold(a, |acc, i| acc.wrapping_mul(31).wrapping_add(b ^ i))
        };
        let configs: Vec<(u64, u64)> = (0..16).map(|i| (i, i * 7 + 1)).collect();
        let serial = ExperimentSet::new(configs.clone()).threads(1).run(work);
        let parallel = ExperimentSet::new(configs).threads(4).run(work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_workers_than_configs_is_fine() {
        let out = ExperimentSet::new(vec![1, 2]).threads(64).run(|&n| n + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_set_returns_empty() {
        let out: Vec<u32> = ExperimentSet::new(Vec::<u32>::new()).run(|&n| n);
        assert!(out.is_empty());
    }

    #[test]
    fn threads_one_runs_on_calling_thread() {
        let caller = std::thread::current().id();
        let ids = ExperimentSet::new(vec![(); 4])
            .threads(1)
            .run(|_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        ExperimentSet::new(vec![1]).threads(0);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn progress_attribution_counts_every_item_and_preserves_results() {
        use sim_engine::CampaignCounters;
        use std::time::Duration;

        for threads in [1, 4] {
            let sampler = Arc::new(ProgressSampler::new(
                CampaignCounters::new("driver-test", threads, &[]),
                Box::new(std::io::sink()),
                Duration::ZERO,
            ));
            let out = ExperimentSet::new((0..20u64).collect::<Vec<_>>())
                .threads(threads)
                .progress(Arc::clone(&sampler))
                .run(|&n| n * 3);
            assert_eq!(out, (0..20).map(|n| n * 3).collect::<Vec<_>>());
            let c = sampler.counters();
            let claimed: u64 = c.workers().iter().map(|w| w.claimed()).sum();
            let done: u64 = c.workers().iter().map(|w| w.done()).sum();
            assert_eq!(claimed, 20, "threads={threads}");
            assert_eq!(done, 20, "threads={threads}");
            assert!(c.workers().iter().all(|w| !w.is_busy()));
        }
    }

    #[test]
    fn run_with_report_times_every_point() {
        let (out, report) = ExperimentSet::new(vec![1u64, 2, 3])
            .threads(2)
            .run_with_report(|&n| n * n);
        assert_eq!(out, vec![1, 4, 9]);
        assert_eq!(report.threads, 2);
        assert_eq!(report.points.len(), 3);
        assert_eq!(
            report.points.iter().map(|p| p.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(report.points.iter().all(|p| p.wall_s >= 0.0));
        assert!(report.total_wall_s >= 0.0);
        assert!(report.slowest().is_some());
        let json = report.to_json();
        assert_eq!(json.get("threads").and_then(|j| j.as_u64()), Some(2));
        assert_eq!(
            json.get("points")
                .and_then(|j| j.as_array())
                .map(<[_]>::len),
            Some(3)
        );
    }
}
