//! DDR3-1600 DRAM timing model (paper Table V: `DDR3_1600_8x8`, one
//! channel, 2 ranks, 8 banks per rank, 1 KB row buffers,
//! tCAS-tRCD-tRP = 11-11-11).
//!
//! The model is transaction-level: the LLC's coherence controller asks the
//! [`MemoryController`] when a `Fetch` for a physical address completes and
//! schedules the corresponding `Mem_Data` response at that time. Banks keep
//! open-row state, so the three canonical access costs (row hit, closed
//! row, row conflict) and per-bank serialization all surface in the
//! latencies the cache hierarchy observes.
//!
//! # Example
//!
//! ```
//! use sim_engine::Cycle;
//! use swiftdir_mem::{DramConfig, MemoryController};
//!
//! let mut mc = MemoryController::new(DramConfig::ddr3_1600_8x8());
//! let first = mc.access(Cycle(0), swiftdir_mmu::PhysAddr(0), false);
//! let second = mc.access(first, swiftdir_mmu::PhysAddr(64), false);
//! // The second access hits the open row: strictly cheaper.
//! assert!(second - first < first - Cycle(0));
//! ```

pub mod bank;
pub mod config;
pub mod controller;
pub mod mapping;

pub use bank::{Bank, RowState};
pub use config::DramConfig;
pub use controller::{MemStats, MemUndo, MemoryController};
pub use mapping::DramAddress;
