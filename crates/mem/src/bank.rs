//! Per-bank open-row state.

use sim_engine::Cycle;

/// The row-buffer state of one bank.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum RowState {
    /// No row open (after precharge or at reset).
    #[default]
    Closed,
    /// A row is latched in the row buffer.
    Open(u64),
}

/// One DRAM bank: an open-row latch and a busy-until timestamp.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Bank {
    row: RowState,
    ready_at: Cycle,
}

/// How an access interacted with the row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Requested row was already open.
    Hit,
    /// Bank was closed; the row had to be activated.
    Closed,
    /// A different row was open; precharge then activate.
    Conflict,
}

impl Bank {
    /// A closed, idle bank.
    pub fn new() -> Self {
        Bank::default()
    }

    /// Current row state.
    pub fn row(&self) -> RowState {
        self.row
    }

    /// Earliest time the bank can accept a new command.
    pub fn ready_at(&self) -> Cycle {
        self.ready_at
    }

    /// Performs an access to `row` arriving at `now`: classifies the
    /// row-buffer outcome, serializes behind the bank's previous command,
    /// opens the row, and returns `(outcome, start_time)` where
    /// `start_time` is when the command actually began (the caller adds the
    /// outcome's latency and then [`Bank::complete`]s).
    pub fn begin_access(&mut self, now: Cycle, row: u64) -> (RowOutcome, Cycle) {
        let outcome = match self.row {
            RowState::Open(r) if r == row => RowOutcome::Hit,
            RowState::Open(_) => RowOutcome::Conflict,
            RowState::Closed => RowOutcome::Closed,
        };
        let start = now.max(self.ready_at);
        self.row = RowState::Open(row);
        (outcome, start)
    }

    /// Marks the bank busy until `until` (the completion time of the
    /// in-flight command).
    pub fn complete(&mut self, until: Cycle) {
        self.ready_at = self.ready_at.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        let mut bank = Bank::new();
        let (o1, _) = bank.begin_access(Cycle(0), 5);
        assert_eq!(o1, RowOutcome::Closed);
        let (o2, _) = bank.begin_access(Cycle(10), 5);
        assert_eq!(o2, RowOutcome::Hit);
        let (o3, _) = bank.begin_access(Cycle(20), 6);
        assert_eq!(o3, RowOutcome::Conflict);
        assert_eq!(bank.row(), RowState::Open(6));
    }

    #[test]
    fn serializes_behind_busy_bank() {
        let mut bank = Bank::new();
        let (_, s1) = bank.begin_access(Cycle(0), 1);
        assert_eq!(s1, Cycle(0));
        bank.complete(Cycle(100));
        let (_, s2) = bank.begin_access(Cycle(10), 1);
        assert_eq!(s2, Cycle(100), "second access waits for the first");
        assert_eq!(bank.ready_at(), Cycle(100));
    }

    #[test]
    fn complete_never_moves_ready_backwards() {
        let mut bank = Bank::new();
        bank.complete(Cycle(50));
        bank.complete(Cycle(20));
        assert_eq!(bank.ready_at(), Cycle(50));
    }
}
