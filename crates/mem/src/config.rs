//! DRAM geometry and timing configuration.

/// DRAM configuration, with timings expressed in **CPU cycles** (3 GHz
/// core clock) so the memory controller composes directly with the rest of
/// the simulator.
///
/// The defaults reproduce Table V's `DDR3_1600_8x8`: the DRAM command
/// clock is 800 MHz, so one memory cycle is 3.75 CPU cycles; the 11-cycle
/// tCAS/tRCD/tRP each round to 41 CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of channels (Table V: 1).
    pub channels: u32,
    /// Ranks per channel (Table V: 2).
    pub ranks: u32,
    /// Banks per rank (Table V: 8).
    pub banks_per_rank: u32,
    /// Row-buffer size in bytes (Table V: 1 KB).
    pub row_buffer_bytes: u64,
    /// Column-access latency (tCAS) in CPU cycles.
    pub t_cas: u64,
    /// RAS-to-CAS delay (tRCD) in CPU cycles.
    pub t_rcd: u64,
    /// Row-precharge time (tRP) in CPU cycles.
    pub t_rp: u64,
    /// Data-burst transfer time for one 64-byte block, in CPU cycles
    /// (BL8 at 1600 MT/s ≈ 5 ns ≈ 15 CPU cycles).
    pub t_burst: u64,
}

impl DramConfig {
    /// The paper's configuration: `DDR3_1600_8x8`, 1 channel, 2 ranks,
    /// 8 banks/rank, 1 KB row buffers, tCAS-tRCD-tRP = 11-11-11.
    pub fn ddr3_1600_8x8() -> Self {
        DramConfig {
            channels: 1,
            ranks: 2,
            banks_per_rank: 8,
            row_buffer_bytes: 1024,
            // 11 DRAM cycles x 3.75 CPU cycles, rounded.
            t_cas: 41,
            t_rcd: 41,
            t_rp: 41,
            t_burst: 15,
        }
    }

    /// Total banks across all ranks and channels.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks * self.banks_per_rank
    }

    /// Latency of a row-buffer hit (CAS + burst).
    pub fn row_hit_latency(&self) -> u64 {
        self.t_cas + self.t_burst
    }

    /// Latency when the bank is idle/closed (RCD + CAS + burst).
    pub fn row_closed_latency(&self) -> u64 {
        self.t_rcd + self.t_cas + self.t_burst
    }

    /// Latency of a row conflict (precharge + RCD + CAS + burst).
    pub fn row_conflict_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cas + self.t_burst
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr3_1600_8x8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_defaults() {
        let cfg = DramConfig::ddr3_1600_8x8();
        assert_eq!(cfg.channels, 1);
        assert_eq!(cfg.ranks, 2);
        assert_eq!(cfg.banks_per_rank, 8);
        assert_eq!(cfg.row_buffer_bytes, 1024);
        assert_eq!(cfg.total_banks(), 16);
        assert_eq!(cfg, DramConfig::default());
    }

    #[test]
    fn latency_ordering() {
        let cfg = DramConfig::default();
        assert!(cfg.row_hit_latency() < cfg.row_closed_latency());
        assert!(cfg.row_closed_latency() < cfg.row_conflict_latency());
    }
}
