//! The memory controller: serializes accesses per bank and reports
//! completion times to the LLC.

use sim_engine::Cycle;
use swiftdir_mmu::PhysAddr;

use crate::bank::{Bank, RowOutcome, RowState};
use crate::config::DramConfig;
use crate::mapping::DramAddress;

/// Access counters, broken down by row-buffer outcome.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Total read accesses.
    pub reads: u64,
    /// Total write (writeback) accesses.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to a closed bank.
    pub row_closed: u64,
    /// Row conflicts (precharge needed).
    pub row_conflicts: u64,
}

impl MemStats {
    /// Accumulates another channel's counters (multi-bank aggregation).
    pub fn merge(&mut self, other: &MemStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_closed += other.row_closed;
        self.row_conflicts += other.row_conflicts;
    }

    /// Row-buffer hit rate in `[0, 1]` (0 when idle).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_closed + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// A first-come-first-served memory controller over open-row banks.
///
/// # Example
///
/// ```
/// use sim_engine::Cycle;
/// use swiftdir_mem::{DramConfig, MemoryController};
/// use swiftdir_mmu::PhysAddr;
///
/// let mut mc = MemoryController::new(DramConfig::default());
/// let done = mc.access(Cycle(0), PhysAddr(0x4000), false);
/// assert!(done > Cycle(0));
/// assert_eq!(mc.stats().reads, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: DramConfig,
    banks: Vec<Bank>,
    stats: MemStats,
}

impl MemoryController {
    /// A controller with all banks closed and idle.
    pub fn new(cfg: DramConfig) -> Self {
        let banks = vec![Bank::new(); cfg.total_banks() as usize];
        MemoryController {
            cfg,
            banks,
            stats: MemStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Performs an access to `addr` arriving at `now`; returns the cycle at
    /// which the data burst completes (when `Mem_Data` can be sent, or a
    /// writeback is durable).
    pub fn access(&mut self, now: Cycle, addr: PhysAddr, is_write: bool) -> Cycle {
        let coords = DramAddress::decompose(addr, &self.cfg);
        let bank = &mut self.banks[coords.flat_bank as usize];
        let (outcome, start) = bank.begin_access(now, coords.row);
        let latency = match outcome {
            RowOutcome::Hit => {
                self.stats.row_hits += 1;
                self.cfg.row_hit_latency()
            }
            RowOutcome::Closed => {
                self.stats.row_closed += 1;
                self.cfg.row_closed_latency()
            }
            RowOutcome::Conflict => {
                self.stats.row_conflicts += 1;
                self.cfg.row_conflict_latency()
            }
        };
        let done = start + Cycle(latency);
        bank.complete(done);
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        done
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Copies the controller's mutable state (bank rows/timings and stats)
    /// into `undo` for a later [`restore`](Self::restore). `Bank` is `Copy`,
    /// so this is a flat memcpy into a reusable buffer.
    pub fn save_into(&self, undo: &mut MemUndo) {
        undo.banks.clone_from(&self.banks);
        undo.stats = self.stats;
    }

    /// Restores state captured by [`save_into`](Self::save_into).
    pub fn restore(&mut self, undo: &MemUndo) {
        self.banks.clone_from(&undo.banks);
        self.stats = undo.stats;
    }

    /// Feeds the controller's forward-looking timing state into `mix`, with
    /// bank-ready times expressed relative to `now` — two controllers whose
    /// future behavior is identical modulo a global time shift digest
    /// identically. Used by state-hash pruning in schedule exploration.
    pub fn digest_into(&self, now: Cycle, mix: &mut impl FnMut(u64)) {
        for bank in &self.banks {
            match bank.row() {
                RowState::Closed => mix(0),
                RowState::Open(row) => {
                    mix(1);
                    mix(row);
                }
            }
            mix(bank.ready_at().get().saturating_sub(now.get()));
        }
    }
}

/// A reusable snapshot buffer for [`MemoryController::save_into`].
#[derive(Debug, Default, Clone)]
pub struct MemUndo {
    banks: Vec<Bank>,
    stats: MemStats,
}

impl MemUndo {
    /// Approximate heap footprint, for undo-cost profiling.
    pub fn approx_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>() + self.banks.len() * std::mem::size_of::<Bank>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(DramConfig::default())
    }

    #[test]
    fn first_access_pays_activation() {
        let mut mc = mc();
        let done = mc.access(Cycle(0), PhysAddr(0), false);
        assert_eq!(done.get(), DramConfig::default().row_closed_latency());
        assert_eq!(mc.stats().row_closed, 1);
    }

    #[test]
    fn same_row_second_access_is_a_hit() {
        let mut mc = mc();
        let d1 = mc.access(Cycle(0), PhysAddr(0), false);
        let d2 = mc.access(d1, PhysAddr(64), false);
        assert_eq!((d2 - d1).get(), DramConfig::default().row_hit_latency());
        assert_eq!(mc.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_costs_precharge() {
        let cfg = DramConfig::default();
        let mut mc = mc();
        let stride = cfg.row_buffer_bytes * cfg.total_banks() as u64;
        let d1 = mc.access(Cycle(0), PhysAddr(0), false);
        // Same bank, next row.
        let d2 = mc.access(d1, PhysAddr(stride), false);
        assert_eq!((d2 - d1).get(), cfg.row_conflict_latency());
        assert_eq!(mc.stats().row_conflicts, 1);
    }

    #[test]
    fn different_banks_overlap() {
        let mut mc = mc();
        // Two simultaneous accesses to different banks both start at 0.
        let d1 = mc.access(Cycle(0), PhysAddr(0), false);
        let d2 = mc.access(Cycle(0), PhysAddr(1024), false);
        assert_eq!(d1, d2, "no serialization across banks");
    }

    #[test]
    fn same_bank_serializes() {
        let mut mc = mc();
        let d1 = mc.access(Cycle(0), PhysAddr(0), false);
        let d2 = mc.access(Cycle(0), PhysAddr(64), false);
        assert!(d2 > d1, "second same-bank access queues behind the first");
    }

    #[test]
    fn write_counted_separately() {
        let mut mc = mc();
        mc.access(Cycle(0), PhysAddr(0), true);
        mc.access(Cycle(0), PhysAddr(0), false);
        assert_eq!(mc.stats().writes, 1);
        assert_eq!(mc.stats().reads, 1);
    }

    #[test]
    fn save_restore_roundtrip_is_exact() {
        let mut mc = mc();
        mc.access(Cycle(0), PhysAddr(0), false);
        let mut undo = MemUndo::default();
        mc.save_into(&mut undo);
        let reference = mc.clone();
        mc.access(Cycle(5), PhysAddr(64), true);
        mc.access(Cycle(5), PhysAddr(0x40_0000), false);
        mc.restore(&undo);
        assert_eq!(mc.stats(), reference.stats());
        assert_eq!(mc.banks, reference.banks);
        assert!(undo.approx_bytes() > 0);
    }

    #[test]
    fn hit_rate_computation() {
        let mut mc = mc();
        let d1 = mc.access(Cycle(0), PhysAddr(0), false);
        mc.access(d1, PhysAddr(64), false);
        let s = mc.stats();
        assert!((s.row_hit_rate() - 0.5).abs() < 1e-12);
    }
}
