//! Physical-address → DRAM-coordinate mapping.

use swiftdir_mmu::PhysAddr;

use crate::config::DramConfig;

/// The DRAM coordinates of a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramAddress {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// Flat bank index across channels and ranks (for bank-state arrays).
    pub flat_bank: u32,
}

impl DramAddress {
    /// Decomposes `addr` using row-interleaved mapping: consecutive
    /// row-buffer-sized chunks rotate across banks, then ranks, then
    /// channels, which is the standard layout that spreads streaming
    /// accesses across banks.
    pub fn decompose(addr: PhysAddr, cfg: &DramConfig) -> Self {
        let chunk = addr.0 / cfg.row_buffer_bytes;
        let bank = (chunk % cfg.banks_per_rank as u64) as u32;
        let after_bank = chunk / cfg.banks_per_rank as u64;
        let rank = (after_bank % cfg.ranks as u64) as u32;
        let after_rank = after_bank / cfg.ranks as u64;
        let channel = (after_rank % cfg.channels as u64) as u32;
        let row = after_rank / cfg.channels as u64;
        let flat_bank = (channel * cfg.ranks + rank) * cfg.banks_per_rank + bank;
        DramAddress {
            channel,
            rank,
            bank,
            row,
            flat_bank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_chunk_same_coordinates() {
        let cfg = DramConfig::default();
        let a = DramAddress::decompose(PhysAddr(0), &cfg);
        let b = DramAddress::decompose(PhysAddr(1023), &cfg);
        assert_eq!(a, b, "addresses within one row-buffer chunk co-locate");
    }

    #[test]
    fn adjacent_chunks_hit_different_banks() {
        let cfg = DramConfig::default();
        let a = DramAddress::decompose(PhysAddr(0), &cfg);
        let b = DramAddress::decompose(PhysAddr(1024), &cfg);
        assert_ne!(a.flat_bank, b.flat_bank);
    }

    #[test]
    fn row_advances_after_all_banks() {
        let cfg = DramConfig::default();
        let chunks_per_row_step = (cfg.banks_per_rank * cfg.ranks * cfg.channels) as u64;
        let a = DramAddress::decompose(PhysAddr(0), &cfg);
        let b = DramAddress::decompose(PhysAddr(chunks_per_row_step * cfg.row_buffer_bytes), &cfg);
        assert_eq!(a.flat_bank, b.flat_bank, "wrapped to the same bank");
        assert_eq!(b.row, a.row + 1, "but one row further");
    }

    #[test]
    fn flat_bank_within_bounds() {
        let cfg = DramConfig::default();
        for i in 0..1000u64 {
            let d = DramAddress::decompose(PhysAddr(i * 717), &cfg);
            assert!(d.flat_bank < cfg.total_banks());
        }
    }
}
