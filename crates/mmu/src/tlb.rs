//! Translation lookaside buffers.
//!
//! Table V configures 64-entry fully-associative instruction and data TLBs.
//! A TLB entry caches the translation *and* the permission bits — including
//! the write-protection bit SwiftDir transmits to the cache hierarchy — so
//! a TLB hit delivers the WP bit with zero extra latency (paper §IV-B).

use sim_engine::FxHashMap;

use crate::addr::{Pfn, Vpn};

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// The virtual page.
    pub vpn: Vpn,
    /// The physical frame.
    pub pfn: Pfn,
    /// Cached R/W permission (true = writable).
    pub writable: bool,
    /// Cached write-protection signal (present ∧ ¬writable at fill time).
    pub write_protected: bool,
}

/// Hit/miss counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by capacity.
    pub evictions: u64,
    /// Entries removed by shootdowns.
    pub shootdowns: u64,
}

impl TlbStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fully-associative TLB with true-LRU replacement.
///
/// # Example
///
/// ```
/// use swiftdir_mmu::{Pfn, Tlb, TlbEntry, Vpn};
///
/// let mut tlb = Tlb::new(64);
/// assert!(tlb.lookup(Vpn(1)).is_none());
/// tlb.fill(TlbEntry { vpn: Vpn(1), pfn: Pfn(9), writable: false, write_protected: true });
/// let e = tlb.lookup(Vpn(1)).expect("filled");
/// assert!(e.write_protected);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(TlbEntry, u64)>, // (entry, last-use tick)
    /// vpn → slot in `entries`, so lookups are a hash probe instead of a
    /// linear scan over the whole TLB. Kept in sync across `swap_remove`.
    slots: FxHashMap<Vpn, usize>,
    capacity: usize,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// A TLB holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity TLB");
        Tlb {
            entries: Vec::with_capacity(capacity),
            slots: FxHashMap::default(),
            capacity,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Removes the entry in `slot`, repairing the vpn→slot map for the
    /// entry that `swap_remove` moves into its place.
    fn evict_slot(&mut self, slot: usize) -> TlbEntry {
        let (removed, _) = self.entries.swap_remove(slot);
        self.slots.remove(&removed.vpn);
        if let Some((moved, _)) = self.entries.get(slot) {
            self.slots.insert(moved.vpn, slot);
        }
        removed
    }

    /// Looks up `vpn`, updating LRU state and hit/miss counters.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<TlbEntry> {
        self.tick += 1;
        match self.slots.get(&vpn) {
            Some(&slot) => {
                let (entry, last_use) = &mut self.entries[slot];
                *last_use = self.tick;
                self.stats.hits += 1;
                Some(*entry)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Installs a translation after a page walk, evicting LRU if full.
    /// Replaces any stale entry for the same page.
    pub fn fill(&mut self, entry: TlbEntry) {
        self.tick += 1;
        if let Some(&slot) = self.slots.get(&entry.vpn) {
            self.entries[slot] = (entry, self.tick);
            return;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("capacity > 0, so the TLB is non-empty here");
            self.evict_slot(lru);
            self.stats.evictions += 1;
        }
        self.slots.insert(entry.vpn, self.entries.len());
        self.entries.push((entry, self.tick));
    }

    /// Removes the entry for `vpn` (single-page shootdown, as after a CoW
    /// fault or KSM merge changes the PTE). Returns whether one was present.
    pub fn shootdown(&mut self, vpn: Vpn) -> bool {
        let Some(&slot) = self.slots.get(&vpn) else {
            return false;
        };
        self.evict_slot(slot);
        self.stats.shootdowns += 1;
        true
    }

    /// Removes all entries (full flush, e.g. context switch without ASIDs).
    pub fn flush(&mut self) {
        self.stats.shootdowns += self.entries.len() as u64;
        self.entries.clear();
        self.slots.clear();
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u64) -> TlbEntry {
        TlbEntry {
            vpn: Vpn(vpn),
            pfn: Pfn(vpn + 1000),
            writable: true,
            write_protected: false,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(4);
        assert!(tlb.lookup(Vpn(1)).is_none());
        tlb.fill(entry(1));
        assert_eq!(tlb.lookup(Vpn(1)).unwrap().pfn, Pfn(1001));
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
        assert!((tlb.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut tlb = Tlb::new(2);
        tlb.fill(entry(1));
        tlb.fill(entry(2));
        tlb.lookup(Vpn(1)); // 1 is now MRU
        tlb.fill(entry(3)); // evicts 2
        assert!(tlb.lookup(Vpn(1)).is_some());
        assert!(tlb.lookup(Vpn(2)).is_none());
        assert!(tlb.lookup(Vpn(3)).is_some());
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn refill_same_page_updates_in_place() {
        let mut tlb = Tlb::new(2);
        tlb.fill(entry(1));
        let mut updated = entry(1);
        updated.write_protected = true;
        tlb.fill(updated);
        assert_eq!(tlb.len(), 1);
        assert!(tlb.lookup(Vpn(1)).unwrap().write_protected);
    }

    #[test]
    fn shootdown_removes_target_only() {
        let mut tlb = Tlb::new(4);
        tlb.fill(entry(1));
        tlb.fill(entry(2));
        assert!(tlb.shootdown(Vpn(1)));
        assert!(!tlb.shootdown(Vpn(1)));
        assert!(tlb.lookup(Vpn(2)).is_some());
        assert_eq!(tlb.stats().shootdowns, 1);
    }

    #[test]
    fn flush_empties() {
        let mut tlb = Tlb::new(4);
        tlb.fill(entry(1));
        tlb.fill(entry(2));
        tlb.flush();
        assert!(tlb.is_empty());
        assert_eq!(tlb.stats().shootdowns, 2);
    }

    #[test]
    fn capacity_respected() {
        let mut tlb = Tlb::new(64);
        for i in 0..200 {
            tlb.fill(entry(i));
        }
        assert_eq!(tlb.len(), 64);
        assert_eq!(tlb.stats().evictions, 136);
        // The most recent 64 survive.
        assert!(tlb.lookup(Vpn(199)).is_some());
        assert!(tlb.lookup(Vpn(100)).is_none());
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        Tlb::new(0);
    }
}
