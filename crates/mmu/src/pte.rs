//! Page-table entries.

use std::fmt;

use crate::addr::Pfn;

/// A page-table entry, modelled on the x86-64 leaf PTE fields that matter
/// to SwiftDir.
///
/// The **R/W bit** ([`Pte::writable`]) is the write-protection signal the
/// MMU transmits to the cache hierarchy (paper §IV-A2): `mk_pte` clears it
/// for private file mappings and unwritable shared mappings, and KSM's
/// `write_protect_page` clears it when merging.
///
/// The software-defined [`Pte::cow`] bit distinguishes "write-protected
/// because copy-on-write is pending" (a write fault duplicates the frame)
/// from "write-protected, writes are a protection error".
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pte {
    /// Present bit: the page is mapped to a frame.
    pub present: bool,
    /// R/W bit: 1 = writable, 0 = write-protected (read-only).
    pub writable: bool,
    /// NX complement: whether instruction fetch is allowed.
    pub executable: bool,
    /// Accessed bit, set by the MMU on any translation.
    pub accessed: bool,
    /// Dirty bit, set by the MMU on a write translation.
    pub dirty: bool,
    /// Software bit: a write fault should copy-on-write rather than fail.
    pub cow: bool,
    /// Software bit: frame is KSM-merged (shared, write-protected).
    pub ksm: bool,
    /// The mapped physical frame.
    pub pfn: Pfn,
}

impl Pte {
    /// An absent (all-zero) entry.
    pub fn absent() -> Pte {
        Pte::default()
    }

    /// A present leaf entry; the analogue of Linux's `mk_pte(page, prot)`.
    ///
    /// `writable` here is the *effective* R/W bit after the `vm_page_prot`
    /// logic (paper §IV-A2), not the VMA's nominal protection.
    pub fn leaf(pfn: Pfn, writable: bool, executable: bool) -> Pte {
        Pte {
            present: true,
            writable,
            executable,
            accessed: false,
            dirty: false,
            cow: false,
            ksm: false,
            pfn,
        }
    }

    /// Marks the entry copy-on-write: clears R/W and sets the CoW bit.
    /// This is what mapping a writable `MAP_PRIVATE` region produces.
    #[must_use]
    pub fn with_cow(mut self) -> Pte {
        self.writable = false;
        self.cow = true;
        self
    }

    /// Linux's `write_protect_page` as used by KSM: clears R/W, flags the
    /// entry as merged, and makes writes copy-on-write.
    pub fn write_protect_for_ksm(&mut self, merged_pfn: Pfn) {
        self.pfn = merged_pfn;
        self.writable = false;
        self.cow = true;
        self.ksm = true;
        self.dirty = false;
    }

    /// The write-protection signal SwiftDir transmits with the translated
    /// address: present and R/W = 0.
    pub fn write_protected(&self) -> bool {
        self.present && !self.writable
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.present {
            return f.write_str("<absent>");
        }
        write!(
            f,
            "pfn={} {}{}{}{}{}{}",
            self.pfn.0,
            if self.writable { 'W' } else { 'r' },
            if self.executable { 'X' } else { '-' },
            if self.accessed { 'A' } else { '-' },
            if self.dirty { 'D' } else { '-' },
            if self.cow { 'C' } else { '-' },
            if self.ksm { 'K' } else { '-' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_is_not_write_protected() {
        let pte = Pte::absent();
        assert!(!pte.present);
        assert!(!pte.write_protected(), "absent pages are not WP data");
    }

    #[test]
    fn leaf_readonly_is_write_protected() {
        let pte = Pte::leaf(Pfn(3), false, true);
        assert!(pte.write_protected());
        assert!(pte.executable);
    }

    #[test]
    fn leaf_writable_is_not_write_protected() {
        let pte = Pte::leaf(Pfn(3), true, false);
        assert!(!pte.write_protected());
    }

    #[test]
    fn cow_clears_rw() {
        let pte = Pte::leaf(Pfn(4), true, false).with_cow();
        assert!(!pte.writable);
        assert!(pte.cow);
        assert!(pte.write_protected());
    }

    #[test]
    fn ksm_write_protect() {
        let mut pte = Pte::leaf(Pfn(5), true, false);
        pte.dirty = true;
        pte.write_protect_for_ksm(Pfn(9));
        assert_eq!(pte.pfn, Pfn(9));
        assert!(pte.ksm && pte.cow && !pte.writable && !pte.dirty);
        assert!(pte.write_protected());
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Pte::absent().to_string(), "<absent>");
        let pte = Pte::leaf(Pfn(1), true, true);
        assert!(pte.to_string().contains("pfn=1"));
    }
}
