//! Per-process address spaces.

use crate::addr::{VirtAddr, Vpn, PAGE_SIZE};
use crate::page_table::PageTable;
use crate::prot::{MapFlags, Prot};
use crate::vma::{Backing, Vma};

/// A process address space: a sorted list of [`Vma`]s plus the page table.
///
/// Mapping placement is a simple bump allocator starting at a conventional
/// `mmap` base; fixed-address mapping is available for tests that need
/// deterministic layouts. Fault handling lives in
/// [`MemoryManager`](crate::MemoryManager) because it needs physical memory
/// and the shared page cache.
#[derive(Debug, Default, Clone)]
pub struct AddressSpace {
    vmas: Vec<Vma>,
    page_table: PageTable,
    next_map: Vpn,
}

/// Errors from mapping operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The requested fixed range overlaps an existing mapping.
    Overlap,
    /// Zero-length mapping requested.
    EmptyMapping,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MapError::Overlap => "requested range overlaps an existing mapping",
            MapError::EmptyMapping => "zero-length mapping",
        })
    }
}

impl std::error::Error for MapError {}

/// Conventional first page handed out by the bump allocator
/// (0x0000_7000_0000_0000 >> 12, a user-space-looking mmap base).
const MMAP_BASE: Vpn = Vpn(0x0007_0000_0000);

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        AddressSpace {
            vmas: Vec::new(),
            page_table: PageTable::new(),
            next_map: MMAP_BASE,
        }
    }

    /// Creates a mapping of `len` bytes (rounded up to whole pages) at an
    /// allocator-chosen address; the core of `mmap(2)`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::EmptyMapping`] when `len == 0`.
    pub fn map(
        &mut self,
        len: u64,
        prot: Prot,
        flags: MapFlags,
        backing: Backing,
    ) -> Result<VirtAddr, MapError> {
        if len == 0 {
            return Err(MapError::EmptyMapping);
        }
        let pages = len.div_ceil(PAGE_SIZE);
        let start = self.next_map;
        // Leave a one-page guard gap between mappings; real mmap does not,
        // but the gap makes accidental range overruns fail fast in tests.
        self.next_map = Vpn(self.next_map.0 + pages + 1);
        let vma = Vma {
            start,
            pages,
            prot,
            flags,
            backing,
        };
        self.vmas.push(vma);
        Ok(start.base())
    }

    /// Creates a mapping at a caller-chosen page (like `MAP_FIXED`).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::Overlap`] if the range intersects an existing
    /// mapping, or [`MapError::EmptyMapping`] when `pages == 0`.
    pub fn map_fixed(
        &mut self,
        start: Vpn,
        pages: u64,
        prot: Prot,
        flags: MapFlags,
        backing: Backing,
    ) -> Result<VirtAddr, MapError> {
        if pages == 0 {
            return Err(MapError::EmptyMapping);
        }
        let end = Vpn(start.0 + pages);
        if self
            .vmas
            .iter()
            .any(|v| start.0 < v.end().0 && v.start.0 < end.0)
        {
            return Err(MapError::Overlap);
        }
        self.vmas.push(Vma {
            start,
            pages,
            prot,
            flags,
            backing,
        });
        self.next_map = Vpn(self.next_map.0.max(end.0 + 1));
        Ok(start.base())
    }

    /// Removes the mapping containing `vpn` and returns it along with every
    /// present PTE inside it (so the caller can release frames).
    pub fn unmap(&mut self, vpn: Vpn) -> Option<(Vma, Vec<(Vpn, crate::Pte)>)> {
        let idx = self.vmas.iter().position(|v| v.contains(vpn))?;
        let vma = self.vmas.remove(idx);
        let mut freed = Vec::new();
        for i in 0..vma.pages {
            let page = vma.start.offset(i);
            if let Some(pte) = self.page_table.unmap(page) {
                if pte.present {
                    freed.push((page, pte));
                }
            }
        }
        Some((vma, freed))
    }

    /// The VMA containing `vpn`, if any.
    pub fn vma_for(&self, vpn: Vpn) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(vpn))
    }

    /// All VMAs (unordered).
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// The page table (read-only).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The page table (mutable; used by the fault handler and KSM).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pfn;
    use crate::pte::Pte;

    #[test]
    fn map_allocates_distinct_ranges() {
        let mut space = AddressSpace::new();
        let a = space
            .map(
                PAGE_SIZE * 2,
                Prot::READ,
                MapFlags::PRIVATE,
                Backing::Anonymous,
            )
            .unwrap();
        let b = space
            .map(PAGE_SIZE, Prot::READ, MapFlags::PRIVATE, Backing::Anonymous)
            .unwrap();
        assert_ne!(a.vpn(), b.vpn());
        assert!(space.vma_for(a.vpn()).is_some());
        assert!(space.vma_for(b.vpn()).is_some());
        // The 2-page mapping covers its second page too.
        assert!(space.vma_for(a.vpn().offset(1)).is_some());
    }

    #[test]
    fn map_rounds_up_to_pages() {
        let mut space = AddressSpace::new();
        let a = space
            .map(1, Prot::READ, MapFlags::PRIVATE, Backing::Anonymous)
            .unwrap();
        let vma = space.vma_for(a.vpn()).unwrap();
        assert_eq!(vma.pages, 1);
        let b = space
            .map(
                PAGE_SIZE + 1,
                Prot::READ,
                MapFlags::PRIVATE,
                Backing::Anonymous,
            )
            .unwrap();
        assert_eq!(space.vma_for(b.vpn()).unwrap().pages, 2);
    }

    #[test]
    fn zero_length_map_fails() {
        let mut space = AddressSpace::new();
        assert_eq!(
            space.map(0, Prot::READ, MapFlags::PRIVATE, Backing::Anonymous),
            Err(MapError::EmptyMapping)
        );
    }

    #[test]
    fn fixed_mapping_and_overlap_detection() {
        let mut space = AddressSpace::new();
        space
            .map_fixed(
                Vpn(100),
                10,
                Prot::READ,
                MapFlags::PRIVATE,
                Backing::Anonymous,
            )
            .unwrap();
        // Overlapping tail.
        assert_eq!(
            space.map_fixed(
                Vpn(105),
                10,
                Prot::READ,
                MapFlags::PRIVATE,
                Backing::Anonymous
            ),
            Err(MapError::Overlap)
        );
        // Adjacent is fine.
        space
            .map_fixed(
                Vpn(110),
                5,
                Prot::READ,
                MapFlags::PRIVATE,
                Backing::Anonymous,
            )
            .unwrap();
    }

    #[test]
    fn unmap_returns_present_ptes() {
        let mut space = AddressSpace::new();
        let va = space
            .map(
                PAGE_SIZE * 3,
                Prot::READ,
                MapFlags::PRIVATE,
                Backing::Anonymous,
            )
            .unwrap();
        let vpn = va.vpn();
        space
            .page_table_mut()
            .map(vpn, Pte::leaf(Pfn(1), false, false));
        space
            .page_table_mut()
            .map(vpn.offset(2), Pte::leaf(Pfn(2), false, false));
        let (vma, freed) = space.unmap(vpn.offset(1)).unwrap();
        assert_eq!(vma.pages, 3);
        assert_eq!(freed.len(), 2);
        assert!(space.vma_for(vpn).is_none());
        assert!(space.page_table().get(vpn).is_none());
    }

    #[test]
    fn unmap_unknown_page_is_none() {
        let mut space = AddressSpace::new();
        assert!(space.unmap(Vpn(1)).is_none());
    }
}
