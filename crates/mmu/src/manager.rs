//! The memory manager: `mmap`, demand paging, copy-on-write, the shared
//! page cache, and address translation carrying the write-protection bit.

use sim_engine::FxHashMap;
use std::fmt;

use std::sync::Arc;

use crate::addr::{Pfn, PhysAddr, VirtAddr, PAGE_SIZE};
use crate::page_table::PT_LEVELS;
use crate::phys::PhysMemory;
use crate::prot::{MapFlags, Prot};
use crate::pte::Pte;
use crate::space::{AddressSpace, MapError};
use crate::vma::{Backing, Vma};

/// Handle to an address space created by [`MemoryManager::create_space`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpaceId(pub u32);

/// The kind of memory access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Fetch,
}

/// A completed translation: what the MMU hands the cache hierarchy.
///
/// Besides the physical address, SwiftDir transmits the PTE's R/W bit —
/// [`Translation::write_protected`] — which the L1 controller turns into a
/// `GETS_WP` coherence request (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The translated physical address.
    pub paddr: PhysAddr,
    /// The PTE R/W bit, inverted: true when the page is write-protected.
    pub write_protected: bool,
    /// Page-walk levels touched (0 when served from software state without
    /// a walk; callers model TLB hits separately via [`crate::Tlb`]).
    pub walk_levels: u32,
    /// Faults taken while resolving this access (demand paging, CoW).
    pub faults: u32,
}

/// Why a translation could not be completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// No VMA covers the address (SIGSEGV).
    Unmapped,
    /// The VMA forbids this access and no CoW applies (SIGSEGV).
    Protection,
}

/// Error type for [`MemoryManager::translate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslateError {
    /// What went wrong.
    pub kind: FaultKind,
    /// The faulting address.
    pub addr: VirtAddr,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            FaultKind::Unmapped => "unmapped address",
            FaultKind::Protection => "protection violation",
        };
        write!(f, "{what} at {}", self.addr)
    }
}

impl std::error::Error for TranslateError {}

/// Central memory-management state shared by all cores: physical memory,
/// per-process address spaces, the file registry, and the page cache.
///
/// # Example: copy-on-write leaves write-protection behind
///
/// ```
/// use swiftdir_mmu::{Access, MapFlags, MemoryManager, Prot};
///
/// let mut mm = MemoryManager::new();
/// let file = mm.register_file("libdemo.so", vec![7u8; 4096].into());
/// let s = mm.create_space();
/// let va = mm
///     .mmap_file(s, file, 0, 4096, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
///     .unwrap();
///
/// // The first read faults the shared page-cache frame in, write-protected.
/// let read = mm.translate(s, va, Access::Read).unwrap();
/// assert!(read.write_protected);
///
/// // A write triggers copy-on-write: new frame, and now writable.
/// let write = mm.translate(s, va, Access::Write).unwrap();
/// assert!(!write.write_protected);
/// assert_ne!(read.paddr.pfn(), write.paddr.pfn());
/// ```
#[derive(Debug, Default)]
pub struct MemoryManager {
    phys: PhysMemory,
    spaces: Vec<AddressSpace>,
    files: Vec<FileImage>,
    /// (file, page offset) → page-cache frame, shared across processes.
    page_cache: FxHashMap<(u32, u64), Pfn>,
    stats: MmStats,
}

#[derive(Debug)]
struct FileImage {
    name: String,
    data: Arc<[u8]>,
}

/// Counters the manager accumulates across its lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MmStats {
    /// Demand-paging (minor/major) faults handled.
    pub demand_faults: u64,
    /// Copy-on-write faults handled.
    pub cow_faults: u64,
    /// Page-cache hits (a second process mapping an already-resident file page).
    pub page_cache_hits: u64,
}

impl MemoryManager {
    /// An empty manager.
    pub fn new() -> Self {
        MemoryManager::default()
    }

    /// Creates a new, empty address space.
    pub fn create_space(&mut self) -> SpaceId {
        let id = SpaceId(self.spaces.len() as u32);
        self.spaces.push(AddressSpace::new());
        id
    }

    /// Registers a file image (e.g. a shared-library ELF) and returns its
    /// handle for [`MemoryManager::mmap_file`].
    pub fn register_file(&mut self, name: &str, data: Arc<[u8]>) -> u32 {
        let id = self.files.len() as u32;
        self.files.push(FileImage {
            name: name.to_string(),
            data,
        });
        id
    }

    /// The registered name of file `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`MemoryManager::register_file`].
    pub fn file_name(&self, id: u32) -> &str {
        &self.files[id as usize].name
    }

    /// Anonymous `mmap`.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the address-space allocator.
    pub fn mmap(
        &mut self,
        space: SpaceId,
        len: u64,
        prot: Prot,
        flags: MapFlags,
    ) -> Result<VirtAddr, MapError> {
        self.space_mut(space)
            .map(len, prot, flags, Backing::Anonymous)
    }

    /// File-backed `mmap` of `len` bytes starting `offset_pages` pages into
    /// the registered file.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the address-space allocator.
    ///
    /// # Panics
    ///
    /// Panics if `file` is not a registered handle.
    pub fn mmap_file(
        &mut self,
        space: SpaceId,
        file: u32,
        offset_pages: u64,
        len: u64,
        prot: Prot,
        flags: MapFlags,
    ) -> Result<VirtAddr, MapError> {
        assert!((file as usize) < self.files.len(), "unknown file {file}");
        self.space_mut(space)
            .map(len, prot, flags, Backing::File { file, offset_pages })
    }

    /// Removes the mapping containing `va`, releasing frames. Returns true
    /// if a mapping was removed.
    pub fn munmap(&mut self, space: SpaceId, va: VirtAddr) -> bool {
        match self.space_mut(space).unmap(va.vpn()) {
            Some((_vma, freed)) => {
                for (_vpn, pte) in freed {
                    self.phys.release(pte.pfn);
                }
                true
            }
            None => false,
        }
    }

    /// Translates `va` for `access`, handling demand-paging and CoW faults
    /// inline (the simulator's equivalent of fault-and-retry).
    ///
    /// # Errors
    ///
    /// Returns a [`TranslateError`] for unmapped addresses or protection
    /// violations (including writes to read-only non-CoW mappings).
    pub fn translate(
        &mut self,
        space: SpaceId,
        va: VirtAddr,
        access: Access,
    ) -> Result<Translation, TranslateError> {
        let vpn = va.vpn();
        let mut faults = 0;
        let mut walk_levels;

        // Look up the VMA and check nominal permission first; a protection
        // violation never reaches the fault handlers.
        let vma = *self.space(space).vma_for(vpn).ok_or(TranslateError {
            kind: FaultKind::Unmapped,
            addr: va,
        })?;
        let permitted = match access {
            Access::Read => vma.prot.readable(),
            Access::Write => vma.prot.writable(),
            Access::Fetch => vma.prot.executable(),
        };
        if !permitted {
            return Err(TranslateError {
                kind: FaultKind::Protection,
                addr: va,
            });
        }

        // Hardware walk.
        let walk = self.space(space).page_table().walk(vpn);
        walk_levels = walk.levels_touched;
        let mut pte = walk.pte;

        // Demand-paging fault: no frame yet.
        if !pte.present {
            self.demand_fault(space, &vma, vpn);
            faults += 1;
            self.stats.demand_faults += 1;
            let rewalk = self.space(space).page_table().walk(vpn);
            walk_levels += rewalk.levels_touched;
            pte = rewalk.pte;
            debug_assert!(pte.present, "demand fault must install a PTE");
        }

        // Copy-on-write fault: write to a WP page whose VMA permits writes.
        if access == Access::Write && !pte.writable {
            if pte.cow && vma.cow_on_write() {
                self.cow_fault(space, vpn, pte);
                faults += 1;
                self.stats.cow_faults += 1;
                let rewalk = self.space(space).page_table().walk(vpn);
                walk_levels += rewalk.levels_touched;
                pte = rewalk.pte;
                debug_assert!(pte.writable, "CoW fault must make the page writable");
            } else {
                return Err(TranslateError {
                    kind: FaultKind::Protection,
                    addr: va,
                });
            }
        }

        // Update accessed/dirty bits like a hardware walker.
        let is_write = access == Access::Write;
        self.space_mut(space).page_table_mut().update(vpn, |p| {
            p.accessed = true;
            if is_write {
                p.dirty = true;
            }
        });

        Ok(Translation {
            paddr: pte.pfn.at_offset(va.page_offset()),
            write_protected: pte.write_protected(),
            walk_levels,
            faults,
        })
    }

    /// Functional (untimed) memory read through the address space.
    ///
    /// # Errors
    ///
    /// Fails like [`MemoryManager::translate`] with `Access::Read`.
    pub fn read(
        &mut self,
        space: SpaceId,
        va: VirtAddr,
        len: usize,
    ) -> Result<Vec<u8>, TranslateError> {
        assert!(
            va.page_offset() + len as u64 <= PAGE_SIZE,
            "read crosses a page boundary"
        );
        let t = self.translate(space, va, Access::Read)?;
        Ok(self
            .phys
            .read_bytes(t.paddr.pfn(), t.paddr.page_offset() as usize, len))
    }

    /// Functional (untimed) memory write through the address space,
    /// triggering CoW exactly like a timed store would.
    ///
    /// # Errors
    ///
    /// Fails like [`MemoryManager::translate`] with `Access::Write`.
    pub fn write(
        &mut self,
        space: SpaceId,
        va: VirtAddr,
        data: &[u8],
    ) -> Result<(), TranslateError> {
        assert!(
            va.page_offset() + data.len() as u64 <= PAGE_SIZE,
            "write crosses a page boundary"
        );
        let t = self.translate(space, va, Access::Write)?;
        self.phys
            .write_bytes(t.paddr.pfn(), t.paddr.page_offset() as usize, data);
        Ok(())
    }

    /// The physical memory (for KSM and content checks).
    pub fn phys(&self) -> &PhysMemory {
        &self.phys
    }

    /// The physical memory, mutable.
    pub fn phys_mut(&mut self) -> &mut PhysMemory {
        &mut self.phys
    }

    /// The address space for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`MemoryManager::create_space`].
    pub fn space(&self, id: SpaceId) -> &AddressSpace {
        &self.spaces[id.0 as usize]
    }

    /// The address space for `id`, mutable.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`MemoryManager::create_space`].
    pub fn space_mut(&mut self, id: SpaceId) -> &mut AddressSpace {
        &mut self.spaces[id.0 as usize]
    }

    /// Handles of all live spaces.
    pub fn space_ids(&self) -> impl Iterator<Item = SpaceId> {
        (0..self.spaces.len() as u32).map(SpaceId)
    }

    /// Accumulated fault/page-cache statistics.
    pub fn stats(&self) -> MmStats {
        self.stats
    }

    /// Estimated page-walk latency in cycles for `levels` radix levels, at
    /// `per_level` cycles each — a helper for timing models.
    pub fn walk_latency_cycles(levels: u32, per_level: u64) -> u64 {
        levels.min(PT_LEVELS) as u64 * per_level
    }

    // --- fault handlers -------------------------------------------------

    /// Demand-paging: allocate (or page-cache-share) a frame and `mk_pte`.
    fn demand_fault(&mut self, space: SpaceId, vma: &Vma, vpn: crate::Vpn) {
        let writable = vma.pte_writable();
        let executable = vma.prot.executable();
        let pte = match vma.backing {
            Backing::Anonymous => {
                let pfn = self.phys.alloc();
                Pte::leaf(pfn, writable, executable)
            }
            Backing::File { file, offset_pages } => {
                let page_in_file = offset_pages + (vpn.0 - vma.start.0);
                let pfn = self.page_cache_frame(file, page_in_file);
                let mut pte = Pte::leaf(pfn, writable, executable);
                if vma.cow_on_write() && !writable {
                    pte = pte.with_cow();
                }
                pte
            }
        };
        self.space_mut(space).page_table_mut().map(vpn, pte);
    }

    /// Copy-on-write: duplicate the frame privately and make it writable.
    fn cow_fault(&mut self, space: SpaceId, vpn: crate::Vpn, old: Pte) {
        let new_pfn = self.phys.alloc();
        self.phys.copy_page(old.pfn, new_pfn);
        self.phys.release(old.pfn);
        let executable = old.executable;
        self.space_mut(space)
            .page_table_mut()
            .map(vpn, Pte::leaf(new_pfn, true, executable));
    }

    /// Returns the page-cache frame for `(file, page)`, reading it in on
    /// first use, and bumps its refcount for the new mapping.
    fn page_cache_frame(&mut self, file: u32, page: u64) -> Pfn {
        if let Some(&pfn) = self.page_cache.get(&(file, page)) {
            self.phys.add_ref(pfn);
            self.stats.page_cache_hits += 1;
            return pfn;
        }
        let pfn = self.phys.alloc();
        // "Read" the file contents into the frame.
        let data = &self.files[file as usize].data;
        let start = (page * PAGE_SIZE) as usize;
        if start < data.len() {
            let end = (start + PAGE_SIZE as usize).min(data.len());
            let chunk = &data[start..end];
            self.phys.write_bytes(pfn, 0, chunk);
        }
        // The cache itself holds one reference, the new mapping another.
        self.phys.add_ref(pfn);
        self.page_cache.insert((file, page), pfn);
        pfn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager_with_lib() -> (MemoryManager, u32) {
        let mut mm = MemoryManager::new();
        let mut image = vec![0u8; 3 * PAGE_SIZE as usize];
        image[0] = 0xAA; // page 0: "text"
        image[PAGE_SIZE as usize] = 0xBB; // page 1: "rodata"
        image[2 * PAGE_SIZE as usize] = 0xCC; // page 2: "data"
        let file = mm.register_file("libtest.so", image.into());
        (mm, file)
    }

    #[test]
    fn unmapped_access_faults() {
        let mut mm = MemoryManager::new();
        let s = mm.create_space();
        let err = mm.translate(s, VirtAddr(0x1000), Access::Read).unwrap_err();
        assert_eq!(err.kind, FaultKind::Unmapped);
    }

    #[test]
    fn anonymous_demand_paging() {
        let mut mm = MemoryManager::new();
        let s = mm.create_space();
        let va = mm
            .mmap(s, PAGE_SIZE, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .unwrap();
        let t = mm.translate(s, va, Access::Read).unwrap();
        assert_eq!(t.faults, 1, "first touch demand-faults");
        assert!(!t.write_protected, "heap pages are not WP");
        let t2 = mm.translate(s, va, Access::Read).unwrap();
        assert_eq!(t2.faults, 0, "second touch is resident");
        assert_eq!(t.paddr, t2.paddr);
    }

    #[test]
    fn readonly_mapping_is_write_protected_and_rejects_writes() {
        let mut mm = MemoryManager::new();
        let s = mm.create_space();
        let va = mm
            .mmap(s, PAGE_SIZE, Prot::READ, MapFlags::PRIVATE)
            .unwrap();
        let t = mm.translate(s, va, Access::Read).unwrap();
        assert!(t.write_protected);
        let err = mm.translate(s, va, Access::Write).unwrap_err();
        assert_eq!(err.kind, FaultKind::Protection);
    }

    #[test]
    fn two_processes_share_library_frames() {
        let (mut mm, file) = manager_with_lib();
        let p1 = mm.create_space();
        let p2 = mm.create_space();
        let va1 = mm
            .mmap_file(p1, file, 0, PAGE_SIZE, Prot::READ, MapFlags::PRIVATE)
            .unwrap();
        let va2 = mm
            .mmap_file(p2, file, 0, PAGE_SIZE, Prot::READ, MapFlags::PRIVATE)
            .unwrap();
        let t1 = mm.translate(p1, va1, Access::Read).unwrap();
        let t2 = mm.translate(p2, va2, Access::Read).unwrap();
        assert_eq!(
            t1.paddr, t2.paddr,
            "page cache must give both processes the same frame"
        );
        assert!(t1.write_protected && t2.write_protected);
        assert_eq!(mm.stats().page_cache_hits, 1);
    }

    #[test]
    fn file_content_visible_through_mapping() {
        let (mut mm, file) = manager_with_lib();
        let s = mm.create_space();
        let va = mm
            .mmap_file(s, file, 1, PAGE_SIZE, Prot::READ, MapFlags::PRIVATE)
            .unwrap();
        let bytes = mm.read(s, va, 1).unwrap();
        assert_eq!(
            bytes,
            vec![0xBB],
            "offset_pages=1 maps the second file page"
        );
    }

    #[test]
    fn private_writable_file_mapping_cows_on_write() {
        let (mut mm, file) = manager_with_lib();
        let p1 = mm.create_space();
        let p2 = mm.create_space();
        let va1 = mm
            .mmap_file(
                p1,
                file,
                2,
                PAGE_SIZE,
                Prot::READ | Prot::WRITE,
                MapFlags::PRIVATE,
            )
            .unwrap();
        let va2 = mm
            .mmap_file(
                p2,
                file,
                2,
                PAGE_SIZE,
                Prot::READ | Prot::WRITE,
                MapFlags::PRIVATE,
            )
            .unwrap();

        // Both initially share the WP page-cache frame.
        let r1 = mm.translate(p1, va1, Access::Read).unwrap();
        let r2 = mm.translate(p2, va2, Access::Read).unwrap();
        assert_eq!(r1.paddr, r2.paddr);
        assert!(r1.write_protected);

        // P1 writes: gets a private copy with the original content.
        mm.write(p1, va1, b"!").unwrap();
        let w1 = mm.translate(p1, va1, Access::Read).unwrap();
        assert_ne!(w1.paddr.pfn(), r2.paddr.pfn());
        assert!(!w1.write_protected);
        assert_eq!(mm.read(p1, va1, 1).unwrap(), b"!");

        // P2 still sees the pristine shared frame.
        assert_eq!(mm.read(p2, va2, 1).unwrap(), vec![0xCC]);
        assert_eq!(mm.stats().cow_faults, 1);
    }

    #[test]
    fn shared_writable_mapping_writes_through() {
        let (mut mm, file) = manager_with_lib();
        let p1 = mm.create_space();
        let p2 = mm.create_space();
        let va1 = mm
            .mmap_file(
                p1,
                file,
                0,
                PAGE_SIZE,
                Prot::READ | Prot::WRITE,
                MapFlags::SHARED,
            )
            .unwrap();
        let va2 = mm
            .mmap_file(
                p2,
                file,
                0,
                PAGE_SIZE,
                Prot::READ | Prot::WRITE,
                MapFlags::SHARED,
            )
            .unwrap();
        mm.write(p1, va1, b"Z").unwrap();
        assert_eq!(mm.read(p2, va2, 1).unwrap(), b"Z");
        assert_eq!(mm.stats().cow_faults, 0);
        let t = mm.translate(p1, va1, Access::Read).unwrap();
        assert!(!t.write_protected, "MAP_SHARED writable is not WP");
    }

    #[test]
    fn fetch_requires_exec() {
        let mut mm = MemoryManager::new();
        let s = mm.create_space();
        let rx = mm
            .mmap(s, PAGE_SIZE, Prot::READ | Prot::EXEC, MapFlags::PRIVATE)
            .unwrap();
        assert!(mm.translate(s, rx, Access::Fetch).is_ok());
        let ro = mm
            .mmap(s, PAGE_SIZE, Prot::READ, MapFlags::PRIVATE)
            .unwrap();
        let err = mm.translate(s, ro, Access::Fetch).unwrap_err();
        assert_eq!(err.kind, FaultKind::Protection);
    }

    #[test]
    fn munmap_releases_frames() {
        let mut mm = MemoryManager::new();
        let s = mm.create_space();
        let va = mm
            .mmap(s, PAGE_SIZE, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .unwrap();
        mm.translate(s, va, Access::Read).unwrap();
        let live_before = mm.phys().live_frames();
        assert!(mm.munmap(s, va));
        assert_eq!(mm.phys().live_frames(), live_before - 1);
        assert!(!mm.munmap(s, va), "second munmap finds nothing");
        assert_eq!(
            mm.translate(s, va, Access::Read).unwrap_err().kind,
            FaultKind::Unmapped
        );
    }

    #[test]
    fn accessed_and_dirty_bits_tracked() {
        let mut mm = MemoryManager::new();
        let s = mm.create_space();
        let va = mm
            .mmap(s, PAGE_SIZE, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .unwrap();
        mm.translate(s, va, Access::Read).unwrap();
        let pte = mm.space(s).page_table().get(va.vpn()).unwrap();
        assert!(pte.accessed && !pte.dirty);
        mm.translate(s, va, Access::Write).unwrap();
        let pte = mm.space(s).page_table().get(va.vpn()).unwrap();
        assert!(pte.dirty);
    }

    #[test]
    fn walk_latency_helper() {
        assert_eq!(MemoryManager::walk_latency_cycles(4, 10), 40);
        assert_eq!(MemoryManager::walk_latency_cycles(99, 10), 40, "clamped");
    }
}
