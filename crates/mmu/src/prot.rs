//! Protection and mapping flags mirroring `mmap(2)`'s `prot` and `flags`.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Memory protection bits, the `prot` argument of `mmap(2)`.
///
/// The paper's identification rule (§IV-A) is driven by these: a mapping
/// without [`Prot::WRITE`], or a writable mapping that is
/// [`MapFlags::PRIVATE`], yields write-protected PTEs (R/W = 0).
///
/// ```
/// use swiftdir_mmu::Prot;
/// let rw = Prot::READ | Prot::WRITE;
/// assert!(rw.readable() && rw.writable() && !rw.executable());
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prot(u8);

impl Prot {
    /// No access at all (`PROT_NONE`).
    pub const NONE: Prot = Prot(0);
    /// `PROT_READ`.
    pub const READ: Prot = Prot(1);
    /// `PROT_WRITE`.
    pub const WRITE: Prot = Prot(2);
    /// `PROT_EXEC`.
    pub const EXEC: Prot = Prot(4);

    /// Whether reads are permitted.
    pub const fn readable(self) -> bool {
        self.0 & Self::READ.0 != 0
    }

    /// Whether writes are permitted.
    pub const fn writable(self) -> bool {
        self.0 & Self::WRITE.0 != 0
    }

    /// Whether instruction fetches are permitted.
    pub const fn executable(self) -> bool {
        self.0 & Self::EXEC.0 != 0
    }

    /// Whether all bits in `other` are present in `self`.
    pub const fn contains(self, other: Prot) -> bool {
        self.0 & other.0 == other.0
    }
}

impl BitOr for Prot {
    type Output = Prot;
    fn bitor(self, rhs: Prot) -> Prot {
        Prot(self.0 | rhs.0)
    }
}

impl BitOrAssign for Prot {
    fn bitor_assign(&mut self, rhs: Prot) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' },
        )
    }
}

/// Mapping visibility, the `flags` argument of `mmap(2)`.
///
/// [`MapFlags::PRIVATE`] is `MAP_PRIVATE`: writes trigger copy-on-write and
/// are not visible to other processes — the write-protected permission the
/// paper keys on. [`MapFlags::SHARED`] is `MAP_SHARED`: writes go to the
/// shared backing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapFlags {
    /// `MAP_PRIVATE`: copy-on-write mapping.
    PRIVATE,
    /// `MAP_SHARED`: writes visible to all mappers.
    SHARED,
}

impl MapFlags {
    /// Whether this is a private (copy-on-write) mapping.
    pub const fn is_private(self) -> bool {
        matches!(self, MapFlags::PRIVATE)
    }
}

impl fmt::Display for MapFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MapFlags::PRIVATE => "MAP_PRIVATE",
            MapFlags::SHARED => "MAP_SHARED",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prot_bit_tests() {
        assert!(Prot::READ.readable());
        assert!(!Prot::READ.writable());
        assert!(Prot::NONE == Prot::default());
        let rwx = Prot::READ | Prot::WRITE | Prot::EXEC;
        assert!(rwx.contains(Prot::READ | Prot::EXEC));
        assert!(!Prot::READ.contains(Prot::WRITE));
    }

    #[test]
    fn prot_or_assign() {
        let mut p = Prot::READ;
        p |= Prot::EXEC;
        assert!(p.executable());
        assert!(!p.writable());
    }

    #[test]
    fn display_strings() {
        assert_eq!((Prot::READ | Prot::WRITE).to_string(), "rw-");
        assert_eq!(Prot::NONE.to_string(), "---");
        assert_eq!(MapFlags::PRIVATE.to_string(), "MAP_PRIVATE");
        assert_eq!(MapFlags::SHARED.to_string(), "MAP_SHARED");
    }

    #[test]
    fn map_flags_private_check() {
        assert!(MapFlags::PRIVATE.is_private());
        assert!(!MapFlags::SHARED.is_private());
    }
}
