//! Physical memory: frame allocation, reference counts, and page contents.

use crate::addr::{Pfn, PAGE_SIZE};

/// Simulated physical memory.
///
/// Frames carry a reference count (several PTEs may map the same frame —
/// shared-library page-cache pages and KSM-merged pages do exactly that)
/// and optional byte contents. Contents are stored sparsely: a frame with no
/// recorded bytes reads as zeroes, like a freshly allocated page.
///
/// # Example
///
/// ```
/// use swiftdir_mmu::PhysMemory;
///
/// let mut phys = PhysMemory::new();
/// let f = phys.alloc();
/// phys.write_bytes(f, 0, b"hello");
/// assert_eq!(phys.read_bytes(f, 0, 5), b"hello");
/// assert_eq!(phys.refcount(f), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct PhysMemory {
    frames: Vec<Frame>,
    free: Vec<Pfn>,
}

#[derive(Debug, Clone)]
struct Frame {
    refcount: u32,
    content: Option<Box<[u8]>>,
}

impl PhysMemory {
    /// An empty physical memory; frames are created on demand.
    pub fn new() -> Self {
        PhysMemory::default()
    }

    /// Allocates a zeroed frame with refcount 1.
    pub fn alloc(&mut self) -> Pfn {
        if let Some(pfn) = self.free.pop() {
            let frame = &mut self.frames[pfn.0 as usize];
            frame.refcount = 1;
            frame.content = None;
            return pfn;
        }
        let pfn = Pfn(self.frames.len() as u64);
        self.frames.push(Frame {
            refcount: 1,
            content: None,
        });
        pfn
    }

    /// Increments a frame's reference count (a new PTE maps it).
    ///
    /// # Panics
    ///
    /// Panics if the frame is free or was never allocated.
    pub fn add_ref(&mut self, pfn: Pfn) {
        let frame = self.frame_mut(pfn);
        assert!(frame.refcount > 0, "add_ref on free frame {pfn:?}");
        frame.refcount += 1;
    }

    /// Decrements a frame's reference count, freeing it at zero. Returns the
    /// count after the decrement.
    ///
    /// # Panics
    ///
    /// Panics if the frame is already free.
    pub fn release(&mut self, pfn: Pfn) -> u32 {
        let frame = self.frame_mut(pfn);
        assert!(frame.refcount > 0, "release of free frame {pfn:?}");
        frame.refcount -= 1;
        let rc = frame.refcount;
        if rc == 0 {
            frame.content = None;
            self.free.push(pfn);
        }
        rc
    }

    /// Current reference count (0 = free).
    pub fn refcount(&self, pfn: Pfn) -> u32 {
        self.frames.get(pfn.0 as usize).map_or(0, |f| f.refcount)
    }

    /// Number of frames currently live (refcount > 0).
    pub fn live_frames(&self) -> usize {
        self.frames.iter().filter(|f| f.refcount > 0).count()
    }

    /// Reads `len` bytes at `offset` within the frame (zero-filled if the
    /// frame has no recorded content).
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` exceeds the page size.
    pub fn read_bytes(&self, pfn: Pfn, offset: usize, len: usize) -> Vec<u8> {
        assert!(offset + len <= PAGE_SIZE as usize, "read crosses page end");
        match self
            .frames
            .get(pfn.0 as usize)
            .and_then(|f| f.content.as_ref())
        {
            Some(bytes) => bytes[offset..offset + len].to_vec(),
            None => vec![0; len],
        }
    }

    /// Writes bytes at `offset` within the frame.
    ///
    /// # Panics
    ///
    /// Panics if the write crosses the page end or the frame is free.
    pub fn write_bytes(&mut self, pfn: Pfn, offset: usize, data: &[u8]) {
        assert!(
            offset + data.len() <= PAGE_SIZE as usize,
            "write crosses page end"
        );
        let frame = self.frame_mut(pfn);
        assert!(frame.refcount > 0, "write to free frame {pfn:?}");
        let content = frame
            .content
            .get_or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
        content[offset..offset + data.len()].copy_from_slice(data);
    }

    /// The full page contents (zeroes when nothing was written).
    pub fn page_content(&self, pfn: Pfn) -> Vec<u8> {
        self.read_bytes(pfn, 0, PAGE_SIZE as usize)
    }

    /// Copies an entire page `src` → `dst` (the copy half of copy-on-write).
    pub fn copy_page(&mut self, src: Pfn, dst: Pfn) {
        let content = self
            .frames
            .get(src.0 as usize)
            .and_then(|f| f.content.clone());
        self.frame_mut(dst).content = content;
    }

    /// A 64-bit FNV-1a hash of the page contents, used by KSM to find
    /// merge candidates cheaply before the exact comparison.
    pub fn content_hash(&self, pfn: Pfn) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        match self
            .frames
            .get(pfn.0 as usize)
            .and_then(|f| f.content.as_ref())
        {
            Some(bytes) => {
                for &b in bytes.iter() {
                    hash ^= b as u64;
                    hash = hash.wrapping_mul(0x100_0000_01b3);
                }
            }
            None => {
                // All-zero page: hash the zero byte PAGE_SIZE times, folded.
                for _ in 0..PAGE_SIZE {
                    hash = hash.wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        hash
    }

    /// Exact content equality between two frames.
    pub fn pages_equal(&self, a: Pfn, b: Pfn) -> bool {
        let fa = self
            .frames
            .get(a.0 as usize)
            .and_then(|f| f.content.as_ref());
        let fb = self
            .frames
            .get(b.0 as usize)
            .and_then(|f| f.content.as_ref());
        match (fa, fb) {
            (Some(ca), Some(cb)) => ca == cb,
            (None, None) => true,
            (Some(c), None) | (None, Some(c)) => c.iter().all(|&x| x == 0),
        }
    }

    fn frame_mut(&mut self, pfn: Pfn) -> &mut Frame {
        self.frames
            .get_mut(pfn.0 as usize)
            .unwrap_or_else(|| panic!("frame {pfn:?} was never allocated"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_distinct_frames() {
        let mut phys = PhysMemory::new();
        let a = phys.alloc();
        let b = phys.alloc();
        assert_ne!(a, b);
        assert_eq!(phys.live_frames(), 2);
    }

    #[test]
    fn refcount_lifecycle() {
        let mut phys = PhysMemory::new();
        let f = phys.alloc();
        phys.add_ref(f);
        assert_eq!(phys.refcount(f), 2);
        assert_eq!(phys.release(f), 1);
        assert_eq!(phys.release(f), 0);
        assert_eq!(phys.refcount(f), 0);
        assert_eq!(phys.live_frames(), 0);
    }

    #[test]
    fn freed_frames_are_recycled_zeroed() {
        let mut phys = PhysMemory::new();
        let f = phys.alloc();
        phys.write_bytes(f, 0, b"secret");
        phys.release(f);
        let g = phys.alloc();
        assert_eq!(g, f, "free list reuses the frame");
        assert_eq!(
            phys.read_bytes(g, 0, 6),
            vec![0; 6],
            "recycled frame reads zero"
        );
    }

    #[test]
    fn unwritten_pages_read_zero() {
        let mut phys = PhysMemory::new();
        let f = phys.alloc();
        assert_eq!(phys.read_bytes(f, 100, 4), vec![0; 4]);
    }

    #[test]
    fn copy_page_duplicates_content() {
        let mut phys = PhysMemory::new();
        let src = phys.alloc();
        let dst = phys.alloc();
        phys.write_bytes(src, 10, b"abc");
        phys.copy_page(src, dst);
        assert_eq!(phys.read_bytes(dst, 10, 3), b"abc");
        assert!(phys.pages_equal(src, dst));
    }

    #[test]
    fn content_hash_and_equality() {
        let mut phys = PhysMemory::new();
        let a = phys.alloc();
        let b = phys.alloc();
        let c = phys.alloc();
        phys.write_bytes(a, 0, b"same");
        phys.write_bytes(b, 0, b"same");
        phys.write_bytes(c, 0, b"diff");
        assert_eq!(phys.content_hash(a), phys.content_hash(b));
        assert!(phys.pages_equal(a, b));
        assert!(!phys.pages_equal(a, c));
    }

    #[test]
    fn zero_written_page_equals_untouched_page() {
        let mut phys = PhysMemory::new();
        let a = phys.alloc();
        let b = phys.alloc();
        phys.write_bytes(a, 0, &[0u8; 16]);
        assert!(phys.pages_equal(a, b));
        assert_eq!(phys.content_hash(a), phys.content_hash(b));
    }

    #[test]
    #[should_panic(expected = "crosses page end")]
    fn oversized_write_panics() {
        let mut phys = PhysMemory::new();
        let f = phys.alloc();
        phys.write_bytes(f, (PAGE_SIZE - 2) as usize, b"xyz");
    }

    #[test]
    #[should_panic(expected = "free frame")]
    fn double_release_panics() {
        let mut phys = PhysMemory::new();
        let f = phys.alloc();
        phys.release(f);
        phys.release(f);
    }
}
