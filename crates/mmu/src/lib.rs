//! Memory-management substrate for the SwiftDir reproduction.
//!
//! SwiftDir (MICRO 2022, §IV-A) identifies *exploitable shared data* as
//! **write-protected** data: pages whose page-table-entry R/W field is 0.
//! On Linux those are exactly
//!
//! 1. shared-library mappings — `mmap` with `PROT_READ` (text, rodata) or
//!    with `PROT_WRITE | MAP_PRIVATE` (data segment, copy-on-write), and
//! 2. pages merged by kernel same-page merging (KSM), which
//!    `write_protect_page`s the merged frame.
//!
//! This crate reproduces that whole mechanism functionally:
//!
//! * [`addr`] — virtual/physical address newtypes and 4 KiB paging layout.
//! * [`prot`] — `PROT_*` and `MAP_*` equivalents ([`Prot`], [`MapFlags`]).
//! * [`pte`] — page-table entries with the R/W bit SwiftDir hitch-hikes.
//! * [`page_table`] — a 4-level radix page table (x86-64 shaped).
//! * [`phys`] — physical frames with reference counts and page contents
//!   (contents are what KSM hashes and merges).
//! * [`vma`] / [`space`] — virtual memory areas and per-process address
//!   spaces with demand paging.
//! * [`manager`] — the [`MemoryManager`]: `mmap`, page-fault handling
//!   (demand paging and copy-on-write), the shared page cache that makes
//!   library mappings share frames across processes, and translation.
//! * [`tlb`] — 64-entry fully-associative TLBs (paper Table V) that cache
//!   the translation *and* the write-protection bit.
//! * [`ksm`] — the same-page-merging scanner.
//! * [`shlib`] — shared-library images and the loader that maps their
//!   segments with the permissions `strace` reveals (paper §IV-A1).
//!
//! # Example: the WP bit reaches the translation
//!
//! ```
//! use swiftdir_mmu::{Access, MapFlags, MemoryManager, Prot};
//!
//! let mut mm = MemoryManager::new();
//! let space = mm.create_space();
//! // A read-only private mapping, like a shared library's text segment.
//! let va = mm.mmap(space, 4096, Prot::READ, MapFlags::PRIVATE).unwrap();
//! let t = mm.translate(space, va, Access::Read).unwrap();
//! assert!(t.write_protected, "read-only data must be write-protected");
//! ```

pub mod addr;
pub mod ksm;
pub mod manager;
pub mod page_table;
pub mod phys;
pub mod prot;
pub mod pte;
pub mod shlib;
pub mod space;
pub mod tlb;
pub mod vma;

pub use addr::{Pfn, PhysAddr, VirtAddr, Vpn, PAGE_SHIFT, PAGE_SIZE};
pub use ksm::{Ksm, KsmStats};
pub use manager::{Access, FaultKind, MemoryManager, SpaceId, TranslateError, Translation};
pub use page_table::{PageTable, WalkResult, PT_LEVELS};
pub use phys::PhysMemory;
pub use prot::{MapFlags, Prot};
pub use pte::Pte;
pub use shlib::{load_library, LibraryImage, LoadedLibrary, Segment, SegmentKind};
pub use space::{AddressSpace, MapError};
pub use tlb::{Tlb, TlbEntry, TlbStats};
pub use vma::{Backing, Vma};
