//! Address newtypes and the 4 KiB paging layout.

use std::fmt;
use std::ops::Add;

/// Base-2 log of the page size (4 KiB pages, as on x86-64 Linux).
pub const PAGE_SHIFT: u32 = 12;

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// A virtual address within some process address space.
///
/// ```
/// use swiftdir_mmu::{VirtAddr, PAGE_SIZE};
/// let va = VirtAddr(PAGE_SIZE + 0x10);
/// assert_eq!(va.vpn().0, 1);
/// assert_eq!(va.page_offset(), 0x10);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

/// A physical address in simulated DRAM.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

/// A virtual page number (virtual address >> [`PAGE_SHIFT`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(pub u64);

/// A physical frame number (physical address >> [`PAGE_SHIFT`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pfn(pub u64);

impl VirtAddr {
    /// The virtual page containing this address.
    #[inline]
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Rounds down to the start of the containing page.
    #[inline]
    #[must_use]
    pub const fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Whether this address is page-aligned.
    #[inline]
    pub const fn is_page_aligned(self) -> bool {
        self.0 & (PAGE_SIZE - 1) == 0
    }
}

impl PhysAddr {
    /// The physical frame containing this address.
    #[inline]
    pub const fn pfn(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the frame.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl Vpn {
    /// The first address of this page.
    #[inline]
    pub const fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// The page `n` pages after this one.
    #[inline]
    #[must_use]
    pub const fn offset(self, n: u64) -> Vpn {
        Vpn(self.0 + n)
    }
}

impl Pfn {
    /// The first address of this frame.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// The physical address `off` bytes into this frame.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `off` exceeds the page size.
    #[inline]
    pub fn at_offset(self, off: u64) -> PhysAddr {
        debug_assert!(off < PAGE_SIZE, "offset {off} outside page");
        PhysAddr((self.0 << PAGE_SHIFT) | off)
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;
    #[inline]
    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl Add<u64> for PhysAddr {
    type Output = PhysAddr;
    #[inline]
    fn add(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 + rhs)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v:{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p:{:#x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_decomposition() {
        let va = VirtAddr(0x3_1234);
        assert_eq!(va.vpn(), Vpn(0x31));
        assert_eq!(va.page_offset(), 0x234);
        assert_eq!(va.page_base(), VirtAddr(0x3_1000));
        assert!(!va.is_page_aligned());
        assert!(va.page_base().is_page_aligned());
    }

    #[test]
    fn vpn_pfn_roundtrip() {
        let vpn = Vpn(7);
        assert_eq!(vpn.base().vpn(), vpn);
        let pfn = Pfn(9);
        assert_eq!(pfn.base().pfn(), pfn);
        assert_eq!(pfn.at_offset(0x40), PhysAddr(9 * PAGE_SIZE + 0x40));
    }

    #[test]
    fn offsets_and_addition() {
        assert_eq!(Vpn(3).offset(2), Vpn(5));
        assert_eq!(VirtAddr(10) + 6, VirtAddr(16));
        assert_eq!(PhysAddr(0x1000) + 0x20, PhysAddr(0x1020));
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtAddr(0x10).to_string(), "v:0x10");
        assert_eq!(PhysAddr(0x20).to_string(), "p:0x20");
        assert_eq!(format!("{:x}", VirtAddr(0xff)), "ff");
    }

    #[test]
    #[should_panic(expected = "outside page")]
    #[cfg(debug_assertions)]
    fn at_offset_rejects_oversized() {
        Pfn(1).at_offset(PAGE_SIZE);
    }
}
