//! Kernel same-page merging (KSM), the second producer of exploitable
//! shared memory (paper §IV-A1).
//!
//! The scanner hashes the contents of anonymous writable pages across all
//! address spaces; identical pages are merged onto one frame and every
//! mapper's PTE is rewritten by `write_protect_page` — R/W cleared, CoW
//! set — exactly the Linux behaviour the paper traces.

use sim_engine::FxHashMap;

use crate::addr::{Pfn, Vpn};
use crate::manager::{MemoryManager, SpaceId};

/// Results of one merge pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KsmStats {
    /// Pages examined.
    pub scanned: u64,
    /// Pages merged away (each merge of k copies counts k-1).
    pub merged: u64,
    /// Frames freed by merging.
    pub frames_freed: u64,
}

/// The same-page-merging scanner.
///
/// # Example
///
/// ```
/// use swiftdir_mmu::{Ksm, MapFlags, MemoryManager, Prot};
///
/// let mut mm = MemoryManager::new();
/// let a = mm.create_space();
/// let b = mm.create_space();
/// let va_a = mm.mmap(a, 4096, Prot::READ | Prot::WRITE, MapFlags::PRIVATE).unwrap();
/// let va_b = mm.mmap(b, 4096, Prot::READ | Prot::WRITE, MapFlags::PRIVATE).unwrap();
/// mm.write(a, va_a, b"same content").unwrap();
/// mm.write(b, va_b, b"same content").unwrap();
///
/// let stats = Ksm::new().run(&mut mm);
/// assert_eq!(stats.merged, 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Ksm {
    _private: (),
}

impl Ksm {
    /// A scanner with default settings.
    pub fn new() -> Self {
        Ksm::default()
    }

    /// Scans every anonymous page in every space and merges identical
    /// contents, returning pass statistics.
    ///
    /// Already-merged (KSM) pages participate as merge targets, so repeated
    /// passes are idempotent and new identical pages join existing merges.
    pub fn run(&self, mm: &mut MemoryManager) -> KsmStats {
        let mut stats = KsmStats::default();

        // Gather candidate pages: anonymous mappings (the paper's dedup
        // sources are process heaps), present, not already sharing via the
        // page cache.
        let spaces: Vec<SpaceId> = mm.space_ids().collect();
        let mut candidates: Vec<(SpaceId, Vpn, Pfn)> = Vec::new();
        for &sid in &spaces {
            let space = mm.space(sid);
            let anon_ranges: Vec<(Vpn, u64)> = space
                .vmas()
                .iter()
                .filter(|v| matches!(v.backing, crate::vma::Backing::Anonymous))
                .map(|v| (v.start, v.pages))
                .collect();
            for (start, pages) in anon_ranges {
                for i in 0..pages {
                    let vpn = start.offset(i);
                    if let Some(pte) = space.page_table().get(vpn) {
                        candidates.push((sid, vpn, pte.pfn));
                        stats.scanned += 1;
                    }
                }
            }
        }

        // Group by content hash, confirm with exact comparison, then merge
        // each group onto its first frame.
        let mut by_hash: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        for (i, &(_, _, pfn)) in candidates.iter().enumerate() {
            by_hash
                .entry(mm.phys().content_hash(pfn))
                .or_default()
                .push(i);
        }

        for group in by_hash.into_values() {
            if group.len() < 2 {
                continue;
            }
            // Partition the hash bucket into exact-content classes.
            let mut classes: Vec<(Pfn, Vec<usize>)> = Vec::new();
            for &idx in &group {
                let pfn = candidates[idx].2;
                match classes
                    .iter_mut()
                    .find(|(rep, _)| *rep == pfn || mm.phys().pages_equal(*rep, pfn))
                {
                    Some((_, members)) => members.push(idx),
                    None => classes.push((pfn, vec![idx])),
                }
            }
            for (target, members) in classes {
                if members.len() < 2 {
                    continue;
                }
                for &idx in &members {
                    let (sid, vpn, pfn) = candidates[idx];
                    if pfn == target {
                        // The canonical copy is still write-protected: once a
                        // page is merged, *all* mappers must CoW on write.
                        mm.space_mut(sid)
                            .page_table_mut()
                            .update(vpn, |pte| pte.write_protect_for_ksm(target));
                        continue;
                    }
                    // Repoint the PTE at the merged frame.
                    mm.phys_mut().add_ref(target);
                    let freed = mm.phys_mut().release(pfn) == 0;
                    mm.space_mut(sid)
                        .page_table_mut()
                        .update(vpn, |pte| pte.write_protect_for_ksm(target));
                    stats.merged += 1;
                    if freed {
                        stats.frames_freed += 1;
                    }
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Access;
    use crate::prot::{MapFlags, Prot};
    use crate::PAGE_SIZE;

    fn two_identical_pages() -> (
        MemoryManager,
        SpaceId,
        SpaceId,
        crate::VirtAddr,
        crate::VirtAddr,
    ) {
        let mut mm = MemoryManager::new();
        let a = mm.create_space();
        let b = mm.create_space();
        let va_a = mm
            .mmap(a, PAGE_SIZE, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .unwrap();
        let va_b = mm
            .mmap(b, PAGE_SIZE, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .unwrap();
        mm.write(a, va_a, b"dedup me").unwrap();
        mm.write(b, va_b, b"dedup me").unwrap();
        (mm, a, b, va_a, va_b)
    }

    #[test]
    fn merges_identical_anonymous_pages() {
        let (mut mm, a, b, va_a, va_b) = two_identical_pages();
        let before = mm.phys().live_frames();
        let stats = Ksm::new().run(&mut mm);
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.frames_freed, 1);
        assert_eq!(mm.phys().live_frames(), before - 1);
        let ta = mm.translate(a, va_a, Access::Read).unwrap();
        let tb = mm.translate(b, va_b, Access::Read).unwrap();
        assert_eq!(ta.paddr, tb.paddr, "both map the merged frame");
        assert!(ta.write_protected, "merged pages are write-protected");
        assert!(tb.write_protected);
    }

    #[test]
    fn merged_page_write_triggers_cow_and_unmerges() {
        let (mut mm, a, b, va_a, va_b) = two_identical_pages();
        Ksm::new().run(&mut mm);
        mm.write(a, va_a, b"DIVERGE").unwrap();
        let ta = mm.translate(a, va_a, Access::Read).unwrap();
        let tb = mm.translate(b, va_b, Access::Read).unwrap();
        assert_ne!(ta.paddr.pfn(), tb.paddr.pfn(), "writer got a private copy");
        assert!(!ta.write_protected);
        assert!(tb.write_protected, "non-writer still on the merged frame");
        assert_eq!(mm.read(b, va_b, 8).unwrap(), b"dedup me");
    }

    #[test]
    fn different_content_not_merged() {
        let mut mm = MemoryManager::new();
        let a = mm.create_space();
        let va1 = mm
            .mmap(a, PAGE_SIZE, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .unwrap();
        let va2 = mm
            .mmap(a, PAGE_SIZE, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .unwrap();
        mm.write(a, va1, b"one").unwrap();
        mm.write(a, va2, b"two").unwrap();
        let stats = Ksm::new().run(&mut mm);
        assert_eq!(stats.merged, 0);
    }

    #[test]
    fn three_way_merge_counts() {
        let mut mm = MemoryManager::new();
        let mut addrs = Vec::new();
        for _ in 0..3 {
            let s = mm.create_space();
            let va = mm
                .mmap(s, PAGE_SIZE, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
                .unwrap();
            mm.write(s, va, b"triple").unwrap();
            addrs.push((s, va));
        }
        let stats = Ksm::new().run(&mut mm);
        assert_eq!(stats.merged, 2, "three copies merge into one: two freed");
        let frames: Vec<_> = addrs
            .iter()
            .map(|&(s, va)| mm.translate(s, va, Access::Read).unwrap().paddr.pfn())
            .collect();
        assert_eq!(frames[0], frames[1]);
        assert_eq!(frames[1], frames[2]);
    }

    #[test]
    fn rerun_is_idempotent() {
        let (mut mm, ..) = two_identical_pages();
        let first = Ksm::new().run(&mut mm);
        assert_eq!(first.merged, 1);
        let second = Ksm::new().run(&mut mm);
        assert_eq!(second.merged, 0, "already merged; nothing to do");
    }

    #[test]
    fn untouched_pages_are_not_scanned() {
        let mut mm = MemoryManager::new();
        let s = mm.create_space();
        mm.mmap(
            s,
            PAGE_SIZE * 8,
            Prot::READ | Prot::WRITE,
            MapFlags::PRIVATE,
        )
        .unwrap();
        let stats = Ksm::new().run(&mut mm);
        assert_eq!(stats.scanned, 0, "never-faulted pages have no frames");
    }
}
