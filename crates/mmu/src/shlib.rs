//! Shared-library images and the loader.
//!
//! The paper (§IV-A1) traces `mmap` calls made by the dynamic loader:
//! text and rodata segments are mapped `PROT_READ`(`|PROT_EXEC`) —
//! write-protected outright — and the data segment is mapped
//! `PROT_READ|PROT_WRITE` with `MAP_PRIVATE` — write-protected with
//! copy-on-write pending. Both therefore produce PTEs with R/W = 0, which
//! is how SwiftDir recognizes them as exploitable shared data.

use std::sync::Arc;

use crate::addr::{VirtAddr, PAGE_SIZE};
use crate::manager::{MemoryManager, SpaceId};
use crate::prot::{MapFlags, Prot};
use crate::space::MapError;

/// The role of a segment within a library image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Executable code: `PROT_READ | PROT_EXEC`, `MAP_PRIVATE`.
    Text,
    /// Read-only data: `PROT_READ`, `MAP_PRIVATE`.
    Rodata,
    /// Writable data: `PROT_READ | PROT_WRITE`, `MAP_PRIVATE` (CoW).
    Data,
}

impl SegmentKind {
    /// The protection the loader passes to `mmap` for this segment.
    pub fn prot(self) -> Prot {
        match self {
            SegmentKind::Text => Prot::READ | Prot::EXEC,
            SegmentKind::Rodata => Prot::READ,
            SegmentKind::Data => Prot::READ | Prot::WRITE,
        }
    }
}

/// One loadable segment: `pages` pages starting at `offset_pages` in the
/// file image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Segment role (determines mapping protection).
    pub kind: SegmentKind,
    /// Page offset within the file image.
    pub offset_pages: u64,
    /// Length in pages.
    pub pages: u64,
}

/// A shared-library file image, pre-registration.
#[derive(Debug, Clone)]
pub struct LibraryImage {
    name: String,
    segments: Vec<Segment>,
    data: Arc<[u8]>,
}

impl LibraryImage {
    /// Builds a synthetic library image with the classic text/rodata/data
    /// layout. Contents are a deterministic per-page pattern derived from
    /// `name`, so two distinct libraries never accidentally KSM-merge.
    pub fn synthetic(name: &str, text_pages: u64, rodata_pages: u64, data_pages: u64) -> Self {
        let total = text_pages + rodata_pages + data_pages;
        let mut data = vec![0u8; (total * PAGE_SIZE) as usize];
        let seed: u64 = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        for page in 0..total {
            let tag = seed.wrapping_mul(page + 1).to_le_bytes();
            let base = (page * PAGE_SIZE) as usize;
            data[base..base + 8].copy_from_slice(&tag);
        }
        let segments = vec![
            Segment {
                kind: SegmentKind::Text,
                offset_pages: 0,
                pages: text_pages,
            },
            Segment {
                kind: SegmentKind::Rodata,
                offset_pages: text_pages,
                pages: rodata_pages,
            },
            Segment {
                kind: SegmentKind::Data,
                offset_pages: text_pages + rodata_pages,
                pages: data_pages,
            },
        ];
        LibraryImage {
            name: name.to_string(),
            segments: segments.into_iter().filter(|s| s.pages > 0).collect(),
            data: data.into(),
        }
    }

    /// Library name (e.g. `libc.so.6`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The segments, in file order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total size in pages.
    pub fn total_pages(&self) -> u64 {
        self.segments.iter().map(|s| s.pages).sum()
    }
}

/// A library mapped into one address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedLibrary {
    /// Registered file handle.
    pub file: u32,
    /// Base virtual address of each segment, in [`LibraryImage::segments`]
    /// order.
    pub segment_bases: Vec<(SegmentKind, VirtAddr)>,
}

impl LoadedLibrary {
    /// Base address of the first segment of the given kind.
    pub fn base_of(&self, kind: SegmentKind) -> Option<VirtAddr> {
        self.segment_bases
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, va)| va)
    }
}

/// Registers `image` with the manager (once) and maps all its segments
/// into `space` with loader-faithful permissions.
///
/// Call once per process to emulate two programs `dlopen`ing the same
/// library; the page cache makes them share frames.
///
/// # Errors
///
/// Propagates [`MapError`] if the address space cannot place a segment.
pub fn load_library(
    mm: &mut MemoryManager,
    space: SpaceId,
    image: &LibraryImage,
    file_handle: Option<u32>,
) -> Result<(LoadedLibrary, u32), MapError> {
    let file = match file_handle {
        Some(f) => f,
        None => mm.register_file(&image.name, image.data.clone()),
    };
    let mut segment_bases = Vec::with_capacity(image.segments.len());
    for seg in &image.segments {
        let va = mm.mmap_file(
            space,
            file,
            seg.offset_pages,
            seg.pages * PAGE_SIZE,
            seg.kind.prot(),
            MapFlags::PRIVATE,
        )?;
        segment_bases.push((seg.kind, va));
    }
    Ok((
        LoadedLibrary {
            file,
            segment_bases,
        },
        file,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Access;

    #[test]
    fn synthetic_layout() {
        let lib = LibraryImage::synthetic("libdemo.so", 4, 2, 1);
        assert_eq!(lib.total_pages(), 7);
        assert_eq!(lib.segments().len(), 3);
        assert_eq!(lib.name(), "libdemo.so");
    }

    #[test]
    fn zero_page_segments_dropped() {
        let lib = LibraryImage::synthetic("libnodata.so", 2, 0, 0);
        assert_eq!(lib.segments().len(), 1);
        assert_eq!(lib.segments()[0].kind, SegmentKind::Text);
    }

    #[test]
    fn all_segments_fault_in_write_protected() {
        let lib = LibraryImage::synthetic("libwp.so", 1, 1, 1);
        let mut mm = MemoryManager::new();
        let s = mm.create_space();
        let (loaded, _) = load_library(&mut mm, s, &lib, None).unwrap();
        for &(kind, va) in &loaded.segment_bases {
            let access = if kind == SegmentKind::Text {
                Access::Fetch
            } else {
                Access::Read
            };
            let t = mm.translate(s, va, access).unwrap();
            assert!(t.write_protected, "{kind:?} segment must be WP");
        }
    }

    #[test]
    fn data_segment_writable_via_cow() {
        let lib = LibraryImage::synthetic("libcow.so", 1, 0, 1);
        let mut mm = MemoryManager::new();
        let s = mm.create_space();
        let (loaded, _) = load_library(&mut mm, s, &lib, None).unwrap();
        let data = loaded.base_of(SegmentKind::Data).unwrap();
        mm.write(s, data, b"patched").unwrap();
        let t = mm.translate(s, data, Access::Read).unwrap();
        assert!(!t.write_protected, "after CoW the private copy is writable");
    }

    #[test]
    fn text_segment_rejects_writes() {
        let lib = LibraryImage::synthetic("librx.so", 1, 0, 0);
        let mut mm = MemoryManager::new();
        let s = mm.create_space();
        let (loaded, _) = load_library(&mut mm, s, &lib, None).unwrap();
        let text = loaded.base_of(SegmentKind::Text).unwrap();
        assert!(mm.write(s, text, b"!").is_err(), "text is not writable");
    }

    #[test]
    fn two_processes_share_text_frames() {
        let lib = LibraryImage::synthetic("libshared.so", 2, 0, 0);
        let mut mm = MemoryManager::new();
        let p1 = mm.create_space();
        let p2 = mm.create_space();
        let (l1, file) = load_library(&mut mm, p1, &lib, None).unwrap();
        let (l2, _) = load_library(&mut mm, p2, &lib, Some(file)).unwrap();
        let t1 = mm
            .translate(p1, l1.base_of(SegmentKind::Text).unwrap(), Access::Fetch)
            .unwrap();
        let t2 = mm
            .translate(p2, l2.base_of(SegmentKind::Text).unwrap(), Access::Fetch)
            .unwrap();
        assert_eq!(t1.paddr, t2.paddr, "same physical text page");
    }

    #[test]
    fn distinct_libraries_have_distinct_content() {
        let a = LibraryImage::synthetic("liba.so", 1, 0, 0);
        let b = LibraryImage::synthetic("libb.so", 1, 0, 0);
        let mut mm = MemoryManager::new();
        let s = mm.create_space();
        let (la, _) = load_library(&mut mm, s, &a, None).unwrap();
        let (lb, _) = load_library(&mut mm, s, &b, None).unwrap();
        let ca = mm
            .read(s, la.base_of(SegmentKind::Text).unwrap(), 8)
            .unwrap();
        let cb = mm
            .read(s, lb.base_of(SegmentKind::Text).unwrap(), 8)
            .unwrap();
        assert_ne!(ca, cb);
    }
}
