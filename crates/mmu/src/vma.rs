//! Virtual memory areas.

use std::fmt;

use crate::addr::{VirtAddr, Vpn};
use crate::prot::{MapFlags, Prot};

/// What backs a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backing {
    /// Anonymous memory (heap, stacks); demand-zero pages.
    Anonymous,
    /// A file region: `file` is a registry handle, `offset_pages` the page
    /// offset within the file. Shared-library segments use this.
    File {
        /// Handle into the [`MemoryManager`](crate::MemoryManager)'s file
        /// registry.
        file: u32,
        /// Page offset of the mapping within the file image.
        offset_pages: u64,
    },
}

/// A contiguous virtual mapping with uniform protection, the analogue of a
/// Linux `vm_area_struct`.
///
/// The *nominal* protection is [`Vma::prot`]; the *effective* PTE R/W bit is
/// computed by `vm_page_prot` logic at fault time (see
/// [`Vma::pte_writable`]), which is where the paper's write-protection rule
/// lives: a writable `MAP_PRIVATE` mapping still yields R/W = 0 with
/// copy-on-write pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// First page of the mapping.
    pub start: Vpn,
    /// Number of pages.
    pub pages: u64,
    /// Nominal protection (`mmap`'s `prot`).
    pub prot: Prot,
    /// Visibility (`mmap`'s `flags`).
    pub flags: MapFlags,
    /// Backing store.
    pub backing: Backing,
}

impl Vma {
    /// One-past-the-last page of the mapping.
    pub fn end(&self) -> Vpn {
        Vpn(self.start.0 + self.pages)
    }

    /// Whether `vpn` falls inside this area.
    pub fn contains(&self, vpn: Vpn) -> bool {
        (self.start.0..self.end().0).contains(&vpn.0)
    }

    /// First byte address of the mapping.
    pub fn base(&self) -> VirtAddr {
        self.start.base()
    }

    /// The `vm_page_prot` decision (paper §IV-A2): whether a freshly
    /// faulted PTE in this area gets R/W = 1.
    ///
    /// * not `PROT_WRITE` → R/W = 0 (plain write-protected);
    /// * `PROT_WRITE` + `MAP_PRIVATE` on a file → R/W = 0 with CoW pending;
    /// * `PROT_WRITE` + `MAP_SHARED` → R/W = 1;
    /// * anonymous private writable memory → R/W = 1 (ordinary heap; Linux
    ///   uses a CoW zero-page dance that converges to the same state after
    ///   the first write, which is when the page first exists here).
    pub fn pte_writable(&self) -> bool {
        if !self.prot.writable() {
            return false;
        }
        !matches!(
            (self.backing, self.flags),
            (Backing::File { .. }, MapFlags::PRIVATE)
        )
    }

    /// Whether a write fault on a write-protected page here should
    /// copy-on-write (vs. being a protection error).
    pub fn cow_on_write(&self) -> bool {
        self.prot.writable() && matches!(self.flags, MapFlags::PRIVATE)
    }
}

impl fmt::Display for Vma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:#x}-{:#x}) {} {} {:?}",
            self.base().0,
            self.end().base().0,
            self.prot,
            self.flags,
            self.backing,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vma(prot: Prot, flags: MapFlags, backing: Backing) -> Vma {
        Vma {
            start: Vpn(16),
            pages: 4,
            prot,
            flags,
            backing,
        }
    }

    #[test]
    fn containment() {
        let v = vma(Prot::READ, MapFlags::PRIVATE, Backing::Anonymous);
        assert!(v.contains(Vpn(16)));
        assert!(v.contains(Vpn(19)));
        assert!(!v.contains(Vpn(20)));
        assert!(!v.contains(Vpn(15)));
        assert_eq!(v.end(), Vpn(20));
    }

    #[test]
    fn readonly_mapping_never_writable() {
        let v = vma(Prot::READ, MapFlags::PRIVATE, Backing::Anonymous);
        assert!(!v.pte_writable());
        assert!(!v.cow_on_write(), "read-only area cannot CoW");
    }

    #[test]
    fn private_file_writable_is_cow() {
        // The shared-library data segment: PROT_WRITE + MAP_PRIVATE.
        let v = vma(
            Prot::READ | Prot::WRITE,
            MapFlags::PRIVATE,
            Backing::File {
                file: 0,
                offset_pages: 0,
            },
        );
        assert!(!v.pte_writable(), "private file mapping faults in as WP");
        assert!(v.cow_on_write());
    }

    #[test]
    fn shared_writable_file_is_directly_writable() {
        let v = vma(
            Prot::READ | Prot::WRITE,
            MapFlags::SHARED,
            Backing::File {
                file: 0,
                offset_pages: 0,
            },
        );
        assert!(v.pte_writable());
    }

    #[test]
    fn shared_readonly_file_is_write_protected() {
        let v = vma(
            Prot::READ,
            MapFlags::SHARED,
            Backing::File {
                file: 0,
                offset_pages: 0,
            },
        );
        assert!(!v.pte_writable());
    }

    #[test]
    fn anonymous_private_heap_is_writable() {
        let v = vma(
            Prot::READ | Prot::WRITE,
            MapFlags::PRIVATE,
            Backing::Anonymous,
        );
        assert!(v.pte_writable(), "ordinary heap pages are not WP");
    }

    #[test]
    fn display_mentions_range_and_prot() {
        let v = vma(Prot::READ, MapFlags::PRIVATE, Backing::Anonymous);
        let s = v.to_string();
        assert!(s.contains("r--"));
        assert!(s.contains("MAP_PRIVATE"));
    }
}
