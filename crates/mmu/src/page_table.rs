//! A 4-level radix page table, x86-64 shaped (9 bits per level).

use sim_engine::FxHashMap;

use crate::addr::Vpn;
use crate::pte::Pte;

/// Number of radix levels walked on a TLB miss (PML4 → PDPT → PD → PT).
pub const PT_LEVELS: u32 = 4;

/// Bits of virtual page number consumed per level.
const LEVEL_BITS: u32 = 9;

/// The result of a page-table walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// The leaf entry found (absent if any level was missing).
    pub pte: Pte,
    /// How many levels were actually touched before the walk resolved or
    /// failed — the number of memory accesses a hardware walker would make.
    pub levels_touched: u32,
}

/// A 4-level page table mapping [`Vpn`] → [`Pte`].
///
/// Interior nodes are sparse hash tables keyed by the partial index, which
/// keeps the structure honest about radix levels (the walk reports how many
/// levels it touched, which the timing model charges for) without allocating
/// 512-entry arrays for mostly-empty tables.
///
/// # Example
///
/// ```
/// use swiftdir_mmu::{PageTable, Pte, Pfn, Vpn};
///
/// let mut pt = PageTable::new();
/// pt.map(Vpn(42), Pte::leaf(Pfn(7), false, false));
/// let walk = pt.walk(Vpn(42));
/// assert!(walk.pte.present);
/// assert_eq!(walk.pte.pfn, Pfn(7));
/// assert_eq!(walk.levels_touched, 4);
/// ```
#[derive(Debug, Default, Clone)]
pub struct PageTable {
    root: Node,
}

#[derive(Debug, Default, Clone)]
struct Node {
    children: FxHashMap<u16, Node>,
    leaves: FxHashMap<u16, Pte>,
}

fn level_index(vpn: Vpn, level: u32) -> u16 {
    // level 0 is the root (highest bits), level 3 holds leaves.
    let shift = LEVEL_BITS * (PT_LEVELS - 1 - level);
    ((vpn.0 >> shift) & ((1 << LEVEL_BITS) - 1)) as u16
}

impl PageTable {
    /// An empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Installs (or replaces) the leaf entry for `vpn`.
    pub fn map(&mut self, vpn: Vpn, pte: Pte) {
        let mut node = &mut self.root;
        for level in 0..PT_LEVELS - 1 {
            node = node.children.entry(level_index(vpn, level)).or_default();
        }
        node.leaves.insert(level_index(vpn, PT_LEVELS - 1), pte);
    }

    /// Removes the leaf entry for `vpn`, returning it if present.
    ///
    /// Empty interior nodes are left in place; they model page-table pages
    /// that Linux also does not eagerly free.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        let mut node = &mut self.root;
        for level in 0..PT_LEVELS - 1 {
            node = node.children.get_mut(&level_index(vpn, level))?;
        }
        node.leaves.remove(&level_index(vpn, PT_LEVELS - 1))
    }

    /// Hardware page walk: descends the radix levels and reports both the
    /// leaf (or an absent PTE) and how many levels were touched.
    pub fn walk(&self, vpn: Vpn) -> WalkResult {
        let mut node = &self.root;
        let mut levels = 0;
        for level in 0..PT_LEVELS - 1 {
            levels += 1;
            match node.children.get(&level_index(vpn, level)) {
                Some(child) => node = child,
                None => {
                    return WalkResult {
                        pte: Pte::absent(),
                        levels_touched: levels,
                    }
                }
            }
        }
        levels += 1;
        let pte = node
            .leaves
            .get(&level_index(vpn, PT_LEVELS - 1))
            .copied()
            .unwrap_or_else(Pte::absent);
        WalkResult {
            pte,
            levels_touched: levels,
        }
    }

    /// Returns the leaf entry for `vpn` if one is present.
    pub fn get(&self, vpn: Vpn) -> Option<Pte> {
        let r = self.walk(vpn);
        r.pte.present.then_some(r.pte)
    }

    /// Mutates the leaf entry for `vpn` in place via `f`; returns whether an
    /// entry was present.
    pub fn update<F: FnOnce(&mut Pte)>(&mut self, vpn: Vpn, f: F) -> bool {
        let mut node = &mut self.root;
        for level in 0..PT_LEVELS - 1 {
            match node.children.get_mut(&level_index(vpn, level)) {
                Some(child) => node = child,
                None => return false,
            }
        }
        match node.leaves.get_mut(&level_index(vpn, PT_LEVELS - 1)) {
            Some(pte) => {
                f(pte);
                true
            }
            None => false,
        }
    }

    /// Iterates over all present mappings (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        let mut out = Vec::new();
        collect(&self.root, 0, 0, &mut out);
        out.into_iter()
    }

    /// Number of present leaf entries.
    pub fn mapped_pages(&self) -> usize {
        self.iter().count()
    }
}

fn collect(node: &Node, level: u32, prefix: u64, out: &mut Vec<(Vpn, Pte)>) {
    if level == PT_LEVELS - 1 {
        for (&idx, &pte) in &node.leaves {
            if pte.present {
                out.push((Vpn(prefix << LEVEL_BITS | idx as u64), pte));
            }
        }
        return;
    }
    for (&idx, child) in &node.children {
        collect(child, level + 1, prefix << LEVEL_BITS | idx as u64, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pfn;

    #[test]
    fn map_walk_roundtrip() {
        let mut pt = PageTable::new();
        pt.map(Vpn(0x12345), Pte::leaf(Pfn(99), true, false));
        let walk = pt.walk(Vpn(0x12345));
        assert!(walk.pte.present);
        assert_eq!(walk.pte.pfn, Pfn(99));
        assert_eq!(walk.levels_touched, PT_LEVELS);
    }

    #[test]
    fn missing_high_level_short_circuits() {
        let pt = PageTable::new();
        let walk = pt.walk(Vpn(5));
        assert!(!walk.pte.present);
        assert_eq!(walk.levels_touched, 1, "empty root stops the walk early");
    }

    #[test]
    fn neighbours_in_same_leaf_table() {
        let mut pt = PageTable::new();
        pt.map(Vpn(100), Pte::leaf(Pfn(1), true, false));
        // A neighbouring page shares all interior nodes; the walk reaches the
        // leaf level before discovering absence.
        let walk = pt.walk(Vpn(101));
        assert!(!walk.pte.present);
        assert_eq!(walk.levels_touched, PT_LEVELS);
    }

    #[test]
    fn unmap_removes_only_target() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pte::leaf(Pfn(1), true, false));
        pt.map(Vpn(2), Pte::leaf(Pfn(2), true, false));
        assert!(pt.unmap(Vpn(1)).is_some());
        assert!(pt.get(Vpn(1)).is_none());
        assert!(pt.get(Vpn(2)).is_some());
        assert!(pt.unmap(Vpn(1)).is_none());
    }

    #[test]
    fn update_mutates_in_place() {
        let mut pt = PageTable::new();
        pt.map(Vpn(8), Pte::leaf(Pfn(8), true, false));
        assert!(pt.update(Vpn(8), |pte| pte.accessed = true));
        assert!(pt.get(Vpn(8)).unwrap().accessed);
        assert!(!pt.update(Vpn(9), |_| panic!("must not run")));
    }

    #[test]
    fn iter_returns_all_mappings() {
        let mut pt = PageTable::new();
        let vpns = [Vpn(0), Vpn(511), Vpn(512), Vpn(1 << 27), Vpn(99999)];
        for (i, &vpn) in vpns.iter().enumerate() {
            pt.map(vpn, Pte::leaf(Pfn(i as u64), false, false));
        }
        let mut got: Vec<Vpn> = pt.iter().map(|(v, _)| v).collect();
        got.sort();
        let mut want = vpns.to_vec();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(pt.mapped_pages(), vpns.len());
    }

    #[test]
    fn remap_replaces() {
        let mut pt = PageTable::new();
        pt.map(Vpn(3), Pte::leaf(Pfn(1), true, false));
        pt.map(Vpn(3), Pte::leaf(Pfn(2), false, false));
        assert_eq!(pt.get(Vpn(3)).unwrap().pfn, Pfn(2));
        assert_eq!(pt.mapped_pages(), 1);
    }
}
