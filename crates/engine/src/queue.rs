//! The discrete-event scheduler queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::cycle::Cycle;

/// An event scheduled for a particular cycle.
///
/// Ordering is by time first, then by insertion sequence number, so two
/// events scheduled for the same cycle are delivered in the order they were
/// scheduled. This tie-break is what makes the whole simulator deterministic.
#[derive(Debug)]
struct Scheduled<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timed events.
///
/// The queue is generic over the event payload `E`; the simulator's main
/// loop pops events in `(time, insertion order)` order and dispatches them
/// to the owning component.
///
/// # Example
///
/// ```
/// use sim_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(10), "late");
/// q.schedule(Cycle(1), "early");
/// q.schedule(Cycle(1), "early-but-second");
///
/// assert_eq!(q.pop(), Some((Cycle(1), "early")));
/// assert_eq!(q.pop(), Some((Cycle(1), "early-but-second")));
/// assert_eq!(q.pop(), Some((Cycle(10), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Cycle::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` for absolute time `at`.
    ///
    /// Events scheduled in the past are delivered at the current time
    /// instead; this keeps component code simple (a zero-latency response
    /// is just `schedule(now, ..)`).
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedules `event` to fire `delay` cycles from now.
    pub fn schedule_after(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the simulation has drained.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let Scheduled { time, event, .. } = self.heap.pop()?;
        debug_assert!(time >= self.now, "event queue time went backwards");
        self.now = time;
        Some((time, event))
    }

    /// Returns the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for stats / fuel limits).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), ());
        q.schedule(Cycle(4), ());
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, Cycle(4));
        assert_eq!(q.now(), Cycle(4));
        // Scheduling in the past clamps to `now`.
        q.schedule(Cycle(1), ());
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, Cycle(4));
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t3, Cycle(10));
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(100), "a");
        q.pop();
        q.schedule_after(Cycle(5), "b");
        assert_eq!(q.pop(), Some((Cycle(105), "b")));
    }

    #[test]
    fn len_and_counts() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycle(1), ());
        q.schedule(Cycle(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_count(), 2);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(7), ());
        assert_eq!(q.peek_time(), Some(Cycle(7)));
        assert_eq!(q.now(), Cycle::ZERO);
    }
}
