//! The discrete-event scheduler queue.
//!
//! Internally the queue is a hybrid of three structures, picked per event at
//! schedule time:
//!
//! * a **calendar wheel** of [`WHEEL`] one-cycle buckets for the dense
//!   near-term horizon (`now < t < now + WHEEL`) — O(1) insert, O(1) pop
//!   plus a bitmap scan, no sift traffic;
//! * a **binary heap** fallback for far-future events (`t >= now + WHEEL`)
//!   and for everything once a chooser has deviated from FIFO order;
//! * a **ready lane** (`VecDeque`) for zero-latency events due exactly at
//!   `now`.
//!
//! All three agree on the observable contract: events deliver in effective
//! `(time, seq)` order, where `seq` is the global scheduling sequence
//! number. The wheel preserves this for free — every bucket holds exactly
//! one timestamp (two distinct times inside a window of length `WHEEL`
//! never collide modulo `WHEEL`) and appends within a bucket are seq-
//! ascending because `seq` is globally monotonic.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::cycle::Cycle;

/// Number of one-cycle calendar buckets. Events scheduled within this many
/// cycles of `now` take the wheel fast path; farther ones fall back to the
/// binary heap. 256 covers every point-to-point latency in the calibrated
/// hierarchy (max ~22 cycles) plus DRAM turnarounds with a wide margin.
pub const WHEEL: usize = 256;
const WHEEL_WORDS: usize = WHEEL / 64;

/// An event scheduled for a particular cycle.
///
/// Ordering is by time first, then by insertion sequence number, so two
/// events scheduled for the same cycle are delivered in the order they were
/// scheduled. This tie-break is what makes the whole simulator deterministic.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A pending event visible through [`EventQueue::frontier`].
///
/// `at` is the *effective* delivery time: events whose scheduled time has
/// already passed (because a chooser jumped the clock over them) deliver at
/// `now`. `seq` is a stable identity — it names the same event across
/// repeated frontier calls until that event is delivered.
#[derive(Debug)]
pub struct Pending<'a, E> {
    /// Effective delivery time if this event is chosen next.
    pub at: Cycle,
    /// Stable identity of the event (its scheduling sequence number).
    pub seq: u64,
    /// The event payload.
    pub event: &'a E,
}

// Manual impls: the derive would demand `E: Copy`, but the field is only a
// reference.
impl<E> Clone for Pending<'_, E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for Pending<'_, E> {}

/// A scheduling policy plugged into [`EventQueue::pop_with`].
///
/// The deterministic simulator is the trivial chooser ([`FifoChooser`]):
/// always deliver the frontier head, which is exactly what [`EventQueue::pop`]
/// does without ever materializing the frontier. Exploration tools implement
/// this trait (or drive [`EventQueue::frontier`] + [`EventQueue::pop_seq`]
/// directly) to enumerate alternative delivery orders.
pub trait Chooser<E> {
    /// Given the deliverable frontier (never empty, sorted by effective
    /// `(time, seq)`), return the `seq` of the event to deliver next.
    fn choose(&mut self, frontier: &[Pending<'_, E>]) -> u64;
}

/// The trivial chooser: always delivers the earliest `(time, seq)` event,
/// i.e. the exact order [`EventQueue::pop`] produces.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoChooser;

impl<E> Chooser<E> for FifoChooser {
    fn choose(&mut self, frontier: &[Pending<'_, E>]) -> u64 {
        frontier[0].seq
    }
}

/// A deterministic priority queue of timed events.
///
/// The queue is generic over the event payload `E`; the simulator's main
/// loop pops events in `(time, insertion order)` order and dispatches them
/// to the owning component.
///
/// # Example
///
/// ```
/// use sim_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(10), "late");
/// q.schedule(Cycle(1), "early");
/// q.schedule(Cycle(1), "early-but-second");
///
/// assert_eq!(q.pop(), Some((Cycle(1), "early")));
/// assert_eq!(q.pop(), Some((Cycle(1), "early-but-second")));
/// assert_eq!(q.pop(), Some((Cycle(10), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Far-future events (`t >= now + WHEEL` at schedule time) and, after a
    /// chooser deviated from FIFO order, everything with `t > now`.
    heap: BinaryHeap<Scheduled<E>>,
    /// Calendar buckets for the near-term horizon. Invariant (ordered
    /// regime): every entry's time lies in `[now, now + WHEEL)`, so bucket
    /// `t % WHEEL` holds exactly one timestamp and its entries are in
    /// ascending seq order. The wheel is empty in the disordered regime.
    buckets: Vec<VecDeque<Scheduled<E>>>,
    /// Occupancy bitmap over `buckets`: bit i set iff bucket i is non-empty.
    occ: [u64; WHEEL_WORDS],
    /// Number of events currently in the wheel.
    wheel_len: usize,
    /// Events due exactly at `now`, scheduled while the clock already stood
    /// at `now` (zero-latency replies, replays). They bypass the timer
    /// structures: a push and pop here are O(1).
    ///
    /// Ordering stays correct because `now` only reaches a time T after
    /// every earlier schedule call completed, so any heap or wheel entry at
    /// time T carries a smaller sequence number than anything that enters
    /// `ready` while the clock stands at T — timer-first at equal times is
    /// exactly `(time, seq)` order. Each entry keeps its sequence number so
    /// frontier views can name it.
    ready: VecDeque<(u64, E)>,
    next_seq: u64,
    now: Cycle,
    /// Set when [`pop_seq`](Self::pop_seq) delivered an event out of FIFO
    /// order while others were pending. From then on the raw `(time, seq)`
    /// order no longer matches effective delivery order
    /// (`(max(time, now), seq)`), so `pop`/`pop_batch` take a careful scan
    /// path until the queue drains. Entering this regime spills the wheel
    /// into the heap and routes new timer events there, so the careful path
    /// only ever scans heap + ready. Never set on the deterministic path.
    disordered: bool,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Cycle::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            buckets: (0..WHEEL).map(|_| VecDeque::new()).collect(),
            occ: [0; WHEEL_WORDS],
            wheel_len: 0,
            ready: VecDeque::new(),
            next_seq: 0,
            now: Cycle::ZERO,
            disordered: false,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` for absolute time `at`.
    ///
    /// Events scheduled in the past are delivered at the current time
    /// instead; this keeps component code simple (a zero-latency response
    /// is just `schedule(now, ..)`).
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let time = at.max(self.now);
        self.next_seq += 1;
        let seq = self.next_seq;
        if time == self.now {
            // Same-cycle event: FIFO push preserves seq order within the
            // cycle without touching the heap or wheel.
            self.ready.push_back((seq, event));
        } else if !self.disordered && time.get() - self.now.get() < WHEEL as u64 {
            let idx = (time.get() % WHEEL as u64) as usize;
            debug_assert!(self.buckets[idx].back().is_none_or(|s| s.time == time));
            self.buckets[idx].push_back(Scheduled { time, seq, event });
            self.occ[idx / 64] |= 1u64 << (idx % 64);
            self.wheel_len += 1;
        } else {
            self.heap.push(Scheduled { time, seq, event });
        }
    }

    /// Schedules `event` to fire `delay` cycles from now.
    pub fn schedule_after(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Index of the first occupied bucket at or after `start` in circular
    /// order, via the occupancy bitmap (at most `2 * WHEEL_WORDS` word ops).
    fn next_occupied(&self, start: usize) -> Option<usize> {
        let (sw, sb) = (start / 64, start % 64);
        // [start, WHEEL)
        let mut word = self.occ[sw] & (!0u64 << sb);
        let mut wi = sw;
        loop {
            if word != 0 {
                return Some(wi * 64 + word.trailing_zeros() as usize);
            }
            wi += 1;
            if wi == WHEEL_WORDS {
                break;
            }
            word = self.occ[wi];
        }
        // wrap: [0, start)
        for wi in 0..=sw {
            let mut word = self.occ[wi];
            if wi == sw {
                word &= !(!0u64 << sb);
            }
            if word != 0 {
                return Some(wi * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The wheel's minimum pending event as `(bucket, time, seq)`.
    ///
    /// Scanning buckets circularly from `now % WHEEL` visits wheel
    /// timestamps in ascending order (all lie in `[now, now + WHEEL)`), and
    /// each bucket's front is its smallest seq.
    fn min_wheel(&self) -> Option<(usize, Cycle, u64)> {
        if self.wheel_len == 0 {
            return None;
        }
        let idx = self
            .next_occupied((self.now.get() % WHEEL as u64) as usize)
            .expect("wheel_len > 0 implies an occupied bucket");
        let front = self.buckets[idx].front().expect("occupied bucket");
        Some((idx, front.time, front.seq))
    }

    /// Pops the front of an occupied bucket, maintaining the bitmap.
    fn pop_bucket(&mut self, idx: usize) -> Scheduled<E> {
        let s = self.buckets[idx].pop_front().expect("occupied bucket");
        if self.buckets[idx].is_empty() {
            self.occ[idx / 64] &= !(1u64 << (idx % 64));
        }
        self.wheel_len -= 1;
        s
    }

    /// Moves every wheel entry into the heap. Used when entering the
    /// disordered regime, where the careful scan paths only consult
    /// heap + ready.
    fn spill_wheel(&mut self) {
        if self.wheel_len == 0 {
            return;
        }
        for bucket in &mut self.buckets {
            for s in bucket.drain(..) {
                self.heap.push(s);
            }
        }
        self.occ = [0; WHEEL_WORDS];
        self.wheel_len = 0;
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the simulation has drained.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.disordered {
            return self.pop_careful();
        }
        // In the ordered regime every pending timer event has time >= now,
        // so the minimum of the three candidate (time, seq) pairs is the
        // next event in effective order. Seqs are unique, which also
        // resolves the timer-vs-ready tie at `now` correctly (timer entries
        // at `now` were scheduled earlier and carry smaller seqs).
        let ready_c = self.ready.front().map(|(seq, _)| (self.now, *seq));
        let heap_c = self.heap.peek().map(|s| (s.time, s.seq));
        let wheel_c = self.min_wheel().map(|(_, t, seq)| (t, seq));
        let (time, seq) = [ready_c, heap_c, wheel_c].into_iter().flatten().min()?;
        debug_assert!(time >= self.now, "event queue time went backwards");
        let event = if ready_c == Some((time, seq)) {
            self.ready.pop_front().expect("ready candidate present").1
        } else if heap_c == Some((time, seq)) {
            self.heap.pop().expect("heap candidate present").event
        } else {
            let (idx, ..) = self.min_wheel().expect("wheel candidate present");
            self.pop_bucket(idx).event
        };
        self.now = time;
        Some((time, event))
    }

    /// Pop for the disordered regime: select the minimum by effective
    /// `(max(time, now), seq)` with a full scan. Only reachable after a
    /// chooser deviated from FIFO order, where queues are small. The wheel
    /// is always empty here (spilled on entry to the regime).
    fn pop_careful(&mut self) -> Option<(Cycle, E)> {
        debug_assert_eq!(self.wheel_len, 0, "wheel must be spilled when disordered");
        let ready_best = self.ready.front().map(|(seq, _)| (self.now, *seq));
        let heap_best = self
            .heap
            .iter()
            .map(|s| (s.time.max(self.now), s.seq))
            .min();
        let (at, seq) = match (ready_best, heap_best) {
            (None, None) => return None,
            (Some(r), None) => r,
            (None, Some(h)) => h,
            (Some(r), Some(h)) => r.min(h),
        };
        let event = self.remove_seq(seq).expect("selected seq present");
        self.now = at;
        if self.is_empty() {
            self.disordered = false;
        }
        Some((at, event))
    }

    /// Drains every event due at the next timestamp (if it is ≤ `upto`)
    /// into `out`, preserving `(time, seq)` order, and advances the clock
    /// there. Returns that timestamp, or `None` if the next event is after
    /// `upto` (or the queue is empty). One call replaces a
    /// peek-compare-pop cycle per event, which is what the hierarchy's
    /// event loop runs hottest on. The caller-provided buffer is reused
    /// across calls — the queue never allocates here.
    ///
    /// Events scheduled *while the batch is processed* land in a fresh
    /// batch — the caller re-calls until `None`, which is exactly the order
    /// a one-at-a-time pop loop would produce, since in-flight schedules
    /// always carry larger sequence numbers than the drained batch.
    pub fn pop_batch(&mut self, upto: Cycle, out: &mut Vec<E>) -> Option<Cycle> {
        if self.disordered {
            // Careful path: deliver one event per call (still one
            // timestamp, just a smaller batch). Correctness over batching.
            if self.peek_time()? > upto {
                return None;
            }
            let (t, e) = self.pop_careful()?;
            out.push(e);
            return Some(t);
        }
        let t = self.peek_time()?;
        if t > upto {
            return None;
        }
        self.now = t;
        // Merge heap entries and the wheel bucket at `t` by seq; both are
        // internally seq-sorted at a fixed timestamp.
        let idx = (t.get() % WHEEL as u64) as usize;
        loop {
            let h = self.heap.peek().filter(|s| s.time == t).map(|s| s.seq);
            let w = self.buckets[idx]
                .front()
                .filter(|s| s.time == t)
                .map(|s| s.seq);
            match (h, w) {
                (None, None) => break,
                (Some(_), None) => out.push(self.heap.pop().expect("peeked").event),
                (None, Some(_)) => out.push(self.pop_bucket(idx).event),
                (Some(hs), Some(ws)) => {
                    if hs < ws {
                        out.push(self.heap.pop().expect("peeked").event);
                    } else {
                        out.push(self.pop_bucket(idx).event);
                    }
                }
            }
        }
        // `ready` events are due at the old `now`; they are part of this
        // batch only when the clock did not move (t == old now), which is
        // the only case where `ready` can be non-empty here.
        out.extend(self.ready.drain(..).map(|(_, e)| e));
        Some(t)
    }

    /// Returns the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.disordered {
            let ready_best = self.ready.front().map(|_| self.now);
            let heap_best = self.heap.iter().map(|s| s.time.max(self.now)).min();
            return match (ready_best, heap_best) {
                (None, None) => None,
                (r, h) => r.into_iter().chain(h).min(),
            };
        }
        if !self.ready.is_empty() {
            // Ready events are due now; a timer event can tie but not beat.
            return Some(self.now);
        }
        let heap_t = self.heap.peek().map(|s| s.time);
        let wheel_t = self.min_wheel().map(|(_, t, _)| t);
        heap_t.into_iter().chain(wheel_t).min()
    }

    /// Visits every pending event, in no particular order, without
    /// allocating. `at` on each [`Pending`] is the effective delivery time
    /// `max(scheduled, now)`. This is the allocation-free primitive behind
    /// [`frontier`](Self::frontier); callers that build their own
    /// per-link/per-key summaries (the hierarchy's frontier choices, the
    /// state digest) iterate directly instead of materializing a sorted
    /// vector per step.
    pub fn for_each_pending<'a, F: FnMut(Pending<'a, E>)>(&'a self, mut f: F) {
        for (seq, event) in &self.ready {
            f(Pending {
                at: self.now,
                seq: *seq,
                event,
            });
        }
        for s in &self.heap {
            f(Pending {
                at: s.time.max(self.now),
                seq: s.seq,
                event: &s.event,
            });
        }
        if self.wheel_len > 0 {
            for bucket in &self.buckets {
                for s in bucket {
                    f(Pending {
                        at: s.time.max(self.now),
                        seq: s.seq,
                        event: &s.event,
                    });
                }
            }
        }
    }

    /// Buffer-reusing variant of [`frontier`](Self::frontier): clears `out`
    /// and fills it with the deliverable frontier, sorted by effective
    /// `(time, seq)`. Reusing one buffer across calls within a borrow scope
    /// avoids the per-step allocation of `frontier`.
    pub fn frontier_into<'a>(&'a self, window: Cycle, out: &mut Vec<Pending<'a, E>>) {
        out.clear();
        self.for_each_pending(|p| out.push(p));
        out.sort_by_key(|p| (p.at, p.seq));
        if let Some(first) = out.first() {
            let horizon = first.at.saturating_add(window);
            out.retain(|p| p.at <= horizon);
        }
    }

    /// The deliverable frontier: every pending event whose effective
    /// delivery time falls within `window` cycles of the earliest one,
    /// sorted by effective `(time, seq)` — the order [`pop`](Self::pop)
    /// would deliver them. `window == 0` lists only the events tied for
    /// earliest; a wider window exposes later messages that a scheduler
    /// could deliver *first* (modeling extra network delay on the earlier
    /// ones).
    pub fn frontier(&self, window: Cycle) -> Vec<Pending<'_, E>> {
        let mut v = Vec::new();
        self.frontier_into(window, &mut v);
        v
    }

    /// Delivers the pending event identified by `seq` (from a
    /// [`frontier`](Self::frontier) view), advancing the clock to its
    /// effective delivery time. Events the clock jumps over stay pending
    /// and deliver at the (later) current time — the physical reading is
    /// that their messages sat on the wire a little longer.
    ///
    /// Returns `None` if no pending event has that seq.
    pub fn pop_seq(&mut self, seq: u64) -> Option<(Cycle, E)> {
        self.pop_seq_traced(seq).map(|(at, _, e)| (at, e))
    }

    /// [`pop_seq`](Self::pop_seq) that additionally reports where the event
    /// was stored ([`PopOrigin`]), which [`restore_mark`](Self::restore_mark)
    /// needs to reinsert it losslessly: the *original* scheduled time must
    /// be restored (not the effective pop time), because an enclosing undo
    /// may later rewind the clock below this pop's `now`, where the two
    /// diverge.
    pub fn pop_seq_traced(&mut self, seq: u64) -> Option<(Cycle, PopOrigin, E)> {
        // Effective time must be computed before removal.
        let (at, origin) = if self.ready.iter().any(|(s, _)| *s == seq) {
            (self.now, PopOrigin::Ready)
        } else if let Some(s) = self.heap.iter().find(|s| s.seq == seq) {
            (s.time.max(self.now), PopOrigin::Timer(s.time))
        } else if let Some(t) = self
            .buckets
            .iter()
            .flatten()
            .find(|s| s.seq == seq)
            .map(|s| s.time)
        {
            (t.max(self.now), PopOrigin::Timer(t))
        } else {
            return None;
        };
        // A chooser is steering delivery: abandon the wheel fast path so
        // the careful scan paths only ever face heap + ready.
        self.spill_wheel();
        let event = self.remove_seq(seq).expect("checked present");
        self.now = at;
        // Any deviation from strict FIFO order leaves the raw order
        // untrustworthy; flag it unless the queue is now empty.
        self.disordered = !self.is_empty();
        Some((at, origin, event))
    }

    /// Removes the event with the given seq from the ready lane or the
    /// heap. The wheel is spilled before this runs (disordered regime).
    fn remove_seq(&mut self, seq: u64) -> Option<E> {
        if let Some(pos) = self.ready.iter().position(|(s, _)| *s == seq) {
            return self.ready.remove(pos).map(|(_, e)| e);
        }
        let mut items = std::mem::take(&mut self.heap).into_vec();
        let pos = items.iter().position(|s| s.seq == seq);
        let found = pos.map(|p| items.swap_remove(p).event);
        self.heap = BinaryHeap::from(items);
        found
    }

    /// Pops the next event selected by `chooser` from the frontier within
    /// `window`. With [`FifoChooser`] this is equivalent to
    /// [`pop`](Self::pop) (modulo the frontier materialization cost).
    pub fn pop_with<C: Chooser<E>>(
        &mut self,
        window: Cycle,
        chooser: &mut C,
    ) -> Option<(Cycle, E)> {
        let seq = {
            let f = self.frontier(window);
            if f.is_empty() {
                return None;
            }
            chooser.choose(&f)
        };
        self.pop_seq(seq)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.wheel_len + self.ready.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.wheel_len == 0 && self.ready.is_empty()
    }

    /// Total number of events ever scheduled (for stats / fuel limits).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Captures the queue's scalar state before a [`pop_seq`](Self::pop_seq)
    /// so [`restore_mark`](Self::restore_mark) can rewind it. The mark pins
    /// the clock, the sequence counter (every event scheduled after the mark
    /// has a larger seq), and the ordering regime.
    pub fn mark(&self) -> QueueMark {
        QueueMark {
            now: self.now,
            next_seq: self.next_seq,
            disordered: self.disordered,
        }
    }

    /// Rewinds the queue to `mark`, undoing one `pop_seq` step: every event
    /// scheduled after the mark (seq > `mark.next_seq`) is dropped, the
    /// popped event is reinserted per its [`PopOrigin`] — a ready-lane
    /// event returns to the ready lane at its seq-sorted position, a timer
    /// event re-enters the heap at its *original scheduled time* — and the
    /// clock, sequence counter, and ordering flag are restored.
    ///
    /// One structural liberty is taken, behaviorally invisible: timer
    /// events (including wheel entries that `pop_seq` spilled) live in the
    /// heap afterwards. The wheel is a pure optimization — every consumer
    /// agrees on effective `(time, seq)` order regardless of which
    /// structure holds an event. Restoring the *original* time (not the
    /// effective pop time) matters under nesting: an enclosing undo may
    /// rewind the clock below this mark's `now`, where
    /// `max(effective, t) != max(scheduled, t)`.
    pub fn restore_mark(&mut self, mark: QueueMark, origin: PopOrigin, popped_seq: u64, event: E) {
        // Drop everything scheduled after the mark. Ready and wheel buckets
        // are seq-ascending, so post-mark entries sit at the back.
        while self
            .ready
            .back()
            .is_some_and(|(seq, _)| *seq > mark.next_seq)
        {
            self.ready.pop_back();
        }
        if self.heap.iter().any(|s| s.seq > mark.next_seq) {
            let mut items = std::mem::take(&mut self.heap).into_vec();
            items.retain(|s| s.seq <= mark.next_seq);
            self.heap = BinaryHeap::from(items);
        }
        if self.wheel_len > 0 {
            for idx in 0..WHEEL {
                while self.buckets[idx]
                    .back()
                    .is_some_and(|s| s.seq > mark.next_seq)
                {
                    self.buckets[idx].pop_back();
                    self.wheel_len -= 1;
                }
                if self.buckets[idx].is_empty() {
                    self.occ[idx / 64] &= !(1u64 << (idx % 64));
                }
            }
        }
        match origin {
            PopOrigin::Ready => {
                // Back into the ready lane at its seq slot, so the batch
                // paths (which drain ready last, in seq order) are
                // untouched. Its conceptual due-time is the clock value at
                // its scheduling moment, which any restorable mark's `now`
                // already meets or exceeds.
                let pos = self
                    .ready
                    .iter()
                    .position(|(seq, _)| *seq > popped_seq)
                    .unwrap_or(self.ready.len());
                self.ready.insert(pos, (popped_seq, event));
            }
            PopOrigin::Timer(time) => {
                debug_assert!(
                    mark.disordered || time >= mark.now,
                    "ordered-regime timer event predates the mark"
                );
                self.heap.push(Scheduled {
                    time,
                    seq: popped_seq,
                    event,
                });
            }
        }
        self.now = mark.now;
        self.next_seq = mark.next_seq;
        self.disordered = mark.disordered;
    }
}

/// Scalar queue state captured by [`EventQueue::mark`]; see
/// [`EventQueue::restore_mark`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueueMark {
    now: Cycle,
    next_seq: u64,
    disordered: bool,
}

/// Where a popped event was stored, as reported by
/// [`EventQueue::pop_seq_traced`] and consumed by
/// [`EventQueue::restore_mark`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PopOrigin {
    /// The ready lane (due at the clock value of its scheduling moment).
    #[default]
    Ready,
    /// A timer structure (wheel or heap), with its original scheduled time.
    Timer(Cycle),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), ());
        q.schedule(Cycle(4), ());
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, Cycle(4));
        assert_eq!(q.now(), Cycle(4));
        // Scheduling in the past clamps to `now`.
        q.schedule(Cycle(1), ());
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, Cycle(4));
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t3, Cycle(10));
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(100), "a");
        q.pop();
        q.schedule_after(Cycle(5), "b");
        assert_eq!(q.pop(), Some((Cycle(105), "b")));
    }

    #[test]
    fn len_and_counts() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycle(1), ());
        q.schedule(Cycle(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_count(), 2);
    }

    #[test]
    fn pop_batch_drains_one_timestamp_in_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), 1);
        q.schedule(Cycle(5), 2);
        q.schedule(Cycle(9), 3);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(Cycle(100), &mut batch), Some(Cycle(5)));
        assert_eq!(batch, vec![1, 2], "same-cycle events only, seq order");
        assert_eq!(q.now(), Cycle(5));
        batch.clear();
        assert_eq!(q.pop_batch(Cycle(7), &mut batch), None, "9 > 7: untouched");
        assert_eq!(q.pop_batch(Cycle(9), &mut batch), Some(Cycle(9)));
        assert_eq!(batch, vec![3]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_includes_same_cycle_ready_events_after_heap_events() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(4), 1);
        q.schedule(Cycle(4), 2);
        let (t, first) = q.pop().unwrap();
        assert_eq!((t, first), (Cycle(4), 1));
        // Scheduled while the clock stands at 4: goes to the ready queue,
        // and must drain *after* the remaining timer event at 4.
        q.schedule(Cycle(4), 3);
        q.schedule(Cycle(0), 4); // past: clamps to now=4
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(Cycle::MAX, &mut batch), Some(Cycle(4)));
        assert_eq!(batch, vec![2, 3, 4]);
    }

    #[test]
    fn same_cycle_schedule_pop_interleave_keeps_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(7), 0);
        q.pop();
        // A zero-latency cascade: each pop schedules the next at `now`.
        q.schedule(Cycle(7), 1);
        q.schedule(Cycle(7), 2);
        assert_eq!(q.pop(), Some((Cycle(7), 1)));
        q.schedule(Cycle(7), 3);
        assert_eq!(q.pop(), Some((Cycle(7), 2)));
        assert_eq!(q.pop(), Some((Cycle(7), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ready_events_do_not_starve_later_heap_events() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(3), "a");
        q.schedule(Cycle(10), "z");
        q.pop(); // now = 3
        q.schedule(Cycle(3), "b");
        assert_eq!(q.peek_time(), Some(Cycle(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Cycle(3), "b")));
        assert_eq!(q.pop(), Some((Cycle(10), "z")));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(7), ());
        assert_eq!(q.peek_time(), Some(Cycle(7)));
        assert_eq!(q.now(), Cycle::ZERO);
    }

    #[test]
    fn frontier_orders_by_effective_time_then_seq() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "a"); // seq 1
        q.schedule(Cycle(12), "b"); // seq 2
        q.schedule(Cycle(40), "c"); // seq 3
        let f = q.frontier(Cycle(5));
        assert_eq!(f.len(), 2, "c is outside the 5-cycle window");
        assert_eq!((f[0].at, f[0].seq, *f[0].event), (Cycle(10), 1, "a"));
        assert_eq!((f[1].at, f[1].seq, *f[1].event), (Cycle(12), 2, "b"));
        // Window 0 exposes only the earliest timestamp.
        assert_eq!(q.frontier(Cycle(0)).len(), 1);
        // Window wide enough shows everything.
        assert_eq!(q.frontier(Cycle(100)).len(), 3);
    }

    #[test]
    fn frontier_includes_ready_events_in_seq_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(4), "heap@4"); // seq 1
        q.schedule(Cycle(4), "heap@4b"); // seq 2
        q.pop(); // delivers seq 1, now = 4
        q.schedule(Cycle(4), "ready"); // seq 3 → ready
        q.schedule(Cycle(6), "later"); // seq 4
        let f = q.frontier(Cycle(10));
        let seqs: Vec<u64> = f.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "timer@now before ready before later");
    }

    #[test]
    fn pop_seq_delivers_later_event_first_and_delays_the_rest() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "a"); // seq 1
        q.schedule(Cycle(12), "b"); // seq 2
                                    // Deliver b first: the clock jumps to 12 and a is now late.
        assert_eq!(q.pop_seq(2), Some((Cycle(12), "b")));
        assert_eq!(q.now(), Cycle(12));
        // a delivers at the current time, not in the past.
        assert_eq!(q.pop(), Some((Cycle(12), "a")));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_seq_unknown_seq_is_none_and_lossless() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "a");
        assert_eq!(q.pop_seq(99), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Cycle(10), "a")));
    }

    #[test]
    fn disordered_pops_follow_effective_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), 1); // seq 1
        q.schedule(Cycle(11), 2); // seq 2
        q.schedule(Cycle(12), 3); // seq 3
        q.schedule(Cycle(20), 4); // seq 4
                                  // Jump over 1 and 2.
        assert_eq!(q.pop_seq(3), Some((Cycle(12), 3)));
        // 1 and 2 are both effectively due at 12 now: seq order breaks the tie.
        assert_eq!(q.pop(), Some((Cycle(12), 1)));
        assert_eq!(q.pop(), Some((Cycle(12), 2)));
        assert_eq!(q.pop(), Some((Cycle(20), 4)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn disordered_pop_batch_still_drains_everything_in_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(11), 2);
        q.schedule(Cycle(30), 3);
        assert_eq!(q.pop_seq(2), Some((Cycle(11), 2)));
        let mut out = Vec::new();
        let mut times = Vec::new();
        while let Some(t) = q.pop_batch(Cycle::MAX, &mut out) {
            times.push(t);
        }
        assert_eq!(out, vec![1, 3]);
        assert_eq!(times, vec![Cycle(11), Cycle(30)]);
    }

    #[test]
    fn pop_with_fifo_chooser_matches_pop() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for (t, e) in [(9u64, 1), (3, 2), (3, 3), (15, 4)] {
            a.schedule(Cycle(t), e);
            b.schedule(Cycle(t), e);
        }
        let mut chooser = FifoChooser;
        loop {
            let x = a.pop();
            let y = b.pop_with(Cycle(64), &mut chooser);
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn ready_events_survive_a_clock_jump() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), "x"); // seq 1
        q.pop(); // now = 5
        q.schedule(Cycle(5), "ready"); // seq 2 → ready at now=5
        q.schedule(Cycle(9), "heap"); // seq 3
                                      // Jump to the heap event, leaving the ready event stale.
        assert_eq!(q.pop_seq(3), Some((Cycle(9), "heap")));
        // The stale ready event delivers at the current time.
        assert_eq!(q.pop(), Some((Cycle(9), "ready")));
        assert!(q.is_empty());
    }

    // ---- calendar wheel specifics ----

    /// Reference model: a flat vector popped by linear scan over effective
    /// `(max(time, now), seq)`. This is the semantics every fast path must
    /// reproduce exactly.
    struct NaiveQueue<E> {
        items: Vec<(Cycle, u64, E)>,
        next_seq: u64,
        now: Cycle,
    }

    impl<E> NaiveQueue<E> {
        fn new() -> Self {
            NaiveQueue {
                items: Vec::new(),
                next_seq: 0,
                now: Cycle::ZERO,
            }
        }

        fn schedule(&mut self, at: Cycle, event: E) {
            self.next_seq += 1;
            self.items.push((at.max(self.now), self.next_seq, event));
        }

        fn pop(&mut self) -> Option<(Cycle, E)> {
            let pos = (0..self.items.len())
                .min_by_key(|&i| (self.items[i].0.max(self.now), self.items[i].1))?;
            let (t, _, e) = self.items.remove(pos);
            self.now = t.max(self.now);
            Some((self.now, e))
        }

        fn pop_seq(&mut self, seq: u64) -> Option<(Cycle, E)> {
            let pos = self.items.iter().position(|&(_, s, _)| s == seq)?;
            let (t, _, e) = self.items.remove(pos);
            self.now = t.max(self.now);
            Some((self.now, e))
        }
    }

    /// A tiny deterministic PRNG (xorshift64*) so the recorded workload is
    /// identical on every run.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn same_cycle_fifo_order_in_wheel_buckets() {
        let mut q = EventQueue::new();
        // All land in one wheel bucket (delta < WHEEL, same timestamp).
        for i in 0..50 {
            q.schedule(Cycle(17), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn heap_wheel_boundary_crossing_preserves_order() {
        let mut q = EventQueue::new();
        let w = WHEEL as u64;
        // Far event: goes to the heap (delta == WHEEL).
        q.schedule(Cycle(w), "far"); // seq 1
                                     // Near events: wheel (delta < WHEEL).
        q.schedule(Cycle(w - 1), "near-late"); // seq 2
        q.schedule(Cycle(3), "near-early"); // seq 3
        assert_eq!(q.pop(), Some((Cycle(3), "near-early")));
        // now = 3: time w is within the wheel horizon now, so a second
        // event at the same timestamp as the heap-resident "far" lands in
        // the wheel. The heap entry has the smaller seq and must win.
        q.schedule(Cycle(w), "far-twin"); // seq 4 → wheel
        assert_eq!(q.pop(), Some((Cycle(w - 1), "near-late")));
        assert_eq!(q.pop(), Some((Cycle(w), "far")));
        assert_eq!(q.pop(), Some((Cycle(w), "far-twin")));
        assert!(q.is_empty());
    }

    #[test]
    fn heap_wheel_tie_merges_by_seq_in_pop_batch() {
        let mut q = EventQueue::new();
        let w = WHEEL as u64;
        q.schedule(Cycle(w + 5), 1); // heap
        q.schedule(Cycle(2), 0); // wheel
        q.pop(); // now = 2
        q.schedule(Cycle(w + 5), 2); // wheel (delta < WHEEL now)
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(Cycle::MAX, &mut batch), Some(Cycle(w + 5)));
        assert_eq!(batch, vec![1, 2], "heap seq 1 before wheel seq 3");
    }

    #[test]
    fn wheel_wraparound_keeps_time_order() {
        let mut q = EventQueue::new();
        let w = WHEEL as u64;
        // Advance the clock deep into the second wheel revolution so bucket
        // indices wrap modulo WHEEL.
        q.schedule(Cycle(w + 10), "start");
        q.pop(); // now = w + 10
        q.schedule(Cycle(w + 20), "a"); // bucket (w+20) % W = 20
        q.schedule(Cycle(2 * w - 1), "b"); // bucket (2w-1) % W = W-1
        q.schedule(Cycle(w + 11), "c"); // bucket 11
        assert_eq!(q.pop(), Some((Cycle(w + 11), "c")));
        assert_eq!(q.pop(), Some((Cycle(w + 20), "a")));
        assert_eq!(q.pop(), Some((Cycle(2 * w - 1), "b")));
    }

    #[test]
    fn pop_seq_on_wheel_entry_spills_and_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), 1); // seq 1 → wheel
        q.schedule(Cycle(12), 2); // seq 2 → wheel
        q.schedule(Cycle(500), 3); // seq 3 → heap
        assert_eq!(q.pop_seq(2), Some((Cycle(12), 2)));
        // Remaining wheel entry was spilled; effective order still holds.
        assert_eq!(q.pop(), Some((Cycle(12), 1)));
        assert_eq!(q.pop(), Some((Cycle(500), 3)));
        assert!(q.is_empty());
        // The queue leaves the disordered regime once drained: new events
        // take the fast path again.
        q.schedule(Cycle(600), 4);
        assert_eq!(q.pop(), Some((Cycle(600), 4)));
    }

    #[test]
    fn frontier_sees_wheel_heap_and_ready_entries() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), "wheel"); // seq 1
        q.schedule(Cycle(5000), "heap"); // seq 2
        q.schedule(Cycle(1), "first"); // seq 3
        q.pop(); // now = 1
        q.schedule(Cycle(1), "ready"); // seq 4
        let f = q.frontier(Cycle::MAX);
        let seqs: Vec<u64> = f.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![4, 1, 2], "ready@1, wheel@5, heap@5000");
    }

    #[test]
    fn frontier_into_reuses_buffer_and_matches_frontier() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "a");
        q.schedule(Cycle(12), "b");
        q.schedule(Cycle(900), "c");
        let mut buf = Vec::with_capacity(8);
        q.frontier_into(Cycle(5), &mut buf);
        let fresh = q.frontier(Cycle(5));
        assert_eq!(buf.len(), fresh.len());
        for (x, y) in buf.iter().zip(&fresh) {
            assert_eq!((x.at, x.seq, x.event), (y.at, y.seq, y.event));
        }
        // Second call reuses the same allocation.
        let cap = buf.capacity();
        q.frontier_into(Cycle::MAX, &mut buf);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn restore_mark_rewinds_a_pop_seq_exactly() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), 1); // seq 1 → wheel
        q.schedule(Cycle(12), 2); // seq 2 → wheel
        q.schedule(Cycle(500), 3); // seq 3 → heap
        let mark = q.mark();
        let (at, origin, ev) = q.pop_seq_traced(2).unwrap();
        assert_eq!(
            (at, origin, ev),
            (Cycle(12), PopOrigin::Timer(Cycle(12)), 2)
        );
        // The step schedules follow-on events; all must vanish on restore.
        q.schedule(Cycle(12), 20);
        q.schedule(Cycle(40), 21);
        q.schedule(Cycle(900), 22);
        q.restore_mark(mark, origin, 2, ev);
        assert_eq!(q.now(), Cycle::ZERO);
        assert_eq!(q.scheduled_count(), 3);
        assert_eq!(q.len(), 3);
        // Replay FIFO order: identical to a queue that never deviated.
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(12), 2)));
        assert_eq!(q.pop(), Some((Cycle(500), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn restore_mark_reinserts_ready_events_in_seq_position() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), 0); // seq 1
        q.pop(); // now = 5
        q.schedule(Cycle(5), 10); // seq 2 → ready
        q.schedule(Cycle(5), 11); // seq 3 → ready
        q.schedule(Cycle(5), 12); // seq 4 → ready
        let mark = q.mark();
        let (at, origin, ev) = q.pop_seq_traced(3).unwrap();
        assert_eq!((at, origin, ev), (Cycle(5), PopOrigin::Ready, 11));
        q.restore_mark(mark, origin, 3, ev);
        // The middle ready event is back in its seq slot: batch drain order
        // is untouched.
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(Cycle::MAX, &mut batch), Some(Cycle(5)));
        assert_eq!(batch, vec![10, 11, 12]);
    }

    #[test]
    fn repeated_pop_restore_cycles_match_reference_replay() {
        // Fuzz: interleave pop_seq jumps with restores and check the final
        // drain matches a naive queue fed the same surviving schedule set.
        let mut rng = Rng(0xD1CE_0F_5EED);
        let mut fast: EventQueue<u64> = EventQueue::new();
        let mut slow: NaiveQueue<u64> = NaiveQueue::new();
        let mut payload = 0u64;
        for _ in 0..1500 {
            match rng.next() % 8 {
                0..=4 => {
                    let delta = rng.next() % (WHEEL as u64 + 40);
                    let at = fast.now().saturating_add(Cycle(delta));
                    payload += 1;
                    fast.schedule(at, payload);
                    slow.schedule(at, payload);
                }
                5 => {
                    assert_eq!(fast.pop(), slow.pop());
                }
                _ => {
                    // Jump to a random pending seq, then immediately undo it
                    // on the fast queue only — the slow queue never saw it.
                    if fast.scheduled_count() > 0 {
                        let seq = rng.next() % fast.scheduled_count() + 1;
                        let mark = fast.mark();
                        if let Some((_at, origin, ev)) = fast.pop_seq_traced(seq) {
                            fast.restore_mark(mark, origin, seq, ev);
                        }
                    }
                }
            }
        }
        loop {
            let (x, y) = (fast.pop(), slow.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn nested_restores_preserve_pending_times() {
        // DFS with a mark *stack*: descend several pop_seq steps deep
        // (scheduling follow-ons along the way), then unwind. Each parent
        // must see its exact pending snapshot — effective times included —
        // after the child subtree is undone. Immediate pop→restore cycles
        // cannot catch restores that become stale when an enclosing undo
        // rewinds the clock further, which is exactly the exploration
        // walker's access pattern.
        fn snapshot(q: &EventQueue<u64>) -> (Cycle, Vec<(Cycle, u64, u64)>) {
            let mut pending = Vec::new();
            q.for_each_pending(|p| pending.push((p.at, p.seq, *p.event)));
            pending.sort_unstable();
            (q.now(), pending)
        }
        fn dfs(q: &mut EventQueue<u64>, rng: &mut Rng, payload: &mut u64, depth: u32) {
            if depth == 0 || q.scheduled_count() == 0 {
                return;
            }
            let mut seqs = Vec::new();
            q.for_each_pending(|p| seqs.push(p.seq));
            seqs.sort_unstable();
            // Up to three children per node, chosen pseudo-randomly.
            for _ in 0..3 {
                let seq = seqs[(rng.next() % seqs.len() as u64) as usize];
                let before = snapshot(q);
                let mark = q.mark();
                let Some((_, origin, ev)) = q.pop_seq_traced(seq) else {
                    continue;
                };
                // The step schedules follow-on events at mixed horizons
                // (ready, wheel, heap) that the restore must drop.
                for _ in 0..rng.next() % 3 {
                    let delta = [0, 1, 3, WHEEL as u64 + 9][(rng.next() % 4) as usize];
                    *payload += 1;
                    q.schedule(q.now().saturating_add(Cycle(delta)), *payload);
                }
                dfs(q, rng, payload, depth - 1);
                q.restore_mark(mark, origin, seq, ev);
                assert_eq!(snapshot(q), before, "undo at depth {depth} diverged");
            }
        }
        let mut rng = Rng(0xBACC_7AC3_5EED);
        for round in 0..40 {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut payload = round * 1000;
            // Seed a mixed pending set: some near (wheel), some far (heap),
            // and advance the clock so a ready lane can form.
            for _ in 0..6 {
                let delta = rng.next() % (WHEEL as u64 + 20);
                payload += 1;
                q.schedule(Cycle(delta), payload);
            }
            q.pop();
            for _ in 0..2 {
                payload += 1;
                q.schedule(q.now(), payload); // ready lane
            }
            dfs(&mut q, &mut rng, &mut payload, 4);
        }
    }

    #[test]
    fn recorded_stream_matches_reference_model() {
        // A recorded mixed workload: schedules clustered near `now` (wheel),
        // occasional far schedules (heap), zero-latency replies (ready),
        // FIFO pops, and occasional out-of-order pop_seq jumps. The hybrid
        // queue must produce the exact event order of the naive reference.
        let mut rng = Rng(0x5EED_CAFE_F00D_0001);
        let mut fast: EventQueue<u64> = EventQueue::new();
        let mut slow: NaiveQueue<u64> = NaiveQueue::new();
        let mut payload = 0u64;
        for step in 0..4000 {
            let r = rng.next();
            match r % 10 {
                // 60%: schedule near-term (exercises the wheel, including
                // the exact WHEEL-1 / WHEEL boundary).
                0..=5 => {
                    let delta = rng.next() % (WHEEL as u64 + 2);
                    let at = fast.now().saturating_add(Cycle(delta));
                    payload += 1;
                    fast.schedule(at, payload);
                    slow.schedule(at, payload);
                }
                // 10%: schedule far (heap).
                6 => {
                    let at = fast
                        .now()
                        .saturating_add(Cycle(WHEEL as u64 + rng.next() % 1000));
                    payload += 1;
                    fast.schedule(at, payload);
                    slow.schedule(at, payload);
                }
                // 20%: FIFO pop.
                7 | 8 => {
                    assert_eq!(fast.pop(), slow.pop(), "step {step}");
                }
                // 10%: out-of-order jump to a random pending seq.
                _ => {
                    if fast.scheduled_count() > 0 {
                        let seq = rng.next() % fast.scheduled_count() + 1;
                        assert_eq!(fast.pop_seq(seq), slow.pop_seq(seq), "step {step}");
                    }
                }
            }
        }
        // Drain both completely.
        loop {
            let (x, y) = (fast.pop(), slow.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}
