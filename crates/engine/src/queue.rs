//! The discrete-event scheduler queue.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::cycle::Cycle;

/// An event scheduled for a particular cycle.
///
/// Ordering is by time first, then by insertion sequence number, so two
/// events scheduled for the same cycle are delivered in the order they were
/// scheduled. This tie-break is what makes the whole simulator deterministic.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A pending event visible through [`EventQueue::frontier`].
///
/// `at` is the *effective* delivery time: events whose scheduled time has
/// already passed (because a chooser jumped the clock over them) deliver at
/// `now`. `seq` is a stable identity — it names the same event across
/// repeated frontier calls until that event is delivered.
#[derive(Debug)]
pub struct Pending<'a, E> {
    /// Effective delivery time if this event is chosen next.
    pub at: Cycle,
    /// Stable identity of the event (its scheduling sequence number).
    pub seq: u64,
    /// The event payload.
    pub event: &'a E,
}

// Manual impls: the derive would demand `E: Copy`, but the field is only a
// reference.
impl<E> Clone for Pending<'_, E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for Pending<'_, E> {}

/// A scheduling policy plugged into [`EventQueue::pop_with`].
///
/// The deterministic simulator is the trivial chooser ([`FifoChooser`]):
/// always deliver the frontier head, which is exactly what [`EventQueue::pop`]
/// does without ever materializing the frontier. Exploration tools implement
/// this trait (or drive [`EventQueue::frontier`] + [`EventQueue::pop_seq`]
/// directly) to enumerate alternative delivery orders.
pub trait Chooser<E> {
    /// Given the deliverable frontier (never empty, sorted by effective
    /// `(time, seq)`), return the `seq` of the event to deliver next.
    fn choose(&mut self, frontier: &[Pending<'_, E>]) -> u64;
}

/// The trivial chooser: always delivers the earliest `(time, seq)` event,
/// i.e. the exact order [`EventQueue::pop`] produces.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoChooser;

impl<E> Chooser<E> for FifoChooser {
    fn choose(&mut self, frontier: &[Pending<'_, E>]) -> u64 {
        frontier[0].seq
    }
}

/// A deterministic priority queue of timed events.
///
/// The queue is generic over the event payload `E`; the simulator's main
/// loop pops events in `(time, insertion order)` order and dispatches them
/// to the owning component.
///
/// # Example
///
/// ```
/// use sim_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(10), "late");
/// q.schedule(Cycle(1), "early");
/// q.schedule(Cycle(1), "early-but-second");
///
/// assert_eq!(q.pop(), Some((Cycle(1), "early")));
/// assert_eq!(q.pop(), Some((Cycle(1), "early-but-second")));
/// assert_eq!(q.pop(), Some((Cycle(10), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Events due exactly at `now`, scheduled while the clock already stood
    /// at `now` (zero-latency replies, replays). They bypass the heap: a
    /// push and pop here are O(1) instead of O(log n) sift operations.
    ///
    /// Ordering stays correct because `now` only reaches a time T after
    /// every earlier schedule call completed, so anything already in the
    /// heap at time T carries a smaller sequence number than anything that
    /// enters `ready` while the clock stands at T — heap-first at equal
    /// times is exactly `(time, seq)` order. Each entry keeps its sequence
    /// number so frontier views can name it.
    ready: VecDeque<(u64, E)>,
    next_seq: u64,
    now: Cycle,
    /// Set when [`pop_seq`](Self::pop_seq) delivered an event out of FIFO
    /// order while others were pending. From then on the heap's raw
    /// `(time, seq)` order no longer matches effective delivery order
    /// (`(max(time, now), seq)`), so `pop`/`pop_batch` take a careful scan
    /// path until the queue drains. Never set on the deterministic path.
    disordered: bool,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Cycle::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            ready: VecDeque::new(),
            next_seq: 0,
            now: Cycle::ZERO,
            disordered: false,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` for absolute time `at`.
    ///
    /// Events scheduled in the past are delivered at the current time
    /// instead; this keeps component code simple (a zero-latency response
    /// is just `schedule(now, ..)`).
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let time = at.max(self.now);
        self.next_seq += 1;
        if time == self.now {
            // Same-cycle event: FIFO push preserves seq order within the
            // cycle without touching the heap.
            self.ready.push_back((self.next_seq, event));
        } else {
            let seq = self.next_seq;
            self.heap.push(Scheduled { time, seq, event });
        }
    }

    /// Schedules `event` to fire `delay` cycles from now.
    pub fn schedule_after(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the simulation has drained.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.disordered {
            return self.pop_careful();
        }
        // Heap events at `now` precede `ready` events (smaller seq; see the
        // `ready` field docs); `ready` events precede later heap events.
        if !self.ready.is_empty() {
            let heap_at_now = matches!(self.heap.peek(), Some(s) if s.time == self.now);
            if !heap_at_now {
                let (_, event) = self.ready.pop_front().expect("checked non-empty");
                return Some((self.now, event));
            }
        }
        let Scheduled { time, event, .. } = self.heap.pop()?;
        debug_assert!(time >= self.now, "event queue time went backwards");
        self.now = time;
        Some((time, event))
    }

    /// Pop for the disordered regime: select the minimum by effective
    /// `(max(time, now), seq)` with a full scan. Only reachable after a
    /// chooser deviated from FIFO order, where queues are small.
    fn pop_careful(&mut self) -> Option<(Cycle, E)> {
        let ready_best = self.ready.front().map(|(seq, _)| (self.now, *seq));
        let heap_best = self
            .heap
            .iter()
            .map(|s| (s.time.max(self.now), s.seq))
            .min();
        let (at, seq) = match (ready_best, heap_best) {
            (None, None) => return None,
            (Some(r), None) => r,
            (None, Some(h)) => h,
            (Some(r), Some(h)) => r.min(h),
        };
        let event = self.remove_seq(seq).expect("selected seq present");
        self.now = at;
        if self.is_empty() {
            self.disordered = false;
        }
        Some((at, event))
    }

    /// Drains every event due at the next timestamp (if it is ≤ `upto`)
    /// into `out`, preserving `(time, seq)` order, and advances the clock
    /// there. Returns that timestamp, or `None` if the next event is after
    /// `upto` (or the queue is empty). One call replaces a
    /// peek-compare-pop cycle per event, which is what the hierarchy's
    /// event loop runs hottest on.
    ///
    /// Events scheduled *while the batch is processed* land in a fresh
    /// batch — the caller re-calls until `None`, which is exactly the order
    /// a one-at-a-time pop loop would produce, since in-flight schedules
    /// always carry larger sequence numbers than the drained batch.
    pub fn pop_batch(&mut self, upto: Cycle, out: &mut Vec<E>) -> Option<Cycle> {
        if self.disordered {
            // Careful path: deliver one event per call (still one
            // timestamp, just a smaller batch). Correctness over batching.
            if self.peek_time()? > upto {
                return None;
            }
            let (t, e) = self.pop_careful()?;
            out.push(e);
            return Some(t);
        }
        let t = self.peek_time()?;
        if t > upto {
            return None;
        }
        self.now = t;
        while matches!(self.heap.peek(), Some(s) if s.time == t) {
            out.push(self.heap.pop().expect("peeked").event);
        }
        // `ready` events are due at the old `now`; they are part of this
        // batch only when the clock did not move (t == old now), which is
        // the only case where `ready` can be non-empty here.
        out.extend(self.ready.drain(..).map(|(_, e)| e));
        Some(t)
    }

    /// Returns the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.disordered {
            let ready_best = self.ready.front().map(|_| self.now);
            let heap_best = self.heap.iter().map(|s| s.time.max(self.now)).min();
            return match (ready_best, heap_best) {
                (None, None) => None,
                (r, h) => r.into_iter().chain(h).min(),
            };
        }
        if self.ready.is_empty() {
            self.heap.peek().map(|s| s.time)
        } else {
            // Ready events are due now; a heap event can tie but not beat.
            Some(self.now)
        }
    }

    /// The deliverable frontier: every pending event whose effective
    /// delivery time falls within `window` cycles of the earliest one,
    /// sorted by effective `(time, seq)` — the order [`pop`](Self::pop)
    /// would deliver them. `window == 0` lists only the events tied for
    /// earliest; a wider window exposes later messages that a scheduler
    /// could deliver *first* (modeling extra network delay on the earlier
    /// ones).
    pub fn frontier(&self, window: Cycle) -> Vec<Pending<'_, E>> {
        let mut v: Vec<Pending<'_, E>> = self
            .ready
            .iter()
            .map(|(seq, event)| Pending {
                at: self.now,
                seq: *seq,
                event,
            })
            .chain(self.heap.iter().map(|s| Pending {
                at: s.time.max(self.now),
                seq: s.seq,
                event: &s.event,
            }))
            .collect();
        v.sort_by_key(|p| (p.at, p.seq));
        if let Some(first) = v.first() {
            let horizon = first.at.saturating_add(window);
            v.retain(|p| p.at <= horizon);
        }
        v
    }

    /// Delivers the pending event identified by `seq` (from a
    /// [`frontier`](Self::frontier) view), advancing the clock to its
    /// effective delivery time. Events the clock jumps over stay pending
    /// and deliver at the (later) current time — the physical reading is
    /// that their messages sat on the wire a little longer.
    ///
    /// Returns `None` if no pending event has that seq.
    pub fn pop_seq(&mut self, seq: u64) -> Option<(Cycle, E)> {
        // Effective time must be computed before removal.
        let at = if self.ready.iter().any(|(s, _)| *s == seq) {
            self.now
        } else {
            self.heap.iter().find(|s| s.seq == seq)?.time.max(self.now)
        };
        let event = self.remove_seq(seq).expect("checked present");
        self.now = at;
        // Any deviation from strict FIFO order leaves the heap's raw order
        // untrustworthy; flag it unless the queue is now empty.
        self.disordered = !self.is_empty();
        Some((at, event))
    }

    /// Removes the event with the given seq from wherever it lives.
    fn remove_seq(&mut self, seq: u64) -> Option<E> {
        if let Some(pos) = self.ready.iter().position(|(s, _)| *s == seq) {
            return self.ready.remove(pos).map(|(_, e)| e);
        }
        let mut items = std::mem::take(&mut self.heap).into_vec();
        let pos = items.iter().position(|s| s.seq == seq);
        let found = pos.map(|p| items.swap_remove(p).event);
        self.heap = BinaryHeap::from(items);
        found
    }

    /// Pops the next event selected by `chooser` from the frontier within
    /// `window`. With [`FifoChooser`] this is equivalent to
    /// [`pop`](Self::pop) (modulo the frontier materialization cost).
    pub fn pop_with<C: Chooser<E>>(
        &mut self,
        window: Cycle,
        chooser: &mut C,
    ) -> Option<(Cycle, E)> {
        let seq = {
            let f = self.frontier(window);
            if f.is_empty() {
                return None;
            }
            chooser.choose(&f)
        };
        self.pop_seq(seq)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.ready.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.ready.is_empty()
    }

    /// Total number of events ever scheduled (for stats / fuel limits).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), ());
        q.schedule(Cycle(4), ());
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, Cycle(4));
        assert_eq!(q.now(), Cycle(4));
        // Scheduling in the past clamps to `now`.
        q.schedule(Cycle(1), ());
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, Cycle(4));
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t3, Cycle(10));
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(100), "a");
        q.pop();
        q.schedule_after(Cycle(5), "b");
        assert_eq!(q.pop(), Some((Cycle(105), "b")));
    }

    #[test]
    fn len_and_counts() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycle(1), ());
        q.schedule(Cycle(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_count(), 2);
    }

    #[test]
    fn pop_batch_drains_one_timestamp_in_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), 1);
        q.schedule(Cycle(5), 2);
        q.schedule(Cycle(9), 3);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(Cycle(100), &mut batch), Some(Cycle(5)));
        assert_eq!(batch, vec![1, 2], "same-cycle events only, seq order");
        assert_eq!(q.now(), Cycle(5));
        batch.clear();
        assert_eq!(q.pop_batch(Cycle(7), &mut batch), None, "9 > 7: untouched");
        assert_eq!(q.pop_batch(Cycle(9), &mut batch), Some(Cycle(9)));
        assert_eq!(batch, vec![3]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_includes_same_cycle_ready_events_after_heap_events() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(4), 1);
        q.schedule(Cycle(4), 2);
        let (t, first) = q.pop().unwrap();
        assert_eq!((t, first), (Cycle(4), 1));
        // Scheduled while the clock stands at 4: goes to the ready queue,
        // and must drain *after* the remaining heap event at 4.
        q.schedule(Cycle(4), 3);
        q.schedule(Cycle(0), 4); // past: clamps to now=4
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(Cycle::MAX, &mut batch), Some(Cycle(4)));
        assert_eq!(batch, vec![2, 3, 4]);
    }

    #[test]
    fn same_cycle_schedule_pop_interleave_keeps_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(7), 0);
        q.pop();
        // A zero-latency cascade: each pop schedules the next at `now`.
        q.schedule(Cycle(7), 1);
        q.schedule(Cycle(7), 2);
        assert_eq!(q.pop(), Some((Cycle(7), 1)));
        q.schedule(Cycle(7), 3);
        assert_eq!(q.pop(), Some((Cycle(7), 2)));
        assert_eq!(q.pop(), Some((Cycle(7), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ready_events_do_not_starve_later_heap_events() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(3), "a");
        q.schedule(Cycle(10), "z");
        q.pop(); // now = 3
        q.schedule(Cycle(3), "b");
        assert_eq!(q.peek_time(), Some(Cycle(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Cycle(3), "b")));
        assert_eq!(q.pop(), Some((Cycle(10), "z")));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(7), ());
        assert_eq!(q.peek_time(), Some(Cycle(7)));
        assert_eq!(q.now(), Cycle::ZERO);
    }

    #[test]
    fn frontier_orders_by_effective_time_then_seq() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "a"); // seq 1
        q.schedule(Cycle(12), "b"); // seq 2
        q.schedule(Cycle(40), "c"); // seq 3
        let f = q.frontier(Cycle(5));
        assert_eq!(f.len(), 2, "c is outside the 5-cycle window");
        assert_eq!((f[0].at, f[0].seq, *f[0].event), (Cycle(10), 1, "a"));
        assert_eq!((f[1].at, f[1].seq, *f[1].event), (Cycle(12), 2, "b"));
        // Window 0 exposes only the earliest timestamp.
        assert_eq!(q.frontier(Cycle(0)).len(), 1);
        // Window wide enough shows everything.
        assert_eq!(q.frontier(Cycle(100)).len(), 3);
    }

    #[test]
    fn frontier_includes_ready_events_in_seq_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(4), "heap@4"); // seq 1
        q.schedule(Cycle(4), "heap@4b"); // seq 2
        q.pop(); // delivers seq 1, now = 4
        q.schedule(Cycle(4), "ready"); // seq 3 → ready
        q.schedule(Cycle(6), "later"); // seq 4
        let f = q.frontier(Cycle(10));
        let seqs: Vec<u64> = f.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "heap@now before ready before later");
    }

    #[test]
    fn pop_seq_delivers_later_event_first_and_delays_the_rest() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "a"); // seq 1
        q.schedule(Cycle(12), "b"); // seq 2
                                    // Deliver b first: the clock jumps to 12 and a is now late.
        assert_eq!(q.pop_seq(2), Some((Cycle(12), "b")));
        assert_eq!(q.now(), Cycle(12));
        // a delivers at the current time, not in the past.
        assert_eq!(q.pop(), Some((Cycle(12), "a")));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_seq_unknown_seq_is_none_and_lossless() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "a");
        assert_eq!(q.pop_seq(99), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Cycle(10), "a")));
    }

    #[test]
    fn disordered_pops_follow_effective_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), 1); // seq 1
        q.schedule(Cycle(11), 2); // seq 2
        q.schedule(Cycle(12), 3); // seq 3
        q.schedule(Cycle(20), 4); // seq 4
                                  // Jump over 1 and 2.
        assert_eq!(q.pop_seq(3), Some((Cycle(12), 3)));
        // 1 and 2 are both effectively due at 12 now: seq order breaks the tie.
        assert_eq!(q.pop(), Some((Cycle(12), 1)));
        assert_eq!(q.pop(), Some((Cycle(12), 2)));
        assert_eq!(q.pop(), Some((Cycle(20), 4)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn disordered_pop_batch_still_drains_everything_in_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(11), 2);
        q.schedule(Cycle(30), 3);
        assert_eq!(q.pop_seq(2), Some((Cycle(11), 2)));
        let mut out = Vec::new();
        let mut times = Vec::new();
        while let Some(t) = q.pop_batch(Cycle::MAX, &mut out) {
            times.push(t);
        }
        assert_eq!(out, vec![1, 3]);
        assert_eq!(times, vec![Cycle(11), Cycle(30)]);
    }

    #[test]
    fn pop_with_fifo_chooser_matches_pop() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for (t, e) in [(9u64, 1), (3, 2), (3, 3), (15, 4)] {
            a.schedule(Cycle(t), e);
            b.schedule(Cycle(t), e);
        }
        let mut chooser = FifoChooser;
        loop {
            let x = a.pop();
            let y = b.pop_with(Cycle(64), &mut chooser);
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn ready_events_survive_a_clock_jump() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), "x"); // seq 1
        q.pop(); // now = 5
        q.schedule(Cycle(5), "ready"); // seq 2 → ready at now=5
        q.schedule(Cycle(9), "heap"); // seq 3
                                      // Jump to the heap event, leaving the ready event stale.
        assert_eq!(q.pop_seq(3), Some((Cycle(9), "heap")));
        // The stale ready event delivers at the current time.
        assert_eq!(q.pop(), Some((Cycle(9), "ready")));
        assert!(q.is_empty());
    }
}
