//! The discrete-event scheduler queue.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::cycle::Cycle;

/// An event scheduled for a particular cycle.
///
/// Ordering is by time first, then by insertion sequence number, so two
/// events scheduled for the same cycle are delivered in the order they were
/// scheduled. This tie-break is what makes the whole simulator deterministic.
#[derive(Debug)]
struct Scheduled<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timed events.
///
/// The queue is generic over the event payload `E`; the simulator's main
/// loop pops events in `(time, insertion order)` order and dispatches them
/// to the owning component.
///
/// # Example
///
/// ```
/// use sim_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(10), "late");
/// q.schedule(Cycle(1), "early");
/// q.schedule(Cycle(1), "early-but-second");
///
/// assert_eq!(q.pop(), Some((Cycle(1), "early")));
/// assert_eq!(q.pop(), Some((Cycle(1), "early-but-second")));
/// assert_eq!(q.pop(), Some((Cycle(10), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Events due exactly at `now`, scheduled while the clock already stood
    /// at `now` (zero-latency replies, replays). They bypass the heap: a
    /// push and pop here are O(1) instead of O(log n) sift operations.
    ///
    /// Ordering stays correct because `now` only reaches a time T after
    /// every earlier schedule call completed, so anything already in the
    /// heap at time T carries a smaller sequence number than anything that
    /// enters `ready` while the clock stands at T — heap-first at equal
    /// times is exactly `(time, seq)` order.
    ready: VecDeque<E>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Cycle::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            ready: VecDeque::new(),
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` for absolute time `at`.
    ///
    /// Events scheduled in the past are delivered at the current time
    /// instead; this keeps component code simple (a zero-latency response
    /// is just `schedule(now, ..)`).
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let time = at.max(self.now);
        self.next_seq += 1;
        if time == self.now {
            // Same-cycle event: FIFO push preserves seq order within the
            // cycle without touching the heap.
            self.ready.push_back(event);
        } else {
            let seq = self.next_seq;
            self.heap.push(Scheduled { time, seq, event });
        }
    }

    /// Schedules `event` to fire `delay` cycles from now.
    pub fn schedule_after(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the simulation has drained.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        // Heap events at `now` precede `ready` events (smaller seq; see the
        // `ready` field docs); `ready` events precede later heap events.
        if !self.ready.is_empty() {
            let heap_at_now = matches!(self.heap.peek(), Some(s) if s.time == self.now);
            if !heap_at_now {
                let event = self.ready.pop_front().expect("checked non-empty");
                return Some((self.now, event));
            }
        }
        let Scheduled { time, event, .. } = self.heap.pop()?;
        debug_assert!(time >= self.now, "event queue time went backwards");
        self.now = time;
        Some((time, event))
    }

    /// Drains every event due at the next timestamp (if it is ≤ `upto`)
    /// into `out`, preserving `(time, seq)` order, and advances the clock
    /// there. Returns that timestamp, or `None` if the next event is after
    /// `upto` (or the queue is empty). One call replaces a
    /// peek-compare-pop cycle per event, which is what the hierarchy's
    /// event loop runs hottest on.
    ///
    /// Events scheduled *while the batch is processed* land in a fresh
    /// batch — the caller re-calls until `None`, which is exactly the order
    /// a one-at-a-time pop loop would produce, since in-flight schedules
    /// always carry larger sequence numbers than the drained batch.
    pub fn pop_batch(&mut self, upto: Cycle, out: &mut Vec<E>) -> Option<Cycle> {
        let t = self.peek_time()?;
        if t > upto {
            return None;
        }
        self.now = t;
        while matches!(self.heap.peek(), Some(s) if s.time == t) {
            out.push(self.heap.pop().expect("peeked").event);
        }
        // `ready` events are due at the old `now`; they are part of this
        // batch only when the clock did not move (t == old now), which is
        // the only case where `ready` can be non-empty here.
        out.extend(self.ready.drain(..));
        Some(t)
    }

    /// Returns the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.ready.is_empty() {
            self.heap.peek().map(|s| s.time)
        } else {
            // Ready events are due now; a heap event can tie but not beat.
            Some(self.now)
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.ready.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.ready.is_empty()
    }

    /// Total number of events ever scheduled (for stats / fuel limits).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), ());
        q.schedule(Cycle(4), ());
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, Cycle(4));
        assert_eq!(q.now(), Cycle(4));
        // Scheduling in the past clamps to `now`.
        q.schedule(Cycle(1), ());
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, Cycle(4));
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t3, Cycle(10));
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(100), "a");
        q.pop();
        q.schedule_after(Cycle(5), "b");
        assert_eq!(q.pop(), Some((Cycle(105), "b")));
    }

    #[test]
    fn len_and_counts() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycle(1), ());
        q.schedule(Cycle(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_count(), 2);
    }

    #[test]
    fn pop_batch_drains_one_timestamp_in_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), 1);
        q.schedule(Cycle(5), 2);
        q.schedule(Cycle(9), 3);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(Cycle(100), &mut batch), Some(Cycle(5)));
        assert_eq!(batch, vec![1, 2], "same-cycle events only, seq order");
        assert_eq!(q.now(), Cycle(5));
        batch.clear();
        assert_eq!(q.pop_batch(Cycle(7), &mut batch), None, "9 > 7: untouched");
        assert_eq!(q.pop_batch(Cycle(9), &mut batch), Some(Cycle(9)));
        assert_eq!(batch, vec![3]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_includes_same_cycle_ready_events_after_heap_events() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(4), 1);
        q.schedule(Cycle(4), 2);
        let (t, first) = q.pop().unwrap();
        assert_eq!((t, first), (Cycle(4), 1));
        // Scheduled while the clock stands at 4: goes to the ready queue,
        // and must drain *after* the remaining heap event at 4.
        q.schedule(Cycle(4), 3);
        q.schedule(Cycle(0), 4); // past: clamps to now=4
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(Cycle::MAX, &mut batch), Some(Cycle(4)));
        assert_eq!(batch, vec![2, 3, 4]);
    }

    #[test]
    fn same_cycle_schedule_pop_interleave_keeps_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(7), 0);
        q.pop();
        // A zero-latency cascade: each pop schedules the next at `now`.
        q.schedule(Cycle(7), 1);
        q.schedule(Cycle(7), 2);
        assert_eq!(q.pop(), Some((Cycle(7), 1)));
        q.schedule(Cycle(7), 3);
        assert_eq!(q.pop(), Some((Cycle(7), 2)));
        assert_eq!(q.pop(), Some((Cycle(7), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ready_events_do_not_starve_later_heap_events() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(3), "a");
        q.schedule(Cycle(10), "z");
        q.pop(); // now = 3
        q.schedule(Cycle(3), "b");
        assert_eq!(q.peek_time(), Some(Cycle(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Cycle(3), "b")));
        assert_eq!(q.pop(), Some((Cycle(10), "z")));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(7), ());
        assert_eq!(q.peek_time(), Some(Cycle(7)));
        assert_eq!(q.now(), Cycle::ZERO);
    }
}
