//! Bounded record ring for protocol debugging.
//!
//! [`TraceBuffer`] is the bounded-ring storage behind the structured
//! tracer's ring (see [`crate::tracer::Tracer::with_ring`]): it retains
//! the most recent `capacity` records so an invariant failure can dump
//! recent protocol history without long simulations growing memory.

use std::collections::VecDeque;
use std::fmt;

use crate::cycle::Cycle;

/// A bounded ring buffer of timestamped trace records.
///
/// Generic over the record type: the structured tracer's ring stores typed
/// [`TraceEvent`](crate::tracer::TraceEvent)s, ad-hoc debugging can store
/// `String`s (the default).
///
/// # Example
///
/// ```
/// use sim_engine::{Cycle, TraceBuffer};
/// let mut t = TraceBuffer::new(4);
/// t.push(Cycle(1), || "L1[0] GETS 0x80".to_string());
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer<T = String> {
    records: VecDeque<(Cycle, T)>,
    capacity: usize,
    enabled: bool,
}

impl<T> TraceBuffer<T> {
    /// Creates an enabled trace holding at most `capacity` records.
    /// `capacity == 0` retains nothing (but the push closures still run).
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            records: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            enabled: true,
        }
    }

    /// Creates a disabled trace; [`TraceBuffer::push`] becomes a no-op.
    pub fn disabled() -> Self {
        TraceBuffer {
            records: VecDeque::new(),
            capacity: 0,
            enabled: false,
        }
    }

    /// Whether records are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a message. The closure only runs when tracing is enabled, so
    /// formatting cost is not paid in production runs.
    pub fn push<F: FnOnce() -> T>(&mut self, at: Cycle, message: F) {
        if !self.enabled {
            return;
        }
        // `>=` rather than `==`: a capacity-0 buffer (or one that somehow
        // overfilled) must never grow without bound.
        while self.records.len() >= self.capacity {
            if self.records.pop_front().is_none() {
                return; // capacity 0: retain nothing
            }
        }
        self.records.push_back((at, message()));
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Maximum number of records the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, &T)> {
        self.records.iter().map(|(c, s)| (*c, s))
    }
}

impl<T: fmt::Display> fmt::Display for TraceBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (cycle, msg) in self.iter() {
            writeln!(f, "[{cycle}] {msg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_most_recent_within_capacity() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5u64 {
            t.push(Cycle(i), || format!("ev{i}"));
        }
        let msgs: Vec<&str> = t.iter().map(|(_, m)| m.as_str()).collect();
        assert_eq!(msgs, vec!["ev2", "ev3", "ev4"]);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t: TraceBuffer = TraceBuffer::disabled();
        t.push(Cycle(1), || panic!("must not format when disabled"));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn capacity_zero_never_grows() {
        // Regression: `push` used to compare `len == capacity`, which a
        // capacity-0 buffer passes only before the first insert — it then
        // grew without bound for the rest of the run.
        let mut t = TraceBuffer::new(0);
        for i in 0..100u64 {
            t.push(Cycle(i), || format!("ev{i}"));
        }
        assert_eq!(t.len(), 0, "capacity-0 buffer must stay empty");
        assert!(t.is_enabled(), "capacity 0 is bounded, not disabled");
    }

    #[test]
    fn generic_record_types() {
        let mut t: TraceBuffer<u64> = TraceBuffer::new(2);
        for i in 0..4 {
            t.push(Cycle(i), || i * 10);
        }
        let vals: Vec<u64> = t.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, vec![20, 30]);
    }

    #[test]
    fn display_includes_timestamps() {
        let mut t = TraceBuffer::new(2);
        t.push(Cycle(7), || "hello".to_string());
        assert_eq!(t.to_string(), "[7cy] hello\n");
    }
}
