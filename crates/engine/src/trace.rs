//! Bounded event tracing for protocol debugging.

use std::collections::VecDeque;
use std::fmt;

use crate::cycle::Cycle;

/// A bounded ring buffer of timestamped trace records.
///
/// Controllers push human-readable records of every message they handle;
/// when an invariant check fails, the recent protocol history can be dumped
/// for diagnosis. The buffer is bounded so long simulations don't grow
/// memory, and tracing can be disabled entirely (the common case) at
/// negligible cost.
///
/// # Example
///
/// ```
/// use sim_engine::{Cycle, TraceBuffer};
/// let mut t = TraceBuffer::new(4);
/// t.push(Cycle(1), || "L1[0] GETS 0x80".to_string());
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    records: VecDeque<(Cycle, String)>,
    capacity: usize,
    enabled: bool,
}

impl TraceBuffer {
    /// Creates an enabled trace holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            records: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            enabled: true,
        }
    }

    /// Creates a disabled trace; [`TraceBuffer::push`] becomes a no-op.
    pub fn disabled() -> Self {
        TraceBuffer {
            records: VecDeque::new(),
            capacity: 0,
            enabled: false,
        }
    }

    /// Whether records are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a message. The closure only runs when tracing is enabled, so
    /// formatting cost is not paid in production runs.
    pub fn push<F: FnOnce() -> String>(&mut self, at: Cycle, message: F) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back((at, message()));
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, &str)> {
        self.records.iter().map(|(c, s)| (*c, s.as_str()))
    }
}

impl fmt::Display for TraceBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (cycle, msg) in self.iter() {
            writeln!(f, "[{cycle}] {msg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_most_recent_within_capacity() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5u64 {
            t.push(Cycle(i), || format!("ev{i}"));
        }
        let msgs: Vec<&str> = t.iter().map(|(_, m)| m).collect();
        assert_eq!(msgs, vec!["ev2", "ev3", "ev4"]);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = TraceBuffer::disabled();
        t.push(Cycle(1), || panic!("must not format when disabled"));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn display_includes_timestamps() {
        let mut t = TraceBuffer::new(2);
        t.push(Cycle(7), || "hello".to_string());
        assert_eq!(t.to_string(), "[7cy] hello\n");
    }
}
