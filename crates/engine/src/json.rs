//! Dependency-free JSON value model, writer, and parser.
//!
//! The observability layer (metrics snapshots, trace sinks, run reports)
//! needs machine-readable output, and the workspace builds offline with no
//! external crates, so the serializer lives in-tree. [`Json`] keeps object
//! members in insertion order (a `Vec` of pairs, not a map), which makes
//! snapshots deterministic byte-for-byte — the property every diffable
//! artifact in this repository rests on.
//!
//! # Example
//!
//! ```
//! use sim_engine::Json;
//! let v = Json::object([
//!     ("name", Json::from("fig7")),
//!     ("runs", Json::from(69u64)),
//! ]);
//! let text = v.to_string();
//! assert_eq!(text, r#"{"name":"fig7","runs":69}"#);
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// A JSON document.
///
/// Numbers are split into unsigned/signed/float variants so `u64` counters
/// round-trip exactly (an `f64` would silently lose precision above 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    Uint(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; members keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// The member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Uint(n) => Some(n),
            Json::Int(n) => u64::try_from(n).ok(),
            Json::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Uint(n) => Some(n as f64),
            Json::Int(n) => Some(n as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes into `out` (compact, no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(n) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*n, &mut buf));
            }
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{f}` prints shortest-roundtrip in Rust; integral
                    // floats get an explicit ".0" so they re-parse as Float.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes with two-space indentation (for human-facing files).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the byte offset and cause on
    /// malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Uint(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Uint(n as u64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        if n >= 0 {
            Json::Uint(n as u64)
        } else {
            Json::Int(n)
        }
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Formats a `u64` without going through `format!` (hot for big bucket
/// arrays in snapshots).
fn fmt_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ASCII")
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not recombined; snapshots never
                            // emit them.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            at: start,
            msg: "invalid number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Uint(0),
            Json::Uint(u64::MAX),
            Json::Int(-42),
            Json::Float(17.25),
            Json::Str("hello".into()),
        ] {
            let text = v.to_string();
            assert_eq!(Json::parse(&text).unwrap(), v, "round-trip of {text}");
        }
    }

    #[test]
    fn u64_precision_survives() {
        // 2^53 + 1 is not representable as f64; the Uint variant must
        // carry it exactly.
        let n = (1u64 << 53) + 1;
        let text = Json::Uint(n).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::object([
            ("counters", Json::object([("loads", Json::from(3u64))])),
            (
                "cdf",
                Json::array([
                    Json::array([Json::from(17u64), Json::from(0.5)]),
                    Json::array([Json::from(43u64), Json::from(1.0)]),
                ]),
            ),
            ("label", Json::from("GETS_WP")),
            ("empty_arr", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
        ]);
        let compact = v.to_string();
        assert_eq!(Json::parse(&compact).unwrap(), v);
        let pretty = v.to_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.to_string();
        assert_eq!(text, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z":1,"a":2}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("z").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , 2.5 , \"héllo\" ] } ").unwrap();
        let arr = v.get("k").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("héllo"));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        let err = Json::parse("{} trailing").unwrap_err();
        assert_eq!(err.msg, "trailing characters after document");
        assert!(err.to_string().contains("byte 3"));
    }

    #[test]
    fn negative_and_scientific_numbers() {
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-2.5e-1").unwrap().as_f64(), Some(-0.25));
    }
}
