//! Simulated time, measured in CPU clock cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or duration of) simulated time, in CPU clock cycles.
///
/// The simulated processor runs at 3 GHz (paper Table V), so one cycle is
/// 1/3 ns; helpers such as [`Cycle::as_nanos_at_ghz`] convert when a
/// wall-clock figure is reported.
///
/// `Cycle` is used both as an absolute timestamp and as a duration; the
/// arithmetic impls below are the ones meaningful for either reading.
///
/// # Example
///
/// ```
/// use sim_engine::Cycle;
/// let start = Cycle(100);
/// let latency = Cycle(17);
/// assert_eq!(start + latency, Cycle(117));
/// assert_eq!((start + latency) - start, latency);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero, the start of every simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Returns the raw cycle count.
    ///
    /// ```
    /// # use sim_engine::Cycle;
    /// assert_eq!(Cycle(42).get(), 42);
    /// ```
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Saturating addition; scheduling "never" does not wrap around.
    #[inline]
    #[must_use]
    pub const fn saturating_add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_add(rhs.0))
    }

    /// Duration between two timestamps, saturating at zero when `earlier`
    /// is actually later (useful for defensive stat computation).
    #[inline]
    #[must_use]
    pub const fn saturating_since(self, earlier: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(earlier.0))
    }

    /// Converts a cycle count to nanoseconds at the given clock frequency.
    ///
    /// ```
    /// # use sim_engine::Cycle;
    /// // 3 GHz: 3 cycles per nanosecond.
    /// assert_eq!(Cycle(9).as_nanos_at_ghz(3.0), 3.0);
    /// ```
    #[inline]
    pub fn as_nanos_at_ghz(self, ghz: f64) -> f64 {
        self.0 as f64 / ghz
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`, exactly like
    /// integer subtraction; use [`Cycle::saturating_since`] when the ordering
    /// is not guaranteed.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

impl From<Cycle> for u64 {
    #[inline]
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let a = Cycle(10);
        let b = Cycle(7);
        assert_eq!(a + b, Cycle(17));
        assert_eq!((a + b) - b, a);
        let mut c = a;
        c += b;
        c -= Cycle(2);
        assert_eq!(c, Cycle(15));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Cycle::MAX.saturating_add(Cycle(1)), Cycle::MAX);
        assert_eq!(Cycle(3).saturating_since(Cycle(10)), Cycle::ZERO);
        assert_eq!(Cycle(10).saturating_since(Cycle(3)), Cycle(7));
    }

    #[test]
    fn conversion_and_display() {
        assert_eq!(u64::from(Cycle::from(9u64)), 9);
        assert_eq!(Cycle(12).to_string(), "12cy");
        assert_eq!(Cycle(6).as_nanos_at_ghz(3.0), 2.0);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, Cycle(6));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Cycle(3) < Cycle(5));
        assert!(Cycle::ZERO < Cycle::MAX);
    }
}
